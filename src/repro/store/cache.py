"""Bounded LRU payload cache over any :class:`ChunkStore`.

Batched queries deliberately ordered for shared scans
(:mod:`repro.planner.batch` and its ``cached_inputs`` model) only pay
off if a chunk retrieved by one query is still in memory when the next
query asks for it.  :class:`CachedChunkStore` provides that memory: a
byte-bounded LRU of decoded :class:`~repro.dataset.chunk.Chunk`
payloads in front of the real store, transparently invalidated by
writes and dataset deletion.

Cached chunks are shared between callers -- treat payload arrays as
read-only (the execution engine never mutates retrieved chunks).

Thread safety: all cache state (the LRU ordering, the byte budget and
the hit/miss/eviction counters) is guarded by one re-entrant lock, so
the cache may sit under a multi-worker
:class:`~repro.store.prefetch.TilePrefetcher` or be shared between a
query thread and a prefetch thread.  The lock is never held across an
inner-store read (misses fetch outside the guarded section and insert
on return), so a slow disk stalls only the caller that missed.  The
static pass :mod:`repro.analysis.effects` (ADR705) enforces the
discipline: every mutation happens under ``with self._lock`` or
inside a ``*_locked`` helper.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

from repro.dataset.chunk import Chunk
from repro.store.chunk_store import ChunkStore
from repro.util.units import MB

__all__ = ["CachedChunkStore", "ScanRecorder"]

_Key = Tuple[str, int]


def _chunk_bytes(chunk: Chunk) -> int:
    return int(chunk.coords.nbytes) + int(chunk.values.nbytes)


class ScanRecorder:
    """Per-query tally of payload-cache sharing.

    The cache's ``hits``/``misses`` counters are instance-global: under
    a concurrent query service many queries mutate them at once, so a
    before/after delta cannot attribute a hit to a query.  A recorder
    is the exact per-query view: the caller passes one to
    :meth:`CachedChunkStore.read_chunk` for every read issued on behalf
    of one query, and the cache tells the recorder whether that read
    was served from memory (a *shared* read -- some earlier query paid
    the disk retrieval) or went to the inner store.  Thread-safe, so
    prefetch worker threads reading for the same query may share one.
    """

    __slots__ = ("_lock", "hits", "misses", "hit_bytes", "miss_bytes")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.hit_bytes = 0
        self.miss_bytes = 0

    def record(self, hit: bool, nbytes: int) -> None:
        with self._lock:
            if hit:
                self.hits += 1
                self.hit_bytes += int(nbytes)
            else:
                self.misses += 1
                self.miss_bytes += int(nbytes)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "hit_bytes": self.hit_bytes,
                "miss_bytes": self.miss_bytes,
            }


class CachedChunkStore(ChunkStore):
    """LRU-cached view of *inner*, bounded by decoded payload bytes.

    Reads fill the cache; writes and deletions invalidate the affected
    entries before delegating, so the cache can never serve stale
    payloads for data modified *through this wrapper*.  (Mutating the
    wrapped store directly bypasses invalidation -- keep one handle.)
    """

    def __init__(self, inner: ChunkStore, max_bytes: int = 64 * MB) -> None:
        if isinstance(inner, CachedChunkStore):
            raise ValueError("refusing to stack chunk caches")
        self.inner = inner
        self.max_bytes = int(max_bytes)
        self._lock = threading.RLock()
        self._entries: "OrderedDict[_Key, Chunk]" = OrderedDict()
        self._pins: Dict[_Key, int] = {}
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- cache mechanics ---------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def nbytes(self) -> int:
        with self._lock:
            return self._bytes

    def _insert_locked(self, key: _Key, chunk: Chunk) -> None:
        """Insert under ``self._lock`` (evicting LRU entries to fit).

        Pinned keys are always inserted and never chosen as eviction
        victims: a shared-scan batch that pinned its overlap set is
        guaranteed the successor query finds the chunk in memory.  The
        byte budget may therefore be exceeded transiently, bounded by
        the pinned set's size (the query service unpins when the batch
        completes).
        """
        size = _chunk_bytes(chunk)
        pinned = key in self._pins
        if key in self._entries or (size > self.max_bytes and not pinned):
            return
        while self._bytes + size > self.max_bytes:
            victim = next((k for k in self._entries if k not in self._pins), None)
            if victim is None:
                break  # everything resident is pinned
            self._bytes -= _chunk_bytes(self._entries.pop(victim))
            self.evictions += 1
        if self._bytes + size <= self.max_bytes or pinned:
            self._entries[key] = chunk
            self._bytes += size

    # -- pinning ----------------------------------------------------------

    def pin(self, dataset: str, chunk_ids) -> None:
        """Protect ``(dataset, id)`` payloads from eviction until the
        matching :meth:`unpin`.  Counted: concurrent batches pinning
        the same chunk each hold an independent reference."""
        with self._lock:
            for cid in chunk_ids:
                key = (dataset, int(cid))
                self._pins[key] = self._pins.get(key, 0) + 1

    def unpin(self, dataset: str, chunk_ids) -> None:
        """Release pins taken by :meth:`pin` (unknown keys ignored).
        Entries left over budget become ordinary LRU victims again."""
        with self._lock:
            for cid in chunk_ids:
                key = (dataset, int(cid))
                n = self._pins.get(key)
                if n is None:
                    continue
                if n <= 1:
                    del self._pins[key]
                else:
                    self._pins[key] = n - 1

    @property
    def pinned_count(self) -> int:
        with self._lock:
            return len(self._pins)

    def _lookup_locked(self, key: _Key) -> Optional[Chunk]:
        """Probe under ``self._lock``; counts the hit/miss."""
        chunk = self._entries.get(key)
        if chunk is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return chunk

    def invalidate(self, dataset: str, chunk_ids: Optional[List[int]] = None) -> None:
        """Drop cached payloads of *dataset* (or just *chunk_ids*)."""
        with self._lock:
            if chunk_ids is None:
                doomed = [k for k in self._entries if k[0] == dataset]
            else:
                wanted = set(int(c) for c in chunk_ids)
                doomed = [
                    k for k in self._entries if k[0] == dataset and k[1] in wanted
                ]
            for key in doomed:
                self._bytes -= _chunk_bytes(self._entries.pop(key))

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "chunk_hits": self.hits,
                "chunk_misses": self.misses,
                "chunk_evictions": self.evictions,
                "chunk_bytes": self._bytes,
            }

    # -- store interface ---------------------------------------------------

    def read_chunk(
        self,
        dataset: str,
        chunk_id: int,
        recorder: Optional[ScanRecorder] = None,
    ) -> Chunk:
        key = (dataset, int(chunk_id))
        with self._lock:
            chunk = self._lookup_locked(key)
        if chunk is not None:
            if recorder is not None:
                recorder.record(True, _chunk_bytes(chunk))
            return chunk
        # The lock is dropped across the inner read: a raising read
        # inserts nothing (failures are never cached, a later retry
        # reaches the real store) and a slow disk stalls only the
        # caller that missed.
        chunk = self.inner.read_chunk(dataset, chunk_id)
        with self._lock:
            self._insert_locked(key, chunk)
        if recorder is not None:
            recorder.record(False, _chunk_bytes(chunk))
        return chunk

    def read_many(self, dataset: str, chunk_ids: List[int]) -> Iterator[Chunk]:
        """Serve hits from cache; fetch the misses in one batch through
        the inner store (which orders them by disk placement); yield in
        the caller's order.

        Partial failures honor the :class:`ChunkStore` contract: chunks
        retrieved before the inner iterator raised are cached and
        yielded (cache hits always are), and the first id without a
        chunk raises the inner store's error at its position in the
        iteration.  A failed read is **never** cached -- the next call
        re-attempts it against the inner store.
        """
        ids = [int(c) for c in chunk_ids]
        got: Dict[int, Chunk] = {}
        missing: List[int] = []
        with self._lock:
            for cid in dict.fromkeys(ids):  # preserve order, visit once
                chunk = self._lookup_locked((dataset, cid))
                if chunk is None:
                    missing.append(cid)
                else:
                    got[cid] = chunk
        failure: Optional[Exception] = None
        if missing:
            inner_iter = self.inner.read_many(dataset, missing)
            while True:
                try:
                    chunk = next(inner_iter)
                except StopIteration:
                    break
                except Exception as e:
                    failure = e  # cache the prefix, report at yield time
                    break
                cid = int(chunk.chunk_id)
                got[cid] = chunk
                with self._lock:
                    self._insert_locked((dataset, cid), chunk)
        for cid in ids:
            if cid not in got:
                if failure is not None:
                    raise failure
                raise KeyError(f"chunk {cid} of {dataset!r} not in store")
            yield got[cid]

    def write_chunk(self, dataset: str, chunk: Chunk, node: int, disk: int) -> None:
        self.invalidate(dataset, [chunk.chunk_id])
        self.inner.write_chunk(dataset, chunk, node, disk)

    def write_chunks(self, dataset: str, chunks, placements) -> None:
        self.invalidate(dataset, [c.chunk_id for c in chunks])
        if hasattr(self.inner, "write_chunks"):
            self.inner.write_chunks(dataset, chunks, placements)
        else:
            for chunk, (node, disk) in zip(chunks, placements):
                self.inner.write_chunk(dataset, chunk, node, disk)

    def delete_dataset(self, dataset: str) -> None:
        self.invalidate(dataset)
        self.inner.delete_dataset(dataset)

    def placement(self, dataset: str, chunk_id: int):
        return self.inner.placement(dataset, chunk_id)

    def chunk_ids(self, dataset: str) -> List[int]:
        return self.inner.chunk_ids(dataset)

    def __getattr__(self, name: str):
        # Store-specific extras (e.g. FileChunkStore.root) pass through.
        return getattr(self.inner, name)
