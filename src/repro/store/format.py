"""Binary on-disk chunk format.

Layout (little-endian):

========  =====  ==============================================
offset    size   field
========  =====  ==============================================
0         4      magic ``b"ADRC"``
4         2      format version (currently 1)
6         2      ndim
8         8      chunk id
16        8      n_items
24        4      coords payload length (bytes)
28        4      values payload length (bytes)
32        4      values dtype string length ``L``
36        4      values trailing-shape rank ``R``
40        4      CRC32 of everything after the header
44        L      values dtype string (ASCII, e.g. ``"<f8"``)
44+L      8*R    values trailing shape (int64 each)
...       16*d   MBR (lo array then hi array, float64)
...       var    coords payload (float64, C order)
...       var    values payload (C order)
========  =====  ==============================================

The format is deliberately self-describing: a chunk file can be read
back without the dataset manifest, and the CRC turns silent bit-rot
into a loud :class:`CorruptChunkError` -- the property the round-trip
and corruption tests pin down.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.dataset.chunk import Chunk, ChunkMeta
from repro.util.geometry import Rect

__all__ = [
    "encode_chunk",
    "decode_chunk",
    "ChunkFormatError",
    "CorruptChunkError",
    "MAGIC",
    "VERSION",
]

MAGIC = b"ADRC"
VERSION = 1
_HEADER = struct.Struct("<4sHHqqIIIII")  # 44 bytes


class ChunkFormatError(Exception):
    """Raised when a chunk file is malformed or corrupt."""


class CorruptChunkError(ChunkFormatError):
    """A chunk that *exists* but whose payload failed integrity checks
    (CRC mismatch or truncation).

    Distinguishes damage from absence: a chunk id unknown to the store
    raises ``KeyError``; a present-but-rotten payload raises this.
    Degraded execution (``on_error='degrade'``) and retry policies key
    off the distinction -- a corrupt read can be retried or skipped
    with accounting, a missing chunk is a catalog error.
    """


def encode_chunk(chunk: Chunk) -> bytes:
    """Serialize a chunk (payload + MBR) to bytes."""
    coords = np.ascontiguousarray(chunk.coords, dtype="<f8")
    values = np.ascontiguousarray(chunk.values)
    dtype_str = values.dtype.str.encode("ascii")
    trailing = values.shape[1:]
    lo, hi = chunk.meta.mbr.as_arrays()
    body = bytearray()
    body += dtype_str
    body += np.asarray(trailing, dtype="<i8").tobytes()
    body += np.ascontiguousarray(lo, dtype="<f8").tobytes()
    body += np.ascontiguousarray(hi, dtype="<f8").tobytes()
    body += coords.tobytes()
    body += values.tobytes()
    crc = zlib.crc32(bytes(body))
    header = _HEADER.pack(
        MAGIC,
        VERSION,
        coords.shape[1],
        chunk.meta.chunk_id,
        len(coords),
        coords.nbytes,
        values.nbytes,
        len(dtype_str),
        len(trailing),
        crc,
    )
    return header + bytes(body)


def decode_chunk(data: bytes) -> Chunk:
    """Parse bytes produced by :func:`encode_chunk` back into a Chunk.

    Raises
    ------
    ChunkFormatError
        On a bad magic number or unsupported version (a file that was
        never a chunk of this format).
    CorruptChunkError
        On truncation or CRC mismatch (a chunk file that was valid
        once and has since been damaged).
    """
    if len(data) < _HEADER.size:
        raise CorruptChunkError(f"file too short for header ({len(data)} bytes)")
    (
        magic,
        version,
        ndim,
        chunk_id,
        n_items,
        coords_len,
        values_len,
        dtype_len,
        rank,
        crc,
    ) = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise ChunkFormatError(f"bad magic {magic!r}")
    if version != VERSION:
        raise ChunkFormatError(f"unsupported format version {version}")
    body = data[_HEADER.size :]
    expected = dtype_len + 8 * rank + 16 * ndim + coords_len + values_len
    if len(body) != expected:
        raise CorruptChunkError(
            f"body length {len(body)} does not match header ({expected})"
        )
    if zlib.crc32(body) != crc:
        raise CorruptChunkError("CRC mismatch: chunk file is corrupt")
    pos = 0
    dtype = np.dtype(body[pos : pos + dtype_len].decode("ascii"))
    pos += dtype_len
    trailing = tuple(
        np.frombuffer(body, dtype="<i8", count=rank, offset=pos).tolist()
    )
    pos += 8 * rank
    lo = np.frombuffer(body, dtype="<f8", count=ndim, offset=pos)
    pos += 8 * ndim
    hi = np.frombuffer(body, dtype="<f8", count=ndim, offset=pos)
    pos += 8 * ndim
    coords = np.frombuffer(body, dtype="<f8", count=n_items * ndim, offset=pos)
    coords = coords.reshape(n_items, ndim).copy()
    pos += coords_len
    n_values = values_len // dtype.itemsize if dtype.itemsize else 0
    values = np.frombuffer(body, dtype=dtype, count=n_values, offset=pos)
    values = values.reshape((n_items,) + trailing).copy()
    meta = ChunkMeta(
        chunk_id=chunk_id,
        mbr=Rect(tuple(lo), tuple(hi)),
        nbytes=coords_len + values_len,
        n_items=n_items,
    )
    return Chunk(meta, coords, values)
