"""Binary on-disk chunk format.

Layout (little-endian):

========  =====  ==============================================
offset    size   field
========  =====  ==============================================
0         4      magic ``b"ADRC"``
4         2      format version (currently 2)
6         2      ndim
8         8      chunk id
16        8      n_items
24        4      coords payload length (bytes)
28        4      values payload length (bytes)
32        4      values dtype string length ``L``
36        4      values trailing-shape rank ``R``
40        4      CRC32 of everything after the header
44        L      values dtype string (ASCII, e.g. ``"<f8"``)
44+L      8*R    values trailing shape (int64 each)
...       16*d   MBR (lo array then hi array, float64)
...       24*k   value synopsis, v2 only (see below)
...       var    coords payload (float64, C order)
...       var    values payload (C order)
========  =====  ==============================================

Version 2 inserts a fixed-size **value synopsis** block between the
MBR and the coords payload, where ``k = prod(trailing shape)`` (1 for
scalar values): per-component min (``k`` float64), max (``k``
float64), then NaN counts (``k`` int64).  The block lets
:func:`decode_synopsis` recover pruning summaries from the header
region without materializing the payload arrays.  Version 1 files
(no block) still decode; their synopses are recomputed from values.

The format is deliberately self-describing: a chunk file can be read
back without the dataset manifest, and the CRC turns silent bit-rot
into a loud :class:`CorruptChunkError` -- the property the round-trip
and corruption tests pin down.
"""

from __future__ import annotations

import struct
import zlib
from math import prod

import numpy as np

from repro.dataset.chunk import Chunk, ChunkMeta
from repro.dataset.synopsis import ValueSynopsis
from repro.util.geometry import Rect

__all__ = [
    "encode_chunk",
    "decode_chunk",
    "decode_synopsis",
    "ChunkFormatError",
    "CorruptChunkError",
    "MAGIC",
    "VERSION",
]

MAGIC = b"ADRC"
VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)
_HEADER = struct.Struct("<4sHHqqIIIII")  # 44 bytes


class ChunkFormatError(Exception):
    """Raised when a chunk file is malformed or corrupt."""


class CorruptChunkError(ChunkFormatError):
    """A chunk that *exists* but whose payload failed integrity checks
    (CRC mismatch or truncation).

    Distinguishes damage from absence: a chunk id unknown to the store
    raises ``KeyError``; a present-but-rotten payload raises this.
    Degraded execution (``on_error='degrade'``) and retry policies key
    off the distinction -- a corrupt read can be retried or skipped
    with accounting, a missing chunk is a catalog error.
    """


def encode_chunk(chunk: Chunk) -> bytes:
    """Serialize a chunk (payload + MBR + value synopsis) to bytes."""
    coords = np.ascontiguousarray(chunk.coords, dtype="<f8")
    values = np.ascontiguousarray(chunk.values)
    dtype_str = values.dtype.str.encode("ascii")
    trailing = values.shape[1:]
    lo, hi = chunk.meta.mbr.as_arrays()
    vmin, vmax, nulls, _count = ValueSynopsis.summarize_values(values)
    body = bytearray()
    body += dtype_str
    body += np.asarray(trailing, dtype="<i8").tobytes()
    body += np.ascontiguousarray(lo, dtype="<f8").tobytes()
    body += np.ascontiguousarray(hi, dtype="<f8").tobytes()
    body += np.ascontiguousarray(vmin, dtype="<f8").tobytes()
    body += np.ascontiguousarray(vmax, dtype="<f8").tobytes()
    body += np.ascontiguousarray(nulls, dtype="<i8").tobytes()
    body += coords.tobytes()
    body += values.tobytes()
    crc = zlib.crc32(bytes(body))
    header = _HEADER.pack(
        MAGIC,
        VERSION,
        coords.shape[1],
        chunk.meta.chunk_id,
        len(coords),
        coords.nbytes,
        values.nbytes,
        len(dtype_str),
        len(trailing),
        crc,
    )
    return header + bytes(body)


def decode_chunk(data: bytes) -> Chunk:
    """Parse bytes produced by :func:`encode_chunk` back into a Chunk.

    Raises
    ------
    ChunkFormatError
        On a bad magic number or unsupported version (a file that was
        never a chunk of this format).
    CorruptChunkError
        On truncation or CRC mismatch (a chunk file that was valid
        once and has since been damaged).
    """
    if len(data) < _HEADER.size:
        raise CorruptChunkError(f"file too short for header ({len(data)} bytes)")
    (
        magic,
        version,
        ndim,
        chunk_id,
        n_items,
        coords_len,
        values_len,
        dtype_len,
        rank,
        crc,
    ) = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise ChunkFormatError(f"bad magic {magic!r}")
    if version not in _SUPPORTED_VERSIONS:
        raise ChunkFormatError(f"unsupported format version {version}")
    body = data[_HEADER.size :]
    # CRC first: the v2 synopsis size depends on the trailing shape,
    # which lives in the body, so the body must be proven intact before
    # any of it is trusted for length arithmetic.
    if zlib.crc32(body) != crc:
        raise CorruptChunkError("CRC mismatch: chunk file is corrupt")
    if len(body) < dtype_len + 8 * rank:
        raise CorruptChunkError(
            f"body length {len(body)} too short for dtype + shape region"
        )
    pos = 0
    dtype = np.dtype(body[pos : pos + dtype_len].decode("ascii"))
    pos += dtype_len
    trailing = tuple(
        np.frombuffer(body, dtype="<i8", count=rank, offset=pos).tolist()
    )
    pos += 8 * rank
    k = prod(trailing) if trailing else 1
    synopsis_len = 24 * k if version >= 2 else 0
    expected = dtype_len + 8 * rank + 16 * ndim + synopsis_len + coords_len + values_len
    if len(body) != expected:
        raise CorruptChunkError(
            f"body length {len(body)} does not match header ({expected})"
        )
    lo = np.frombuffer(body, dtype="<f8", count=ndim, offset=pos)
    pos += 8 * ndim
    hi = np.frombuffer(body, dtype="<f8", count=ndim, offset=pos)
    pos += 8 * ndim
    pos += synopsis_len  # pruning summaries; payload decode skips them
    coords = np.frombuffer(body, dtype="<f8", count=n_items * ndim, offset=pos)
    coords = coords.reshape(n_items, ndim).copy()
    pos += coords_len
    n_values = values_len // dtype.itemsize if dtype.itemsize else 0
    values = np.frombuffer(body, dtype=dtype, count=n_values, offset=pos)
    values = values.reshape((n_items,) + trailing).copy()
    meta = ChunkMeta(
        chunk_id=chunk_id,
        mbr=Rect(tuple(lo), tuple(hi)),
        nbytes=coords_len + values_len,
        n_items=n_items,
    )
    return Chunk(meta, coords, values)


def decode_synopsis(data: bytes) -> tuple:
    """Extract ``(vmin, vmax, nulls, count)`` from an encoded chunk.

    For version-2 files this reads only the header region (dtype,
    shape, MBR, synopsis block) after verifying the CRC; version-1
    files carry no block, so their values are decoded and summarized.
    Either way the result is identical to
    ``ValueSynopsis.summarize_values(chunk.values)`` on the decoded
    chunk.
    """
    if len(data) < _HEADER.size:
        raise CorruptChunkError(f"file too short for header ({len(data)} bytes)")
    magic, version, _ndim, _cid, n_items, _clen, _vlen, dtype_len, rank, crc = (
        _HEADER.unpack_from(data)
    )
    if magic != MAGIC:
        raise ChunkFormatError(f"bad magic {magic!r}")
    if version not in _SUPPORTED_VERSIONS:
        raise ChunkFormatError(f"unsupported format version {version}")
    if version < 2:
        chunk = decode_chunk(data)
        return ValueSynopsis.summarize_values(chunk.values)
    body = data[_HEADER.size :]
    if zlib.crc32(body) != crc:
        raise CorruptChunkError("CRC mismatch: chunk file is corrupt")
    ndim = _HEADER.unpack_from(data)[2]
    pos = dtype_len
    trailing = tuple(
        np.frombuffer(body, dtype="<i8", count=rank, offset=pos).tolist()
    )
    pos += 8 * rank + 16 * ndim
    k = prod(trailing) if trailing else 1
    if len(body) < pos + 24 * k:
        raise CorruptChunkError("body too short for synopsis block")
    vmin = np.frombuffer(body, dtype="<f8", count=k, offset=pos).copy()
    pos += 8 * k
    vmax = np.frombuffer(body, dtype="<f8", count=k, offset=pos).copy()
    pos += 8 * k
    nulls = np.frombuffer(body, dtype="<i8", count=k, offset=pos).copy()
    return vmin, vmax, nulls, int(n_items)
