"""Bounded threaded read-ahead: the paper's disk/compute overlap.

The runtime's reduce phase consumes one chunk payload per scheduled
read, in the plan's deterministic read order.  Synchronously, every
read stalls the pipeline for the full disk (or injected-fault) latency
-- the barriered baseline the paper's runtime was built to avoid
("overlap disk operations, network operations and processing").

:class:`TilePrefetcher` overlaps them: background threads *issue*
reads ahead of consumption -- the current tile's remaining reads plus
a bounded look-ahead into the next tile -- in the same
``(node, disk, chunk id)`` placement order
:meth:`~repro.store.chunk_store.FileChunkStore.read_many` batches
physical reads in, so read-ahead preserves the per-disk sequential
scans the declusterer set up.  The executor still *consumes* in
schedule order, so results stay bit-for-bit identical to the
synchronous path.

Layering: the prefetcher wraps the fully-wrapped provider (payload
cache, retries, fault injection) and is the only caller of it while
active, so per-chunk caching/retry/fault semantics are untouched and
the default single fetch thread keeps non-thread-safe wrappers (the
LRU payload cache, stateful fault specs) single-touchered.  A
provider error is captured where it fired and re-raised at the
consuming :meth:`TilePrefetcher.get` -- the exact point the
synchronous path would have raised it -- which is what keeps
``on_error='degrade'`` and the fault corpus oblivious to prefetching.

Memory bound: at most ``depth`` fetched-or-in-flight chunks of
read-ahead beyond the tile currently being consumed (the current
tile's own reads are always eligible -- they are about to be consumed
anyway, and gating them on ``depth`` could deadlock a consumer whose
schedule order differs from placement order).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["PrefetchPolicy", "TilePrefetcher", "read_batches"]


@dataclass(frozen=True)
class PrefetchPolicy:
    """Read-ahead knobs.

    ``depth`` bounds how many chunks beyond the currently-consumed
    tile may be fetched or in flight at once; ``workers`` is the fetch
    thread count (keep the default 1 unless every layer under the
    prefetcher -- cache, retry, injector -- is thread-safe).
    """

    depth: int = 4
    workers: int = 1

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError(f"prefetch depth must be >= 1, got {self.depth}")
        if self.workers < 1:
            raise ValueError(f"prefetch workers must be >= 1, got {self.workers}")

    @classmethod
    def coerce(cls, value: Union[bool, "PrefetchPolicy", None]) -> Optional["PrefetchPolicy"]:
        """Normalize the user-facing ``prefetch=`` setting: ``None`` /
        ``False`` mean off, ``True`` means the default policy."""
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, cls):
            return value
        raise TypeError(
            f"prefetch must be a bool, PrefetchPolicy or None, got {value!r}"
        )


def read_batches(plan, ranks=None) -> List[List[Tuple[int, int]]]:
    """Per-tile ``(read index, dataset chunk id)`` issue batches.

    Within each tile the reads are ordered by the input chunk's
    ``(node, disk, chunk id)`` placement -- the order
    ``FileChunkStore.read_many`` performs physical reads in -- so
    prefetch issues per-disk sequential scans.  *ranks* (a container
    of processor ids) restricts the batches to reads those ranks
    perform, which is what a multiprocess worker host prefetches.
    """
    problem = plan.problem
    reads = plan.reads
    in_global = problem.input_global_ids
    sel = np.arange(len(reads), dtype=np.int64)
    if ranks is not None:
        sel = sel[np.isin(reads.proc, np.asarray(sorted(ranks), dtype=np.int64))]
    chunk = reads.chunk[sel]
    gid = in_global[chunk].astype(np.int64)
    order = np.lexsort(
        (gid, problem.inputs.disk[chunk], problem.inputs.node[chunk], reads.tile[sel])
    )
    sel = sel[order]
    bounds = np.searchsorted(reads.tile[sel], np.arange(plan.n_tiles + 1))
    return [
        [
            (int(r), int(in_global[int(reads.chunk[int(r)])]))
            for r in sel[bounds[t] : bounds[t + 1]]
        ]
        for t in range(plan.n_tiles)
    ]


class TilePrefetcher:
    """Threaded read-ahead over per-tile placement-ordered batches.

    Implements the runtime's ``ChunkSource`` protocol (``begin_tile``
    / ``get`` / ``close``).  Fetch threads claim items strictly in the
    flattened batch order -- tile by tile, placement order within each
    tile -- subject to two gates: never more than one tile ahead of
    the consumer, and at most ``policy.depth`` buffered-or-in-flight
    chunks of read-ahead beyond the consumer's current tile (current-
    tile items are always claimable; see the module docstring).

    ``reads_issued`` records the exact claim order as ``(tile, read
    index, chunk id)`` triples -- tests assert it against
    :func:`read_batches`.
    """

    def __init__(
        self,
        provider: Callable[[int], object],
        batches: Sequence[Sequence[Tuple[int, int]]],
        policy: Optional[PrefetchPolicy] = None,
    ) -> None:
        self._provider = provider
        self._policy = policy if policy is not None else PrefetchPolicy()
        self._items: List[Tuple[int, int, int]] = [
            (t, int(r), int(gid))
            for t, batch in enumerate(batches)
            for (r, gid) in batch
        ]
        self._next = 0  # next unclaimed position in issue order
        self._results: dict = {}  # read index -> ("ok", chunk) | ("err", exc)
        self._inflight = 0
        self._tile = -1  # tile the consumer is currently draining
        self._closed = False
        self.reads_issued: List[Tuple[int, int, int]] = []
        self._cv = threading.Condition()
        self._threads = [
            threading.Thread(
                target=self._work, name=f"prefetch-{k}", daemon=True
            )
            for k in range(self._policy.workers)
        ]
        for th in self._threads:
            th.start()

    # -- fetch side ------------------------------------------------------

    def _claimable_locked(self) -> bool:
        tile = self._items[self._next][0]
        if tile > self._tile + 1:
            return False  # never run more than one tile ahead
        if tile <= self._tile:
            return True  # current tile: consumer is draining it now
        return len(self._results) + self._inflight < self._policy.depth

    def _work(self) -> None:
        while True:
            with self._cv:
                while (
                    not self._closed
                    and self._next < len(self._items)
                    and not self._claimable_locked()
                ):
                    self._cv.wait()
                if self._closed or self._next >= len(self._items):
                    return
                item = self._items[self._next]
                self._next += 1
                self._inflight += 1
                self.reads_issued.append(item)
            t, r, gid = item
            try:
                result = ("ok", self._provider(gid))
            except BaseException as e:  # delivered at get(); never swallowed
                result = ("err", e)
            with self._cv:
                self._inflight -= 1
                self._results[r] = result
                # Drop the frame's reference: a captured exception's
                # traceback holds this frame, and frame -> result ->
                # exception would be a cycle that keeps the consumer's
                # whole catch-site alive until a gc pass (shared-memory
                # arena views included).
                result = None
                self._cv.notify_all()

    # -- consume side (the ChunkSource protocol) -------------------------

    def begin_tile(self, tile: int) -> None:
        with self._cv:
            self._tile = int(tile)
            self._cv.notify_all()

    def get(self, read_index: int, chunk_id: int = -1):
        """The payload (or captured error) of one scheduled read."""
        with self._cv:
            while read_index not in self._results:
                if self._closed:
                    raise RuntimeError(
                        f"prefetcher closed while read {read_index} was pending"
                    )
                self._cv.wait()
            status, payload = self._results.pop(read_index)
            self._cv.notify_all()  # a read-ahead slot freed up
        if status == "err":
            try:
                raise payload
            finally:
                # Break frame -> payload -> exception -> traceback ->
                # frame (same cycle concurrent.futures breaks): the
                # raised exception must die by refcount once handled.
                del payload
        return payload

    def close(self, timeout: float = 60.0) -> None:
        """Stop the fetch threads and join them (idempotent).

        The join is bounded: a fetch thread is only ever blocked in
        the provider or on ``_cv`` (which ``_closed`` releases), so a
        thread still alive after *timeout* seconds means a hung
        provider -- raise instead of hanging the recovery path that
        called us (every wait on the crash-recovery path must be
        bounded; lint rule ADR703 enforces the same discipline
        statically).
        """
        with self._cv:
            self._closed = True
            self._cv.notify_all()
        deadline = time.monotonic() + timeout
        for th in self._threads:
            th.join(timeout=max(0.0, deadline - time.monotonic()))
        stuck = [th.name for th in self._threads if th.is_alive()]
        if stuck:
            raise RuntimeError(
                f"prefetch thread(s) {', '.join(stuck)} still alive "
                f"{timeout:.0f}s after close(); the chunk provider is hung"
            )
