"""Chunk stores: where loaded chunks live.

A store holds the chunks of one or more datasets, organized by
placement: every chunk belongs to a ``(node, disk)`` pair, mirroring
the ADR rule that "each chunk is assigned to a single disk, and is
read and/or written during query processing only by the local
processor to which the disk is attached".

:class:`FileChunkStore` materializes the disk farm as a directory tree

    root/<dataset>/node<NNN>/disk<NN>/chunk<NNNNNNNN>.adc

plus a per-dataset ``manifest.json`` recording placements, so a store
can be reopened later.  :class:`MemoryChunkStore` implements the same
interface in dictionaries for tests and small examples.
"""

from __future__ import annotations

import json
import os
from abc import ABC, abstractmethod
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from repro.dataset.chunk import Chunk
from repro.store.format import ChunkFormatError, decode_chunk, encode_chunk

if TYPE_CHECKING:  # pragma: no cover - import cycle (retry imports this module)
    from repro.store.retry import RetryPolicy

__all__ = [
    "ChunkStore",
    "FileChunkStore",
    "MemoryChunkStore",
    "RECOVERABLE_READ_ERRORS",
]

Placement = Tuple[int, int]

#: Exception classes a degraded query (``on_error='degrade'``) may
#: absorb on a chunk read: damage (:class:`ChunkFormatError`, which
#: includes :class:`~repro.store.format.CorruptChunkError`), I/O
#: failure (``OSError``, which includes injected faults), and absence
#: (``KeyError``).  Anything else -- a planner bug, a kernel assertion
#: -- is never swallowed.
RECOVERABLE_READ_ERRORS: Tuple[type, ...] = (ChunkFormatError, OSError, KeyError)


class ChunkStore(ABC):
    """Interface shared by file-backed and in-memory stores."""

    @abstractmethod
    def write_chunk(self, dataset: str, chunk: Chunk, node: int, disk: int) -> None:
        """Store *chunk* on ``(node, disk)`` under *dataset*."""

    @abstractmethod
    def read_chunk(self, dataset: str, chunk_id: int) -> Chunk:
        """Retrieve a chunk by id (raises ``KeyError`` if absent)."""

    @abstractmethod
    def placement(self, dataset: str, chunk_id: int) -> Placement:
        """The ``(node, disk)`` a chunk was written to."""

    @abstractmethod
    def chunk_ids(self, dataset: str) -> List[int]:
        """All chunk ids stored for *dataset* (sorted)."""

    @abstractmethod
    def delete_dataset(self, dataset: str) -> None:
        """Remove a dataset and all its chunks."""

    def read_many(self, dataset: str, chunk_ids: List[int]) -> Iterator[Chunk]:
        """Retrieve several chunks (in the given order).

        **Partial-failure contract** (all implementations): chunks are
        yielded in the caller's order; the first id whose read fails
        raises that chunk's own error *at its position* in the
        iteration, after every preceding id has been yielded.  No id is
        ever silently skipped -- each requested chunk is either yielded
        or is the one that raised.  (A raised iterator is finished, per
        the iterator protocol; callers needing per-chunk recovery use
        ``read_chunk`` individually or degraded execution.)
        """
        for cid in chunk_ids:
            yield self.read_chunk(dataset, cid)

    def placements(self, dataset: str) -> Dict[int, Placement]:
        return {cid: self.placement(dataset, cid) for cid in self.chunk_ids(dataset)}


class MemoryChunkStore(ChunkStore):
    """Dictionary-backed store (keeps encoded bytes, so the format
    round-trip is exercised even in memory)."""

    def __init__(self) -> None:
        self._data: Dict[str, Dict[int, bytes]] = {}
        self._place: Dict[str, Dict[int, Placement]] = {}

    def write_chunk(self, dataset: str, chunk: Chunk, node: int, disk: int) -> None:
        if node < 0 or disk < 0:
            raise ValueError("placement indices must be non-negative")
        self._data.setdefault(dataset, {})[chunk.chunk_id] = encode_chunk(chunk)
        self._place.setdefault(dataset, {})[chunk.chunk_id] = (node, disk)

    def read_chunk(self, dataset: str, chunk_id: int) -> Chunk:
        try:
            raw = self._data[dataset][chunk_id]
        except KeyError:
            raise KeyError(f"chunk {chunk_id} of {dataset!r} not in store") from None
        return decode_chunk(raw)

    def placement(self, dataset: str, chunk_id: int) -> Placement:
        try:
            return self._place[dataset][chunk_id]
        except KeyError:
            raise KeyError(f"chunk {chunk_id} of {dataset!r} not in store") from None

    def chunk_ids(self, dataset: str) -> List[int]:
        return sorted(self._data.get(dataset, {}).keys())

    def delete_dataset(self, dataset: str) -> None:
        self._data.pop(dataset, None)
        self._place.pop(dataset, None)

    def nbytes(self) -> int:
        """Total encoded bytes held (for memory accounting in tests)."""
        return sum(len(b) for d in self._data.values() for b in d.values())


class FileChunkStore(ChunkStore):
    """Directory-tree store emulating a multi-disk farm.

    With a :class:`~repro.store.retry.RetryPolicy` attached, each
    chunk's open-read-decode is retried with exponential backoff under
    the policy's per-read deadline; manifest lookups (``KeyError``,
    i.e. absence) are never retried.
    """

    def __init__(
        self, root: str | os.PathLike, retry: Optional["RetryPolicy"] = None
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.retry = retry
        # dataset -> chunk_id -> (node, disk); lazily loaded from manifests.
        self._manifests: Dict[str, Dict[int, Placement]] = {}

    # -- paths -----------------------------------------------------------

    def _dataset_dir(self, dataset: str) -> Path:
        if not dataset or "/" in dataset or dataset.startswith("."):
            raise ValueError(f"invalid dataset name {dataset!r}")
        return self.root / dataset

    def _chunk_path(self, dataset: str, chunk_id: int, node: int, disk: int) -> Path:
        return (
            self._dataset_dir(dataset)
            / f"node{node:03d}"
            / f"disk{disk:02d}"
            / f"chunk{chunk_id:08d}.adc"
        )

    def _manifest_path(self, dataset: str) -> Path:
        return self._dataset_dir(dataset) / "manifest.json"

    # -- manifest ------------------------------------------------------------

    def _manifest(self, dataset: str) -> Dict[int, Placement]:
        if dataset not in self._manifests:
            path = self._manifest_path(dataset)
            if not path.exists():
                raise KeyError(f"dataset {dataset!r} not in store")
            with open(path, "r", encoding="utf-8") as fh:
                raw = json.load(fh)
            self._manifests[dataset] = {
                int(k): (int(v[0]), int(v[1])) for k, v in raw["placements"].items()
            }
        return self._manifests[dataset]

    def _save_manifest(self, dataset: str) -> None:
        path = self._manifest_path(dataset)
        payload = {
            "placements": {
                str(k): list(v) for k, v in self._manifests[dataset].items()
            }
        }
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)

    # -- store interface ---------------------------------------------------------

    def write_chunk(self, dataset: str, chunk: Chunk, node: int, disk: int) -> None:
        if node < 0 or disk < 0:
            raise ValueError("placement indices must be non-negative")
        path = self._chunk_path(dataset, chunk.chunk_id, node, disk)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = encode_chunk(chunk)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
        manifest = self._manifests.setdefault(dataset, {})
        if not manifest and self._manifest_path(dataset).exists():
            manifest.update(self._manifest(dataset))
        manifest[chunk.chunk_id] = (node, disk)
        self._save_manifest(dataset)

    def write_chunks(
        self, dataset: str, chunks: List[Chunk], placements: List[Placement]
    ) -> None:
        """Bulk write with a single manifest flush (loader fast path)."""
        if len(chunks) != len(placements):
            raise ValueError("one placement per chunk required")
        manifest = self._manifests.setdefault(dataset, {})
        if not manifest and self._manifest_path(dataset).exists():
            manifest.update(self._manifest(dataset))
        for chunk, (node, disk) in zip(chunks, placements):
            if node < 0 or disk < 0:
                raise ValueError("placement indices must be non-negative")
            path = self._chunk_path(dataset, chunk.chunk_id, node, disk)
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(path, "wb") as fh:
                fh.write(encode_chunk(chunk))
            manifest[chunk.chunk_id] = (node, disk)
        self._save_manifest(dataset)

    def read_chunk(self, dataset: str, chunk_id: int) -> Chunk:
        node, disk = self.placement(dataset, chunk_id)
        path = self._chunk_path(dataset, chunk_id, node, disk)

        def attempt() -> Chunk:
            try:
                with open(path, "rb") as fh:
                    data = fh.read()
            except FileNotFoundError:
                raise ChunkFormatError(
                    f"manifest lists chunk {chunk_id} of {dataset!r} at "
                    f"node {node} disk {disk} but the file is missing"
                ) from None
            chunk = decode_chunk(data)
            if chunk.chunk_id != chunk_id:
                raise ChunkFormatError(
                    f"file {path} claims chunk id {chunk.chunk_id}, "
                    f"expected {chunk_id}"
                )
            return chunk

        if self.retry is None:
            return attempt()
        return self.retry.run(attempt)

    def placement(self, dataset: str, chunk_id: int) -> Placement:
        manifest = self._manifest(dataset)
        try:
            return manifest[chunk_id]
        except KeyError:
            raise KeyError(f"chunk {chunk_id} of {dataset!r} not in store") from None

    def read_many(self, dataset: str, chunk_ids: List[int]) -> Iterator[Chunk]:
        """Retrieve several chunks, batching the physical reads in
        ``(node, disk, chunk_id)`` placement order.

        The paper's disk-locality rule makes chunks on one disk
        contiguous on that disk; visiting the farm disk by disk (and
        in ascending id order within a disk) turns a scattered request
        list into per-disk sequential scans.  The *returned* order is
        the caller's order, so callers are oblivious to the reordering
        (duplicated ids are read once and yielded as many times as
        requested).

        Partial failures honor the base-class contract: every distinct
        id is physically attempted (a failure on one disk does not
        abandon the scan of the others), successes are yielded in
        caller order, and the first failed id raises its own error at
        its position in the iteration.
        """
        ids = [int(c) for c in chunk_ids]
        distinct = list(dict.fromkeys(ids))
        by_placement = sorted(
            distinct, key=lambda cid: (*self.placement(dataset, cid), cid)
        )
        got: Dict[int, Chunk] = {}
        errors: Dict[int, Exception] = {}
        for cid in by_placement:
            try:
                got[cid] = self.read_chunk(dataset, cid)
            except RECOVERABLE_READ_ERRORS as e:
                errors[cid] = e
        for cid in ids:
            if cid in errors:
                raise errors[cid]
            yield got[cid]

    def chunk_ids(self, dataset: str) -> List[int]:
        return sorted(self._manifest(dataset).keys())

    def delete_dataset(self, dataset: str) -> None:
        import shutil

        directory = self._dataset_dir(dataset)
        if directory.exists():
            shutil.rmtree(directory)
        self._manifests.pop(dataset, None)
