"""Storage substrate: the disk farm behind the ADR back end.

The paper's back end is "a set of processing nodes and multiple disks
attached to these nodes"; every chunk lives on exactly one disk and is
read/written only by the node the disk is attached to.  This package
provides that substrate for the functional path:

- :mod:`repro.store.format` -- self-describing binary chunk files with
  header and CRC (corruption surfaces as :class:`CorruptChunkError`);
- :mod:`repro.store.chunk_store` -- the store interface plus a
  file-backed :class:`FileChunkStore` (one directory per (node, disk))
  and a :class:`MemoryChunkStore` for tests;
- :mod:`repro.store.retry` -- :class:`RetryPolicy` (exponential
  backoff + per-read deadline) and the :class:`RetryingChunkStore`
  wrapper;
- :mod:`repro.store.cache` -- the LRU payload cache (never caches a
  failed read);
- :mod:`repro.store.prefetch` -- bounded threaded read-ahead
  (:class:`PrefetchPolicy` / :class:`TilePrefetcher`) overlapping
  chunk retrieval with tile reduction in placement order.

Performance experiments never touch this package; they use the
machine model in :mod:`repro.machine` / :mod:`repro.sim`.
"""

from repro.store.format import (
    encode_chunk,
    decode_chunk,
    ChunkFormatError,
    CorruptChunkError,
)
from repro.store.chunk_store import (
    ChunkStore,
    FileChunkStore,
    MemoryChunkStore,
    RECOVERABLE_READ_ERRORS,
)
from repro.store.prefetch import PrefetchPolicy, TilePrefetcher
from repro.store.retry import RetryPolicy, RetryingChunkStore

__all__ = [
    "encode_chunk",
    "decode_chunk",
    "ChunkFormatError",
    "CorruptChunkError",
    "ChunkStore",
    "FileChunkStore",
    "MemoryChunkStore",
    "RECOVERABLE_READ_ERRORS",
    "PrefetchPolicy",
    "RetryPolicy",
    "RetryingChunkStore",
    "TilePrefetcher",
]
