"""Storage substrate: the disk farm behind the ADR back end.

The paper's back end is "a set of processing nodes and multiple disks
attached to these nodes"; every chunk lives on exactly one disk and is
read/written only by the node the disk is attached to.  This package
provides that substrate for the functional path:

- :mod:`repro.store.format` -- self-describing binary chunk files with
  header and CRC;
- :mod:`repro.store.chunk_store` -- the store interface plus a
  file-backed :class:`FileChunkStore` (one directory per (node, disk))
  and a :class:`MemoryChunkStore` for tests.

Performance experiments never touch this package; they use the
machine model in :mod:`repro.machine` / :mod:`repro.sim`.
"""

from repro.store.format import encode_chunk, decode_chunk, ChunkFormatError
from repro.store.chunk_store import ChunkStore, FileChunkStore, MemoryChunkStore

__all__ = [
    "encode_chunk",
    "decode_chunk",
    "ChunkFormatError",
    "ChunkStore",
    "FileChunkStore",
    "MemoryChunkStore",
]
