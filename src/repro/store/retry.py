"""Retry with exponential backoff and a per-read deadline.

A disk farm the size the paper assumes (Section 2: "multiple disks
attached to these nodes") sees transient read failures as a matter of
course; aborting a whole multi-gigabyte query over one flaky read is
not acceptable.  :class:`RetryPolicy` is the knob: how many attempts,
how the backoff grows, and how much wall-clock one logical read may
consume before its last error is surfaced.

Two wiring points:

- :class:`~repro.store.chunk_store.FileChunkStore` accepts a policy
  directly (``FileChunkStore(root, retry=...)``) and retries the
  open-read-decode of each chunk;
- :class:`RetryingChunkStore` wraps *any* store (memory, faulty,
  file), for the ADR facade's ``retry=`` parameter.

Semantics that matter to callers:

- Only ``retry_on`` exceptions are retried -- by default transient
  classes (``OSError``, which covers injected faults, and
  :class:`~repro.store.format.CorruptChunkError`, since a re-read can
  survive a transient bus or cache corruption).  ``KeyError`` (chunk
  absent) is never transient and always propagates immediately.
- When attempts or the deadline run out, the **last underlying
  exception** is re-raised unchanged -- callers keep matching on
  ``CorruptChunkError`` / ``OSError``, never on a wrapper type.
- The deadline is checked *before* sleeping: a backoff that would
  overrun the per-read budget is not slept, the read fails now.

``clock``/``sleep`` are injectable, so the backoff arithmetic is
testable on a fake clock without real waiting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple, Type

from repro.dataset.chunk import Chunk
from repro.store.chunk_store import ChunkStore
from repro.store.format import CorruptChunkError

__all__ = ["RetryPolicy", "RetryingChunkStore", "DEFAULT_RETRY_ON"]

#: Exception classes retried by default (transient by nature).
DEFAULT_RETRY_ON: Tuple[Type[BaseException], ...] = (OSError, CorruptChunkError)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule plus a per-read deadline.

    Attempt *k* (0-based) that fails sleeps
    ``min(base_delay * multiplier**k, max_delay)`` seconds before
    attempt *k+1*, until ``max_attempts`` attempts have been made or
    the accumulated wall clock (including the upcoming sleep) would
    exceed ``deadline`` seconds.
    """

    max_attempts: int = 4
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 1.0
    #: wall-clock budget for one logical read, in seconds (None = no cap)
    deadline: Optional[float] = None
    retry_on: Tuple[Type[BaseException], ...] = field(default=DEFAULT_RETRY_ON)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")

    def delay(self, attempt: int) -> float:
        """Backoff slept after failed attempt *attempt* (0-based)."""
        return min(self.base_delay * self.multiplier**attempt, self.max_delay)

    def delays(self) -> Iterator[float]:
        """The full backoff schedule (``max_attempts - 1`` entries)."""
        return (self.delay(k) for k in range(self.max_attempts - 1))

    def run(
        self,
        fn: Callable[[], "object"],
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        """Call *fn* under this policy; re-raise its last error when
        attempts or the deadline are exhausted."""
        start = clock()
        for attempt in range(self.max_attempts):
            try:
                return fn()
            except self.retry_on:
                if attempt + 1 >= self.max_attempts:
                    raise
                pause = self.delay(attempt)
                if (
                    self.deadline is not None
                    and (clock() - start) + pause > self.deadline
                ):
                    raise
                sleep(pause)
        raise AssertionError("unreachable: loop returns or raises")


class RetryingChunkStore(ChunkStore):
    """Apply a :class:`RetryPolicy` to every read of the wrapped store.

    Reads are retried per chunk (each chunk gets its own attempt budget
    and deadline); writes, placements and deletions pass through.
    ``read_many`` iterates per chunk so each id is individually
    retried, trading the inner store's placement-order batching for
    read-level fault isolation.
    """

    def __init__(self, inner: ChunkStore, policy: RetryPolicy) -> None:
        self.inner = inner
        self.policy = policy

    def read_chunk(self, dataset: str, chunk_id: int) -> Chunk:
        return self.policy.run(lambda: self.inner.read_chunk(dataset, chunk_id))

    def read_many(self, dataset: str, chunk_ids: List[int]):
        for cid in chunk_ids:
            yield self.read_chunk(dataset, cid)

    def write_chunk(self, dataset: str, chunk: Chunk, node: int, disk: int) -> None:
        self.inner.write_chunk(dataset, chunk, node, disk)

    def placement(self, dataset: str, chunk_id: int):
        return self.inner.placement(dataset, chunk_id)

    def chunk_ids(self, dataset: str) -> List[int]:
        return self.inner.chunk_ids(dataset)

    def delete_dataset(self, dataset: str) -> None:
        self.inner.delete_dataset(dataset)

    def __getattr__(self, name: str):
        return getattr(self.inner, name)
