"""Hilbert-curve declustering (Faloutsos & Bhagwat, paper ref [12]).

Chunks are sorted by the Hilbert index of their MBR mid-point and
dealt round-robin across the disks in that order.  Because the curve
preserves locality, chunks that are spatially adjacent -- and hence
likely retrieved by the same range query -- land on *different* disks,
which is exactly the property that yields I/O parallelism.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.chunkset import ChunkSet
from repro.decluster.base import Declusterer

__all__ = ["HilbertDeclusterer"]


class HilbertDeclusterer(Declusterer):
    def __init__(self, bits: int = 16) -> None:
        if bits < 1:
            raise ValueError("bits must be >= 1")
        self.bits = bits

    def global_disk(self, chunks: ChunkSet, n_disks: int) -> np.ndarray:
        order = chunks.hilbert_order(self.bits)
        disk = np.empty(len(chunks), dtype=np.int64)
        disk[order] = np.arange(len(chunks)) % n_disks
        return disk
