"""Placement quality metrics.

The figure of merit for declustering under range queries (paper ref
[21]) is how close the per-query I/O comes to the ideal parallel time:
if a query retrieves ``r`` chunks spread over ``k`` disks, the best
possible is ``ceil(r / k)`` chunks from the busiest disk.
:func:`query_balance` reports the busiest-disk load and its ratio to
that ideal; :func:`placement_report` aggregates over a query workload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro.dataset.chunkset import ChunkSet
from repro.util.geometry import Rect

__all__ = ["QueryBalance", "query_balance", "placement_report", "PlacementReport"]


@dataclass(frozen=True)
class QueryBalance:
    """Disk balance for one range query under one placement."""

    n_retrieved: int
    busiest_disk: int
    ideal: int

    @property
    def ratio(self) -> float:
        """busiest / ideal; 1.0 is a perfect decluster for this query."""
        return self.busiest_disk / self.ideal if self.ideal else 1.0


def _global_disks(chunks: ChunkSet, disks_per_node: int) -> np.ndarray:
    if not chunks.placed:
        raise ValueError("chunks must be placed before measuring balance")
    return chunks.node.astype(np.int64) * disks_per_node + chunks.disk


def query_balance(
    chunks: ChunkSet, query: Rect, n_disks: int, disks_per_node: int = 1
) -> QueryBalance:
    """Busiest-disk load for the chunks a range query retrieves."""
    hits = chunks.intersecting(query)
    if len(hits) == 0:
        return QueryBalance(0, 0, 0)
    g = _global_disks(chunks, disks_per_node)[hits]
    counts = np.bincount(g, minlength=n_disks)
    return QueryBalance(
        n_retrieved=len(hits),
        busiest_disk=int(counts.max()),
        ideal=math.ceil(len(hits) / n_disks),
    )


@dataclass(frozen=True)
class PlacementReport:
    """Aggregate balance over a workload of range queries."""

    n_queries: int
    mean_ratio: float
    max_ratio: float
    mean_retrieved: float

    def __str__(self) -> str:
        return (
            f"{self.n_queries} queries: mean busiest/ideal "
            f"{self.mean_ratio:.3f}, worst {self.max_ratio:.3f}, "
            f"mean chunks retrieved {self.mean_retrieved:.1f}"
        )


def placement_report(
    chunks: ChunkSet,
    queries: Sequence[Rect],
    n_disks: int,
    disks_per_node: int = 1,
) -> PlacementReport:
    ratios: List[float] = []
    sizes: List[int] = []
    for q in queries:
        b = query_balance(chunks, q, n_disks, disks_per_node)
        if b.n_retrieved:
            ratios.append(b.ratio)
            sizes.append(b.n_retrieved)
    if not ratios:
        return PlacementReport(0, 1.0, 1.0, 0.0)
    return PlacementReport(
        n_queries=len(ratios),
        mean_ratio=float(np.mean(ratios)),
        max_ratio=float(np.max(ratios)),
        mean_retrieved=float(np.mean(sizes)),
    )
