"""Declusterer interface."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Tuple

import numpy as np

from repro.dataset.chunkset import ChunkSet

__all__ = ["Declusterer"]


class Declusterer(ABC):
    """Assigns every chunk to a ``(node, disk)`` pair.

    Disks are numbered globally ``0 .. n_nodes*disks_per_node - 1`` in
    node-major order; :meth:`assign` returns per-chunk node and
    per-node-local disk index arrays.
    """

    @abstractmethod
    def global_disk(self, chunks: ChunkSet, n_disks: int) -> np.ndarray:
        """Per-chunk global disk index in ``[0, n_disks)``."""

    def assign(
        self, chunks: ChunkSet, n_nodes: int, disks_per_node: int = 1
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-chunk ``(node, local_disk)`` placement arrays."""
        if n_nodes < 1 or disks_per_node < 1:
            raise ValueError("need at least one node and one disk per node")
        g = self.global_disk(chunks, n_nodes * disks_per_node)
        if len(g) != len(chunks):
            raise AssertionError("declusterer returned wrong-length placement")
        if len(g) and (g.min() < 0 or g.max() >= n_nodes * disks_per_node):
            raise AssertionError("declusterer returned out-of-range disks")
        node = (g // disks_per_node).astype(np.int32)
        disk = (g % disks_per_node).astype(np.int32)
        return node, disk

    def place(
        self, chunks: ChunkSet, n_nodes: int, disks_per_node: int = 1
    ) -> ChunkSet:
        """Convenience: a copy of *chunks* with placement filled in."""
        node, disk = self.assign(chunks, n_nodes, disks_per_node)
        return chunks.with_placement(node, disk)
