"""Declustering: placing chunks across the disk farm.

"Chunks are distributed across the disks attached to ADR back-end
nodes using a declustering algorithm to achieve I/O parallelism during
query processing" (paper Section 2.2, refs [12, 21]).  The paper's
experiments use Hilbert-curve-based declustering; round-robin and
random placements are provided as ablation baselines, and
:mod:`repro.decluster.metrics` measures how evenly a placement spreads
the chunks a range query retrieves.
"""

from repro.decluster.base import Declusterer
from repro.decluster.hilbert import HilbertDeclusterer
from repro.decluster.simple import RoundRobinDeclusterer, RandomDeclusterer
from repro.decluster.metrics import query_balance, placement_report

__all__ = [
    "Declusterer",
    "HilbertDeclusterer",
    "RoundRobinDeclusterer",
    "RandomDeclusterer",
    "query_balance",
    "placement_report",
]
