"""Baseline declustering schemes for the ablation bench."""

from __future__ import annotations

import numpy as np

from repro.dataset.chunkset import ChunkSet
from repro.decluster.base import Declusterer
from repro.util.rng import SeedLike, make_rng

__all__ = ["RoundRobinDeclusterer", "RandomDeclusterer"]


class RoundRobinDeclusterer(Declusterer):
    """Deal chunks to disks in chunk-id order.

    For datasets whose chunk ids follow a row-major grid order this
    stripes rows across disks: adjacent chunks in the last dimension
    separate nicely, but chunks adjacent in other dimensions can
    collide on a disk when the row length is a multiple of the disk
    count -- the classic failure mode Hilbert declustering avoids.
    """

    def global_disk(self, chunks: ChunkSet, n_disks: int) -> np.ndarray:
        return np.arange(len(chunks), dtype=np.int64) % n_disks


class RandomDeclusterer(Declusterer):
    """Uniform random placement (balanced in expectation only)."""

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng = make_rng(seed)

    def global_disk(self, chunks: ChunkSet, n_disks: int) -> np.ndarray:
        return self._rng.integers(0, n_disks, size=len(chunks), dtype=np.int64)
