"""Calibrated machine presets.

``ibm_sp`` reproduces the evaluation testbed: thin nodes (256 MB
memory, one local SCSI scratch disk) on the High Performance Switch.
The per-chunk compute costs for the three application classes come
straight from Table 1.

Calibration notes (documented in EXPERIMENTS.md): the switch figure
(110 MB/s peak per node) is from the paper; the ~10 MB/s sustained
disk rate and 10 ms per-request overhead are period-typical for the
SP's local SCSI scratch disks; the default 32 MB accumulator budget
per node leaves room for I/O buffers and pipeline stages out of
256 MB, and yields tile counts in the regime the paper describes
(tiling required; FRA builds several tiles, DA usually one).
"""

from __future__ import annotations

from typing import Dict

from repro.machine.config import ComputeCosts, MachineConfig
from repro.util.units import MB

__all__ = ["ibm_sp", "IBM_SP_COSTS"]

#: Table 1, last column: I-LR-GC-OH per-chunk costs (milliseconds).
IBM_SP_COSTS: Dict[str, ComputeCosts] = {
    "SAT": ComputeCosts.from_ms(1, 40, 20, 1),
    "WCS": ComputeCosts.from_ms(1, 20, 1, 1),
    "VM": ComputeCosts.from_ms(1, 5, 1, 1),
}


def ibm_sp(
    n_procs: int,
    memory_per_proc: int = 32 * MB,
    io_jitter: float = 0.0,
) -> MachineConfig:
    """The 128-node IBM SP of the paper, at any processor count."""
    return MachineConfig(
        n_procs=n_procs,
        memory_per_proc=memory_per_proc,
        disks_per_node=1,
        # Effective local-disk read rate with the AIX file system in
        # front of the SCSI scratch disk (the paper cleans the file
        # cache between runs but still reads through it).
        disk_bandwidth=15.0 * MB,
        disk_seek=0.005,
        link_bandwidth=110.0 * MB,
        link_latency=50e-6,
        # Processor-driven message passing: ~150 MB/s of CPU-side copy
        # throughput per endpoint, period-typical for MPI on the SP.
        cpu_per_byte=1.0 / (150.0 * MB),
        io_jitter=io_jitter,
    )
