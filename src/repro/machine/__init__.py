"""Parallel machine model.

The paper's testbed is a 128-node IBM SP: thin nodes with 256 MB of
memory and one local scratch disk each, connected by a High
Performance Switch with 110 MB/s peak per-node bandwidth.  This
package describes such machines (:class:`MachineConfig`), the
per-chunk computation costs of an application
(:class:`ComputeCosts`, Table 1's I-LR-GC-OH columns), and ships the
calibrated IBM SP preset used by every reproduction experiment.
"""

from repro.machine.config import MachineConfig, ComputeCosts
from repro.machine.presets import ibm_sp, IBM_SP_COSTS

__all__ = ["MachineConfig", "ComputeCosts", "ibm_sp", "IBM_SP_COSTS"]
