"""Machine and application cost descriptions."""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.util.units import MB

__all__ = ["MachineConfig", "ComputeCosts"]


@dataclass(frozen=True)
class MachineConfig:
    """A distributed-memory machine with disks attached to each node.

    Attributes
    ----------
    n_procs:
        Back-end processors; one per node, as on the SP.
    disks_per_node:
        Local disks per node (the SP nodes have one).
    memory_per_proc:
        Bytes of memory available for accumulator chunks on each node;
        the tiling budget.
    disk_bandwidth:
        Sustained per-disk transfer rate, bytes/second.
    disk_seek:
        Fixed per-operation disk overhead, seconds (seek + request).
    link_bandwidth:
        Per-node network bandwidth, bytes/second, full duplex (the SP
        switch gives every node its own 110 MB/s link).
    link_latency:
        Fixed per-message latency, seconds.
    cpu_per_byte:
        CPU seconds consumed per byte sent or received.  The SP's
        message passing was processor-driven (no RDMA): MPI staged
        every transfer through CPU copies, so communication contends
        with aggregation for cycles.  This is what makes
        communication-heavy plans (DA at small processor counts) pay
        even when the wire time itself would overlap with computation.
    io_jitter:
        Log-normal sigma multiplying every disk operation; 0 disables.
        Models the AIX file-cache fluctuation the paper reports for VM
        ("a large fluctuation in I/O times across processors").
    """

    n_procs: int
    memory_per_proc: int
    disks_per_node: int = 1
    disk_bandwidth: float = 10.0 * MB
    disk_seek: float = 0.010
    link_bandwidth: float = 110.0 * MB
    link_latency: float = 50e-6
    cpu_per_byte: float = 0.0
    io_jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.n_procs < 1:
            raise ValueError("n_procs must be >= 1")
        if self.disks_per_node < 1:
            raise ValueError("disks_per_node must be >= 1")
        if self.memory_per_proc <= 0:
            raise ValueError("memory_per_proc must be positive")
        for name in ("disk_bandwidth", "link_bandwidth"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        for name in ("disk_seek", "link_latency", "cpu_per_byte", "io_jitter"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def n_disks(self) -> int:
        return self.n_procs * self.disks_per_node

    def read_time(self, nbytes: float) -> float:
        """Seconds to read *nbytes* from one disk (no contention)."""
        return self.disk_seek + nbytes / self.disk_bandwidth

    def send_time(self, nbytes: float) -> float:
        """Seconds of link occupancy to push *nbytes* out of a node."""
        return nbytes / self.link_bandwidth

    def scaled(self, n_procs: int) -> "MachineConfig":
        """The same node hardware at a different processor count."""
        return replace(self, n_procs=n_procs)


@dataclass(frozen=True)
class ComputeCosts:
    """Per-chunk computation times for the four query phases, seconds.

    Mirrors Table 1's ``I-LR-GC-OH`` column: ``reduction`` is charged
    per intersecting (input chunk, accumulator chunk) pair ("an input
    chunk that maps to a larger number of accumulator chunks takes
    longer to process"); the others are per chunk.
    """

    init: float
    reduction: float
    combine: float
    output: float

    def __post_init__(self) -> None:
        for name in ("init", "reduction", "combine", "output"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cost must be non-negative")

    @staticmethod
    def from_ms(i: float, lr: float, gc: float, oh: float) -> "ComputeCosts":
        """Build from the paper's millisecond figures, e.g. SAT is
        ``from_ms(1, 40, 20, 1)``."""
        return ComputeCosts(i / 1e3, lr / 1e3, gc / 1e3, oh / 1e3)
