"""Per-chunk value synopses: min/max/count/null-count per component.

A :class:`ValueSynopsis` is the column-packed summary the planner uses
to prune chunks against a :class:`~repro.dataset.predicate.
ValuePredicate` before any I/O is scheduled.  It is built once at
dataset load (from the payload-bearing chunks) and rides on the
:class:`~repro.dataset.chunkset.ChunkSet`; ``subset()`` keeps it
aligned with chunk renumbering so synopsis row ``i`` always describes
chunk ``i`` of the set it is attached to.

Nulls are NaN values.  ``vmin``/``vmax`` are NaN for components with
no non-null item -- the predicate layer treats those chunks as
prunable via the null counts, never via the NaN extrema.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["ValueSynopsis"]


class ValueSynopsis:
    """Column-packed per-chunk value summaries.

    Arrays (all length ``n`` on axis 0):

    - ``vmin``, ``vmax``: ``(n, k)`` float64 extrema over non-null items
    - ``nulls``: ``(n, k)`` int64 NaN counts
    - ``counts``: ``(n,)`` int64 item counts
    """

    def __init__(
        self,
        vmin: np.ndarray,
        vmax: np.ndarray,
        nulls: np.ndarray,
        counts: np.ndarray,
    ) -> None:
        self.vmin = np.ascontiguousarray(vmin, dtype=np.float64)
        self.vmax = np.ascontiguousarray(vmax, dtype=np.float64)
        self.nulls = np.ascontiguousarray(nulls, dtype=np.int64)
        self.counts = np.ascontiguousarray(counts, dtype=np.int64)
        if self.vmin.ndim != 2:
            raise ValueError(f"vmin must be (n, k), got shape {self.vmin.shape}")
        for name, arr in (("vmax", self.vmax), ("nulls", self.nulls)):
            if arr.shape != self.vmin.shape:
                raise ValueError(
                    f"{name} shape {arr.shape} != vmin shape {self.vmin.shape}"
                )
        if self.counts.shape != (self.vmin.shape[0],):
            raise ValueError(
                f"counts shape {self.counts.shape} != ({self.vmin.shape[0]},)"
            )

    def __len__(self) -> int:
        return self.vmin.shape[0]

    @property
    def n_components(self) -> int:
        return self.vmin.shape[1]

    def __eq__(self, other) -> bool:
        if not isinstance(other, ValueSynopsis):
            return NotImplemented
        return (
            self.vmin.shape == other.vmin.shape
            and np.array_equal(self.vmin, other.vmin, equal_nan=True)
            and np.array_equal(self.vmax, other.vmax, equal_nan=True)
            and np.array_equal(self.nulls, other.nulls)
            and np.array_equal(self.counts, other.counts)
        )

    __hash__ = None

    @staticmethod
    def summarize_values(values: np.ndarray) -> tuple:
        """``(vmin, vmax, nulls, count)`` row for one chunk's values.

        Accepts ``(n,)`` or ``(n, k)`` (trailing dims flattened); the
        extrema ignore NaN, the null row counts NaN per component.
        """
        vals = np.asarray(values, dtype=np.float64)
        if vals.ndim == 1:
            vals = vals[:, None]
        elif vals.ndim > 2:
            vals = vals.reshape(len(vals), -1)
        n, k = vals.shape
        nulls = np.count_nonzero(np.isnan(vals), axis=0).astype(np.int64)
        vmin = np.full(k, np.nan)
        vmax = np.full(k, np.nan)
        live = nulls < n
        if n and live.any():
            with np.errstate(all="ignore"):
                vmin[live] = np.nanmin(vals[:, live], axis=0)
                vmax[live] = np.nanmax(vals[:, live], axis=0)
        return vmin, vmax, nulls, n

    @classmethod
    def from_chunks(cls, chunks: Iterable) -> "ValueSynopsis":
        """Build from payload-bearing :class:`~repro.dataset.chunk.Chunk`
        objects (anything with a ``.values`` array)."""
        rows = [cls.summarize_values(c.values) for c in chunks]
        if not rows:
            raise ValueError("cannot build a synopsis over zero chunks")
        k = max(len(r[0]) for r in rows)
        if any(len(r[0]) != k for r in rows):
            raise ValueError("chunks disagree on value component count")
        return cls(
            vmin=np.stack([r[0] for r in rows]),
            vmax=np.stack([r[1] for r in rows]),
            nulls=np.stack([r[2] for r in rows]),
            counts=np.asarray([r[3] for r in rows], dtype=np.int64),
        )

    @classmethod
    def from_rows(cls, rows: Sequence[tuple]) -> "ValueSynopsis":
        """Build from ``(vmin, vmax, nulls, count)`` rows, e.g. decoded
        from the on-disk chunk headers by ``store.format.decode_synopsis``."""
        if not rows:
            raise ValueError("cannot build a synopsis over zero rows")
        return cls(
            vmin=np.stack([np.atleast_1d(r[0]) for r in rows]),
            vmax=np.stack([np.atleast_1d(r[1]) for r in rows]),
            nulls=np.stack([np.atleast_1d(r[2]) for r in rows]),
            counts=np.asarray([r[3] for r in rows], dtype=np.int64),
        )

    def subset(self, ids: np.ndarray) -> "ValueSynopsis":
        """Rows for ``ids``, in that order (mirrors ``ChunkSet.subset``)."""
        ids = np.asarray(ids, dtype=np.int64)
        return ValueSynopsis(
            vmin=self.vmin[ids],
            vmax=self.vmax[ids],
            nulls=self.nulls[ids],
            counts=self.counts[ids],
        )
