"""Packed chunk metadata for whole datasets.

The planner, declusterer and simulator operate on populations of
10^4--10^5 chunks (Table 1 of the paper).  Iterating Python objects at
that scale is exactly what the HPC guides warn against, so the chunk
population is stored as parallel NumPy arrays (structure-of-arrays)
with vectorized geometry predicates; :class:`ChunkMeta` objects are
materialized only on demand.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.dataset.chunk import ChunkMeta
from repro.dataset.synopsis import ValueSynopsis
from repro.util.geometry import Rect, rects_intersect_mask
from repro.util.hilbert import hilbert_sort_keys

__all__ = ["ChunkSet"]


class ChunkSet:
    """Structure-of-arrays metadata for a dataset's chunks.

    Attributes
    ----------
    los, his:
        ``(n, d)`` MBR corner arrays.
    nbytes:
        ``(n,)`` int64 chunk sizes in bytes.
    n_items:
        ``(n,)`` int64 item counts.
    node, disk:
        ``(n,)`` int32 placement arrays (-1 = unplaced).
    synopsis:
        Optional :class:`~repro.dataset.synopsis.ValueSynopsis` with one
        row per chunk (``None`` when value summaries were not built).
    """

    def __init__(
        self,
        los: np.ndarray,
        his: np.ndarray,
        nbytes: np.ndarray,
        n_items: Optional[np.ndarray] = None,
        node: Optional[np.ndarray] = None,
        disk: Optional[np.ndarray] = None,
        synopsis: Optional[ValueSynopsis] = None,
    ) -> None:
        self.los = np.ascontiguousarray(los, dtype=float)
        self.his = np.ascontiguousarray(his, dtype=float)
        if self.los.ndim != 2 or self.los.shape != self.his.shape:
            raise ValueError("los/his must be matching (n, d) arrays")
        if np.any(self.los > self.his):
            raise ValueError("some MBRs have lo > hi")
        n = len(self.los)
        self.nbytes = np.ascontiguousarray(nbytes, dtype=np.int64)
        if self.nbytes.shape != (n,):
            raise ValueError("nbytes must be (n,)")
        if np.any(self.nbytes < 0):
            raise ValueError("negative chunk sizes")
        self.n_items = (
            np.ones(n, dtype=np.int64)
            if n_items is None
            else np.ascontiguousarray(n_items, dtype=np.int64)
        )
        self.node = (
            np.full(n, -1, dtype=np.int32)
            if node is None
            else np.ascontiguousarray(node, dtype=np.int32)
        )
        self.disk = (
            np.full(n, -1, dtype=np.int32)
            if disk is None
            else np.ascontiguousarray(disk, dtype=np.int32)
        )
        for name, arr in (("n_items", self.n_items), ("node", self.node), ("disk", self.disk)):
            if arr.shape != (n,):
                raise ValueError(f"{name} must be (n,)")
        if synopsis is not None and len(synopsis) != n:
            raise ValueError(
                f"synopsis has {len(synopsis)} rows for {n} chunks"
            )
        self.synopsis = synopsis

    # -- construction ---------------------------------------------------

    @staticmethod
    def from_metas(metas: Sequence[ChunkMeta]) -> "ChunkSet":
        if not metas:
            raise ValueError("from_metas needs at least one chunk")
        d = metas[0].mbr.ndim
        n = len(metas)
        los = np.empty((n, d))
        his = np.empty((n, d))
        nbytes = np.empty(n, dtype=np.int64)
        n_items = np.empty(n, dtype=np.int64)
        node = np.empty(n, dtype=np.int32)
        disk = np.empty(n, dtype=np.int32)
        for i, m in enumerate(metas):
            if m.chunk_id != i:
                raise ValueError("chunk ids must be dense and ordered")
            los[i], his[i] = m.mbr.as_arrays()
            nbytes[i] = m.nbytes
            n_items[i] = m.n_items
            node[i] = m.node
            disk[i] = m.disk
        return ChunkSet(los, his, nbytes, n_items, node, disk)

    # -- basic properties -------------------------------------------------

    def __len__(self) -> int:
        return len(self.los)

    @property
    def ndim(self) -> int:
        return self.los.shape[1]

    @property
    def total_bytes(self) -> int:
        return int(self.nbytes.sum())

    @property
    def centers(self) -> np.ndarray:
        return (self.los + self.his) * 0.5

    @property
    def bounds(self) -> Rect:
        return Rect(tuple(self.los.min(axis=0)), tuple(self.his.max(axis=0)))

    @property
    def placed(self) -> bool:
        return bool((self.node >= 0).all() and (self.disk >= 0).all())

    # -- element access -----------------------------------------------------

    def mbr(self, chunk_id: int) -> Rect:
        return Rect(tuple(self.los[chunk_id]), tuple(self.his[chunk_id]))

    def meta(self, chunk_id: int) -> ChunkMeta:
        return ChunkMeta(
            chunk_id=int(chunk_id),
            mbr=self.mbr(chunk_id),
            nbytes=int(self.nbytes[chunk_id]),
            n_items=int(self.n_items[chunk_id]),
            node=int(self.node[chunk_id]),
            disk=int(self.disk[chunk_id]),
        )

    def iter_metas(self) -> Iterator[ChunkMeta]:
        for i in range(len(self)):
            yield self.meta(i)

    # -- queries ------------------------------------------------------------

    def intersecting(self, query: Rect) -> np.ndarray:
        """Ids of chunks whose MBR intersects *query* (brute force)."""
        mask = rects_intersect_mask(self.los, self.his, query)
        return np.flatnonzero(mask)

    def hilbert_order(self, bits: int = 16) -> np.ndarray:
        """Chunk ids sorted by the Hilbert key of their MBR mid-point.

        This is the selection order used by all three tiling
        algorithms (paper Section 3): "the mid-point of the bounding
        box of each output chunk is used to generate a Hilbert curve
        index [and] the chunks are sorted with respect to this index".
        Ties are broken by chunk id so the order is deterministic.
        """
        if not len(self):  # empty selection: bounds are undefined
            return np.empty(0, dtype=np.int64)
        keys = hilbert_sort_keys(self.centers, self.bounds, bits)
        return np.lexsort((np.arange(len(self)), keys))

    # -- placement ------------------------------------------------------------

    def with_placement(self, node: np.ndarray, disk: np.ndarray) -> "ChunkSet":
        """A copy of this set with new placement arrays."""
        return ChunkSet(
            self.los, self.his, self.nbytes, self.n_items, node, disk,
            synopsis=self.synopsis,
        )

    def with_synopsis(self, synopsis: Optional[ValueSynopsis]) -> "ChunkSet":
        """A copy of this set carrying *synopsis* (length-checked)."""
        return ChunkSet(
            self.los, self.his, self.nbytes, self.n_items, self.node,
            self.disk, synopsis=synopsis,
        )

    def chunks_on_node(self, node: int) -> np.ndarray:
        return np.flatnonzero(self.node == node)

    def bytes_per_node(self, n_nodes: int) -> np.ndarray:
        """Total chunk bytes placed on each of *n_nodes* nodes."""
        out = np.zeros(n_nodes, dtype=np.int64)
        valid = self.node >= 0
        np.add.at(out, self.node[valid], self.nbytes[valid])
        return out

    # -- transformation --------------------------------------------------------

    def subset(self, ids: np.ndarray) -> "ChunkSet":
        """A new ChunkSet containing only *ids* (re-numbered densely)."""
        ids = np.asarray(ids, dtype=np.int64)
        if len(ids) == 0:
            raise ValueError("subset must keep at least one chunk")
        return ChunkSet(
            self.los[ids],
            self.his[ids],
            self.nbytes[ids],
            self.n_items[ids],
            self.node[ids],
            self.disk[ids],
            synopsis=None if self.synopsis is None else self.synopsis.subset(ids),
        )
