"""Partitioners: split item collections into chunks.

"A dataset is partitioned into a set of chunks to achieve high
bandwidth data retrieval. [...] Since data is accessed through range
queries, it is desirable to have data items that are close to each
other in the multi-dimensional space in the same chunk."
(paper Section 2.2)

Two partitioners cover the paper's application classes:

- :func:`grid_partition` -- bin items into the cells of a regular grid
  over the space bounds (WCS and VM: dense regular arrays "partitioned
  into equal-sized rectangular chunks");
- :func:`hilbert_partition` -- sort items along a Hilbert curve and cut
  consecutive runs of ~``items_per_chunk`` (irregular point clouds such
  as satellite readings, preserving spatial locality without assuming
  density).

:func:`regular_grid_chunkset` builds the *output* dataset's chunk
population directly (a regular array of rectangular regions), as used
by all three paper applications.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.dataset.chunk import Chunk
from repro.dataset.chunkset import ChunkSet
from repro.util.geometry import Rect
from repro.util.hilbert import hilbert_sort_keys

__all__ = ["grid_partition", "hilbert_partition", "regular_grid_chunkset"]


def _check_items(coords: np.ndarray, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    coords = np.ascontiguousarray(coords, dtype=float)
    values = np.ascontiguousarray(values)
    if coords.ndim != 2 or len(coords) == 0:
        raise ValueError("need a non-empty (n, d) coords array")
    if len(values) != len(coords):
        raise ValueError("values must parallel coords")
    return coords, values


def grid_partition(
    coords: np.ndarray,
    values: np.ndarray,
    bounds: Rect,
    cells_per_dim: Sequence[int],
) -> List[Chunk]:
    """Partition items into the cells of a regular grid.

    Empty cells produce no chunk; chunk ids are dense in row-major cell
    order of the non-empty cells.
    """
    coords, values = _check_items(coords, values)
    shape = np.asarray([int(c) for c in cells_per_dim])
    if len(shape) != bounds.ndim or (shape < 1).any():
        raise ValueError("cells_per_dim must be positive, one per dimension")
    lo, hi = bounds.as_arrays()
    span = np.where(hi > lo, hi - lo, 1.0)
    cells = np.floor((coords - lo) / span * shape).astype(np.int64)
    cells = np.clip(cells, 0, shape - 1)
    flat = np.ravel_multi_index(cells.T, shape)
    order = np.argsort(flat, kind="stable")
    flat_sorted = flat[order]
    # Boundaries between runs of equal cell ids.
    cut = np.flatnonzero(np.diff(flat_sorted)) + 1
    starts = np.concatenate(([0], cut))
    ends = np.concatenate((cut, [len(flat_sorted)]))
    chunks: List[Chunk] = []
    for cid, (s, e) in enumerate(zip(starts, ends)):
        idx = order[s:e]
        chunks.append(Chunk.from_items(cid, coords[idx], values[idx]))
    return chunks


def hilbert_partition(
    coords: np.ndarray,
    values: np.ndarray,
    items_per_chunk: int,
    bits: int = 16,
) -> List[Chunk]:
    """Partition items into Hilbert-contiguous runs.

    Items are sorted by the Hilbert key of their coordinates (within
    the data bounding box) and cut into consecutive groups of
    ``items_per_chunk``; each group becomes one chunk whose MBR is the
    bounding box of its items.  Spatially close items therefore share a
    chunk regardless of how irregular the point distribution is.
    """
    coords, values = _check_items(coords, values)
    if items_per_chunk < 1:
        raise ValueError("items_per_chunk must be >= 1")
    bbox = Rect.from_points(coords)
    keys = hilbert_sort_keys(coords, bbox, bits)
    order = np.argsort(keys, kind="stable")
    chunks: List[Chunk] = []
    for cid, s in enumerate(range(0, len(coords), items_per_chunk)):
        idx = order[s : s + items_per_chunk]
        chunks.append(Chunk.from_items(cid, coords[idx], values[idx]))
    return chunks


def regular_grid_chunkset(
    bounds: Rect,
    chunks_per_dim: Sequence[int],
    bytes_per_chunk: int,
    items_per_chunk: int = 1,
) -> ChunkSet:
    """A ChunkSet tiling *bounds* with a regular grid of equal chunks.

    This is the shape of every output dataset in the paper's
    evaluation ("the output datasets are regular arrays, hence each
    output dataset is divided into regular multi-dimensional
    rectangular regions").  Chunk ids are row-major over the grid.
    """
    shape = tuple(int(c) for c in chunks_per_dim)
    if len(shape) != bounds.ndim or any(s < 1 for s in shape):
        raise ValueError("chunks_per_dim must be positive, one per dimension")
    if bytes_per_chunk < 0:
        raise ValueError("bytes_per_chunk must be non-negative")
    lo, hi = bounds.as_arrays()
    step = (hi - lo) / np.asarray(shape)
    n = int(np.prod(shape))
    cells = np.stack(
        np.unravel_index(np.arange(n), shape), axis=1
    ).astype(float)
    los = lo + cells * step
    his = los + step
    # Snap edge blocks onto the exact bounds (guards float drift so the
    # grid tiles `bounds` precisely).
    for d in range(bounds.ndim):
        his[cells[:, d] == shape[d] - 1, d] = hi[d]
    return ChunkSet(
        los,
        his,
        np.full(n, bytes_per_chunk, dtype=np.int64),
        np.full(n, items_per_chunk, dtype=np.int64),
    )
