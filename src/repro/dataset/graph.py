"""Bipartite input/output chunk incidence graph.

Query planning never looks at item-level data: what the tiling and
workload-partitioning algorithms need is, for every output chunk, the
set of input chunks that map to it (and the inverse).  This module
stores that bipartite incidence in CSR form in both directions, so

- ``inputs_of(o)`` (fan-in lists) drives step 15 of the FRA algorithm
  and step 5 of SRA,
- ``outputs_of(i)`` (fan-out lists) drives DA input forwarding,

both as O(degree) array slices.  The paper's Section 6 observes that
this structure *is* a multigraph suitable for graph partitioning; the
hybrid strategy consumes it directly.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.dataset.chunkset import ChunkSet
from repro.space.mapping import Mapping
from repro.util.geometry import Rect

__all__ = ["ChunkGraph"]


class ChunkGraph:
    """CSR incidence between ``n_in`` input and ``n_out`` output chunks."""

    def __init__(
        self,
        n_in: int,
        n_out: int,
        in_ids: np.ndarray,
        out_ids: np.ndarray,
    ) -> None:
        """Build from parallel COO edge arrays (duplicates are merged)."""
        if n_in < 0 or n_out < 0:
            raise ValueError("chunk counts must be non-negative")
        in_ids = np.asarray(in_ids, dtype=np.int64)
        out_ids = np.asarray(out_ids, dtype=np.int64)
        if in_ids.shape != out_ids.shape or in_ids.ndim != 1:
            raise ValueError("in_ids/out_ids must be matching 1-D arrays")
        if len(in_ids) and (
            in_ids.min() < 0
            or in_ids.max() >= n_in
            or out_ids.min() < 0
            or out_ids.max() >= n_out
        ):
            raise ValueError("edge endpoints outside chunk id ranges")
        data = np.ones(len(in_ids), dtype=np.int8)
        mat = sp.coo_matrix((data, (in_ids, out_ids)), shape=(n_in, n_out))
        csr = mat.tocsr()
        csr.sum_duplicates()
        csc = csr.tocsc()
        self.n_in = n_in
        self.n_out = n_out
        # input -> outputs (fan-out lists)
        self._fwd_indptr = csr.indptr.astype(np.int64)
        self._fwd_ids = csr.indices.astype(np.int64)
        # output -> inputs (fan-in lists)
        self._rev_indptr = csc.indptr.astype(np.int64)
        self._rev_ids = csc.indices.astype(np.int64)

    # -- construction ---------------------------------------------------

    @staticmethod
    def from_lists(n_in: int, n_out: int, outputs_per_input: Sequence[Iterable[int]]) -> "ChunkGraph":
        """Build from a per-input-chunk list of mapped output chunks."""
        if len(outputs_per_input) != n_in:
            raise ValueError("need one output list per input chunk")
        in_ids: list[int] = []
        out_ids: list[int] = []
        for i, outs in enumerate(outputs_per_input):
            for o in outs:
                in_ids.append(i)
                out_ids.append(int(o))
        return ChunkGraph(
            n_in, n_out, np.asarray(in_ids, dtype=np.int64), np.asarray(out_ids, dtype=np.int64)
        )

    @staticmethod
    def from_geometry(
        inputs: ChunkSet, outputs: ChunkSet, mapping: Mapping
    ) -> "ChunkGraph":
        """Derive the incidence by projecting input MBRs into the
        output space and intersecting with output MBRs.

        This is how a real ADR instance computes the graph: the
        mapping's chunk-level projection (Section 3, step 15 remark)
        gives, per input chunk, the output chunks it may touch.
        """
        in_ids: list[np.ndarray] = []
        out_ids: list[np.ndarray] = []
        for i in range(len(inputs)):
            projected = mapping.project_rect(inputs.mbr(i))
            hits = outputs.intersecting(projected)
            if len(hits):
                in_ids.append(np.full(len(hits), i, dtype=np.int64))
                out_ids.append(hits)
        if in_ids:
            ii = np.concatenate(in_ids)
            oo = np.concatenate(out_ids)
        else:
            ii = np.empty(0, dtype=np.int64)
            oo = np.empty(0, dtype=np.int64)
        return ChunkGraph(len(inputs), len(outputs), ii, oo)

    # -- adjacency ---------------------------------------------------------

    def outputs_of(self, input_id: int) -> np.ndarray:
        """Output chunk ids the given input chunk maps to (sorted)."""
        return self._fwd_ids[self._fwd_indptr[input_id] : self._fwd_indptr[input_id + 1]]

    def inputs_of(self, output_id: int) -> np.ndarray:
        """Input chunk ids mapping to the given output chunk (sorted)."""
        return self._rev_ids[self._rev_indptr[output_id] : self._rev_indptr[output_id + 1]]

    @property
    def n_edges(self) -> int:
        return int(len(self._fwd_ids))

    # -- degree statistics ----------------------------------------------------

    @property
    def fan_out(self) -> np.ndarray:
        """Per-input-chunk number of mapped output chunks."""
        return np.diff(self._fwd_indptr)

    @property
    def fan_in(self) -> np.ndarray:
        """Per-output-chunk number of mapping input chunks."""
        return np.diff(self._rev_indptr)

    @property
    def avg_fan_out(self) -> float:
        return float(self.fan_out.mean()) if self.n_in else 0.0

    @property
    def avg_fan_in(self) -> float:
        return float(self.fan_in.mean()) if self.n_out else 0.0

    # -- bulk views (planner hot path) ---------------------------------------

    @property
    def forward_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(indptr, indices)`` of the input->outputs adjacency."""
        return self._fwd_indptr, self._fwd_ids

    @property
    def reverse_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(indptr, indices)`` of the output->inputs adjacency."""
        return self._rev_indptr, self._rev_ids

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """All edges as parallel ``(in_ids, out_ids)`` arrays."""
        in_ids = np.repeat(np.arange(self.n_in, dtype=np.int64), self.fan_out)
        return in_ids, self._fwd_ids.copy()

    def validate(self) -> None:
        """Internal consistency check: both directions describe the
        same edge set.  Used by tests and the plan validator."""
        fwd_in, fwd_out = self.edge_arrays()
        rev_out = np.repeat(np.arange(self.n_out, dtype=np.int64), self.fan_in)
        rev_in = self._rev_ids
        a = np.lexsort((fwd_out, fwd_in))
        b = np.lexsort((rev_out, rev_in))
        if not (
            np.array_equal(fwd_in[a], rev_in[b])
            and np.array_equal(fwd_out[a], rev_out[b])
        ):
            raise AssertionError("forward/reverse CSR views disagree")
