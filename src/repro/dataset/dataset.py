"""Datasets and the back-end dataset catalog.

A :class:`Dataset` couples an attribute space with a chunk population
(:class:`~repro.dataset.chunkset.ChunkSet`) and, on the functional
path, with the chunk payloads themselves (either held in memory or
resident in a :mod:`repro.store` chunk store).  The
:class:`DatasetCatalog` is the dataset service's registry of what is
stored in the ADR back end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.dataset.chunk import Chunk
from repro.dataset.chunkset import ChunkSet
from repro.space.attribute_space import AttributeSpace
from repro.util.geometry import Rect

__all__ = ["Dataset", "DatasetCatalog"]


@dataclass
class Dataset:
    """A named, chunked, spatially indexed dataset.

    Attributes
    ----------
    name:
        Catalog key.
    space:
        The attribute space the chunk MBRs live in.
    chunks:
        Packed chunk metadata.
    payloads:
        Optional in-memory chunk payloads, parallel to ``chunks`` by
        chunk id.  ``None`` for metadata-only datasets (emulator
        populations, store-resident data).
    """

    name: str
    space: AttributeSpace
    chunks: ChunkSet
    payloads: Optional[List[Chunk]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("dataset name must be non-empty")
        if self.chunks.ndim != self.space.ndim:
            raise ValueError(
                f"chunks are {self.chunks.ndim}-d but space {self.space.name!r} "
                f"is {self.space.ndim}-d"
            )
        if self.payloads is not None:
            if len(self.payloads) != len(self.chunks):
                raise ValueError("payload list must parallel the chunk set")
            for i, c in enumerate(self.payloads):
                if c.chunk_id != i:
                    raise ValueError("payloads must be ordered by chunk id")

    @staticmethod
    def from_chunks(name: str, space: AttributeSpace, chunk_list: Sequence[Chunk]) -> "Dataset":
        """Build a payload-carrying dataset from Chunk objects."""
        metas = [c.meta for c in chunk_list]
        return Dataset(name, space, ChunkSet.from_metas(metas), list(chunk_list))

    @property
    def n_chunks(self) -> int:
        return len(self.chunks)

    @property
    def has_payloads(self) -> bool:
        return self.payloads is not None

    def payload(self, chunk_id: int) -> Chunk:
        if self.payloads is None:
            raise RuntimeError(
                f"dataset {self.name!r} is metadata-only (no payloads loaded)"
            )
        return self.payloads[chunk_id]

    def intersecting(self, query: Rect) -> np.ndarray:
        """Chunk ids whose MBR intersects the range query."""
        return self.chunks.intersecting(self.space.validate_query(query))

    def with_placement(self, node: np.ndarray, disk: np.ndarray) -> "Dataset":
        placed = self.chunks.with_placement(node, disk)
        ds = Dataset(self.name, self.space, placed, self.payloads)
        return ds


class DatasetCatalog:
    """Registry of the datasets resident in an ADR back end."""

    def __init__(self) -> None:
        self._datasets: Dict[str, Dataset] = {}

    def add(self, dataset: Dataset, replace: bool = False) -> Dataset:
        if dataset.name in self._datasets and not replace:
            raise ValueError(f"dataset {dataset.name!r} already in catalog")
        self._datasets[dataset.name] = dataset
        return dataset

    def get(self, name: str) -> Dataset:
        try:
            return self._datasets[name]
        except KeyError:
            raise KeyError(f"dataset {name!r} is not in the catalog") from None

    def remove(self, name: str) -> None:
        if name not in self._datasets:
            raise KeyError(f"dataset {name!r} is not in the catalog")
        del self._datasets[name]

    def __contains__(self, name: str) -> bool:
        return name in self._datasets

    def __len__(self) -> int:
        return len(self._datasets)

    def names(self) -> Iterable[str]:
        return self._datasets.keys()
