"""Value predicates: range constraints on item *values*.

A :class:`ValuePredicate` is a conjunction of closed intervals over a
chunk's value components -- the ``where=`` clause of a
:class:`~repro.frontend.query.RangeQuery`.  It serves two roles that
must agree exactly for pruned queries to stay bit-identical to
unpruned ones:

- :meth:`mask` is the **residual filter**: the per-item truth value
  applied by the fused kernels to every retrieved chunk, whether or
  not any pruning happened.  NaN components never satisfy a
  constraint.
- :meth:`prunable_chunks` is the **synopsis prune test**: given
  per-chunk min/max/null summaries (:class:`~repro.dataset.synopsis.
  ValueSynopsis`), it flags chunks that *provably* contain no item
  satisfying the conjunction.  It is deliberately one-sided: a chunk
  is flagged only when some constrained component can be shown empty
  (all-null, or the synopsis interval disjoint from the constraint),
  so pruning can drop reads but never results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

__all__ = ["ValuePredicate"]


@dataclass(frozen=True)
class ValuePredicate:
    """Conjunction of closed per-component intervals ``lo <= v <= hi``.

    ``bounds`` is a sorted tuple of ``(component, lo, hi)`` triples;
    one-sided constraints use ``-inf`` / ``+inf``.  Construct directly
    or via :meth:`coerce` from the ``where=`` mapping syntax
    ``{component: (lo, hi)}`` (``None`` endpoints mean unbounded).
    """

    bounds: Tuple[Tuple[int, float, float], ...]

    def __post_init__(self) -> None:
        if not self.bounds:
            raise ValueError("a ValuePredicate needs at least one constraint")
        seen = set()
        norm = []
        for comp, lo, hi in self.bounds:
            comp = int(comp)
            lo = float(-math.inf if lo is None else lo)
            hi = float(math.inf if hi is None else hi)
            if comp < 0:
                raise ValueError(f"value component {comp} must be non-negative")
            if comp in seen:
                raise ValueError(f"duplicate constraint on component {comp}")
            if math.isnan(lo) or math.isnan(hi):
                raise ValueError("predicate endpoints must not be NaN")
            if lo > hi:
                raise ValueError(f"empty interval [{lo}, {hi}] on component {comp}")
            seen.add(comp)
            norm.append((comp, lo, hi))
        object.__setattr__(self, "bounds", tuple(sorted(norm)))

    @staticmethod
    def coerce(
        obj: Union["ValuePredicate", Dict[int, tuple], None],
    ) -> Optional["ValuePredicate"]:
        """Normalize the ``where=`` argument; ``None`` passes through."""
        if obj is None or isinstance(obj, ValuePredicate):
            return obj
        if isinstance(obj, dict):
            bounds = []
            for comp, interval in obj.items():
                try:
                    lo, hi = interval
                except (TypeError, ValueError):
                    raise ValueError(
                        f"where[{comp!r}] must be a (lo, hi) pair, got {interval!r}"
                    ) from None
                bounds.append((int(comp), lo, hi))
            return ValuePredicate(tuple(bounds))
        raise TypeError(
            f"where= must be a ValuePredicate or {{component: (lo, hi)}} "
            f"mapping, got {type(obj).__name__}"
        )

    @property
    def max_component(self) -> int:
        return self.bounds[-1][0]

    # -- residual item filter -------------------------------------------

    def mask(self, values: np.ndarray) -> np.ndarray:
        """Per-item truth of the conjunction over ``(n,)`` or ``(n, k)``
        values.  NaN fails every constraint (as SQL NULL would)."""
        vals = np.asarray(values, dtype=np.float64)
        if vals.ndim == 1:
            vals = vals[:, None]
        elif vals.ndim > 2:
            vals = vals.reshape(len(vals), -1)
        if self.max_component >= vals.shape[1]:
            raise ValueError(
                f"predicate constrains component {self.max_component} but "
                f"values have {vals.shape[1]}"
            )
        keep = np.ones(len(vals), dtype=bool)
        for comp, lo, hi in self.bounds:
            col = vals[:, comp]
            keep &= (col >= lo) & (col <= hi)  # NaN compares False
        return keep

    # -- synopsis prune test --------------------------------------------

    def prunable_chunks(self, synopsis) -> np.ndarray:
        """``(n,)`` bool: chunks that provably satisfy no item.

        A chunk is prunable when, for *some* constrained component, all
        its items are null or the chunk's [min, max] misses the
        interval entirely.  Chunks are never flagged on components the
        synopsis does not carry.
        """
        n = len(synopsis)
        prunable = np.zeros(n, dtype=bool)
        for comp, lo, hi in self.bounds:
            if comp >= synopsis.n_components:
                continue
            all_null = synopsis.nulls[:, comp] >= synopsis.counts
            with np.errstate(invalid="ignore"):
                # NaN vmin/vmax (all-null chunk) compares False on both
                # sides, so only the all_null test can flag such chunks.
                disjoint = (synopsis.vmax[:, comp] < lo) | (
                    synopsis.vmin[:, comp] > hi
                )
            prunable |= all_null | disjoint
        return prunable

    # -- wire encoding ---------------------------------------------------

    def to_payload(self) -> list:
        """JSON-safe encoding (``inf`` travels as ``None``)."""
        return [
            [c, None if math.isinf(lo) else lo, None if math.isinf(hi) else hi]
            for c, lo, hi in self.bounds
        ]

    @staticmethod
    def from_payload(payload: list) -> "ValuePredicate":
        try:
            return ValuePredicate(tuple((int(c), lo, hi) for c, lo, hi in payload))
        except (TypeError, ValueError) as e:
            raise ValueError(f"bad where payload: {e}") from e
