"""Dataset service (paper Section 2.1--2.2).

Manages datasets stored in the ADR back end.  Every dataset is
partitioned into *chunks* -- the unit of I/O and communication -- and
every chunk carries a minimum bounding rectangle (MBR) in the
dataset's attribute space.  This package provides:

- :mod:`repro.dataset.chunk` -- chunk metadata and in-memory payloads;
- :mod:`repro.dataset.chunkset` -- packed (vectorized) metadata for
  whole chunk populations, the representation the planner and the
  simulator work on;
- :mod:`repro.dataset.graph` -- the bipartite input/output chunk
  incidence graph induced by a mapping function;
- :mod:`repro.dataset.partition` -- partitioners that split raw item
  collections into chunks;
- :mod:`repro.dataset.dataset` -- the dataset object and catalog;
- :mod:`repro.dataset.loader` -- the four-step loading pipeline
  (partition, placement, move, index).
"""

from repro.dataset.chunk import Chunk, ChunkMeta
from repro.dataset.chunkset import ChunkSet
from repro.dataset.graph import ChunkGraph
from repro.dataset.dataset import Dataset, DatasetCatalog
from repro.dataset.partition import (
    grid_partition,
    hilbert_partition,
    regular_grid_chunkset,
)

__all__ = [
    "Chunk",
    "ChunkMeta",
    "ChunkSet",
    "ChunkGraph",
    "Dataset",
    "DatasetCatalog",
    "grid_partition",
    "hilbert_partition",
    "regular_grid_chunkset",
]
