"""The four-step dataset loading pipeline (paper Section 2.2).

"Loading a dataset into ADR is accomplished in four steps: (1)
partition a dataset into data chunks, (2) compute placement
information, (3) move data chunks to the disks according to placement
information, and (4) create an index."

Step 1 is the caller's choice of partitioner
(:mod:`repro.dataset.partition`); this module performs steps 2--4
against a chunk store and returns the placed metadata plus the index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Type

import numpy as np

from repro.dataset.chunk import Chunk
from repro.dataset.chunkset import ChunkSet
from repro.dataset.dataset import Dataset
from repro.dataset.synopsis import ValueSynopsis
from repro.decluster.base import Declusterer
from repro.decluster.hilbert import HilbertDeclusterer
from repro.index.base import SpatialIndex
from repro.index.rtree import RTree
from repro.space.attribute_space import AttributeSpace
from repro.store.chunk_store import ChunkStore

__all__ = ["LoadedDataset", "load_dataset"]


@dataclass
class LoadedDataset:
    """A dataset resident in the store: placed metadata + index."""

    dataset: Dataset
    index: SpatialIndex

    @property
    def name(self) -> str:
        return self.dataset.name


def load_dataset(
    store: ChunkStore,
    name: str,
    space: AttributeSpace,
    chunks: Sequence[Chunk],
    n_nodes: int,
    disks_per_node: int = 1,
    declusterer: Optional[Declusterer] = None,
    index_cls: Type[SpatialIndex] = RTree,
) -> LoadedDataset:
    """Run steps 2--4: decluster, store, index.

    Returns the placed, metadata-only dataset (payloads live in the
    store) together with its spatial index.
    """
    if not chunks:
        raise ValueError("cannot load an empty dataset")
    metas = [c.meta for c in chunks]
    chunkset = ChunkSet.from_metas(metas)
    if chunkset.ndim != space.ndim:
        raise ValueError("chunk MBRs do not match the attribute space")
    # Value synopses are summarized here, while the payloads are still in
    # hand; after this point only the store sees chunk values.
    chunkset = chunkset.with_synopsis(ValueSynopsis.from_chunks(chunks))

    # Step 2: placement.
    decl = declusterer if declusterer is not None else HilbertDeclusterer()
    node, disk = decl.assign(chunkset, n_nodes, disks_per_node)

    # Step 3: move chunks to their disks.
    placements = list(zip(node.tolist(), disk.tolist()))
    if hasattr(store, "write_chunks"):
        store.write_chunks(name, list(chunks), placements)
    else:
        for chunk, (nd, dk) in zip(chunks, placements):
            store.write_chunk(name, chunk, nd, dk)

    placed = chunkset.with_placement(node, disk)

    # Step 4: index the chunk MBRs.
    index = index_cls.build(placed)

    dataset = Dataset(name, space, placed, payloads=None)
    return LoadedDataset(dataset, index)
