"""Dataset and workload profiling.

The numbers Table 1 summarizes -- chunk counts, byte totals, fan-in /
fan-out moments -- plus the spatial properties that drive strategy
behaviour (MBR overlap, placement balance, fan-in skew).  Used by the
Table-1 bench and by users sizing a new application against the three
reference classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.dataset.chunkset import ChunkSet
from repro.dataset.graph import ChunkGraph

__all__ = ["ChunkSetProfile", "GraphProfile", "profile_chunkset", "profile_graph"]


@dataclass(frozen=True)
class ChunkSetProfile:
    """Summary statistics of a chunk population."""

    n_chunks: int
    total_bytes: int
    chunk_bytes_mean: float
    chunk_bytes_cv: float  # coefficient of variation (std/mean)
    mean_extent: np.ndarray  # per-dimension mean MBR side length
    #: expected number of chunks covering a random point, >= coverage
    #: of the bounds; 1.0 means a perfect non-overlapping tiling
    overlap_factor: float
    #: chunks per node max/mean (nan when unplaced)
    placement_balance: float

    def describe(self) -> str:
        lines = [
            f"{self.n_chunks} chunks, {self.total_bytes / 2**20:.1f} MB "
            f"(mean {self.chunk_bytes_mean / 1024:.1f} KB, cv {self.chunk_bytes_cv:.2f})",
            "mean MBR extent: "
            + " x ".join(f"{e:.4g}" for e in self.mean_extent),
            f"overlap factor {self.overlap_factor:.2f}",
        ]
        if not np.isnan(self.placement_balance):
            lines.append(f"placement balance (max/mean per node) {self.placement_balance:.3f}")
        return "\n".join(lines)


def profile_chunkset(chunks: ChunkSet, n_nodes: Optional[int] = None) -> ChunkSetProfile:
    sizes = chunks.nbytes.astype(float)
    extents = chunks.his - chunks.los
    bounds = chunks.bounds
    bounds_vol = bounds.volume
    chunk_vols = np.prod(extents, axis=1)
    overlap = float(chunk_vols.sum() / bounds_vol) if bounds_vol > 0 else float("nan")
    if chunks.placed:
        counts = np.bincount(
            chunks.node, minlength=n_nodes if n_nodes else chunks.node.max() + 1
        ).astype(float)
        balance = float(counts.max() / counts.mean()) if counts.mean() else float("nan")
    else:
        balance = float("nan")
    return ChunkSetProfile(
        n_chunks=len(chunks),
        total_bytes=chunks.total_bytes,
        chunk_bytes_mean=float(sizes.mean()),
        chunk_bytes_cv=float(sizes.std() / sizes.mean()) if sizes.mean() else 0.0,
        mean_extent=extents.mean(axis=0),
        overlap_factor=overlap,
        placement_balance=balance,
    )


@dataclass(frozen=True)
class GraphProfile:
    """Fan-in/fan-out structure of an input/output chunk graph."""

    n_edges: int
    fan_out_mean: float
    fan_out_max: int
    fan_in_mean: float
    fan_in_max: int
    #: Gini-style skew of the fan-in distribution, 0 = uniform.  High
    #: skew is what hurts DA's ownership-granularity load balance.
    fan_in_skew: float
    #: fraction of input chunks mapping to no selected output
    dangling_inputs: float

    def describe(self) -> str:
        return (
            f"{self.n_edges} edges; fan-out {self.fan_out_mean:.2f} "
            f"(max {self.fan_out_max}); fan-in {self.fan_in_mean:.1f} "
            f"(max {self.fan_in_max}, skew {self.fan_in_skew:.2f}); "
            f"{self.dangling_inputs * 100:.1f}% dangling inputs"
        )


def _gini(x: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 = equal)."""
    x = np.sort(np.asarray(x, dtype=float))
    n = len(x)
    total = x.sum()
    if n == 0 or total == 0:
        return 0.0
    ranks = np.arange(1, n + 1)
    return float((2 * (ranks * x).sum()) / (n * total) - (n + 1) / n)


def profile_graph(graph: ChunkGraph) -> GraphProfile:
    fan_out = graph.fan_out
    fan_in = graph.fan_in
    return GraphProfile(
        n_edges=graph.n_edges,
        fan_out_mean=graph.avg_fan_out,
        fan_out_max=int(fan_out.max(initial=0)),
        fan_in_mean=graph.avg_fan_in,
        fan_in_max=int(fan_in.max(initial=0)),
        fan_in_skew=_gini(fan_in),
        dangling_inputs=float((fan_out == 0).mean()) if graph.n_in else 0.0,
    )
