"""Chunks: the unit of I/O and communication in ADR.

A chunk consists of one or more data items from the same dataset and
"is always retrieved as a whole during query processing".  Each chunk
is associated with an MBR enclosing the attribute-space coordinates of
all its items, and -- once loaded -- with a placement (node, disk).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

import numpy as np

from repro.util.geometry import Rect

__all__ = ["ChunkMeta", "Chunk", "UNPLACED"]

#: Placement value for chunks that have not been declustered yet.
UNPLACED: Tuple[int, int] = (-1, -1)


@dataclass(frozen=True)
class ChunkMeta:
    """Metadata for one chunk.

    Attributes
    ----------
    chunk_id:
        Dense id within the owning dataset (0..n_chunks-1).
    mbr:
        Minimum bounding rectangle in the dataset's attribute space.
    nbytes:
        On-disk size of the chunk (header excluded); the I/O and
        communication cost unit used by planning and simulation.
    n_items:
        Number of data items packed in the chunk.
    node, disk:
        Placement assigned by the declustering step: the back-end node
        the chunk's disk is attached to and the disk index on that
        node.  ``(-1, -1)`` until placed.
    """

    chunk_id: int
    mbr: Rect
    nbytes: int
    n_items: int = 1
    node: int = -1
    disk: int = -1

    def __post_init__(self) -> None:
        if self.chunk_id < 0:
            raise ValueError("chunk_id must be non-negative")
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if self.n_items < 0:
            raise ValueError("n_items must be non-negative")

    @property
    def placed(self) -> bool:
        return self.node >= 0 and self.disk >= 0

    def with_placement(self, node: int, disk: int) -> "ChunkMeta":
        if node < 0 or disk < 0:
            raise ValueError("placement indices must be non-negative")
        return replace(self, node=node, disk=disk)


@dataclass
class Chunk:
    """A chunk with its in-memory payload.

    The payload is a pair of arrays: item coordinates in the attribute
    space, ``(n_items, ndim)``, and item values, ``(n_items, ...)``.
    Values may be multi-component (e.g. several sensor bands per
    reading).  Payloads exist only on the functional execution path;
    planning and simulation use :class:`ChunkMeta` /
    :class:`repro.dataset.chunkset.ChunkSet` alone.
    """

    meta: ChunkMeta
    coords: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.coords = np.ascontiguousarray(self.coords, dtype=float)
        self.values = np.ascontiguousarray(self.values)
        if self.coords.ndim != 2:
            raise ValueError("coords must be (n_items, ndim)")
        if len(self.coords) != len(self.values):
            raise ValueError(
                f"coords has {len(self.coords)} items, values {len(self.values)}"
            )
        if len(self.coords) != self.meta.n_items:
            raise ValueError(
                f"meta.n_items={self.meta.n_items} but payload has {len(self.coords)}"
            )
        if self.coords.shape[1] != self.meta.mbr.ndim:
            raise ValueError("coords dimensionality does not match MBR")
        if len(self.coords):
            lo, hi = self.meta.mbr.as_arrays()
            if (self.coords < lo - 1e-9).any() or (self.coords > hi + 1e-9).any():
                raise ValueError("payload coordinates escape the chunk MBR")

    @property
    def chunk_id(self) -> int:
        return self.meta.chunk_id

    @property
    def n_items(self) -> int:
        return len(self.coords)

    @staticmethod
    def from_items(
        chunk_id: int, coords: np.ndarray, values: np.ndarray, nbytes: Optional[int] = None
    ) -> "Chunk":
        """Build a chunk (and its MBR) from raw items."""
        coords = np.ascontiguousarray(coords, dtype=float)
        values = np.ascontiguousarray(values)
        if coords.ndim != 2 or len(coords) == 0:
            raise ValueError("from_items needs a non-empty (n, d) coords array")
        mbr = Rect.from_points(coords)
        if nbytes is None:
            nbytes = int(coords.nbytes + values.nbytes)
        meta = ChunkMeta(chunk_id, mbr, nbytes, n_items=len(coords))
        return Chunk(meta, coords, values)
