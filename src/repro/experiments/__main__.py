"""Command-line entry point: regenerate the paper's tables and figures.

Examples::

    python -m repro.experiments table1
    python -m repro.experiments fig8 --scaling fixed
    python -m repro.experiments fig9 --metric comm --scaling scaled --app SAT
    python -m repro.experiments all --fidelity fast
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.grid import APPS, METRICS, SCALINGS, ExperimentGrid

FIGURES = {
    ("fig8", "fixed"): ("Figure 8 (left): execution time", "time"),
    ("fig8", "scaled"): ("Figure 8 (right): execution time", "time"),
    ("fig9-comm", "fixed"): ("Figure 9(a): communication volume per processor", "comm"),
    ("fig9-comm", "scaled"): ("Figure 9(b): communication volume per processor", "comm"),
    ("fig9-comp", "fixed"): ("Figure 9(c): computation time", "comp"),
    ("fig9-comp", "scaled"): ("Figure 9(d): computation time", "comp"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the evaluation tables/figures of the ADR paper.",
    )
    parser.add_argument(
        "what",
        choices=["table1", "fig8", "fig9", "phases", "auto", "all"],
        help="which paper artifact to regenerate (phases: per-phase "
        "time breakdown behind the fig8 totals; auto: calibrated "
        "cost-model strategy selection vs the simulated grid)",
    )
    parser.add_argument("--app", choices=list(APPS), help="restrict to one application")
    parser.add_argument(
        "--scaling", choices=list(SCALINGS), help="fixed or scaled input (figures)"
    )
    parser.add_argument(
        "--metric",
        choices=["comm", "comp"],
        default=None,
        help="fig9 metric: comm (volume) or comp (computation time)",
    )
    parser.add_argument(
        "--fidelity",
        choices=["full", "fast"],
        default="full",
        help="full = paper-size populations (default); fast = reduced smoke grid",
    )
    parser.add_argument(
        "--procs", type=int, default=None,
        help="processor count for the phases view (default: smallest)",
    )
    parser.add_argument("--seed", type=int, default=20260707)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    grid = ExperimentGrid(fidelity=args.fidelity, seed=args.seed)
    apps = [args.app] if args.app else list(APPS)
    scalings = [args.scaling] if args.scaling else list(SCALINGS)

    def emit_figure(key_prefix: str, metric: str) -> None:
        for scaling in scalings:
            title, m = FIGURES[(key_prefix, scaling)]
            for app in apps:
                print(grid.table(title, app, scaling, m if metric is None else metric))
                print()

    if args.what in ("table1", "all"):
        for app in apps:
            print(grid.table1(app))
            print()
    if args.what in ("fig8", "all"):
        emit_figure("fig8", None)
    if args.what == "phases":
        procs = args.procs if args.procs else grid.procs[0]
        for scaling in scalings:
            for app in apps:
                print(grid.phase_table(app, scaling, procs))
                print()
    if args.what in ("auto", "all"):
        for scaling in scalings:
            for app in apps:
                print(grid.auto_table(app, scaling))
                print()
    if args.what in ("fig9", "all"):
        metrics = [args.metric] if args.metric else ["comm", "comp"]
        for m in metrics:
            for scaling in scalings:
                title, _ = FIGURES[(f"fig9-{m}", scaling)]
                for app in apps:
                    print(grid.table(title, app, scaling, m))
                    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
