"""The experiment grid: application x scaling x processors x strategy.

One :class:`ExperimentGrid` instance memoizes scenarios, problems,
plans and simulation results so that the Figure-8 and Figure-9 views
(execution time, communication volume, computation time) share their
underlying runs.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, List, Tuple

from repro.emulator import SATEmulator, VMEmulator, WCSEmulator
from repro.machine.presets import ibm_sp
from repro.planner.calibrate import CalibratedCostModel, calibrate
from repro.planner.plan import QueryPlan
from repro.planner.select import DA, FRA, SRA, choose_strategy
from repro.planner.stats import PlanStats, plan_stats
from repro.planner.strategies import plan_query
from repro.planner.telemetry import MeasuredRun
from repro.sim.query_sim import SimResult, simulate_query

__all__ = ["APPS", "SCALINGS", "STRATEGIES", "METRICS", "ExperimentGrid"]

APPS: Tuple[str, ...] = ("SAT", "WCS", "VM")
SCALINGS: Tuple[str, ...] = ("fixed", "scaled")
STRATEGIES: Tuple[str, ...] = (FRA, DA, SRA)

MB = 2**20

#: named metrics over SimResult, with display units
METRICS: Dict[str, Tuple[Callable[[SimResult], float], str]] = {
    "time": (lambda r: r.total_time, "seconds"),
    "comm": (lambda r: r.comm_volume_per_proc / MB, "MB/processor"),
    "comp": (lambda r: r.computation_time, "seconds (busiest processor)"),
    "io": (lambda r: r.io_time, "seconds (busiest disk)"),
    "tiles": (lambda r: float(r.n_tiles), "tiles"),
}


class ExperimentGrid:
    """Memoized access to the paper's experiment grid.

    Parameters
    ----------
    fidelity:
        ``"full"`` -- the paper's populations and the 8..128 processor
        axis; ``"fast"`` -- populations divided by 6, processors 8..32.
    seed:
        Emulator seed (one seed for the whole grid, as one dataset
        underlies all of a paper figure).
    """

    def __init__(self, fidelity: str = "full", seed: int = 20260707) -> None:
        if fidelity not in ("full", "fast"):
            raise ValueError("fidelity must be 'full' or 'fast'")
        self.fidelity = fidelity
        self.fast = fidelity == "fast"
        self.seed = seed
        self.procs: Tuple[int, ...] = (8, 16, 32) if self.fast else (8, 16, 32, 64, 128)
        div = 6 if self.fast else 1
        self._emulators = {
            "SAT": SATEmulator(base_chunks=9000 // div),
            "WCS": WCSEmulator(steps_per_scale=max(1, 10 // div)),
            "VM": VMEmulator(input_grid=(32, 32)) if self.fast else VMEmulator(),
        }
        # bound-method lru_caches, one per instance
        self.scenario = lru_cache(maxsize=None)(self._scenario)
        self.problem = lru_cache(maxsize=None)(self._problem)
        self.plan = lru_cache(maxsize=None)(self._plan)
        self.cell = lru_cache(maxsize=None)(self._cell)
        self.cell_stats = lru_cache(maxsize=None)(self._cell_stats)
        self.calibrated_model = lru_cache(maxsize=None)(self._calibrated_model)

    # -- cached layers ---------------------------------------------------

    def emulator(self, app: str):
        return self._emulators[app]

    def _scenario(self, app: str, scale: int):
        return self.emulator(app).scenario(scale, seed=self.seed)

    def _problem(self, app: str, scale: int, n_procs: int):
        return self.scenario(app, scale).problem(ibm_sp(n_procs))

    def _plan(self, app: str, scale: int, n_procs: int, strategy: str) -> QueryPlan:
        return plan_query(self.problem(app, scale, n_procs), strategy)

    def scale_for(self, scaling: str, n_procs: int) -> int:
        if scaling == "fixed":
            return 1
        if scaling == "scaled":
            return max(1, n_procs // 8)
        raise ValueError(f"unknown scaling {scaling!r}")

    def _cell(self, app: str, scaling: str, n_procs: int, strategy: str) -> SimResult:
        scale = self.scale_for(scaling, n_procs)
        plan = self.plan(app, scale, n_procs, strategy)
        return simulate_query(plan, ibm_sp(n_procs), self.scenario(app, scale).costs)

    def _cell_stats(self, app: str, scaling: str, n_procs: int, strategy: str) -> PlanStats:
        scale = self.scale_for(scaling, n_procs)
        return plan_stats(self.plan(app, scale, n_procs, strategy))

    # -- calibrated mode ---------------------------------------------------

    def measured_runs(self, app: str) -> List[MeasuredRun]:
        """Simulated telemetry for one application across the grid: one
        :class:`~repro.planner.telemetry.MeasuredRun` per (scaling,
        processor count, strategy) cell, times from the discrete-event
        simulator."""
        runs: List[MeasuredRun] = []
        for scaling in SCALINGS:
            for p in self.procs:
                scale = self.scale_for(scaling, p)
                for s in STRATEGIES:
                    runs.append(
                        MeasuredRun.from_sim(
                            self.plan(app, scale, p, s),
                            self.cell(app, scaling, p, s),
                        )
                    )
        return runs

    def _calibrated_model(self, app: str) -> CalibratedCostModel:
        """Machine constants fitted from this grid's simulated runs.

        One model per application -- the per-element compute costs
        differ across SAT/WCS/VM, so their fitted constants do too
        (exactly the per-app cost tables the closed-form model takes as
        input, but recovered from observed times instead of entered by
        hand)."""
        return calibrate(self.measured_runs(app))

    def auto_choice(self, app: str, scaling: str, n_procs: int):
        """The calibrated model's strategy pick for one grid point."""
        scale = self.scale_for(scaling, n_procs)
        return choose_strategy(
            self.problem(app, scale, n_procs),
            self.calibrated_model(app),
            candidates=STRATEGIES,
        )

    def auto_table(self, app: str, scaling: str) -> str:
        """Calibrated auto-selection vs measured (simulated) execution."""
        model = self.calibrated_model(app)
        lines = [
            f"== strategy='auto' (calibrated) -- {app}, {scaling} input "
            f"({'fast' if self.fast else 'paper-size'} fidelity) ==",
            "  " + model.diagnostics.summary(),
        ]
        header = (
            "procs | " + " | ".join(f"{s:>8}" for s in STRATEGIES)
            + " | auto pick | measured best | auto/best"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for p in self.procs:
            sims = {s: self.cell(app, scaling, p, s).total_time for s in STRATEGIES}
            pick = self.auto_choice(app, scaling, p).selected
            best = min(sims, key=sims.get)
            ratio = sims[pick] / sims[best]
            lines.append(
                f"{p:5d} | "
                + " | ".join(f"{sims[s]:8.2f}" for s in STRATEGIES)
                + f" | {pick:>9} | {best:>13} | {ratio:8.3f}"
            )
        return "\n".join(lines)

    # -- views ------------------------------------------------------------

    def series(self, app: str, scaling: str, metric: Callable[[SimResult], float]) -> Dict[str, List[float]]:
        return {
            s: [metric(self.cell(app, scaling, p, s)) for p in self.procs]
            for s in STRATEGIES
        }

    def table(self, title: str, app: str, scaling: str, metric_name: str) -> str:
        """A paper-style text table for one (figure, app) pane."""
        metric, unit = METRICS[metric_name]
        lines = [
            f"== {title} -- {app}, {scaling} input "
            f"({'fast' if self.fast else 'paper-size'} fidelity) =="
        ]
        header = "procs | " + " | ".join(f"{s:>10}" for s in STRATEGIES)
        lines.append(header)
        lines.append("-" * len(header))
        data = self.series(app, scaling, metric)
        for i, p in enumerate(self.procs):
            row = f"{p:5d} | " + " | ".join(f"{data[s][i]:10.2f}" for s in STRATEGIES)
            lines.append(row + (f"   [{unit}]" if i == 0 else ""))
        return "\n".join(lines)

    def phase_table(self, app: str, scaling: str, n_procs: int) -> str:
        """Per-phase time composition for every strategy at one machine
        size -- the explanation layer behind the Figure 8 totals."""
        lines = [
            f"== Phase breakdown -- {app}, {scaling} input, {n_procs} processors =="
        ]
        header = (
            "strategy |     init | reduction |  combine |   output |    total"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for s in STRATEGIES:
            r = self.cell(app, scaling, n_procs, s)
            pt = r.phase_times
            lines.append(
                f"{s:>8} | {pt['init']:8.2f} | {pt['reduction']:9.2f} "
                f"| {pt['combine']:8.2f} | {pt['output']:8.2f} "
                f"| {r.total_time:8.2f}"
            )
        return "\n".join(lines)

    def table1(self, app: str) -> str:
        max_scale = 4 if self.fast else 16
        small = self.scenario(app, 1)
        large = self.scenario(app, max_scale)
        c = small.costs
        return "\n".join(
            [
                f"== Table 1 -- {app} ==",
                "  smallest: " + small.table1_row(),
                "  largest:  " + large.table1_row(),
                f"  costs I-LR-GC-OH: {c.init * 1e3:.0f}-{c.reduction * 1e3:.0f}-"
                f"{c.combine * 1e3:.0f}-{c.output * 1e3:.0f} ms",
            ]
        )
