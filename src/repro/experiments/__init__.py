"""Reproduction experiment harness.

Regenerates every table and figure of the paper's evaluation section
from the emulators, planners and simulator.  Importable
(:class:`ExperimentGrid`) and runnable::

    python -m repro.experiments table1
    python -m repro.experiments fig8 --scaling fixed --app SAT
    python -m repro.experiments fig9 --metric comm --scaling scaled
    python -m repro.experiments all --fidelity fast

The benches under ``benchmarks/`` drive the same grid (with
pytest-benchmark timing on top), so CLI output and bench output agree.
"""

from repro.experiments.grid import ExperimentGrid, APPS, SCALINGS

__all__ = ["ExperimentGrid", "APPS", "SCALINGS"]
