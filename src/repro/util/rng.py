"""Deterministic random-number helpers.

Every stochastic component of the library (emulators, random
declustering baseline, synthetic datasets in tests) accepts either an
integer seed or a ready :class:`numpy.random.Generator`; this module
normalizes both into a Generator so results are reproducible.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = ["SeedLike", "make_rng", "spawn_rngs"]

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``None`` produces a fresh nondeterministic generator; an ``int``
    seeds PCG64; an existing Generator is passed through unchanged, so
    callers can thread one generator through a pipeline of components.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive *n* independent child generators from one seed.

    Used when work is split across virtual processors so that each
    processor's stream is independent of the iteration order.
    """
    root = np.random.SeedSequence(seed if isinstance(seed, int) else None)
    return [np.random.default_rng(s) for s in root.spawn(n)]
