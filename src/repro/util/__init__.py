"""Low-level utilities shared by every ADR subsystem.

This package is dependency-free (NumPy only) and provides:

- :mod:`repro.util.geometry` -- axis-aligned rectangles (MBRs) and
  vectorized rectangle predicates used by the indexing, dataset and
  planning services.
- :mod:`repro.util.hilbert` -- a d-dimensional Hilbert space-filling
  curve (both directions), used for declustering (paper ref [12]) and
  for ordering output chunks during tiling (Section 3 of the paper).
- :mod:`repro.util.units` -- byte-size constants and formatting.
- :mod:`repro.util.rng` -- deterministic random-generator helpers.
"""

from repro.util.geometry import Rect, rects_intersect_mask, union_rects
from repro.util.hilbert import (
    hilbert_index,
    hilbert_point,
    hilbert_indices,
    hilbert_sort_keys,
)
from repro.util.units import KB, MB, GB, fmt_bytes
from repro.util.rng import make_rng

__all__ = [
    "Rect",
    "rects_intersect_mask",
    "union_rects",
    "hilbert_index",
    "hilbert_point",
    "hilbert_indices",
    "hilbert_sort_keys",
    "KB",
    "MB",
    "GB",
    "fmt_bytes",
    "make_rng",
]
