"""Axis-aligned rectangles (minimum bounding rectangles).

Every data chunk in ADR is associated with an MBR in a
multi-dimensional attribute space (paper Section 2.2); range queries
are themselves MBRs.  :class:`Rect` is the single geometric primitive
the whole library builds on.

Rectangles are *closed* boxes ``[lo, hi]`` in d dimensions.  Two
rectangles intersect when their closed extents overlap in every
dimension; a rectangle with ``lo == hi`` in some dimension is a valid
degenerate (zero-thickness) box.

For hot paths (index scans, emulator construction, planning) this
module also exposes vectorized predicates over *arrays* of rectangles
stored as two ``(n, d)`` float arrays -- following the guide advice to
vectorize loops instead of iterating over Python objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np

__all__ = ["Rect", "rects_intersect_mask", "rects_contain_points", "union_rects"]


@dataclass(frozen=True)
class Rect:
    """A closed axis-aligned box ``[lo, hi]`` in d dimensions.

    Parameters
    ----------
    lo, hi:
        Coordinate tuples of equal length with ``lo[i] <= hi[i]``.

    The class is immutable and hashable so rectangles can key
    dictionaries (e.g. chunk MBR -> placement maps).
    """

    lo: Tuple[float, ...]
    hi: Tuple[float, ...]

    def __post_init__(self) -> None:
        lo = tuple(float(x) for x in self.lo)
        hi = tuple(float(x) for x in self.hi)
        if len(lo) != len(hi):
            raise ValueError(f"lo has {len(lo)} dims but hi has {len(hi)}")
        if len(lo) == 0:
            raise ValueError("Rect must have at least one dimension")
        for i, (a, b) in enumerate(zip(lo, hi)):
            if a > b:
                raise ValueError(f"lo[{i}]={a} exceeds hi[{i}]={b}")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    # -- constructors -------------------------------------------------

    @staticmethod
    def from_points(points: np.ndarray) -> "Rect":
        """Smallest Rect enclosing an ``(n, d)`` array of points."""
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("from_points expects a non-empty (n, d) array")
        return Rect(tuple(pts.min(axis=0)), tuple(pts.max(axis=0)))

    @staticmethod
    def cube(lo: float, hi: float, ndim: int) -> "Rect":
        """A hypercube ``[lo, hi]^ndim``."""
        return Rect((lo,) * ndim, (hi,) * ndim)

    # -- basic properties ---------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.lo)

    @property
    def extents(self) -> Tuple[float, ...]:
        """Side length in each dimension."""
        return tuple(b - a for a, b in zip(self.lo, self.hi))

    @property
    def center(self) -> Tuple[float, ...]:
        return tuple((a + b) / 2.0 for a, b in zip(self.lo, self.hi))

    @property
    def volume(self) -> float:
        v = 1.0
        for a, b in zip(self.lo, self.hi):
            v *= b - a
        return v

    # -- predicates ----------------------------------------------------

    def intersects(self, other: "Rect") -> bool:
        """True when the closed boxes overlap in every dimension."""
        self._check_ndim(other)
        return all(
            a <= d and c <= b
            for a, b, c, d in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def contains_point(self, point: Sequence[float]) -> bool:
        if len(point) != self.ndim:
            raise ValueError("point dimensionality mismatch")
        return all(a <= p <= b for a, b, p in zip(self.lo, self.hi, point))

    def contains_rect(self, other: "Rect") -> bool:
        self._check_ndim(other)
        return all(
            a <= c and d <= b
            for a, b, c, d in zip(self.lo, self.hi, other.lo, other.hi)
        )

    # -- combinators ----------------------------------------------------

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlap box, or ``None`` when disjoint."""
        self._check_ndim(other)
        lo = tuple(max(a, c) for a, c in zip(self.lo, other.lo))
        hi = tuple(min(b, d) for b, d in zip(self.hi, other.hi))
        if any(a > b for a, b in zip(lo, hi)):
            return None
        return Rect(lo, hi)

    def union(self, other: "Rect") -> "Rect":
        """Smallest box enclosing both rectangles."""
        self._check_ndim(other)
        lo = tuple(min(a, c) for a, c in zip(self.lo, other.lo))
        hi = tuple(max(b, d) for b, d in zip(self.hi, other.hi))
        return Rect(lo, hi)

    def expanded(self, margin: float) -> "Rect":
        """Grow the box by *margin* on every side (clamped to validity)."""
        lo = tuple(a - margin for a in self.lo)
        hi = tuple(b + margin for b in self.hi)
        if any(a > b for a, b in zip(lo, hi)):
            raise ValueError("negative margin collapsed the rectangle")
        return Rect(lo, hi)

    def enlargement(self, other: "Rect") -> float:
        """Volume increase if this box were grown to cover *other*.

        This is the R-tree ``ChooseLeaf`` metric.
        """
        return self.union(other).volume - self.volume

    # -- conversion ------------------------------------------------------

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.lo, dtype=float), np.asarray(self.hi, dtype=float)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        """Iterate per-dimension ``(lo, hi)`` pairs."""
        return iter(zip(self.lo, self.hi))

    def __repr__(self) -> str:  # keep debug output compact
        dims = ", ".join(f"[{a:g},{b:g}]" for a, b in zip(self.lo, self.hi))
        return f"Rect({dims})"

    def _check_ndim(self, other: "Rect") -> None:
        if other.ndim != self.ndim:
            raise ValueError(
                f"dimensionality mismatch: {self.ndim} vs {other.ndim}"
            )


# ---------------------------------------------------------------------------
# Vectorized predicates over packed rectangle arrays
# ---------------------------------------------------------------------------


def pack_rects(rects: Iterable[Rect]) -> Tuple[np.ndarray, np.ndarray]:
    """Pack rectangles into ``(n, d)`` lo/hi arrays for vector math."""
    rect_list = list(rects)
    if not rect_list:
        raise ValueError("pack_rects needs at least one rectangle")
    ndim = rect_list[0].ndim
    los = np.empty((len(rect_list), ndim), dtype=float)
    his = np.empty((len(rect_list), ndim), dtype=float)
    for i, r in enumerate(rect_list):
        if r.ndim != ndim:
            raise ValueError("mixed dimensionality in pack_rects")
        los[i] = r.lo
        his[i] = r.hi
    return los, his


def rects_intersect_mask(
    los: np.ndarray, his: np.ndarray, query: Rect
) -> np.ndarray:
    """Boolean mask of rows in ``(los, his)`` intersecting *query*.

    ``los``/``his`` are ``(n, d)`` arrays as produced by
    :func:`pack_rects`.  This is the brute-force index scan and the
    inner kernel of the R-tree leaf check.
    """
    qlo, qhi = query.as_arrays()
    if los.shape != his.shape or los.ndim != 2:
        raise ValueError("los/his must be matching (n, d) arrays")
    if los.shape[1] != query.ndim:
        raise ValueError("query dimensionality mismatch")
    return np.all((los <= qhi) & (qlo <= his), axis=1)


def rects_contain_points(
    los: np.ndarray, his: np.ndarray, points: np.ndarray
) -> np.ndarray:
    """``(n_rects, n_points)`` containment matrix (closed boxes)."""
    pts = np.asarray(points, dtype=float)
    return np.all(
        (los[:, None, :] <= pts[None, :, :]) & (pts[None, :, :] <= his[:, None, :]),
        axis=2,
    )


def union_rects(rects: Iterable[Rect]) -> Rect:
    """Smallest Rect enclosing all input rectangles."""
    it = iter(rects)
    try:
        acc = next(it)
    except StopIteration:
        raise ValueError("union_rects needs at least one rectangle") from None
    for r in it:
        acc = acc.union(r)
    return acc
