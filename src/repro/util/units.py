"""Byte-size constants and human-readable formatting.

All sizes inside the library are plain ``int`` byte counts; these
constants exist so that configuration code reads like the paper
("256 MB of memory", "110 MB/sec peak bandwidth").
"""

from __future__ import annotations

__all__ = ["KB", "MB", "GB", "fmt_bytes", "fmt_seconds"]

KB: int = 1024
MB: int = 1024 * 1024
GB: int = 1024 * 1024 * 1024


def fmt_bytes(n: float) -> str:
    """Format a byte count with a binary suffix.

    >>> fmt_bytes(25 * MB)
    '25.0 MB'
    >>> fmt_bytes(512)
    '512 B'
    """
    n = float(n)
    for unit, div in (("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(n) >= div:
            return f"{n / div:.1f} {unit}"
    return f"{int(n)} B"


def fmt_seconds(t: float) -> str:
    """Format a duration in seconds for report tables.

    >>> fmt_seconds(123.456)
    '123.46 s'
    >>> fmt_seconds(0.001234)
    '1.23 ms'
    """
    if abs(t) >= 1.0:
        return f"{t:.2f} s"
    return f"{t * 1e3:.2f} ms"
