"""d-dimensional Hilbert space-filling curve.

ADR uses Hilbert curves in two places (paper Sections 2.2 and 3):

1. *Declustering*: chunks are assigned to disks in Hilbert order so
   that spatially adjacent chunks land on different disks and a range
   query draws from many disks at once (refs [12, 21]).
2. *Tiling*: output chunks are sorted by the Hilbert index of their
   MBR mid-point and assigned to tiles in that order, which keeps each
   tile spatially compact and minimizes input chunks straddling tile
   boundaries (Section 3).

The implementation is John Skilling's compact transpose algorithm
("Programming the Hilbert curve", AIP 2004), which generalizes the
classic 2-D curve used by the paper's references to any dimension and
order.  Two code paths are provided:

- scalar functions on Python ints (arbitrary precision, any
  ``bits * ndim``), and
- a vectorized NumPy path used for bulk chunk populations, following
  the HPC guide's "vectorize the loop over items, keep the loop over
  bits" idiom.  The vectorized path requires ``bits * ndim <= 62`` so
  indices fit in int64; the library's callers quantize to 16 bits or
  fewer per axis, comfortably inside that bound.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.util.geometry import Rect

__all__ = [
    "hilbert_index",
    "hilbert_point",
    "hilbert_indices",
    "hilbert_sort_keys",
]


# ---------------------------------------------------------------------------
# Scalar path (Python ints, arbitrary precision)
# ---------------------------------------------------------------------------


def _axes_to_transpose(x: list[int], bits: int) -> list[int]:
    """In-place Skilling forward transform: axes -> transposed Hilbert."""
    n = len(x)
    m = 1 << (bits - 1)
    # Inverse undo of the excess work baked into Gray-code ordering.
    q = m
    while q > 1:
        p = q - 1
        for i in range(n):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q >>= 1
    # Gray encode.
    for i in range(1, n):
        x[i] ^= x[i - 1]
    t = 0
    q = m
    while q > 1:
        if x[n - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(n):
        x[i] ^= t
    return x


def _transpose_to_axes(x: list[int], bits: int) -> list[int]:
    """In-place Skilling inverse transform: transposed Hilbert -> axes."""
    n = len(x)
    top = 2 << (bits - 1)
    # Gray decode by H ^ (H/2).
    t = x[n - 1] >> 1
    for i in range(n - 1, 0, -1):
        x[i] ^= x[i - 1]
    x[0] ^= t
    # Undo excess work.
    q = 2
    while q != top:
        p = q - 1
        for i in range(n - 1, -1, -1):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q <<= 1
    return x


def _pack_transpose(x: Sequence[int], bits: int) -> int:
    """Interleave transpose words into a single Hilbert index."""
    h = 0
    for bit in range(bits - 1, -1, -1):
        for xi in x:
            h = (h << 1) | ((xi >> bit) & 1)
    return h


def _unpack_transpose(h: int, bits: int, ndim: int) -> list[int]:
    """De-interleave a Hilbert index into transpose words."""
    x = [0] * ndim
    pos = bits * ndim
    for bit in range(bits - 1, -1, -1):
        for i in range(ndim):
            pos -= 1
            x[i] = (x[i] << 1) | ((h >> pos) & 1)
    # The loop above already walks bits msb->lsb, so x is complete.
    return x


def _check_args(bits: int, ndim: int) -> None:
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    if ndim < 1:
        raise ValueError(f"ndim must be >= 1, got {ndim}")


def hilbert_index(coords: Sequence[int], bits: int) -> int:
    """Hilbert index of a grid point.

    Parameters
    ----------
    coords:
        Integer grid coordinates, each in ``[0, 2**bits)``.
    bits:
        Curve order (bits per axis).

    Returns
    -------
    int
        Position along the curve, in ``[0, 2**(bits*len(coords)))``.
    """
    ndim = len(coords)
    _check_args(bits, ndim)
    x = []
    for c in coords:
        c = int(c)
        if not 0 <= c < (1 << bits):
            raise ValueError(f"coordinate {c} outside [0, 2**{bits})")
        x.append(c)
    if ndim == 1:
        return x[0]
    _axes_to_transpose(x, bits)
    return _pack_transpose(x, bits)


def hilbert_point(index: int, bits: int, ndim: int) -> Tuple[int, ...]:
    """Inverse of :func:`hilbert_index`: curve position -> grid point."""
    _check_args(bits, ndim)
    index = int(index)
    if not 0 <= index < (1 << (bits * ndim)):
        raise ValueError(f"index {index} outside [0, 2**{bits * ndim})")
    if ndim == 1:
        return (index,)
    x = _unpack_transpose(index, bits, ndim)
    _transpose_to_axes(x, bits)
    return tuple(x)


# ---------------------------------------------------------------------------
# Vectorized path (NumPy, bits * ndim <= 62)
# ---------------------------------------------------------------------------


def hilbert_indices(coords: np.ndarray, bits: int) -> np.ndarray:
    """Hilbert indices for an ``(n, d)`` array of integer grid points.

    Vectorized across points: the loops run over ``bits`` and ``d``
    only, with all n points processed per step as NumPy bit-ops.
    """
    pts = np.ascontiguousarray(coords, dtype=np.int64)
    if pts.ndim != 2:
        raise ValueError("coords must be an (n, d) array")
    n_pts, ndim = pts.shape
    _check_args(bits, ndim)
    if bits * ndim > 62:
        raise ValueError(
            f"bits*ndim = {bits * ndim} exceeds the int64 vectorized "
            "limit of 62; use the scalar hilbert_index instead"
        )
    if n_pts == 0:
        return np.empty(0, dtype=np.int64)
    if pts.min() < 0 or pts.max() >= (1 << bits):
        raise ValueError(f"coordinates outside [0, 2**{bits})")
    if ndim == 1:
        return pts[:, 0].copy()

    x = [pts[:, i].copy() for i in range(ndim)]

    # Inverse undo.
    q = np.int64(1 << (bits - 1))
    while q > 1:
        p = q - 1
        for i in range(ndim):
            hit = (x[i] & q) != 0
            # Where hit: invert low bits of x[0]; else swap bits with x[0].
            t = np.where(hit, 0, (x[0] ^ x[i]) & p)
            x[0] = np.where(hit, x[0] ^ p, x[0] ^ t)
            x[i] ^= t
        q >>= 1

    # Gray encode.
    for i in range(1, ndim):
        x[i] ^= x[i - 1]
    t = np.zeros(n_pts, dtype=np.int64)
    q = np.int64(1 << (bits - 1))
    while q > 1:
        t ^= np.where((x[ndim - 1] & q) != 0, q - 1, 0)
        q >>= 1
    for i in range(ndim):
        x[i] ^= t

    # Interleave transpose words into indices.
    h = np.zeros(n_pts, dtype=np.int64)
    for bit in range(bits - 1, -1, -1):
        for i in range(ndim):
            h = (h << 1) | ((x[i] >> bit) & 1)
    return h


def hilbert_sort_keys(
    points: np.ndarray, bbox: Rect, bits: int = 16
) -> np.ndarray:
    """Hilbert keys for float points, quantized inside a bounding box.

    This is the helper the planner and declusterer call: chunk MBR
    mid-points (floats in attribute-space units) are snapped to a
    ``2**bits`` grid over *bbox* and converted to curve positions.
    Points on the upper boundary map to the last grid cell.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim == 1:
        pts = pts[None, :]
    if pts.shape[1] != bbox.ndim:
        raise ValueError("points dimensionality does not match bbox")
    lo, hi = bbox.as_arrays()
    span = hi - lo
    # Degenerate (zero-extent) dimensions all quantize to cell 0.
    safe_span = np.where(span > 0, span, 1.0)
    scale = (1 << bits) / safe_span
    cells = np.floor((pts - lo) * scale).astype(np.int64)
    cells = np.clip(cells, 0, (1 << bits) - 1)
    return hilbert_indices(cells, bits)
