"""Grid-cell expansion helpers.

A mapped input item covers an inclusive range of output grid cells
(its footprint).  :func:`expand_cell_ranges` enumerates the individual
cells, vectorized by grouping items with equal footprint shapes so the
per-item fan-out loop never runs in Python.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["expand_cell_ranges"]


def expand_cell_ranges(
    lo_cells: np.ndarray, hi_cells: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Enumerate all cells in per-item inclusive ranges.

    Parameters
    ----------
    lo_cells, hi_cells:
        ``(n, d)`` integer arrays with ``lo <= hi`` per item.

    Returns
    -------
    (item_idx, cells):
        ``item_idx`` is ``(m,)`` -- which input item each expanded cell
        belongs to; ``cells`` is ``(m, d)`` cell coordinates.  Items
        appear in input order; cells within an item in row-major order.
    """
    lo = np.asarray(lo_cells, dtype=np.int64)
    hi = np.asarray(hi_cells, dtype=np.int64)
    if lo.shape != hi.shape or lo.ndim != 2:
        raise ValueError("lo_cells/hi_cells must be matching (n, d) arrays")
    if np.any(lo > hi):
        raise ValueError("some ranges have lo > hi")
    n, d = lo.shape
    if n == 0:
        return np.empty(0, dtype=np.int64), np.empty((0, d), dtype=np.int64)

    spans = hi - lo + 1  # (n, d)
    # Group items by footprint shape; each group expands with one
    # broadcast against a shared offsets table.
    keys = spans
    order = np.lexsort(tuple(keys[:, j] for j in range(d - 1, -1, -1)))
    sorted_keys = keys[order]
    boundaries = np.flatnonzero(np.any(np.diff(sorted_keys, axis=0) != 0, axis=1)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [n]))

    item_parts: list[np.ndarray] = []
    cell_parts: list[np.ndarray] = []
    for s, e in zip(starts, ends):
        grp = order[s:e]
        shape = tuple(int(x) for x in sorted_keys[s])
        k = int(np.prod(shape))
        offsets = np.stack(
            np.unravel_index(np.arange(k), shape), axis=1
        ).astype(np.int64)  # (k, d)
        cells = lo[grp][:, None, :] + offsets[None, :, :]  # (g, k, d)
        item_parts.append(np.repeat(grp, k))
        cell_parts.append(cells.reshape(-1, d))

    item_idx = np.concatenate(item_parts)
    cells = np.concatenate(cell_parts)
    # Restore input-item order (groups shuffled it).
    back = np.argsort(item_idx, kind="stable")
    return item_idx[back], cells[back]
