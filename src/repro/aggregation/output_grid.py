"""The output dataset model: a regular grid of cells, blocked into chunks.

Every application in the paper produces a dense regular array ("the
output datasets are regular arrays, hence each output dataset is
divided into regular multi-dimensional rectangular regions").  An
:class:`OutputGrid` describes such an array: the attribute space it
spans, the global cell resolution, and the chunk blocking.  It
provides the coordinate plumbing the execution engine needs --
cell coordinates -> (chunk id, local cell index) -- fully vectorized.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from repro.dataset.chunkset import ChunkSet
from repro.dataset.partition import regular_grid_chunkset
from repro.space.attribute_space import AttributeSpace
from repro.util.geometry import Rect

__all__ = ["OutputGrid"]


class OutputGrid:
    """A chunked regular output grid.

    Parameters
    ----------
    space:
        Output attribute space (cells evenly tile its bounds).
    grid_shape:
        Global cell counts per dimension.
    chunk_shape:
        Cells per chunk per dimension; the last block in a dimension
        may be smaller when the shapes do not divide evenly.
    cell_value_bytes:
        Bytes per cell in the *final output* (chunk nbytes derive from
        this); the accumulator may be wider, which is the
        :class:`~repro.aggregation.functions.AggregationSpec`'s say.
    """

    def __init__(
        self,
        space: AttributeSpace,
        grid_shape: Sequence[int],
        chunk_shape: Sequence[int],
        cell_value_bytes: int = 8,
    ) -> None:
        self.space = space
        self.grid_shape = tuple(int(s) for s in grid_shape)
        self.chunk_shape = tuple(int(s) for s in chunk_shape)
        if len(self.grid_shape) != space.ndim or len(self.chunk_shape) != space.ndim:
            raise ValueError("grid/chunk shapes must match the space dimensionality")
        if any(s < 1 for s in self.grid_shape) or any(s < 1 for s in self.chunk_shape):
            raise ValueError("shapes must be positive")
        if any(c > g for c, g in zip(self.chunk_shape, self.grid_shape)):
            raise ValueError("chunk_shape cannot exceed grid_shape")
        if cell_value_bytes < 1:
            raise ValueError("cell_value_bytes must be >= 1")
        self.cell_value_bytes = int(cell_value_bytes)
        self.blocks = tuple(
            math.ceil(g / c) for g, c in zip(self.grid_shape, self.chunk_shape)
        )

    # -- sizes --------------------------------------------------------

    @property
    def ndim(self) -> int:
        return self.space.ndim

    @property
    def n_cells(self) -> int:
        return int(np.prod(self.grid_shape))

    @property
    def n_chunks(self) -> int:
        return int(np.prod(self.blocks))

    def chunk_block(self, chunk_id: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Inclusive-exclusive cell ranges ``(start, stop)`` of a chunk."""
        coords = np.unravel_index(chunk_id, self.blocks)
        start = tuple(int(c) * s for c, s in zip(coords, self.chunk_shape))
        stop = tuple(
            min(a + s, g)
            for a, s, g in zip(start, self.chunk_shape, self.grid_shape)
        )
        return start, stop

    def cells_in_chunk(self, chunk_id: int) -> int:
        start, stop = self.chunk_block(chunk_id)
        return int(np.prod([b - a for a, b in zip(start, stop)]))

    def chunk_cell_counts(self) -> np.ndarray:
        """``(n_chunks,)`` cells per chunk (edge chunks may be smaller)."""
        return np.asarray(
            [self.cells_in_chunk(c) for c in range(self.n_chunks)], dtype=np.int64
        )

    # -- chunk metadata ---------------------------------------------------

    def chunkset(self) -> ChunkSet:
        """Packed chunk metadata for planning (MBRs in space units)."""
        lo, hi = self.space.bounds.as_arrays()
        span = np.where(np.asarray(self.grid_shape) > 0, hi - lo, 1.0)
        cell = span / np.asarray(self.grid_shape)
        n = self.n_chunks
        los = np.empty((n, self.ndim))
        his = np.empty((n, self.ndim))
        nbytes = np.empty(n, dtype=np.int64)
        items = np.empty(n, dtype=np.int64)
        for cid in range(n):
            start, stop = self.chunk_block(cid)
            los[cid] = lo + np.asarray(start) * cell
            his[cid] = lo + np.asarray(stop) * cell
            cells = int(np.prod([b - a for a, b in zip(start, stop)]))
            items[cid] = cells
            nbytes[cid] = cells * self.cell_value_bytes
        return ChunkSet(los, his, nbytes, items)

    # -- cell coordinate plumbing -------------------------------------------

    def chunk_of_cells(self, cells: np.ndarray) -> np.ndarray:
        """Chunk id for each ``(m, d)`` cell coordinate row."""
        cells = np.asarray(cells, dtype=np.int64)
        blocks = cells // np.asarray(self.chunk_shape)
        return np.ravel_multi_index(tuple(blocks.T), self.blocks)

    def local_cell_index(self, chunk_id: int, cells: np.ndarray) -> np.ndarray:
        """Row-major index within *chunk_id* for each cell coordinate."""
        cells = np.asarray(cells, dtype=np.int64)
        start, stop = self.chunk_block(chunk_id)
        local = cells - np.asarray(start)
        shape = tuple(b - a for a, b in zip(start, stop))
        if np.any(local < 0) or np.any(local >= np.asarray(shape)):
            raise IndexError("cells outside the chunk block")
        return np.ravel_multi_index(tuple(local.T), shape)

    def clip_cells(self, cells: np.ndarray) -> np.ndarray:
        """Clamp cell coordinates into the grid (footprints may poke out)."""
        return np.clip(cells, 0, np.asarray(self.grid_shape) - 1)

    def assemble(self, chunk_values: Sequence[np.ndarray]) -> np.ndarray:
        """Stitch per-chunk output values into the full dense array.

        ``chunk_values[c]`` is ``(cells_in_chunk(c), k)``; the result
        has shape ``grid_shape + (k,)``.
        """
        if len(chunk_values) != self.n_chunks:
            raise ValueError("one value array per chunk required")
        if not len(chunk_values):  # zero-chunk grid: nothing to stitch
            return np.full(self.grid_shape + (1,), np.nan)
        k = chunk_values[0].shape[1]
        full = np.empty(self.grid_shape + (k,), dtype=chunk_values[0].dtype)
        for cid, vals in enumerate(chunk_values):
            start, stop = self.chunk_block(cid)
            shape = tuple(b - a for a, b in zip(start, stop))
            if vals.shape != (int(np.prod(shape)), k):
                raise ValueError(f"chunk {cid} values have wrong shape")
            sl = tuple(slice(a, b) for a, b in zip(start, stop))
            full[sl] = vals.reshape(shape + (k,))
        return full
