"""Accumulator memory management.

During query execution every processor holds accumulator chunks for
the current tile -- its own local chunks plus, under FRA/SRA, ghost
chunks for output it does not own.  :class:`AccumulatorSet` is one
processor's view: it allocates, tracks and releases accumulator arrays
and enforces the memory budget the tiling step planned against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

import numpy as np

from repro.aggregation.functions import AggregationSpec

__all__ = ["Accumulator", "AccumulatorSet"]


@dataclass
class Accumulator:
    """One accumulator chunk: intermediate results for one output chunk."""

    output_chunk: int
    data: np.ndarray  # (n_cells, acc_components)
    ghost: bool  # True when this processor does not own the output chunk

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)


class AccumulatorSet:
    """Per-processor accumulator chunks for the current tile."""

    def __init__(self, spec: AggregationSpec, memory_limit: int | None = None) -> None:
        self.spec = spec
        self.memory_limit = memory_limit
        self._chunks: Dict[int, Accumulator] = {}
        self._bytes = 0

    def allocate(self, output_chunk: int, n_cells: int, ghost: bool) -> Accumulator:
        """Allocate + initialize an accumulator chunk (phase 1)."""
        if output_chunk in self._chunks:
            raise KeyError(f"accumulator for output chunk {output_chunk} already allocated")
        need = self.spec.acc_bytes(n_cells)
        if self.memory_limit is not None and self._bytes + need > self.memory_limit:
            raise MemoryError(
                f"allocating {need} bytes for output chunk {output_chunk} exceeds "
                f"the {self.memory_limit}-byte accumulator budget "
                f"({self._bytes} in use) -- the tiling step should prevent this"
            )
        acc = Accumulator(output_chunk, self.spec.initialize(n_cells), ghost)
        self._chunks[output_chunk] = acc
        self._bytes += acc.nbytes
        return acc

    def get(self, output_chunk: int) -> Accumulator:
        try:
            return self._chunks[output_chunk]
        except KeyError:
            raise KeyError(
                f"no accumulator for output chunk {output_chunk} on this processor"
            ) from None

    def __contains__(self, output_chunk: int) -> bool:
        return output_chunk in self._chunks

    def __len__(self) -> int:
        return len(self._chunks)

    def __iter__(self) -> Iterator[Accumulator]:
        return iter(self._chunks.values())

    @property
    def bytes_in_use(self) -> int:
        return self._bytes

    def aggregate(self, output_chunk: int, cell_idx: np.ndarray, values: np.ndarray) -> None:
        """Fold mapped items into one accumulator chunk (phase 2)."""
        self.spec.aggregate(self.get(output_chunk).data, cell_idx, values)

    def combine_from(self, output_chunk: int, ghost_data: np.ndarray) -> None:
        """Merge a ghost accumulator received from another processor
        into the locally owned chunk (phase 3)."""
        acc = self.get(output_chunk)
        if acc.ghost:
            raise ValueError(
                f"output chunk {output_chunk} is a ghost here; combine must "
                "run on the owning processor"
            )
        if ghost_data.shape != acc.data.shape:
            raise ValueError("ghost accumulator shape mismatch")
        self.spec.combine(acc.data, ghost_data)

    def ghosts(self) -> Iterator[Accumulator]:
        """The ghost chunks to ship to their owners in phase 3."""
        return (a for a in self._chunks.values() if a.ghost)

    def locals(self) -> Iterator[Accumulator]:
        return (a for a in self._chunks.values() if not a.ghost)

    def clear(self) -> None:
        """Release everything (end of tile)."""
        self._chunks.clear()
        self._bytes = 0
