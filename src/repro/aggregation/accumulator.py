"""Accumulator memory management.

During query execution every processor holds accumulator chunks for
the current tile -- its own local chunks plus, under FRA/SRA, ghost
chunks for output it does not own.  :class:`AccumulatorSet` is one
processor's view: it allocates, tracks and releases accumulator arrays
and enforces the memory budget the tiling step planned against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.aggregation.functions import AggregationSpec

__all__ = ["Accumulator", "AccumulatorSet", "BufferPool"]


class BufferPool:
    """Recycles accumulator arrays across tiles.

    ``AccumulatorSet.clear()`` runs at every tile boundary; without a
    pool that is one fresh ``np.zeros``-style allocation per (output
    chunk, holder, tile).  Tiles repeat the same few accumulator
    shapes, so released buffers are kept keyed by shape and handed
    back on the next ``allocate`` after an in-place
    :meth:`~repro.aggregation.functions.AggregationSpec.initialize_into`.
    Not thread-safe (one pool per virtual processor or engine run).
    """

    def __init__(self, max_buffers_per_shape: int = 64) -> None:
        self.max_buffers_per_shape = int(max_buffers_per_shape)
        self._free: Dict[Tuple[int, ...], List[np.ndarray]] = {}
        self.reuses = 0
        self.fresh_allocations = 0
        self.returned = 0

    def take(self, shape: Tuple[int, ...]) -> Optional[np.ndarray]:
        """A recycled buffer of *shape*, or None (caller allocates)."""
        stack = self._free.get(shape)
        if stack:
            self.reuses += 1
            return stack.pop()
        self.fresh_allocations += 1
        return None

    def put(self, array: np.ndarray) -> None:
        """Return a released accumulator buffer to the pool."""
        if not array.flags.owndata or not array.flags.writeable:
            return  # views into arenas (parallel backend) are not poolable
        stack = self._free.setdefault(array.shape, [])
        if len(stack) < self.max_buffers_per_shape:
            stack.append(array)
        self.returned += 1

    @property
    def buffers_held(self) -> int:
        return sum(len(s) for s in self._free.values())

    def stats(self) -> dict:
        return {
            "pool_reuses": self.reuses,
            "pool_fresh_allocations": self.fresh_allocations,
            "pool_buffers_held": self.buffers_held,
        }


@dataclass
class Accumulator:
    """One accumulator chunk: intermediate results for one output chunk."""

    output_chunk: int
    data: np.ndarray  # (n_cells, acc_components)
    ghost: bool  # True when this processor does not own the output chunk

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)


class AccumulatorSet:
    """Per-processor accumulator chunks for the current tile."""

    def __init__(
        self,
        spec: AggregationSpec,
        memory_limit: int | None = None,
        pool: BufferPool | None = None,
    ) -> None:
        self.spec = spec
        self.memory_limit = memory_limit
        self.pool = pool
        self._chunks: Dict[int, Accumulator] = {}
        self._bytes = 0

    def allocate(
        self,
        output_chunk: int,
        n_cells: int,
        ghost: bool,
        data: np.ndarray | None = None,
    ) -> Accumulator:
        """Allocate + initialize an accumulator chunk (phase 1).

        When *data* is given (the parallel backend's shared-memory
        arena views), it is re-initialized in place and used directly;
        the pool is bypassed, but the memory budget still applies.
        """
        if output_chunk in self._chunks:
            raise KeyError(f"accumulator for output chunk {output_chunk} already allocated")
        need = self.spec.acc_bytes(n_cells)
        if self.memory_limit is not None and self._bytes + need > self.memory_limit:
            raise MemoryError(
                f"allocating {need} bytes for output chunk {output_chunk} exceeds "
                f"the {self.memory_limit}-byte accumulator budget "
                f"({self._bytes} in use) -- the tiling step should prevent this"
            )
        if data is not None:
            self.spec.initialize_into(data)
        elif self.pool is not None:
            data = self.pool.take((n_cells, self.spec.acc_components))
            if data is not None:
                self.spec.initialize_into(data)
        if data is None:
            data = self.spec.initialize(n_cells)
        acc = Accumulator(output_chunk, data, ghost)
        self._chunks[output_chunk] = acc
        self._bytes += acc.nbytes
        return acc

    def get(self, output_chunk: int) -> Accumulator:
        try:
            return self._chunks[output_chunk]
        except KeyError:
            raise KeyError(
                f"no accumulator for output chunk {output_chunk} on this processor"
            ) from None

    def __contains__(self, output_chunk: int) -> bool:
        return output_chunk in self._chunks

    def __len__(self) -> int:
        return len(self._chunks)

    def __iter__(self) -> Iterator[Accumulator]:
        return iter(self._chunks.values())

    @property
    def bytes_in_use(self) -> int:
        return self._bytes

    def aggregate(self, output_chunk: int, cell_idx: np.ndarray, values: np.ndarray) -> None:
        """Fold mapped items into one accumulator chunk (phase 2)."""
        self.spec.aggregate(self.get(output_chunk).data, cell_idx, values)

    def aggregate_grouped(
        self, output_chunk: int, cell_idx: np.ndarray, values: np.ndarray
    ) -> None:
        """Fused phase-2 fold: *cell_idx* is pre-sorted, *values* is
        already a validated float ``(n, value_components)`` batch (see
        :meth:`AggregationSpec.aggregate_grouped`)."""
        self.spec.aggregate_grouped(self.get(output_chunk).data, cell_idx, values)

    def scatter_groups(
        self, output_chunk: int, cell_idx: np.ndarray, reduced: np.ndarray
    ) -> None:
        """Fold pre-reduced cell runs into one accumulator chunk (the
        per-segment tail of the read-level
        :meth:`AggregationSpec.prereduce_groups` fast path)."""
        self.spec.scatter_groups(self.get(output_chunk).data, cell_idx, reduced)

    def combine_from(self, output_chunk: int, ghost_data: np.ndarray) -> None:
        """Merge a ghost accumulator received from another processor
        into the locally owned chunk (phase 3)."""
        acc = self.get(output_chunk)
        if acc.ghost:
            raise ValueError(
                f"output chunk {output_chunk} is a ghost here; combine must "
                "run on the owning processor"
            )
        if ghost_data.shape != acc.data.shape:
            raise ValueError("ghost accumulator shape mismatch")
        self.spec.combine(acc.data, ghost_data)

    def ghosts(self) -> Iterator[Accumulator]:
        """The ghost chunks to ship to their owners in phase 3."""
        return (a for a in self._chunks.values() if a.ghost)

    def locals(self) -> Iterator[Accumulator]:
        return (a for a in self._chunks.values() if not a.ghost)

    def clear(self) -> None:
        """Release everything (end of tile); pooled buffers recycle."""
        if self.pool is not None:
            for acc in self._chunks.values():
                self.pool.put(acc.data)
        self._chunks.clear()
        self._bytes = 0
