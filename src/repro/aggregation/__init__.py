"""Data aggregation service (paper Section 2.1).

"Manages the user-provided functions Initialize and Aggregate to be
used in aggregation operations, and Output functions to generate the
final outputs.  It also encapsulates the data types of both the
intermediate results (accumulator) used by these functions and the
final outputs."

An :class:`AggregationSpec` bundles the four user functions; the
library ships the distributive and algebraic aggregations the paper's
applications rely on (sum, count, min, max, mean, and the AVHRR-style
best-value compositing).  All aggregations are associative and
commutative -- the property that makes the FRA/SRA global-combine
phase correct -- and the property tests pin that down.
"""

from repro.aggregation.functions import (
    AggregationSpec,
    SumAggregation,
    CountAggregation,
    MinAggregation,
    MaxAggregation,
    MeanAggregation,
    BestValueComposite,
    AGGREGATIONS,
)
from repro.aggregation.extra import (
    VarianceAggregation,
    WeightedMeanAggregation,
    MedianAggregation,
    HolisticAggregationError,
)
from repro.aggregation.output_grid import OutputGrid
from repro.aggregation.accumulator import Accumulator, AccumulatorSet

__all__ = [
    "AggregationSpec",
    "SumAggregation",
    "CountAggregation",
    "MinAggregation",
    "MaxAggregation",
    "MeanAggregation",
    "BestValueComposite",
    "AGGREGATIONS",
    "VarianceAggregation",
    "WeightedMeanAggregation",
    "MedianAggregation",
    "HolisticAggregationError",
    "OutputGrid",
    "Accumulator",
    "AccumulatorSet",
]
