"""Aggregation functions: Initialize / Aggregate / Combine / Output.

The paper restricts aggregations to the distributive and algebraic
functions of Gray et al. [15]: associative, commutative operations
whose partial results can be merged.  That restriction is what allows
ADR to replicate accumulator chunks (FRA/SRA) and merge them in the
global-combine phase, or to aggregate forwarded input in any arrival
order (DA).

An accumulator here is a ``(n_cells, n_components)`` array per output
chunk.  The four functions are:

``initialize(n_cells)``
    Fresh accumulator for a chunk (step 3 of the processing loop).
``aggregate(acc, cell_idx, values)``
    Fold a batch of mapped input items into accumulator rows, in
    place.  ``cell_idx`` may repeat -- scatter-reduction semantics.
``combine(acc_into, acc_from)``
    Merge a partial accumulator into another, in place (the global
    combine phase).  Must satisfy ``combine(init, x) == x`` and be
    associative + commutative.
``output(acc)``
    Post-process intermediate results into final output values
    (steps 9--11).

Two optional fast paths ride on top of the four (each with the scalar
path as its oracle, so custom aggregations need not implement them):

``aggregate_grouped(acc, cell_idx, values)``
    Batched scatter for the fused reduction kernels
    (:mod:`repro.runtime.kernels`): ``cell_idx`` is sorted ascending
    and ``values`` is already a validated float ``(n, components)``
    batch, so duplicate cells can be pre-reduced with
    ``ufunc.reduceat`` and folded in with plain fancy indexing instead
    of the much slower ``np.add.at``-family scatter.
``initialize_into(acc)``
    Re-initialize a recycled accumulator buffer in place (the
    :class:`~repro.aggregation.accumulator.BufferPool` fast path).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Type

import numpy as np

__all__ = [
    "sorted_group_starts",
    "AggregationSpec",
    "SumAggregation",
    "CountAggregation",
    "MinAggregation",
    "MaxAggregation",
    "MeanAggregation",
    "BestValueComposite",
    "AGGREGATIONS",
]


def sorted_group_starts(cell_idx: np.ndarray) -> tuple:
    """``(unique_cells, starts)`` for an ascending-sorted index array:
    ``cell_idx[starts[k]:starts[k+1]]`` is the run of ``unique_cells[k]``.

    The building block of every ``aggregate_grouped`` fast path --
    runs feed ``ufunc.reduceat`` so each unique cell is touched once.
    """
    starts = np.concatenate(([0], np.flatnonzero(np.diff(cell_idx)) + 1))
    return cell_idx[starts], starts


class AggregationSpec(ABC):
    """One user aggregation: accumulator layout plus the four functions.

    Parameters
    ----------
    value_components:
        Number of components per input item value (e.g. sensor bands).
    """

    def __init__(self, value_components: int = 1) -> None:
        if value_components < 1:
            raise ValueError("value_components must be >= 1")
        self.value_components = value_components

    # -- accumulator layout --------------------------------------------

    @property
    @abstractmethod
    def acc_components(self) -> int:
        """Components per accumulator cell."""

    @property
    @abstractmethod
    def output_components(self) -> int:
        """Components per final output cell."""

    @property
    def acc_dtype(self) -> np.dtype:
        return np.dtype(np.float64)

    def acc_bytes(self, n_cells: int) -> int:
        """Memory footprint of an accumulator with *n_cells* cells --
        the quantity the tiling algorithms budget against."""
        return int(n_cells) * self.acc_components * self.acc_dtype.itemsize

    #: True when ``combine(x, x) == x`` -- min/max/best-style
    #: aggregations.  Idempotent aggregations may seed *replicated*
    #: accumulator chunks from an existing output dataset (update
    #: queries) without double counting at the global combine.
    idempotent: bool = False

    # -- the four user functions ------------------------------------------

    @abstractmethod
    def initialize(self, n_cells: int) -> np.ndarray:
        """A fresh ``(n_cells, acc_components)`` accumulator."""

    def initialize_from(self, values: np.ndarray) -> np.ndarray:
        """Accumulator reconstructed from existing *output* values
        (phase 1 of an update query: "if an existing output dataset is
        required to initialize accumulator elements").

        Only meaningful where the output determines the intermediate
        state; algebraic aggregations that drop information (mean's
        count, best-value's score) must store accumulator-format
        output to be updatable and override this accordingly.
        """
        raise NotImplementedError(
            f"{type(self).__name__} cannot rebuild its accumulator from "
            "final output values"
        )

    @abstractmethod
    def aggregate(self, acc: np.ndarray, cell_idx: np.ndarray, values: np.ndarray) -> None:
        """Scatter-fold ``values[k]`` into ``acc[cell_idx[k]]`` in place."""

    def aggregate_grouped(
        self, acc: np.ndarray, cell_idx: np.ndarray, values: np.ndarray
    ) -> None:
        """Batched fast-path scatter used by the fused kernels.

        Contract (the caller -- :mod:`repro.runtime.kernels` --
        guarantees both): ``cell_idx`` is int64, in-range and sorted
        ascending; ``values`` is a float ``(n, value_components)``
        batch already validated once per chunk.  The default simply
        delegates to the scalar :meth:`aggregate`, which keeps the
        scalar path the oracle for every override.
        """
        self.aggregate(acc, cell_idx, values)

    def initialize_into(self, acc: np.ndarray) -> None:
        """Re-initialize a recycled accumulator buffer in place
        (buffer-pool fast path; same result as :meth:`initialize`)."""
        acc[:] = self.initialize(len(acc))

    def prereduce_groups(
        self, values: np.ndarray, group_starts: np.ndarray
    ):
        """Collapse each run ``values[group_starts[j]:group_starts[j+1]]``
        to one ``(acc_components,)`` row, for the whole read at once.

        The runs are the (output chunk, cell) runs of a lexsorted read
        (:class:`repro.runtime.kernels.ReadSegments`), so this is one
        ``ufunc.reduceat`` sweep replacing a reduction per segment; the
        rows then fold in via :meth:`scatter_groups`, one fancy-indexed
        update per segment.  The reduction order within a run is the
        run's element order -- identical to what per-segment
        ``aggregate_grouped`` would compute, bit for bit.

        Returns None when the aggregation has no pre-reduction (the
        default); callers must then fall back to
        :meth:`aggregate_grouped` per segment.
        """
        return None

    def scatter_groups(
        self, acc: np.ndarray, cell_idx: np.ndarray, reduced: np.ndarray
    ) -> None:
        """Fold pre-reduced rows into ``acc[cell_idx]`` in place.

        ``cell_idx`` is strictly ascending (one entry per run, unique
        within the call), so plain fancy indexing is enough.  Only
        called when :meth:`prereduce_groups` returned rows.
        """
        raise NotImplementedError(
            f"{type(self).__name__} pre-reduces but does not scatter"
        )

    @abstractmethod
    def combine(self, acc_into: np.ndarray, acc_from: np.ndarray) -> None:
        """Merge a partial accumulator into *acc_into*, in place."""

    @abstractmethod
    def output(self, acc: np.ndarray) -> np.ndarray:
        """Final ``(n_cells, output_components)`` values."""

    # -- shared validation --------------------------------------------------

    def _check_batch(self, acc: np.ndarray, cell_idx: np.ndarray, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        if values.ndim == 1:
            values = values[:, None]
        if values.shape[1] != self.value_components:
            raise ValueError(
                f"expected {self.value_components} value components, got {values.shape[1]}"
            )
        if len(cell_idx) != len(values):
            raise ValueError("cell_idx must parallel values")
        if len(cell_idx) and (cell_idx.min() < 0 or cell_idx.max() >= len(acc)):
            raise IndexError("cell index outside accumulator")
        return values


class SumAggregation(AggregationSpec):
    """Running sum per cell (distributive)."""

    def initialize_from(self, values: np.ndarray) -> np.ndarray:
        return np.asarray(values, dtype=float).copy()

    @property
    def acc_components(self) -> int:
        return self.value_components

    @property
    def output_components(self) -> int:
        return self.value_components

    def initialize(self, n_cells: int) -> np.ndarray:
        return np.zeros((n_cells, self.acc_components))

    def initialize_into(self, acc) -> None:
        acc.fill(0.0)

    def aggregate(self, acc, cell_idx, values) -> None:
        values = self._check_batch(acc, cell_idx, values)
        np.add.at(acc, cell_idx, values)

    def aggregate_grouped(self, acc, cell_idx, values) -> None:
        if not len(cell_idx):
            return
        uniq, starts = sorted_group_starts(cell_idx)
        acc[uniq] += np.add.reduceat(values, starts, axis=0)

    def prereduce_groups(self, values, group_starts):
        return np.add.reduceat(values, group_starts, axis=0)

    def scatter_groups(self, acc, cell_idx, reduced) -> None:
        acc[cell_idx] += reduced

    def combine(self, acc_into, acc_from) -> None:
        acc_into += acc_from

    def output(self, acc) -> np.ndarray:
        return acc.copy()


class CountAggregation(AggregationSpec):
    """Item count per cell (values ignored)."""

    def initialize_from(self, values: np.ndarray) -> np.ndarray:
        return np.asarray(values, dtype=float).copy()

    @property
    def acc_components(self) -> int:
        return 1

    @property
    def output_components(self) -> int:
        return 1

    def initialize(self, n_cells: int) -> np.ndarray:
        return np.zeros((n_cells, 1))

    def initialize_into(self, acc) -> None:
        acc.fill(0.0)

    def aggregate(self, acc, cell_idx, values) -> None:
        self._check_batch(acc, cell_idx, values)
        np.add.at(acc[:, 0], cell_idx, 1.0)

    def aggregate_grouped(self, acc, cell_idx, values) -> None:
        if not len(cell_idx):
            return
        uniq, starts = sorted_group_starts(cell_idx)
        acc[uniq, 0] += np.diff(np.append(starts, len(cell_idx)))

    def prereduce_groups(self, values, group_starts):
        return np.diff(np.append(group_starts, len(values))).astype(float)[:, None]

    def scatter_groups(self, acc, cell_idx, reduced) -> None:
        acc[cell_idx] += reduced

    def combine(self, acc_into, acc_from) -> None:
        acc_into += acc_from

    def output(self, acc) -> np.ndarray:
        return acc.copy()


class MinAggregation(AggregationSpec):
    """Per-cell minimum; empty cells output +inf."""

    idempotent = True

    def initialize_from(self, values: np.ndarray) -> np.ndarray:
        return np.asarray(values, dtype=float).copy()

    @property
    def acc_components(self) -> int:
        return self.value_components

    @property
    def output_components(self) -> int:
        return self.value_components

    def initialize(self, n_cells: int) -> np.ndarray:
        return np.full((n_cells, self.acc_components), np.inf)

    def initialize_into(self, acc) -> None:
        acc.fill(np.inf)

    def aggregate(self, acc, cell_idx, values) -> None:
        values = self._check_batch(acc, cell_idx, values)
        np.minimum.at(acc, cell_idx, values)

    def aggregate_grouped(self, acc, cell_idx, values) -> None:
        if not len(cell_idx):
            return
        uniq, starts = sorted_group_starts(cell_idx)
        acc[uniq] = np.minimum(acc[uniq], np.minimum.reduceat(values, starts, axis=0))

    def prereduce_groups(self, values, group_starts):
        return np.minimum.reduceat(values, group_starts, axis=0)

    def scatter_groups(self, acc, cell_idx, reduced) -> None:
        acc[cell_idx] = np.minimum(acc[cell_idx], reduced)

    def combine(self, acc_into, acc_from) -> None:
        np.minimum(acc_into, acc_from, out=acc_into)

    def output(self, acc) -> np.ndarray:
        return acc.copy()


class MaxAggregation(AggregationSpec):
    """Per-cell maximum; empty cells output -inf."""

    idempotent = True

    def initialize_from(self, values: np.ndarray) -> np.ndarray:
        return np.asarray(values, dtype=float).copy()

    @property
    def acc_components(self) -> int:
        return self.value_components

    @property
    def output_components(self) -> int:
        return self.value_components

    def initialize(self, n_cells: int) -> np.ndarray:
        return np.full((n_cells, self.acc_components), -np.inf)

    def initialize_into(self, acc) -> None:
        acc.fill(-np.inf)

    def aggregate(self, acc, cell_idx, values) -> None:
        values = self._check_batch(acc, cell_idx, values)
        np.maximum.at(acc, cell_idx, values)

    def aggregate_grouped(self, acc, cell_idx, values) -> None:
        if not len(cell_idx):
            return
        uniq, starts = sorted_group_starts(cell_idx)
        acc[uniq] = np.maximum(acc[uniq], np.maximum.reduceat(values, starts, axis=0))

    def prereduce_groups(self, values, group_starts):
        return np.maximum.reduceat(values, group_starts, axis=0)

    def scatter_groups(self, acc, cell_idx, reduced) -> None:
        acc[cell_idx] = np.maximum(acc[cell_idx], reduced)

    def combine(self, acc_into, acc_from) -> None:
        np.maximum(acc_into, acc_from, out=acc_into)

    def output(self, acc) -> np.ndarray:
        return acc.copy()


class MeanAggregation(AggregationSpec):
    """Per-cell average (algebraic: sum + count in the accumulator).

    The motivating example from the paper: "an accumulator can be used
    to keep a running sum for an averaging operation".  Empty cells
    output NaN.
    """

    @property
    def acc_components(self) -> int:
        return self.value_components + 1  # sums + count

    @property
    def output_components(self) -> int:
        return self.value_components

    def initialize(self, n_cells: int) -> np.ndarray:
        return np.zeros((n_cells, self.acc_components))

    def initialize_into(self, acc) -> None:
        acc.fill(0.0)

    def aggregate(self, acc, cell_idx, values) -> None:
        values = self._check_batch(acc, cell_idx, values)
        np.add.at(acc[:, : self.value_components], cell_idx, values)
        np.add.at(acc[:, -1], cell_idx, 1.0)

    def aggregate_grouped(self, acc, cell_idx, values) -> None:
        if not len(cell_idx):
            return
        uniq, starts = sorted_group_starts(cell_idx)
        acc[uniq, : self.value_components] += np.add.reduceat(values, starts, axis=0)
        acc[uniq, -1] += np.diff(np.append(starts, len(cell_idx)))

    def prereduce_groups(self, values, group_starts):
        reduced = np.empty((len(group_starts), self.acc_components))
        reduced[:, : self.value_components] = np.add.reduceat(
            values, group_starts, axis=0
        )
        reduced[:, -1] = np.diff(np.append(group_starts, len(values)))
        return reduced

    def scatter_groups(self, acc, cell_idx, reduced) -> None:
        acc[cell_idx] += reduced

    def combine(self, acc_into, acc_from) -> None:
        acc_into += acc_from

    def output(self, acc) -> np.ndarray:
        counts = acc[:, -1:]
        with np.errstate(invalid="ignore", divide="ignore"):
            out = acc[:, : self.value_components] / counts
        out[counts[:, 0] == 0] = np.nan
        return out


class BestValueComposite(AggregationSpec):
    """Keep the value whose *score* (first component) is largest.

    Models AVHRR compositing: "each pixel in the composite image is
    computed by selecting the 'best' sensor value that maps to the
    associated grid point" -- e.g. the reading with the highest NDVI.
    Ties are broken toward the remaining components' lexicographic
    maximum so the result is independent of aggregation order (the
    associativity/commutativity requirement).
    """

    def __init__(self, value_components: int = 2) -> None:
        if value_components < 2:
            raise ValueError(
                "BestValueComposite needs a score plus at least one payload component"
            )
        super().__init__(value_components)

    @property
    def acc_components(self) -> int:
        return self.value_components

    @property
    def output_components(self) -> int:
        return self.value_components - 1  # payload only

    def initialize(self, n_cells: int) -> np.ndarray:
        acc = np.full((n_cells, self.acc_components), -np.inf)
        return acc

    def initialize_into(self, acc) -> None:
        # aggregate_grouped stays on the scalar-path default: the
        # lexsorted segment-argmax in aggregate() is already batched.
        acc.fill(-np.inf)

    @staticmethod
    def _lex_better(cand: np.ndarray, cur: np.ndarray) -> np.ndarray:
        """Row-wise lexicographic ``cand > cur`` over all components."""
        better = np.zeros(len(cand), dtype=bool)
        decided = np.zeros(len(cand), dtype=bool)
        for j in range(cand.shape[1]):
            gt = cand[:, j] > cur[:, j]
            lt = cand[:, j] < cur[:, j]
            better |= gt & ~decided
            decided |= gt | lt
        return better

    def aggregate(self, acc, cell_idx, values) -> None:
        values = self._check_batch(acc, cell_idx, values)
        # Reduce duplicates within the batch first (segment argmax),
        # then compare the per-cell winners against the accumulator.
        order = np.lexsort(
            tuple(values[:, j] for j in range(values.shape[1] - 1, -1, -1))
            + (cell_idx,)
        )
        sorted_cells = cell_idx[order]
        # Last occurrence per cell after the lexsort is the winner.
        last = np.flatnonzero(
            np.concatenate((np.diff(sorted_cells) != 0, [True]))
        )
        win_idx = order[last]
        cells = cell_idx[win_idx]
        cand = values[win_idx]
        cur = acc[cells]
        mask = self._lex_better(cand, cur)
        acc[cells[mask]] = cand[mask]

    def combine(self, acc_into, acc_from) -> None:
        mask = self._lex_better(acc_from, acc_into)
        acc_into[mask] = acc_from[mask]

    def output(self, acc) -> np.ndarray:
        out = acc[:, 1:].copy()
        out[np.isneginf(acc[:, 0])] = np.nan
        return out


#: Registry of built-in aggregations, keyed by the names the front end
#: accepts in query specifications.
AGGREGATIONS: Dict[str, Type[AggregationSpec]] = {
    "sum": SumAggregation,
    "count": CountAggregation,
    "min": MinAggregation,
    "max": MaxAggregation,
    "mean": MeanAggregation,
    "best": BestValueComposite,
}
