"""Additional algebraic aggregations, and the holistic counter-example.

The paper admits exactly the *distributive* and *algebraic* functions
of Gray et al. [15] -- those whose partial results merge.  This module
rounds out the built-in library:

- :class:`VarianceAggregation` -- per-cell variance via the
  (count, sum, sum-of-squares) accumulator, the textbook algebraic
  decomposition;
- :class:`WeightedMeanAggregation` -- weighted averaging, e.g. sensor
  readings weighted by footprint overlap or quality;
- :class:`MedianAggregation` -- **deliberately not implementable**: the
  median is *holistic* (no constant-size merging state exists), and
  constructing it raises.  It exists so the restriction the paper's
  correctness rests on is executable and testable rather than a
  comment.
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.functions import AGGREGATIONS, AggregationSpec

__all__ = [
    "VarianceAggregation",
    "WeightedMeanAggregation",
    "MedianAggregation",
    "HolisticAggregationError",
]


class VarianceAggregation(AggregationSpec):
    """Per-cell population variance (algebraic).

    Accumulator per value component: running sum and sum of squares,
    plus one shared count.  ``output`` returns the variance
    ``E[x^2] - E[x]^2`` (clamped at 0 against rounding); cells with no
    items output NaN.
    """

    @property
    def acc_components(self) -> int:
        return 2 * self.value_components + 1  # sums, sumsqs, count

    @property
    def output_components(self) -> int:
        return self.value_components

    def initialize(self, n_cells: int) -> np.ndarray:
        return np.zeros((n_cells, self.acc_components))

    def aggregate(self, acc, cell_idx, values) -> None:
        values = self._check_batch(acc, cell_idx, values)
        k = self.value_components
        np.add.at(acc[:, :k], cell_idx, values)
        np.add.at(acc[:, k : 2 * k], cell_idx, values * values)
        np.add.at(acc[:, -1], cell_idx, 1.0)

    def combine(self, acc_into, acc_from) -> None:
        acc_into += acc_from

    def output(self, acc) -> np.ndarray:
        k = self.value_components
        counts = acc[:, -1:]
        with np.errstate(invalid="ignore", divide="ignore"):
            mean = acc[:, :k] / counts
            mean_sq = acc[:, k : 2 * k] / counts
            var = np.maximum(mean_sq - mean * mean, 0.0)
        var[counts[:, 0] == 0] = np.nan
        return var


class WeightedMeanAggregation(AggregationSpec):
    """Weighted per-cell mean: the last value component is the weight.

    With item values ``(v_1 .. v_m, w)`` the output per cell is
    ``sum(w * v_j) / sum(w)`` per component ``j``.  Zero total weight
    outputs NaN.
    """

    def __init__(self, value_components: int = 2) -> None:
        if value_components < 2:
            raise ValueError(
                "WeightedMeanAggregation needs at least one value plus a weight"
            )
        super().__init__(value_components)

    @property
    def data_components(self) -> int:
        return self.value_components - 1

    @property
    def acc_components(self) -> int:
        return self.data_components + 1  # weighted sums + weight total

    @property
    def output_components(self) -> int:
        return self.data_components

    def initialize(self, n_cells: int) -> np.ndarray:
        return np.zeros((n_cells, self.acc_components))

    def aggregate(self, acc, cell_idx, values) -> None:
        values = self._check_batch(acc, cell_idx, values)
        w = values[:, -1:]
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")
        np.add.at(acc[:, : self.data_components], cell_idx, values[:, :-1] * w)
        np.add.at(acc[:, -1], cell_idx, w[:, 0])

    def combine(self, acc_into, acc_from) -> None:
        acc_into += acc_from

    def output(self, acc) -> np.ndarray:
        weights = acc[:, -1:]
        with np.errstate(invalid="ignore", divide="ignore"):
            out = acc[:, : self.data_components] / weights
        out[weights[:, 0] == 0] = np.nan
        return out


class HolisticAggregationError(TypeError):
    """Raised when a holistic aggregation is requested.

    "The aggregation functions allowed correspond to the distributive
    and algebraic aggregation functions defined by Gray et al." --
    holistic ones (median, mode, rank) have no bounded merging state,
    so neither accumulator replication (FRA/SRA's global combine) nor
    out-of-order input forwarding (DA) is correct for them.
    """


class MedianAggregation:
    """The holistic counter-example: cannot be an ADR aggregation."""

    def __init__(self, *args, **kwargs) -> None:
        raise HolisticAggregationError(
            "the median is a holistic aggregation: partial results cannot "
            "be merged with bounded state, so it cannot run under ADR's "
            "replicate-and-combine or forward-and-aggregate strategies; "
            "use mean/min/max/best or compute quantiles client-side"
        )


AGGREGATIONS.setdefault("variance", VarianceAggregation)
AGGREGATIONS.setdefault("wmean", WeightedMeanAggregation)
