"""Query planning service: the paper's primary contribution.

A query plan "specifies how parts of the final output are computed and
the order the input data chunks are retrieved for processing", built
in two steps (paper Section 2.3):

1. *Tiling* -- when the accumulator exceeds memory, output chunks are
   grouped into tiles, selected in Hilbert-curve order of their MBR
   mid-points so tiles stay spatially compact;
2. *Workload partitioning* -- the aggregation work for each tile is
   divided across processors.

Three strategies implement these steps (Section 3):

========  ==============================  ===========================
strategy  accumulator placement           communication
========  ==============================  ===========================
FRA       every chunk on every processor  ghosts -> owner at combine
SRA       ghosts only where local input   (fewer) ghosts -> owner
          projects to the chunk
DA        owner only, no ghosts           input chunks -> owner during
                                          local reduction
========  ==============================  ===========================

Extensions from the paper's Section 6 future work are also here: a
graph-partitioning *hybrid* strategy and closed-form *cost models*
that drive automatic strategy selection.
"""

from repro.planner.problem import PlanningProblem
from repro.planner.plan import QueryPlan
from repro.planner.strategies import plan_fra, plan_sra, plan_da, plan_query, STRATEGIES
from repro.planner.validate import validate_plan
from repro.planner.stats import PlanStats, plan_stats
from repro.planner.hybrid import plan_hybrid
from repro.planner.costmodel import CostModel, estimate_cost, select_strategy
from repro.planner.select import (
    ALL_STRATEGIES,
    AUTO,
    FIXED_STRATEGIES,
    StrategyChoice,
    choose_strategy,
    is_auto,
)
from repro.planner.telemetry import MeasuredRun, TelemetryLog, plan_features
from repro.planner.calibrate import (
    CalibratedCostModel,
    CalibrationError,
    FitDiagnostics,
    calibrate,
)
from repro.planner.batch import BatchPlan, plan_batch, simulate_batch

__all__ = [
    "PlanningProblem",
    "QueryPlan",
    "plan_fra",
    "plan_sra",
    "plan_da",
    "plan_hybrid",
    "plan_query",
    "STRATEGIES",
    "validate_plan",
    "PlanStats",
    "plan_stats",
    "CostModel",
    "estimate_cost",
    "select_strategy",
    "ALL_STRATEGIES",
    "AUTO",
    "FIXED_STRATEGIES",
    "StrategyChoice",
    "choose_strategy",
    "is_auto",
    "MeasuredRun",
    "TelemetryLog",
    "plan_features",
    "CalibratedCostModel",
    "CalibrationError",
    "FitDiagnostics",
    "calibrate",
    "BatchPlan",

    "plan_batch",
    "simulate_batch",
]
