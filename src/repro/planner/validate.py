"""Plan validation.

Executing an invalid plan would silently corrupt results (an edge
aggregated on a processor with no accumulator for its output chunk) or
blow the memory budget the tiling step promised.  ``validate_plan``
checks every invariant the executors rely on and raises
``PlanValidationError`` with a precise complaint.
"""

from __future__ import annotations

import numpy as np

from repro.planner.plan import QueryPlan

__all__ = ["PlanValidationError", "validate_plan"]


class PlanValidationError(AssertionError):
    """A query plan violates a structural invariant."""


def validate_plan(plan: QueryPlan) -> None:
    p = plan.problem
    n_out, n_procs = p.n_out, p.n_procs

    # -- tile assignment ------------------------------------------------
    if n_out and (plan.tile_of_output.min() < 0 or plan.tile_of_output.max() >= plan.n_tiles):
        raise PlanValidationError("tile ids outside [0, n_tiles)")
    if n_out == 0 and plan.n_tiles != 0:
        raise PlanValidationError("empty problem must have zero tiles")

    # -- holders -----------------------------------------------------------
    if len(plan.holders_ids) and (
        plan.holders_ids.min() < 0 or plan.holders_ids.max() >= n_procs
    ):
        raise PlanValidationError("holder ids outside the processor range")
    for o in range(n_out):
        holders = plan.holders_of(o)
        if len(np.unique(holders)) != len(holders):
            raise PlanValidationError(f"duplicate holders for output chunk {o}")
        if int(p.output_owner[o]) not in holders:
            raise PlanValidationError(
                f"owner {int(p.output_owner[o])} of output chunk {o} is not a holder"
            )

    # -- edges ------------------------------------------------------------
    edge_in, edge_out = plan.edge_arrays
    if len(edge_in):
        if plan.edge_proc.min() < 0 or plan.edge_proc.max() >= n_procs:
            raise PlanValidationError("edge processors outside the processor range")
        # Every edge must execute on a processor that holds the
        # accumulator chunk for its output chunk.
        counts = np.diff(plan.holders_indptr)
        flat_out = np.repeat(np.arange(n_out, dtype=np.int64), counts)
        holder_keys = set(zip(flat_out.tolist(), plan.holders_ids.tolist()))
        bad = [
            (int(o), int(q))
            for o, q in zip(edge_out, plan.edge_proc)
            if (int(o), int(q)) not in holder_keys
        ]
        if bad:
            o, q = bad[0]
            raise PlanValidationError(
                f"edge for output chunk {o} assigned to processor {q}, "
                f"which holds no accumulator for it ({len(bad)} such edges)"
            )

    # -- memory budget ------------------------------------------------------
    # Per (tile, processor) accumulator bytes must respect the budget;
    # a tile may exceed it only when it consists of a single chunk that
    # alone is over budget (the pseudo-code's degenerate case).
    counts = np.diff(plan.holders_indptr)
    flat_out = np.repeat(np.arange(n_out, dtype=np.int64), counts)
    flat_proc = plan.holders_ids
    flat_tile = plan.tile_of_output[flat_out]
    flat_bytes = p.acc_nbytes[flat_out]
    if len(flat_out):
        key = flat_tile * n_procs + flat_proc
        usage = np.bincount(key, weights=flat_bytes.astype(float))
        nchunks = np.bincount(key)
        budget = np.tile(p.memory_per_proc.astype(float), plan.n_tiles)[: len(usage)]
        over = (usage > budget) & (nchunks > 1)
        if over.any():
            k = int(np.flatnonzero(over)[0])
            raise PlanValidationError(
                f"tile {k // n_procs} overflows processor {k % n_procs}: "
                f"{usage[k]:.0f} bytes of accumulator vs budget {budget[k]:.0f}"
            )
