"""Plan validation (compatibility wrapper over :mod:`repro.analysis`).

Executing an invalid plan would silently corrupt results (an edge
aggregated on a processor with no accumulator for its output chunk) or
blow the memory budget the tiling step promised.  The checks
themselves now live in :func:`repro.analysis.verifier.verify_plan`,
which reports *all* violated invariants as structured diagnostics with
stable ``ADR1xx`` codes; ``validate_plan`` keeps the historical
raise-on-first-error contract by raising ``PlanValidationError`` when
any ERROR-severity diagnostic is present.

Callers that want the full report (or to tolerate warnings) should use
``verify_plan`` directly.
"""

from __future__ import annotations

from repro.planner.plan import QueryPlan

__all__ = ["PlanValidationError", "validate_plan"]


class PlanValidationError(AssertionError):
    """A query plan violates a structural invariant."""


def validate_plan(plan: QueryPlan) -> None:
    """Raise :class:`PlanValidationError` on any ERROR diagnostic.

    Strategy contracts (ADR12x) are *not* enforced here: historical
    callers validate hand-built and mutated plans that are
    structurally executable without matching a paper strategy's exact
    placement.  Use ``verify_plan(plan)`` for the full proof.
    """
    # Imported lazily: repro.analysis.verifier reaches back into
    # repro.planner for the SRA contract, so a module-level import
    # would cycle during package initialization.
    from repro.analysis.diagnostics import Severity
    from repro.analysis.verifier import verify_plan

    errors = [
        d
        for d in verify_plan(plan, strategy_contracts=False)
        if d.severity >= Severity.ERROR
    ]
    if errors:
        first = errors[0]
        extra = f" (+{len(errors) - 1} more)" if len(errors) > 1 else ""
        raise PlanValidationError(f"[{first.code}] {first.message}{extra}")
