"""Strategy selection: the single choke point behind ``strategy='auto'``.

Kurc et al.'s Figures 8-9 show crossovers: no strategy wins on every
application, machine size or scaling mode, which is why Section 6
names automated selection from "simple but reasonably accurate cost
models" as the long-term goal.  :func:`choose_strategy` is that
decision, made in exactly one place: plan the problem with every
candidate strategy, price each plan with a cost model (closed-form
:class:`~repro.planner.costmodel.CostModel` or a measurement-fitted
:class:`~repro.planner.calibrate.CalibratedCostModel` -- anything with
an ``estimate(plan) -> CostEstimate`` method), and return the argmin
plus the full ranking so callers can audit the decision.

Every layer that accepts ``strategy='auto'`` -- the ADR facade, batch
planning, the concurrent query service, the wire protocol, the shard
router -- routes through this function; strategy *names* are defined
here and nowhere else (lint rule ADR502 keeps hard-coded strategy
string literals out of the rest of the library).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.planner.costmodel import CostEstimate
from repro.planner.plan import QueryPlan
from repro.planner.problem import PlanningProblem

__all__ = [
    "FRA",
    "SRA",
    "DA",
    "HYBRID",
    "AUTO",
    "FIXED_STRATEGIES",
    "ALL_STRATEGIES",
    "is_auto",
    "StrategyChoice",
    "choose_strategy",
]

#: Canonical strategy names (Figures 4, 5, 6, and the Section-5 hybrid).
FRA = "FRA"
SRA = "SRA"
DA = "DA"
HYBRID = "HYBRID"
#: The sentinel that defers the choice to :func:`choose_strategy`.
AUTO = "AUTO"

#: The paper's three baseline strategies, in its presentation order.
FIXED_STRATEGIES: Tuple[str, ...] = (FRA, SRA, DA)
#: Every concrete (executable) strategy -- the default candidate set.
ALL_STRATEGIES: Tuple[str, ...] = FIXED_STRATEGIES + (HYBRID,)


def is_auto(strategy: str) -> bool:
    """True when *strategy* requests automatic selection (any case)."""
    return isinstance(strategy, str) and strategy.upper() == AUTO


@dataclass
class StrategyChoice:
    """The outcome of one automatic selection: the winning plan plus
    the full priced ranking, so clients can audit the decision."""

    plan: QueryPlan
    selected: str
    estimates: Dict[str, CostEstimate]

    @property
    def ranking(self) -> List[Tuple[str, CostEstimate]]:
        """(strategy, estimate) cheapest first; ties keep the
        candidate order the estimates were produced in."""
        return sorted(self.estimates.items(), key=lambda kv: kv[1].total)

    def ranking_dict(self) -> Dict[str, float]:
        """JSON-safe ``{strategy: estimated_seconds}`` in rank order."""
        return {name: float(est.total) for name, est in self.ranking}

    def table(self) -> str:
        mark = lambda name: "->" if name == self.selected else "  "
        return "\n".join(
            f"{mark(name)} {est.row()}" for name, est in self.ranking
        )


def choose_strategy(
    problem: PlanningProblem,
    model,
    candidates: Sequence[str] = ALL_STRATEGIES,
) -> StrategyChoice:
    """Plan *problem* with every candidate strategy, price each with
    *model*, and return the cheapest plan plus the full ranking.

    *model* is duck-typed: anything exposing ``estimate(plan) ->
    CostEstimate``.  A closed-form :class:`CostModel` also carries the
    machine/cost constants the hybrid planner weighs its tile
    partitioning with; a :class:`CalibratedCostModel` does not, and
    the hybrid then falls back to its nominal weights.
    """
    names = [str(c).upper() for c in candidates]
    if not names:
        raise ValueError("need at least one candidate strategy")
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate candidate strategies in {names}")
    for name in names:
        if name == AUTO:
            raise ValueError("AUTO cannot be its own candidate")

    from repro.planner.hybrid import plan_hybrid
    from repro.planner.strategies import plan_query

    best_plan: QueryPlan = None  # set on first iteration (names non-empty)
    best_name = ""
    best_cost = float("inf")
    estimates: Dict[str, CostEstimate] = {}
    for name in names:
        if name == HYBRID:
            plan = plan_hybrid(
                problem,
                machine=getattr(model, "machine", None),
                costs=getattr(model, "costs", None),
            )
        else:
            plan = plan_query(problem, name)
        est = model.estimate(plan)
        estimates[plan.strategy] = est
        if est.total < best_cost:
            best_cost = est.total
            best_plan = plan
            best_name = plan.strategy
    return StrategyChoice(plan=best_plan, selected=best_name, estimates=estimates)
