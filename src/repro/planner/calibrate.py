"""Fit the cost model's machine constants from measured runs.

``planner/costmodel.py`` prices plans from hand-entered machine
constants; this module closes the sim/real loop the ROADMAP asks for
by *fitting* those constants from :class:`~repro.planner.telemetry.
MeasuredRun` records.  Per run, each of the four phases contributes
one linear equation in the unknown constants -- the busiest
processor's work quantities times per-unit costs::

    t_init      ~  c_init      * init_chunks
    t_reduction ~  c_reduction * reduction_pairs
                 + read_bytes  / read_bandwidth
                 + c_message   * lr_messages
    t_combine   ~  c_combine   * combine_ops
                 + c_message   * gc_messages
    t_output    ~  c_output    * output_chunks
                 + write_bytes / read_bandwidth

The phase cost is really the busiest resource's *maximum*, not a sum;
summing the busiest-processor terms linearizes that, and the fitted
constants absorb the overlap factor -- which is exactly why fitting
beats hand-entering datasheet numbers.  The solve is non-negative
least squares over the stacked equations (a negative per-unit cost is
meaningless); constants whose regressor never appears in the data are
reported as unidentified rather than silently zeroed into conclusions.

Too little or too degenerate data raises a loud
:class:`CalibrationError` -- an auto-selection pipeline must never
quietly run on an unfittable model.

CLI::

    python -m repro.planner.calibrate --log telemetry.jsonl --out model.json
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.planner.costmodel import CostEstimate
from repro.planner.plan import QueryPlan
from repro.planner.telemetry import (
    CANONICAL_PHASES,
    FEATURES,
    MeasuredRun,
    TelemetryLog,
    plan_features,
)

__all__ = [
    "CONSTANTS",
    "CalibrationError",
    "FitDiagnostics",
    "CalibratedCostModel",
    "calibrate",
    "main",
]

#: The fitted machine constants, in design-matrix column order:
#: per-chunk phase costs, seconds per byte through the disk path
#: (1 / effective read bandwidth), and per-message overhead.
CONSTANTS = ("init", "reduction", "combine", "output", "read_byte", "message")

#: phase -> ((constant, feature), ...): the per-phase busiest-resource
#: equations, shared by the fit and by CalibratedCostModel.estimate.
PHASE_TERMS: Dict[str, Tuple[Tuple[str, str], ...]] = {
    "init": (("init", "init_chunks"),),
    "reduction": (
        ("reduction", "reduction_pairs"),
        ("read_byte", "read_bytes"),
        ("message", "lr_messages"),
    ),
    "combine": (("combine", "combine_ops"), ("message", "gc_messages")),
    "output": (("output", "output_chunks"), ("read_byte", "write_bytes")),
}

#: Fewest runs a fit will accept by default: four phase equations per
#: run against six unknowns makes fewer than this degenerate in
#: practice even when nominally full-rank.
MIN_RUNS = 4


class CalibrationError(ValueError):
    """The measured runs cannot support a trustworthy fit (too few, or
    the design matrix is rank-deficient over the observed features)."""


@dataclass(frozen=True)
class FitDiagnostics:
    """Goodness-of-fit of one calibration."""

    n_runs: int
    n_equations: int
    #: coefficient of determination over all fitted equations
    r2: float
    #: mean |predicted - observed| / observed per phase, over the
    #: equations where the observed time is positive
    phase_rel_err: Dict[str, float]
    #: constants whose regressors never appear in the data (their
    #: fitted value is 0 by construction and means nothing)
    unidentified: Tuple[str, ...] = ()

    def summary(self) -> str:
        per_phase = ", ".join(
            f"{k} {v * 100:.0f}%" for k, v in self.phase_rel_err.items()
        )
        extra = (
            f"; unidentified: {', '.join(self.unidentified)}"
            if self.unidentified
            else ""
        )
        return (
            f"fit over {self.n_runs} runs ({self.n_equations} equations): "
            f"R^2 {self.r2:.3f}; rel err {per_phase}{extra}"
        )


@dataclass
class CalibratedCostModel:
    """A cost model whose constants were fitted from measured runs.

    Duck-type compatible with :class:`~repro.planner.costmodel.
    CostModel`: ``estimate(plan)`` returns a
    :class:`~repro.planner.costmodel.CostEstimate`, so
    :func:`~repro.planner.select.choose_strategy` accepts either.
    Unlike the closed-form model it carries no machine description --
    everything it knows came from the data.
    """

    constants: Dict[str, float]
    diagnostics: Optional[FitDiagnostics] = None
    sources: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        missing = [c for c in CONSTANTS if c not in self.constants]
        if missing:
            raise ValueError(f"calibrated model missing constants {missing}")
        for name, value in self.constants.items():
            if float(value) < 0:
                raise ValueError(f"constant {name!r} must be non-negative")

    @property
    def read_bandwidth(self) -> float:
        """Effective bytes/second through the disk path (inf when the
        per-byte cost fitted to zero)."""
        per_byte = float(self.constants["read_byte"])
        return 1.0 / per_byte if per_byte > 0 else float("inf")

    def phase_cost(self, phase: str, features: Dict[str, float]) -> float:
        return float(
            sum(
                self.constants[const] * features.get(feat, 0.0)
                for const, feat in PHASE_TERMS[phase]
            )
        )

    def estimate(self, plan: QueryPlan) -> CostEstimate:
        features = plan_features(plan)
        costs = {p: self.phase_cost(p, features) for p in CANONICAL_PHASES}
        return CostEstimate(
            strategy=plan.strategy,
            init=costs["init"],
            reduction=costs["reduction"],
            combine=costs["combine"],
            output=costs["output"],
        )

    # -- persistence ----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "constants": {k: float(v) for k, v in self.constants.items()},
            "sources": list(self.sources),
        }
        if self.diagnostics is not None:
            d = self.diagnostics
            out["diagnostics"] = {
                "n_runs": d.n_runs,
                "n_equations": d.n_equations,
                "r2": d.r2,
                "phase_rel_err": dict(d.phase_rel_err),
                "unidentified": list(d.unidentified),
            }
        return out

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "CalibratedCostModel":
        try:
            diagnostics = None
            if "diagnostics" in d:
                dd = dict(d["diagnostics"])
                diagnostics = FitDiagnostics(
                    n_runs=int(dd["n_runs"]),
                    n_equations=int(dd["n_equations"]),
                    r2=float(dd["r2"]),
                    phase_rel_err={
                        str(k): float(v)
                        for k, v in dict(dd["phase_rel_err"]).items()
                    },
                    unidentified=tuple(dd.get("unidentified", ())),
                )
            return cls(
                constants={
                    str(k): float(v) for k, v in dict(d["constants"]).items()
                },
                diagnostics=diagnostics,
                sources=tuple(d.get("sources", ())),
            )
        except (KeyError, TypeError, ValueError) as e:
            raise ValueError(f"bad calibrated-model payload: {e}") from e

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path) -> "CalibratedCostModel":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def summary(self) -> str:
        rows = [
            f"  {name:>10}: {self.constants[name]:.6g}" for name in CONSTANTS
        ]
        header = "calibrated cost model"
        if self.diagnostics is not None:
            header += f" ({self.diagnostics.summary()})"
        return "\n".join([header] + rows)


def _design(
    runs: Sequence[MeasuredRun],
) -> Tuple[np.ndarray, np.ndarray, List[str]]:
    """Stacked per-phase equations: (A, b, phase-per-row)."""
    rows: List[List[float]] = []
    b: List[float] = []
    phases: List[str] = []
    col = {name: i for i, name in enumerate(CONSTANTS)}
    for run in runs:
        for phase in CANONICAL_PHASES:
            if phase not in run.phase_times:
                continue
            row = [0.0] * len(CONSTANTS)
            for const, feat in PHASE_TERMS[phase]:
                row[col[const]] += float(run.features.get(feat, 0.0))
            rows.append(row)
            b.append(float(run.phase_times[phase]))
            phases.append(phase)
    return np.asarray(rows, dtype=float), np.asarray(b, dtype=float), phases


def _nnls(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Non-negative least squares; scipy when available, else a
    clamped ordinary solve (adequate: negative coefficients only arise
    from noise and the clamp is re-scored by the diagnostics)."""
    try:
        from scipy.optimize import nnls

        x, _ = nnls(a, b)
        return np.asarray(x, dtype=float)
    except ImportError:  # pragma: no cover - scipy ships with the repo
        x, *_ = np.linalg.lstsq(a, b, rcond=None)
        return np.clip(np.asarray(x, dtype=float), 0.0, None)


def calibrate(
    runs: Sequence[MeasuredRun], min_runs: int = MIN_RUNS
) -> CalibratedCostModel:
    """Fit a :class:`CalibratedCostModel` from *runs*.

    Raises :class:`CalibrationError` when there are fewer than
    *min_runs* runs, no usable phase equations, or the observed
    feature columns are linearly dependent (e.g. every run has the
    same shape, so read bytes and reduction pairs cannot be told
    apart).
    """
    runs = list(runs)
    if len(runs) < min_runs:
        raise CalibrationError(
            f"calibration needs at least {min_runs} measured runs, got "
            f"{len(runs)}; record more telemetry first"
        )
    a, b, phases = _design(runs)
    if a.size == 0 or not np.any(b > 0):
        raise CalibrationError(
            "no usable phase equations: every run is missing phase times "
            "or observed zero elapsed time"
        )
    identified = np.flatnonzero(np.any(a != 0.0, axis=0))
    unidentified = tuple(
        CONSTANTS[i] for i in range(len(CONSTANTS)) if i not in identified
    )
    if len(identified) == 0:
        raise CalibrationError("every feature column is zero; nothing to fit")
    a_id = a[:, identified]
    rank = int(np.linalg.matrix_rank(a_id))
    if rank < len(identified):
        names = [CONSTANTS[i] for i in identified]
        raise CalibrationError(
            f"degenerate design matrix: rank {rank} over {len(names)} "
            f"identified constants {names}; the runs are too homogeneous "
            "(vary strategies, sizes or processor counts)"
        )
    x = np.zeros(len(CONSTANTS))
    x[identified] = _nnls(a_id, b)

    pred = a @ x
    ss_res = float(np.sum((b - pred) ** 2))
    ss_tot = float(np.sum((b - b.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    phase_rel_err: Dict[str, float] = {}
    phase_arr = np.asarray(phases)
    for phase in CANONICAL_PHASES:
        mask = (phase_arr == phase) & (b > 0)
        if mask.any():
            phase_rel_err[phase] = float(
                np.mean(np.abs(pred[mask] - b[mask]) / b[mask])
            )
    diagnostics = FitDiagnostics(
        n_runs=len(runs),
        n_equations=len(b),
        r2=r2,
        phase_rel_err=phase_rel_err,
        unidentified=unidentified,
    )
    return CalibratedCostModel(
        constants={name: float(x[i]) for i, name in enumerate(CONSTANTS)},
        diagnostics=diagnostics,
        sources=tuple(sorted({run.source for run in runs})),
    )


# -- CLI ---------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.planner.calibrate",
        description=(
            "Fit the cost model's machine constants from a JSONL "
            "telemetry log of measured runs."
        ),
    )
    parser.add_argument(
        "--log", required=True, help="telemetry JSONL written by TelemetryLog"
    )
    parser.add_argument(
        "--out", required=True, help="where to write the fitted model (JSON)"
    )
    parser.add_argument(
        "--min-runs",
        type=int,
        default=MIN_RUNS,
        help=f"fewest runs to accept (default {MIN_RUNS})",
    )
    parser.add_argument(
        "--source",
        choices=("measured", "simulated", "any"),
        default="any",
        help="restrict the fit to runs from one source (default: any)",
    )
    args = parser.parse_args(argv)

    runs = TelemetryLog(args.log).load()
    if args.source != "any":
        runs = [r for r in runs if r.source == args.source]
    try:
        model = calibrate(runs, min_runs=args.min_runs)
    except CalibrationError as e:
        print(f"calibration failed: {e}", file=sys.stderr)
        return 1
    model.save(args.out)
    print(model.summary())
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
