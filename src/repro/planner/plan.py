"""Query plans.

A :class:`QueryPlan` is the common product of every strategy (FRA,
SRA, DA, hybrid).  Its representation generalizes all of them with
three decisions:

- ``tile_of_output`` -- which tile (processing round) each output
  chunk belongs to;
- ``holders`` -- which processors hold an accumulator chunk for each
  output chunk (the owner always does; additional holders are ghost
  chunks);
- ``edge_proc`` -- for every (input chunk, output chunk) incidence,
  the processor that performs that aggregation.

All execution-relevant traffic derives mechanically from those three:

- *reads*: an input chunk is read (from its owner's local disk) in
  every tile where at least one of its edges is active;
- *input transfers*: an edge processed away from the input owner's
  processor forwards the input chunk there (the DA communication);
- *ghost transfers*: every non-owner holder ships its accumulator
  chunk to the owner in the global-combine phase (the FRA/SRA
  communication);
- *init transfers*: with ``init_from_output``, owners forward the
  existing output chunk to every other holder during initialization.

The derived traffic tables are cached NumPy recarray-style tuples, and
both the functional engine and the discrete-event simulator consume
them, so correctness tests on one engine pin down the quantities the
other one times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Tuple

import numpy as np

from repro.planner.problem import PlanningProblem

__all__ = ["QueryPlan", "Transfers", "Reads"]


@dataclass(frozen=True)
class Reads:
    """Distinct disk reads: parallel arrays (tile, chunk, proc)."""

    tile: np.ndarray
    chunk: np.ndarray
    proc: np.ndarray

    def __len__(self) -> int:
        return len(self.tile)


@dataclass(frozen=True)
class Transfers:
    """Distinct point-to-point sends: (tile, chunk, src, dst)."""

    tile: np.ndarray
    chunk: np.ndarray
    src: np.ndarray
    dst: np.ndarray

    def __len__(self) -> int:
        return len(self.tile)

    def total_bytes(self, chunk_nbytes: np.ndarray) -> int:
        return int(chunk_nbytes[self.chunk].sum())


def _unique_rows(*cols: np.ndarray) -> Tuple[np.ndarray, ...]:
    """Deduplicate parallel integer columns (lexicographic order)."""
    if len(cols[0]) == 0:
        return tuple(c.copy() for c in cols)
    stacked = np.stack(cols, axis=1)
    uniq = np.unique(stacked, axis=0)
    return tuple(uniq[:, j] for j in range(uniq.shape[1]))


@dataclass
class QueryPlan:
    strategy: str
    problem: PlanningProblem
    n_tiles: int
    tile_of_output: np.ndarray
    holders_indptr: np.ndarray
    holders_ids: np.ndarray
    edge_proc: np.ndarray

    def __post_init__(self) -> None:
        p = self.problem
        self.tile_of_output = np.asarray(self.tile_of_output, dtype=np.int64)
        self.holders_indptr = np.asarray(self.holders_indptr, dtype=np.int64)
        self.holders_ids = np.asarray(self.holders_ids, dtype=np.int64)
        self.edge_proc = np.asarray(self.edge_proc, dtype=np.int64)
        if self.tile_of_output.shape != (p.n_out,):
            raise ValueError("tile_of_output must have one entry per output chunk")
        if self.holders_indptr.shape != (p.n_out + 1,):
            raise ValueError("holders_indptr must be (n_out + 1,)")
        if self.edge_proc.shape != (p.graph.n_edges,):
            raise ValueError("edge_proc must have one entry per graph edge")

    # -- accumulator placement ------------------------------------------

    def holders_of(self, output_id: int) -> np.ndarray:
        """Processors holding an accumulator chunk for *output_id*."""
        return self.holders_ids[
            self.holders_indptr[output_id] : self.holders_indptr[output_id + 1]
        ]

    @cached_property
    def n_holder_entries(self) -> int:
        return int(len(self.holders_ids))

    @cached_property
    def ghost_count(self) -> int:
        """Total ghost chunk allocations (holders beyond the owner)."""
        return self.n_holder_entries - self.problem.n_out

    # -- edges ------------------------------------------------------------

    @cached_property
    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """(edge_in, edge_out) aligned with ``edge_proc``."""
        return self.problem.graph.edge_arrays()

    @cached_property
    def edge_tile(self) -> np.ndarray:
        _, edge_out = self.edge_arrays
        return self.tile_of_output[edge_out]

    # -- derived traffic -----------------------------------------------------

    @cached_property
    def reads(self) -> Reads:
        """Distinct input chunk reads (tile, chunk, reading proc).

        An input chunk intersecting several tiles is read once per
        tile -- the multiple-retrieval cost the tiling step tries to
        minimize via Hilbert ordering.
        """
        edge_in, _ = self.edge_arrays
        tile, chunk = _unique_rows(self.edge_tile, edge_in)
        proc = self.problem.input_owner[chunk].astype(np.int64)
        return Reads(tile, chunk, proc)

    @cached_property
    def input_transfers(self) -> Transfers:
        """Input chunks forwarded to remote processors (DA / hybrid)."""
        edge_in, _ = self.edge_arrays
        owner = self.problem.input_owner[edge_in].astype(np.int64)
        remote = self.edge_proc != owner
        tile, chunk, dst = _unique_rows(
            self.edge_tile[remote], edge_in[remote], self.edge_proc[remote]
        )
        src = self.problem.input_owner[chunk].astype(np.int64)
        return Transfers(tile, chunk, src, dst)

    @cached_property
    def ghost_transfers(self) -> Transfers:
        """Ghost accumulator chunks shipped to owners at global combine."""
        p = self.problem
        counts = np.diff(self.holders_indptr)
        out_ids = np.repeat(np.arange(p.n_out, dtype=np.int64), counts)
        holder = self.holders_ids
        owner = p.output_owner[out_ids].astype(np.int64)
        ghost = holder != owner
        return Transfers(
            tile=self.tile_of_output[out_ids[ghost]],
            chunk=out_ids[ghost],
            src=holder[ghost],
            dst=owner[ghost],
        )

    @cached_property
    def init_transfers(self) -> Transfers:
        """Existing-output forwarding during initialization (phase 1)."""
        if not self.problem.init_from_output:
            empty = np.empty(0, dtype=np.int64)
            return Transfers(empty, empty.copy(), empty.copy(), empty.copy())
        g = self.ghost_transfers
        # Same pairs, opposite direction: owner -> every other holder.
        return Transfers(g.tile.copy(), g.chunk.copy(), g.dst.copy(), g.src.copy())

    # -- headline numbers --------------------------------------------------------

    @cached_property
    def total_read_bytes(self) -> int:
        return int(self.problem.inputs.nbytes[self.reads.chunk].sum())

    @cached_property
    def read_multiplicity(self) -> float:
        """Mean times each participating input chunk is read."""
        edge_in, _ = self.edge_arrays
        n_distinct = len(np.unique(edge_in))
        return len(self.reads) / n_distinct if n_distinct else 0.0

    @cached_property
    def total_comm_bytes(self) -> int:
        p = self.problem
        return (
            self.input_transfers.total_bytes(p.inputs.nbytes)
            + self.ghost_transfers.total_bytes(p.acc_nbytes)
            + self.init_transfers.total_bytes(p.outputs.nbytes)
        )

    def comm_bytes_per_proc(self) -> Tuple[np.ndarray, np.ndarray]:
        """(sent, received) byte volumes per processor."""
        p = self.problem
        sent = np.zeros(p.n_procs, dtype=np.int64)
        recv = np.zeros(p.n_procs, dtype=np.int64)
        for tr, sizes in (
            (self.input_transfers, p.inputs.nbytes),
            (self.ghost_transfers, p.acc_nbytes),
            (self.init_transfers, p.outputs.nbytes),
        ):
            if len(tr):
                np.add.at(sent, tr.src, sizes[tr.chunk])
                np.add.at(recv, tr.dst, sizes[tr.chunk])
        return sent, recv

    # -- execution schedule ---------------------------------------------------

    def schedule(self):
        """The plan's cached :class:`repro.runtime.phases.PhaseSchedule`.

        One derivation of everything schedule-shaped -- per-tile
        read/transfer/output orders, per-read forwarding recipients,
        per-(tile, processor) work tallies -- shared by the sequential
        engine, the multiprocess workers (which inherit it through
        fork), the prefetcher and the discrete-event simulator.
        Imported lazily: the planner package stays importable without
        the runtime layer.
        """
        sched = self.__dict__.get("_phase_schedule")
        if sched is None:
            from repro.runtime.phases import PhaseSchedule

            sched = PhaseSchedule(self)
            self.__dict__["_phase_schedule"] = sched
        return sched

    # -- persistence ---------------------------------------------------------

    def save(self, path) -> None:
        """Persist the plan (problem included) to disk.

        The query planning service may cache plans: the same query
        against an unchanged dataset replans identically, and planning
        large populations is the front end's most expensive CPU step.
        Cached traffic tables are dropped before pickling and rebuilt
        lazily after load.
        """
        import pickle

        state = dict(self.__dict__)
        for cached in (
            "edge_arrays", "edge_tile", "reads", "input_transfers",
            "ghost_transfers", "init_transfers", "total_read_bytes",
            "read_multiplicity", "total_comm_bytes", "n_holder_entries",
            "ghost_count", "_phase_schedule",
        ):
            state.pop(cached, None)
        with open(path, "wb") as fh:
            pickle.dump((type(self).__name__, state), fh, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def load(path) -> "QueryPlan":
        """Load a plan saved with :meth:`save` (structurally validated)."""
        import pickle

        from repro.planner.validate import validate_plan

        with open(path, "rb") as fh:
            tag, state = pickle.load(fh)
        if tag != "QueryPlan":
            raise TypeError(f"{path} does not contain a QueryPlan")
        plan = QueryPlan(
            strategy=state["strategy"],
            problem=state["problem"],
            n_tiles=state["n_tiles"],
            tile_of_output=state["tile_of_output"],
            holders_indptr=state["holders_indptr"],
            holders_ids=state["holders_ids"],
            edge_proc=state["edge_proc"],
        )
        validate_plan(plan)
        return plan

    def summary(self) -> str:
        p = self.problem
        sent, _ = self.comm_bytes_per_proc()
        return (
            f"{self.strategy}: {self.n_tiles} tiles, "
            f"{self.ghost_count} ghosts, "
            f"reads {self.total_read_bytes / 2**20:.1f} MB "
            f"(x{self.read_multiplicity:.2f}), "
            f"comm {self.total_comm_bytes / 2**20:.1f} MB total "
            f"({sent.max() / 2**20:.1f} MB max/proc)"
        )
