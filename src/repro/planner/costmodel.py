"""Closed-form cost models and automatic strategy selection.

Section 6 of the paper: "One of the long-term goals of our work on
query planning strategies is to develop simple but reasonably accurate
cost models to guide and automate the selection of an appropriate
strategy."  This module is that future work: it estimates a plan's
execution time phase by phase from plan statistics and the machine
description, assuming the execution service overlaps I/O,
communication and computation within each phase (so a phase costs
about the busiest processor's busiest resource).

The cost-model-accuracy bench compares these estimates against the
discrete-event simulator across the paper's whole experiment grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.machine.config import ComputeCosts, MachineConfig
from repro.planner.plan import QueryPlan
from repro.planner.problem import PlanningProblem
from repro.planner.stats import plan_stats

__all__ = ["CostModel", "CostEstimate", "estimate_cost", "select_strategy"]


@dataclass(frozen=True)
class CostEstimate:
    """Estimated per-phase and total execution time, seconds."""

    strategy: str
    init: float
    reduction: float
    combine: float
    output: float

    @property
    def total(self) -> float:
        return self.init + self.reduction + self.combine + self.output

    def row(self) -> str:
        return (
            f"{self.strategy:>6}: est {self.total:8.2f} s "
            f"(I {self.init:6.2f} / LR {self.reduction:8.2f} / "
            f"GC {self.combine:6.2f} / OH {self.output:6.2f})"
        )


class CostModel:
    """Estimates plan cost on a given machine and application.

    Two granularities answer the paper's two Section-6 questions:

    - ``per_tile=False`` (default): the *simple* model -- whole-query
      per-processor totals, phase cost = busiest processor's busiest
      resource.  Accurate when tiles are homogeneous; underestimates
      when per-tile barriers dominate (many tiles, large machines),
      which is exactly "under what circumstances do the simple cost
      models provide inaccurate results".
    - ``per_tile=True``: the *refined* model -- the same resource
      reasoning applied tile by tile with a barrier after each phase,
      "how can we refine the cost model in situations where it does
      not provide reasonably accurate results".
    """

    def __init__(
        self, machine: MachineConfig, costs: ComputeCosts, per_tile: bool = False
    ) -> None:
        self.machine = machine
        self.costs = costs
        self.per_tile = per_tile

    def estimate(self, plan: QueryPlan) -> CostEstimate:
        if self.per_tile:
            return self._estimate_per_tile(plan)
        return self._estimate_simple(plan)

    # ------------------------------------------------------------------
    # Simple model: whole-query totals
    # ------------------------------------------------------------------

    def _estimate_simple(self, plan: QueryPlan) -> CostEstimate:
        m, c = self.machine, self.costs
        p = plan.problem
        P = p.n_procs
        stats = plan_stats(plan)
        pruned = p.pruned_in_plan_mask()

        # Value-synopsis pruning: chunks the backends will skip at
        # execution time contribute no reads, no aggregation pairs and
        # no forwards -- pricing them would systematically over-estimate
        # every `where=` query (and distort auto-selection rankings).
        read_count = stats.read_count.astype(float)
        read_bytes = stats.read_bytes.astype(float)
        reduction_pairs = stats.reduction_pairs.astype(float)
        it = plan.input_transfers
        t_chunk, t_src, t_dst = it.chunk, it.src, it.dst
        if pruned is not None:
            r = plan.reads
            drop = pruned[r.chunk]
            read_count -= np.bincount(r.proc[drop], minlength=P)
            dropped_bytes = np.zeros(P)
            np.add.at(
                dropped_bytes,
                r.proc[drop],
                p.inputs.nbytes[r.chunk[drop]].astype(float),
            )
            read_bytes -= dropped_bytes
            edge_in, _ = plan.edge_arrays
            edrop = pruned[edge_in]
            reduction_pairs -= np.bincount(plan.edge_proc[edrop], minlength=P)
            if len(t_chunk):
                keep = ~pruned[t_chunk]
                t_chunk, t_src, t_dst = t_chunk[keep], t_src[keep], t_dst[keep]

        # Initialization: pure CPU (plus optional output re-reads).
        t_init = c.init * stats.init_chunks.max(initial=0)
        if p.init_from_output:
            it = plan.init_transfers
            recv = np.zeros(P, dtype=np.int64)
            if len(it):
                np.add.at(recv, it.dst, p.outputs.nbytes[it.chunk])
            t_init += float(recv.max(initial=0)) / m.link_bandwidth
            t_init += (
                stats.output_chunks.max(initial=0) * m.disk_seek
                + float(
                    np.bincount(p.output_owner, weights=p.outputs.nbytes, minlength=P).max()
                )
                / m.disk_bandwidth
            )

        # Local reduction: the busiest processor's busiest resource
        # (disk, CPU, NIC), since operations pipeline within the phase.
        io = read_count * m.disk_seek + read_bytes / m.disk_bandwidth
        if p.init_from_output:
            # those reads were charged to init above
            io = io - (
                stats.output_chunks * m.disk_seek
                + np.bincount(p.output_owner, weights=p.outputs.nbytes, minlength=P)
                / m.disk_bandwidth
            )
        sent = np.zeros(P, dtype=np.int64)
        recv = np.zeros(P, dtype=np.int64)
        if len(t_chunk):
            np.add.at(sent, t_src, p.inputs.nbytes[t_chunk])
            np.add.at(recv, t_dst, p.inputs.nbytes[t_chunk])
        # message handling is processor-driven (cpu_per_byte)
        cpu = c.reduction * reduction_pairs + (sent + recv) * m.cpu_per_byte
        net = np.maximum(sent, recv) / m.link_bandwidth
        t_lr = float(np.maximum(np.maximum(io, cpu), net).max(initial=0))

        # Global combine: ghost shipment + merge at the owner.
        gt = plan.ghost_transfers
        g_sent = np.zeros(P, dtype=np.int64)
        g_recv = np.zeros(P, dtype=np.int64)
        if len(gt):
            np.add.at(g_sent, gt.src, p.acc_nbytes[gt.chunk])
            np.add.at(g_recv, gt.dst, p.acc_nbytes[gt.chunk])
        t_gc = float(
            np.maximum(
                np.maximum(g_sent, g_recv) / m.link_bandwidth,
                c.combine * stats.combine_ops
                + (g_sent + g_recv) * m.cpu_per_byte,
            ).max(initial=0)
        )

        # Output handling: finalize + write locally.
        t_oh = float(
            (
                c.output * stats.output_chunks
                + stats.output_chunks * m.disk_seek
                + stats.write_bytes / m.disk_bandwidth
            ).max(initial=0)
        )

        return CostEstimate(plan.strategy, t_init, t_lr, t_gc, t_oh)

    # ------------------------------------------------------------------
    # Refined model: per-tile barriers
    # ------------------------------------------------------------------

    def _estimate_per_tile(self, plan: QueryPlan) -> CostEstimate:
        m, c = self.machine, self.costs
        p = plan.problem
        P = p.n_procs
        T = max(plan.n_tiles, 1)

        def grid(tile: np.ndarray, proc: np.ndarray, weights=None) -> np.ndarray:
            out = np.zeros((T, P))
            if len(tile):
                np.add.at(
                    out,
                    (tile, proc),
                    1.0 if weights is None else weights.astype(float),
                )
            return out

        # Initialization: accumulator allocations per (tile, proc).
        counts = np.diff(plan.holders_indptr)
        flat_out = np.repeat(np.arange(p.n_out, dtype=np.int64), counts)
        alloc = grid(plan.tile_of_output[flat_out], plan.holders_ids)
        t_init = float((c.init * alloc).max(axis=1).sum())

        # Local reduction per tile.  As in the simple model, rows for
        # chunks that value-synopsis pruning will skip are dropped.
        pruned = p.pruned_in_plan_mask()
        r = plan.reads
        r_tile, r_proc, r_chunk = r.tile, r.proc, r.chunk
        if pruned is not None and len(r_chunk):
            keep = ~pruned[r_chunk]
            r_tile, r_proc, r_chunk = r_tile[keep], r_proc[keep], r_chunk[keep]
        io = grid(r_tile, r_proc) * m.disk_seek + grid(
            r_tile, r_proc, p.inputs.nbytes[r_chunk]
        ) / (m.disk_bandwidth * m.disks_per_node)
        edge_in, _ = plan.edge_arrays
        e_tile, e_proc = plan.edge_tile, plan.edge_proc
        if pruned is not None and len(edge_in):
            ekeep = ~pruned[edge_in]
            e_tile, e_proc = e_tile[ekeep], e_proc[ekeep]
        pairs = grid(e_tile, e_proc)
        it = plan.input_transfers
        i_tile, i_src, i_dst, i_chunk = it.tile, it.src, it.dst, it.chunk
        if pruned is not None and len(i_chunk):
            ikeep = ~pruned[i_chunk]
            i_tile, i_src = i_tile[ikeep], i_src[ikeep]
            i_dst, i_chunk = i_dst[ikeep], i_chunk[ikeep]
        sent = grid(i_tile, i_src, p.inputs.nbytes[i_chunk])
        recv = grid(i_tile, i_dst, p.inputs.nbytes[i_chunk])
        cpu = c.reduction * pairs + (sent + recv) * m.cpu_per_byte
        net = np.maximum(sent, recv) / m.link_bandwidth
        t_lr = float(np.maximum(np.maximum(io, cpu), net).max(axis=1).sum())

        # Global combine per tile.
        g = plan.ghost_transfers
        g_sent = grid(g.tile, g.src, p.acc_nbytes[g.chunk])
        g_recv = grid(g.tile, g.dst, p.acc_nbytes[g.chunk])
        g_ops = grid(g.tile, g.dst)
        gc_cpu = c.combine * g_ops + (g_sent + g_recv) * m.cpu_per_byte
        t_gc = float(
            np.maximum(np.maximum(g_sent, g_recv) / m.link_bandwidth, gc_cpu)
            .max(axis=1)
            .sum()
        )

        # Output handling per tile.
        out_tile = plan.tile_of_output
        owner = p.output_owner.astype(np.int64)
        outs = grid(out_tile, owner)
        writes = grid(out_tile, owner, p.outputs.nbytes)
        t_oh = float(
            (
                c.output * outs
                + outs * m.disk_seek
                + writes / (m.disk_bandwidth * m.disks_per_node)
            )
            .max(axis=1)
            .sum()
        )

        # Initialization-from-output: owners re-read + forward, charged
        # at whole-query granularity (it is rare and small).
        if p.init_from_output:
            base = self._estimate_simple(plan)
            extra = base.init - float(
                (c.init * alloc).max(axis=1).sum()
            )
            t_init += max(extra, 0.0)

        return CostEstimate(plan.strategy, t_init, t_lr, t_gc, t_oh)


def estimate_cost(
    plan: QueryPlan, machine: MachineConfig, costs: ComputeCosts
) -> CostEstimate:
    """Functional wrapper around :class:`CostModel`."""
    return CostModel(machine, costs).estimate(plan)


def select_strategy(
    problem: PlanningProblem,
    machine: MachineConfig,
    costs: ComputeCosts,
    strategies: Optional[Iterable[str]] = None,
) -> Tuple[QueryPlan, Dict[str, CostEstimate]]:
    """Plan with every candidate strategy, estimate each, return the
    cheapest plan plus all estimates (for reporting).

    Back-compat wrapper: the selection itself lives at the single
    choke point :func:`repro.planner.select.choose_strategy`; its
    accuracy against the simulator is quantified in
    ``benchmarks/bench_costmodel_accuracy.py``.
    """
    from repro.planner.select import FIXED_STRATEGIES, choose_strategy

    names = tuple(strategies) if strategies is not None else FIXED_STRATEGIES
    choice = choose_strategy(problem, CostModel(machine, costs), names)
    return choice.plan, choice.estimates
