"""The three query-processing strategies (paper Section 3).

Each function below is a direct transcription of the paper's tiling
and workload-partitioning pseudo-code (Figures 4, 5, 6), sharing the
Hilbert-ordered output chunk selection.  Two small deviations from the
pseudo-code, both noted inline:

- the first output chunk never opens an *empty* leading tile (the
  literal Figure-4 text increments the tile counter even when nothing
  has been assigned yet if a single chunk exceeds memory);
- under SRA the owner of an output chunk is charged memory alongside
  the processors of ``So`` -- the owner must hold the chunk to produce
  the final output even when it stores no projecting input (Figure 5
  accounts only for ``So``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.planner.plan import QueryPlan
from repro.planner.problem import PlanningProblem

__all__ = ["plan_fra", "plan_sra", "plan_da", "plan_query", "STRATEGIES"]


def _so_lists(problem: PlanningProblem) -> Tuple[np.ndarray, np.ndarray]:
    """CSR of ``So`` per output chunk: processors owning at least one
    input chunk that projects to it (Figure 5, step 5), vectorized over
    all edges at once."""
    edge_in, edge_out = problem.graph.edge_arrays()
    if len(edge_in) == 0:
        return np.zeros(problem.n_out + 1, dtype=np.int64), np.empty(0, dtype=np.int64)
    pairs = np.stack((edge_out, problem.input_owner[edge_in].astype(np.int64)), axis=1)
    uniq = np.unique(pairs, axis=0)
    counts = np.bincount(uniq[:, 0], minlength=problem.n_out)
    indptr = np.concatenate(([0], np.cumsum(counts)))
    return indptr.astype(np.int64), uniq[:, 1].copy()


def _holders_csr(holder_lists: List[np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
    counts = np.asarray([len(h) for h in holder_lists], dtype=np.int64)
    indptr = np.concatenate(([0], np.cumsum(counts)))
    ids = (
        np.concatenate(holder_lists)
        if holder_lists and indptr[-1] > 0
        else np.empty(0, dtype=np.int64)
    )
    return indptr, ids.astype(np.int64)


def plan_fra(problem: PlanningProblem, order: np.ndarray | None = None) -> QueryPlan:
    """Fully Replicated Accumulator (Figure 4).

    The tile budget is the *minimum* memory over all processors, since
    every accumulator chunk of a tile is replicated on every
    processor.  Each processor aggregates its own local input chunks;
    partial results meet at the owner in the global-combine phase.

    ``order`` overrides the Hilbert output-chunk selection order (used
    by the tiling-order ablation); default is the paper's Hilbert sort.
    """
    order = problem.output_hilbert_order() if order is None else np.asarray(order)
    budget = int(problem.memory_per_proc.min())
    tile_of = np.empty(problem.n_out, dtype=np.int64)
    tile, used = 0, 0
    for o in order:
        size = int(problem.acc_nbytes[o])
        if used + size > budget and used > 0:
            tile += 1
            used = 0
        used += size
        tile_of[o] = tile
    n_tiles = tile + 1 if problem.n_out else 0

    all_procs = np.arange(problem.n_procs, dtype=np.int64)
    holders_indptr = np.arange(problem.n_out + 1, dtype=np.int64) * problem.n_procs
    holders_ids = np.tile(all_procs, problem.n_out)

    edge_in, _ = problem.graph.edge_arrays()
    edge_proc = problem.input_owner[edge_in].astype(np.int64)
    return QueryPlan(
        "FRA", problem, n_tiles, tile_of, holders_indptr, holders_ids, edge_proc
    )


def plan_sra(problem: PlanningProblem, order: np.ndarray | None = None) -> QueryPlan:
    """Sparsely Replicated Accumulator (Figure 5).

    A ghost chunk is allocated only on processors owning at least one
    projecting input chunk; a tile closes as soon as the next chunk
    would overflow *any* involved processor's remaining memory.
    """
    so_indptr, so_ids = _so_lists(problem)
    order = problem.output_hilbert_order() if order is None else np.asarray(order)
    mem = problem.memory_per_proc.astype(np.int64).copy()
    tile_of = np.empty(problem.n_out, dtype=np.int64)
    holder_lists: List[np.ndarray] = [np.empty(0, dtype=np.int64)] * problem.n_out
    tile = 0
    opened = False  # something assigned to the current tile yet?
    for o in order:
        size = int(problem.acc_nbytes[o])
        owner = int(problem.output_owner[o])
        so = so_ids[so_indptr[o] : so_indptr[o + 1]]
        # so is sorted (np.unique); deviation: the owner always holds
        # its chunk even when it stores no projecting input.
        pos = np.searchsorted(so, owner)
        if pos < len(so) and so[pos] == owner:
            holders = so
        else:
            holders = np.insert(so, pos, owner)
        if opened and np.any(mem[holders] < size):
            tile += 1
            mem[:] = problem.memory_per_proc
            opened = False
        mem[holders] -= size
        tile_of[o] = tile
        holder_lists[o] = holders
        opened = True
    n_tiles = tile + 1 if problem.n_out else 0

    holders_indptr, holders_ids = _holders_csr(holder_lists)
    edge_in, _ = problem.graph.edge_arrays()
    edge_proc = problem.input_owner[edge_in].astype(np.int64)
    return QueryPlan(
        "SRA", problem, n_tiles, tile_of, holders_indptr, holders_ids, edge_proc
    )


def plan_da(problem: PlanningProblem, order: np.ndarray | None = None) -> QueryPlan:
    """Distributed Accumulator (Figure 6).

    No replication: each processor's working set is its local output
    chunks, tiled against its own memory with a *per-processor* tile
    counter; the global tile count is the maximum.  Every input chunk
    is forwarded to the owners of the output chunks it maps to.
    """
    order = problem.output_hilbert_order() if order is None else np.asarray(order)
    mem = problem.memory_per_proc.astype(np.int64).copy()
    tile_p = np.zeros(problem.n_procs, dtype=np.int64)
    opened = np.zeros(problem.n_procs, dtype=bool)
    tile_of = np.empty(problem.n_out, dtype=np.int64)
    for o in order:
        size = int(problem.acc_nbytes[o])
        p = int(problem.output_owner[o])
        if opened[p] and mem[p] < size:
            tile_p[p] += 1
            mem[p] = int(problem.memory_per_proc[p])
        mem[p] -= size
        tile_of[o] = tile_p[p]
        opened[p] = True
    n_tiles = int(tile_p.max()) + 1 if problem.n_out else 0

    holders_indptr = np.arange(problem.n_out + 1, dtype=np.int64)
    holders_ids = problem.output_owner.astype(np.int64).copy()
    _, edge_out = problem.graph.edge_arrays()
    edge_proc = problem.output_owner[edge_out].astype(np.int64)
    return QueryPlan(
        "DA", problem, n_tiles, tile_of, holders_indptr, holders_ids, edge_proc
    )


STRATEGIES: Dict[str, Callable[[PlanningProblem], QueryPlan]] = {
    "FRA": plan_fra,
    "SRA": plan_sra,
    "DA": plan_da,
}


def plan_query(problem: PlanningProblem, strategy: str) -> QueryPlan:
    """Plan with a named strategy (``"FRA"``, ``"SRA"``, ``"DA"``, or
    ``"HYBRID"`` -- the latter resolved lazily to avoid an import
    cycle with the hybrid module, which itself plans baselines)."""
    key = strategy.upper()
    if key == "HYBRID":
        from repro.planner.hybrid import plan_hybrid

        return plan_hybrid(problem)
    try:
        fn = STRATEGIES[key]
    except KeyError:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from "
            f"{sorted(STRATEGIES) + ['HYBRID']}"
        ) from None
    return fn(problem)
