"""Hybrid query-processing strategy (paper Section 6, future work).

"The strategies presented in this paper represent two extreme
approaches. [...] Our experimental results suggest that a hybrid
strategy may provide better performance.  For example, the tiling and
workload partitioning steps can be formulated as a multi-graph
partitioning problem, with input and output chunks representing the
graph vertices, and the mapping between input and output chunks [...]
representing the graph edges."

This module implements that suggestion.  Per output chunk the planner
chooses, in Hilbert selection order, between the two extremes --
*replicate* (SRA-style ghosts on the processors holding projecting
input) and *distribute* (all of the chunk's aggregation on one
processor, with the inputs forwarded there) -- by comparing their
estimated communication + computation cost given the current
per-processor load.  Distribute-mode chunks may be assigned to a
processor other than the owner when that repairs load imbalance (the
DA weakness the paper measures); the generalized plan representation
covers this with a two-element holder set {assignee, owner} and a
single ghost shipment back to the owner.

:func:`chunk_multigraph` exposes the underlying bipartite multigraph
as a :mod:`networkx` graph for analysis and for the hybrid bench's
cut statistics.
"""

from __future__ import annotations

from typing import List, Optional

import networkx as nx
import numpy as np

from repro.machine.config import ComputeCosts, MachineConfig
from repro.planner.plan import QueryPlan
from repro.planner.problem import PlanningProblem
from repro.planner.strategies import _so_lists

__all__ = ["plan_hybrid", "chunk_multigraph"]


def chunk_multigraph(problem: PlanningProblem) -> nx.Graph:
    """The paper's multigraph: bipartite input/output chunk incidence.

    Nodes are ``("in", i)`` / ``("out", o)`` with ``bytes`` and
    ``proc`` attributes; edges carry the (unit) aggregation weight.
    """
    g = nx.Graph()
    for i in range(problem.n_in):
        g.add_node(
            ("in", i),
            bytes=int(problem.inputs.nbytes[i]),
            proc=int(problem.input_owner[i]),
        )
    for o in range(problem.n_out):
        g.add_node(
            ("out", o),
            bytes=int(problem.acc_nbytes[o]),
            proc=int(problem.output_owner[o]),
        )
    edge_in, edge_out = problem.graph.edge_arrays()
    for i, o in zip(edge_in, edge_out):
        g.add_edge(("in", int(i)), ("out", int(o)))
    return g


def plan_hybrid(
    problem: PlanningProblem,
    machine: Optional[MachineConfig] = None,
    costs: Optional[ComputeCosts] = None,
) -> QueryPlan:
    """Per-output-chunk replicate/distribute choice with load balancing.

    Without a machine description the model falls back to byte counts
    with a nominal compute weight, which preserves the decision
    structure (the bench passes the real machine).
    """
    link_bw = machine.link_bandwidth if machine else 100e6
    lr = costs.reduction if costs else 1e-3
    gc = costs.combine if costs else 1e-3

    so_indptr, so_ids = _so_lists(problem)
    fwd_indptr, fwd_ids = problem.graph.forward_csr
    rev_indptr, rev_ids = problem.graph.reverse_csr
    in_bytes = problem.inputs.nbytes
    in_owner = problem.input_owner
    out_owner = problem.output_owner

    order = problem.output_hilbert_order()
    P = problem.n_procs
    mem = problem.memory_per_proc.astype(np.int64).copy()
    load = np.zeros(P, dtype=float)  # accumulated LR seconds per proc

    tile = 0
    opened = False
    tile_of = np.empty(problem.n_out, dtype=np.int64)
    holder_lists: List[np.ndarray] = [np.empty(0, dtype=np.int64)] * problem.n_out
    # edge_proc aligned with forward CSR; fill per output via reverse lists.
    edge_proc = np.empty(problem.graph.n_edges, dtype=np.int64)
    # position of each edge (i, o) inside i's forward slice:
    # precompute a map from (reverse) edge to forward index.
    fwd_pos = _reverse_to_forward(problem)

    for o in order:
        o = int(o)
        owner = int(out_owner[o])
        ins = rev_ids[rev_indptr[o] : rev_indptr[o + 1]]
        so = so_ids[so_indptr[o] : so_indptr[o + 1]]
        fan_in = len(ins)
        size = int(problem.acc_nbytes[o])

        # Replicate cost: every non-owner processor in So ships one
        # ghost accumulator and the owner merges it.
        n_ghosts = len(so) - (1 if owner in so else 0)
        cost_rep = n_ghosts * (size / link_bw + gc)

        # Distribute cost to candidate q: forward every input chunk
        # stored away from q, plus the marginal load imbalance, plus a
        # ghost shipment when q is not the owner.
        work = lr * fan_in
        candidates = [owner]
        if fan_in:
            # the processor holding the most projecting input bytes
            bytes_by_proc = np.zeros(P, dtype=np.int64)
            np.add.at(bytes_by_proc, in_owner[ins], in_bytes[ins])
            candidates.append(int(bytes_by_proc.argmax()))
            candidates.append(int(load.argmin()))
        best_q, best_dist = owner, np.inf
        base_load = load.max()
        for q in dict.fromkeys(candidates):
            remote = in_owner[ins] != q
            comm = float(in_bytes[ins[remote]].sum()) / link_bw
            ghost = 0.0 if q == owner else (size / link_bw + gc)
            imbalance = max(load[q] + work - max(base_load, work), 0.0)
            total = comm + ghost + imbalance
            if total < best_dist:
                best_q, best_dist = q, total

        if cost_rep <= best_dist:
            pos = np.searchsorted(so, owner)
            if pos < len(so) and so[pos] == owner:
                holders = so.copy()
            else:
                holders = np.insert(so, pos, owner)
            procs = in_owner[ins].astype(np.int64)
        else:
            holders = (
                np.asarray([owner], dtype=np.int64)
                if best_q == owner
                else np.asarray(sorted({owner, best_q}), dtype=np.int64)
            )
            procs = np.full(fan_in, best_q, dtype=np.int64)
            load[best_q] += work

        if opened and np.any(mem[holders] < size):
            tile += 1
            mem[:] = problem.memory_per_proc
            opened = False
        mem[holders] -= size
        opened = True
        tile_of[o] = tile
        holder_lists[o] = holders
        # write edge processors through the reverse->forward index map
        edge_proc[fwd_pos[rev_indptr[o] : rev_indptr[o + 1]]] = procs

    n_tiles = tile + 1 if problem.n_out else 0
    counts = np.asarray([len(h) for h in holder_lists], dtype=np.int64)
    holders_indptr = np.concatenate(([0], np.cumsum(counts)))
    holders_ids = (
        np.concatenate(holder_lists) if problem.n_out and counts.sum() else np.empty(0, dtype=np.int64)
    )
    return QueryPlan(
        "HYBRID",
        problem,
        n_tiles,
        tile_of,
        holders_indptr,
        holders_ids.astype(np.int64),
        edge_proc,
    )


def _reverse_to_forward(problem: PlanningProblem) -> np.ndarray:
    """For each reverse-CSR edge slot, its index in the forward CSR.

    Lets per-output edge assignments write into the forward-aligned
    ``edge_proc`` array without a Python-level search per edge.
    """
    fwd_indptr, fwd_ids = problem.graph.forward_csr
    rev_indptr, rev_ids = problem.graph.reverse_csr
    n_edges = problem.graph.n_edges
    # forward edge k belongs to input i(k) and output fwd_ids[k]
    edge_in = np.repeat(
        np.arange(problem.n_in, dtype=np.int64), np.diff(fwd_indptr)
    )
    edge_out = fwd_ids
    # sort forward edges by (out, in) -- the reverse CSR order
    order = np.lexsort((edge_in, edge_out))
    return order.astype(np.int64)
