"""Measured-run telemetry: the raw material of cost-model calibration.

Section 6 of the paper asks for "simple but reasonably accurate cost
models to guide and automate the selection of an appropriate
strategy".  An accurate model needs measured data: the functional
backends report real per-phase wall-clock (``QueryResult.phase_times``)
and the discrete-event simulator reports the same per virtual phase.
This module harvests those measurements into :class:`MeasuredRun`
records -- one per executed query, pairing the plan's busiest-processor
work features with the observed per-phase times -- and persists them in
a JSONL :class:`TelemetryLog` so calibration
(:mod:`repro.planner.calibrate`) can fit machine constants across many
runs, machines and sessions.

A record is deliberately *self-contained*: it stores the extracted
feature vector, not the plan, so logs stay small, survive schema-stable
across dataset reloads, and can be fitted without replanning anything.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List

import numpy as np

from repro.planner.plan import QueryPlan
from repro.planner.stats import plan_stats

__all__ = [
    "CANONICAL_PHASES",
    "FEATURES",
    "MeasuredRun",
    "TelemetryLog",
    "plan_features",
]

#: Canonical phase keys used throughout telemetry and calibration
#: (the simulator's names; the runtime's ``initialize``/``reduce`` are
#: normalized on ingestion).
CANONICAL_PHASES = ("init", "reduction", "combine", "output")

_PHASE_ALIASES = {
    "init": "init",
    "initialize": "init",
    "reduction": "reduction",
    "reduce": "reduction",
    "combine": "combine",
    "output": "output",
}

#: Busiest-processor work features extracted from a plan, the
#: regressors of the per-phase cost equations (see docs/planning.md).
FEATURES = (
    "init_chunks",
    "reduction_pairs",
    "read_count",
    "read_bytes",
    "lr_messages",
    "combine_ops",
    "gc_messages",
    "output_chunks",
    "write_bytes",
)


def plan_features(plan: QueryPlan) -> Dict[str, float]:
    """Busiest-processor work quantities of one plan.

    Each phase's cost is about the busiest processor's busiest
    resource; these are the per-resource maxima the closed-form model
    and the calibrated model both price.  When the problem marks
    planned chunks as prunable
    (:meth:`~repro.planner.problem.PlanningProblem.pruned_in_plan_mask`),
    their reads, aggregation pairs and forwards are subtracted --
    execution will skip them.
    """
    p = plan.problem
    P = p.n_procs
    stats = plan_stats(plan)
    pruned = p.pruned_in_plan_mask()

    read_count = stats.read_count.astype(float)
    read_bytes = stats.read_bytes.astype(float)
    reduction_pairs = stats.reduction_pairs.astype(float)

    it = plan.input_transfers
    t_chunk, t_src, t_dst = it.chunk, it.src, it.dst
    if pruned is not None:
        r = plan.reads
        drop = pruned[r.chunk]
        read_count -= np.bincount(r.proc[drop], minlength=P)
        dropped_bytes = np.zeros(P)
        np.add.at(
            dropped_bytes, r.proc[drop], p.inputs.nbytes[r.chunk[drop]].astype(float)
        )
        read_bytes -= dropped_bytes
        edge_in, _ = plan.edge_arrays
        edrop = pruned[edge_in]
        reduction_pairs -= np.bincount(plan.edge_proc[edrop], minlength=P)
        if len(it):
            keep = ~pruned[t_chunk]
            t_chunk, t_src, t_dst = t_chunk[keep], t_src[keep], t_dst[keep]

    lr_messages = np.zeros(P, dtype=np.int64)
    if len(t_chunk):
        lr_messages += np.bincount(t_src, minlength=P)
        lr_messages += np.bincount(t_dst, minlength=P)

    gt = plan.ghost_transfers
    gc_messages = np.zeros(P, dtype=np.int64)
    if len(gt):
        gc_messages += np.bincount(gt.src, minlength=P)
        gc_messages += np.bincount(gt.dst, minlength=P)

    return {
        "init_chunks": float(stats.init_chunks.max(initial=0)),
        "reduction_pairs": float(reduction_pairs.max(initial=0)),
        "read_count": float(read_count.max(initial=0)),
        "read_bytes": float(read_bytes.max(initial=0)),
        "lr_messages": float(lr_messages.max(initial=0)),
        "combine_ops": float(stats.combine_ops.max(initial=0)),
        "gc_messages": float(gc_messages.max(initial=0)),
        "output_chunks": float(stats.output_chunks.max(initial=0)),
        "write_bytes": float(stats.write_bytes.max(initial=0)),
    }


def _normalize_phase_times(times: Dict[str, float]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for key, value in times.items():
        canon = _PHASE_ALIASES.get(str(key))
        if canon is None:
            continue
        out[canon] = out.get(canon, 0.0) + float(value)
    return out


@dataclass(frozen=True)
class MeasuredRun:
    """One executed query's plan features + observed per-phase times.

    ``phase_times`` uses the canonical keys of
    :data:`CANONICAL_PHASES`; ``features`` the keys of
    :data:`FEATURES`.  ``source`` records where the times came from
    (``"measured"`` for backend wall-clock, ``"simulated"`` for the
    discrete-event simulator) so mixed logs can be filtered before
    fitting.
    """

    strategy: str
    n_procs: int
    n_tiles: int
    phase_times: Dict[str, float]
    features: Dict[str, float]
    source: str = "measured"
    total_time: float = 0.0
    chunks_pruned: int = 0
    bytes_pruned: int = 0

    @classmethod
    def from_result(cls, plan: QueryPlan, result) -> "MeasuredRun":
        """Harvest a run from a functional backend's ``QueryResult``."""
        times = _normalize_phase_times(dict(result.phase_times))
        return cls(
            strategy=str(plan.strategy),
            n_procs=int(plan.problem.n_procs),
            n_tiles=int(plan.n_tiles),
            phase_times=times,
            features=plan_features(plan),
            source="measured",
            total_time=float(sum(times.values())),
            chunks_pruned=int(result.chunks_pruned),
            bytes_pruned=int(result.bytes_pruned),
        )

    @classmethod
    def from_sim(cls, plan: QueryPlan, sim) -> "MeasuredRun":
        """Harvest a run from a discrete-event ``SimResult``."""
        times = _normalize_phase_times(dict(sim.phase_times))
        return cls(
            strategy=str(plan.strategy),
            n_procs=int(plan.problem.n_procs),
            n_tiles=int(plan.n_tiles),
            phase_times=times,
            features=plan_features(plan),
            source="simulated",
            total_time=float(sim.total_time),
            chunks_pruned=int(sim.chunks_pruned),
            bytes_pruned=int(sim.bytes_pruned),
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "strategy": self.strategy,
            "n_procs": self.n_procs,
            "n_tiles": self.n_tiles,
            "phase_times": {k: float(v) for k, v in self.phase_times.items()},
            "features": {k: float(v) for k, v in self.features.items()},
            "source": self.source,
            "total_time": float(self.total_time),
            "chunks_pruned": self.chunks_pruned,
            "bytes_pruned": self.bytes_pruned,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "MeasuredRun":
        try:
            return cls(
                strategy=str(d["strategy"]),
                n_procs=int(d["n_procs"]),
                n_tiles=int(d["n_tiles"]),
                phase_times=_normalize_phase_times(dict(d["phase_times"])),
                features={str(k): float(v) for k, v in dict(d["features"]).items()},
                source=str(d.get("source", "measured")),
                total_time=float(d.get("total_time", 0.0)),
                chunks_pruned=int(d.get("chunks_pruned", 0)),
                bytes_pruned=int(d.get("bytes_pruned", 0)),
            )
        except (KeyError, TypeError, ValueError) as e:
            raise ValueError(f"bad MeasuredRun record: {e}") from e


class TelemetryLog:
    """Append-only JSONL persistence for :class:`MeasuredRun` records.

    One record per line; appends are atomic at line granularity and
    serialized by an internal lock, so the concurrent query service can
    record from several worker threads into one log.  Loading skips
    blank lines but raises on malformed records -- a corrupt log should
    fail calibration loudly, not silently thin the data.
    """

    def __init__(self, path) -> None:
        self.path = os.fspath(path)
        self._lock = threading.Lock()

    def append(self, run: MeasuredRun) -> None:
        line = json.dumps(run.to_dict(), sort_keys=True)
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")

    def extend(self, runs: Iterable[MeasuredRun]) -> None:
        for run in runs:
            self.append(run)

    def load(self) -> List[MeasuredRun]:
        if not os.path.exists(self.path):
            return []
        out: List[MeasuredRun] = []
        with open(self.path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    out.append(MeasuredRun.from_dict(json.loads(line)))
                except ValueError as e:
                    raise ValueError(
                        f"{self.path}:{lineno}: {e}"
                    ) from e
        return out

    def __len__(self) -> int:
        return len(self.load())
