"""Static plan statistics.

Everything Figure 9 measures -- communication volume and computation
work per processor -- is already determined by the plan, before any
execution.  :func:`plan_stats` extracts those per-processor totals;
the discrete-event simulator then tells how they translate into
elapsed time (overlap, contention, barriers), and the closed-form cost
model approximates the same from these numbers alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.planner.plan import QueryPlan

__all__ = ["PlanStats", "plan_stats"]


@dataclass(frozen=True)
class PlanStats:
    """Per-processor work/traffic totals for one plan.

    All arrays have shape ``(n_procs,)``.
    """

    strategy: str
    n_procs: int
    n_tiles: int
    #: accumulator chunk allocations (initialization work)
    init_chunks: np.ndarray
    #: (input chunk, accumulator chunk) aggregation pairs executed
    reduction_pairs: np.ndarray
    #: ghost accumulator chunks merged at the owner (combine work)
    combine_ops: np.ndarray
    #: output chunks finalized and written (output-handling work)
    output_chunks: np.ndarray
    #: distinct disk reads and bytes read from local disks
    read_count: np.ndarray
    read_bytes: np.ndarray
    #: bytes written to local disks (output handling)
    write_bytes: np.ndarray
    #: bytes sent / received over the network
    sent_bytes: np.ndarray
    recv_bytes: np.ndarray

    # -- aggregate views -------------------------------------------------

    @property
    def comm_bytes_per_proc(self) -> np.ndarray:
        """Send + receive volume per processor (Figure 9 a/b metric)."""
        return self.sent_bytes + self.recv_bytes

    @property
    def total_comm_bytes(self) -> int:
        return int(self.sent_bytes.sum())

    @property
    def load_imbalance(self) -> float:
        """max/mean of reduction pairs across processors (1.0 = perfect)."""
        mean = self.reduction_pairs.mean()
        return float(self.reduction_pairs.max() / mean) if mean > 0 else 1.0

    def table_row(self) -> str:
        return (
            f"{self.strategy:>6} | tiles {self.n_tiles:3d} | "
            f"comm/proc {self.comm_bytes_per_proc.mean() / 2**20:9.1f} MB | "
            f"read/proc {self.read_bytes.mean() / 2**20:9.1f} MB | "
            f"pairs max/mean {self.load_imbalance:5.2f}"
        )


def plan_stats(plan: QueryPlan) -> PlanStats:
    p = plan.problem
    P = p.n_procs

    init_chunks = np.bincount(plan.holders_ids, minlength=P).astype(np.int64)

    reduction_pairs = np.bincount(plan.edge_proc, minlength=P).astype(np.int64)

    g = plan.ghost_transfers
    combine_ops = np.bincount(g.dst, minlength=P).astype(np.int64) if len(g) else np.zeros(P, dtype=np.int64)

    output_chunks = np.bincount(p.output_owner, minlength=P).astype(np.int64)

    r = plan.reads
    read_count = np.bincount(r.proc, minlength=P).astype(np.int64)
    read_bytes = np.zeros(P, dtype=np.int64)
    if len(r):
        np.add.at(read_bytes, r.proc, p.inputs.nbytes[r.chunk])
    if p.init_from_output:
        # Owners also read the existing output chunks once per tile.
        np.add.at(read_bytes, p.output_owner, p.outputs.nbytes)
        read_count += output_chunks

    write_bytes = np.zeros(P, dtype=np.int64)
    np.add.at(write_bytes, p.output_owner, p.outputs.nbytes)

    sent_bytes, recv_bytes = plan.comm_bytes_per_proc()

    return PlanStats(
        strategy=plan.strategy,
        n_procs=P,
        n_tiles=plan.n_tiles,
        init_chunks=init_chunks,
        reduction_pairs=reduction_pairs,
        combine_ops=combine_ops,
        output_chunks=output_chunks,
        read_count=read_count,
        read_bytes=read_bytes,
        write_bytes=write_bytes,
        sent_bytes=sent_bytes,
        recv_bytes=recv_bytes,
    )
