"""Batch (multi-query) planning.

The paper's query planning service "determines a query plan to
efficiently process a *set of queries* based on the amount of
available resources in the back-end".  With several range queries
pending against the same dataset, the dominant shared resource is the
disk farm: queries whose ranges overlap retrieve many of the same
input chunks, and executing them back to back lets the second query
aggregate straight out of the buffers the first one filled (ADR's
storage-manager integration makes those buffers visible to
processing).

:func:`plan_batch` plans each query individually (any strategy) and
then *orders* the batch to maximize consecutive-query chunk overlap --
a greedy chain on shared input bytes -- so the one-query reuse window
captures as much of the overlap as possible.  The ordering itself is
:func:`order_for_sharing`, which also accepts pre-built plans: the
concurrent front end (:mod:`repro.frontend.queryservice`) uses it to
schedule *in-flight* queries for functional scan sharing through the
payload cache, pinning the chunks named by
:meth:`BatchPlan.consecutive_shared_keys` for the batch's lifetime.
:func:`repro.sim.query_sim.simulate_query` accepts the resulting
``cached_inputs`` set per query, and :func:`simulate_batch` runs the
whole ordered batch, reporting per-query times and the bytes the
sharing saved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.machine.config import ComputeCosts, MachineConfig
from repro.planner.plan import QueryPlan
from repro.planner.problem import PlanningProblem
from repro.planner.strategies import plan_query

__all__ = [
    "BatchPlan",
    "plan_batch",
    "order_for_sharing",
    "simulate_batch",
    "BatchSimResult",
]


@dataclass
class BatchPlan:
    """Ordered plans for a set of queries over one dataset."""

    plans: List[QueryPlan]
    #: execution order: positions into ``plans``
    order: List[int]

    def __post_init__(self) -> None:
        if sorted(self.order) != list(range(len(self.plans))):
            raise ValueError("order must be a permutation of the plans")

    def __len__(self) -> int:
        return len(self.plans)

    def ordered_plans(self) -> List[QueryPlan]:
        return [self.plans[i] for i in self.order]

    # -- sharing analysis ----------------------------------------------

    def query_chunk_sets(self) -> List[FrozenSet[int]]:
        """Global input chunk ids each query retrieves (dataset ids)."""
        out = []
        for plan in self.plans:
            gids = plan.problem.input_global_ids
            used = np.unique(plan.reads.chunk)
            out.append(frozenset(int(g) for g in gids[used]))
        return out

    def consecutive_shared_bytes(self) -> int:
        """Bytes of chunk reads the one-query reuse window can elide
        under the chosen order (first retrieval per window still pays)."""
        sets = self.query_chunk_sets()
        sizes = self._global_sizes()
        total = 0
        for a, b in zip(self.order, self.order[1:]):
            for g in sets[a] & sets[b]:
                total += sizes[g]
        return total

    def consecutive_shared_keys(self) -> FrozenSet[int]:
        """Global input chunk ids shared by *consecutive* queries under
        the chosen order -- the chunks a shared-scan executor should pin
        in the payload cache so the successor query's reads are served
        from memory rather than the disk farm."""
        sets = self.query_chunk_sets()
        shared: set = set()
        for a, b in zip(self.order, self.order[1:]):
            shared |= sets[a] & sets[b]
        return frozenset(shared)

    def total_read_bytes(self) -> int:
        return sum(p.total_read_bytes for p in self.plans)

    def _global_sizes(self) -> Dict[int, int]:
        sizes: Dict[int, int] = {}
        for plan in self.plans:
            p = plan.problem
            for local, g in enumerate(p.input_global_ids):
                sizes[int(g)] = int(p.inputs.nbytes[local])
        return sizes

    def summary(self) -> str:
        shared = self.consecutive_shared_bytes()
        total = self.total_read_bytes()
        frac = shared / total if total else 0.0
        return (
            f"batch of {len(self)} queries, order {self.order}: "
            f"{shared / 2**20:.1f} MB of {total / 2**20:.1f} MB reads "
            f"shareable ({frac * 100:.0f}%)"
        )


def _overlap_matrix(sets: Sequence[FrozenSet[int]], sizes: Dict[int, int]) -> np.ndarray:
    k = len(sets)
    m = np.zeros((k, k), dtype=np.int64)
    for i in range(k):
        for j in range(i + 1, k):
            shared = sum(sizes[g] for g in sets[i] & sets[j])
            m[i, j] = m[j, i] = shared
    return m


def order_for_sharing(plans: Sequence[QueryPlan]) -> List[int]:
    """Execution order maximizing consecutive-query chunk overlap.

    The ordering is a greedy heaviest-edge chain over the pairwise
    shared-bytes matrix: start from the heaviest pair, then repeatedly
    append (or prepend) the query sharing the most bytes with the
    chain's current tail (or head).  Accepts plans built with *any*
    mix of strategies -- the overlap is a property of the planning
    problems' input chunk sets, not of the tiling -- so the concurrent
    query service can schedule in-flight queries that each chose their
    own strategy.  With two or fewer plans (or no overlap at all) the
    submission order is returned unchanged.
    """
    batch = BatchPlan(list(plans), list(range(len(plans))))
    if len(plans) <= 2:
        return batch.order

    sets = batch.query_chunk_sets()
    sizes = batch._global_sizes()
    m = _overlap_matrix(sets, sizes)

    k = len(plans)
    i, j = np.unravel_index(np.argmax(m), m.shape)
    if m[i, j] == 0:
        return batch.order  # nothing shared; keep submission order
    chain = [int(i), int(j)]
    remaining = set(range(k)) - set(chain)
    while remaining:
        head, tail = chain[0], chain[-1]
        best, best_gain, at_tail = None, -1, True
        for c in remaining:
            if m[tail, c] > best_gain:
                best, best_gain, at_tail = c, int(m[tail, c]), True
            if m[head, c] > best_gain:
                best, best_gain, at_tail = c, int(m[head, c]), False
        if at_tail:
            chain.append(best)
        else:
            chain.insert(0, best)
        remaining.discard(best)
    return chain


def plan_batch(
    problems: Sequence[PlanningProblem],
    strategy: str = "FRA",
    reorder: bool = True,
) -> BatchPlan:
    """Plan a set of queries and order them for scan sharing (the
    greedy chain of :func:`order_for_sharing`)."""
    if not problems:
        raise ValueError("plan_batch needs at least one query")
    plans = [plan_query(p, strategy) for p in problems]
    order = order_for_sharing(plans) if reorder else list(range(len(plans)))
    return BatchPlan(plans, order)


@dataclass
class BatchSimResult:
    """Timing of an ordered batch execution."""

    per_query: List  # SimResult, in execution order
    order: List[int]
    total_time: float
    bytes_saved: int

    def row(self) -> str:
        times = ", ".join(f"{r.total_time:.2f}" for r in self.per_query)
        return (
            f"batch total {self.total_time:.2f} s "
            f"(queries: {times}; reads saved {self.bytes_saved / 2**20:.1f} MB)"
        )


def simulate_batch(
    batch: BatchPlan,
    machine: MachineConfig,
    costs: ComputeCosts,
    shared_scan: bool = True,
    seed: int = 0,
) -> BatchSimResult:
    """Simulate the ordered batch; with ``shared_scan`` each query
    reuses the chunks its predecessor read (one-query reuse window,
    modelling the storage manager's buffers)."""
    from repro.sim.query_sim import simulate_query

    results = []
    total = 0.0
    saved = 0
    prev_global: FrozenSet[int] = frozenset()
    sets = batch.query_chunk_sets()
    for pos, idx in enumerate(batch.order):
        plan = batch.plans[idx]
        problem = plan.problem
        cached_local: Optional[frozenset] = None
        if shared_scan and prev_global:
            g = problem.input_global_ids
            cached_local = frozenset(
                int(l) for l, gid in enumerate(g) if int(gid) in prev_global
            ) or None
        res = simulate_query(
            plan, machine, costs, seed=seed + pos, cached_inputs=cached_local
        )
        saved += plan.total_read_bytes - int(res.read_bytes.sum())
        results.append(res)
        total += res.total_time
        prev_global = sets[idx]
    return BatchSimResult(results, list(batch.order), total, saved)
