"""The planner's input: a query-restricted planning problem.

Planning operates on the chunks a range query selects, not whole
datasets.  A :class:`PlanningProblem` is that dense sub-universe:
input chunks (with sizes and placements), output/accumulator chunks
(sizes, accumulator sizes, placements, centers for Hilbert ordering)
and the bipartite incidence between them.  The front end builds one by
running the range query against the dataset indices and sub-setting
the chunk graph; emulators construct problems directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.dataset.chunkset import ChunkSet
from repro.dataset.graph import ChunkGraph

__all__ = ["PlanningProblem"]


@dataclass
class PlanningProblem:
    """Everything tiling and workload partitioning need.

    Attributes
    ----------
    n_procs:
        Back-end processors (one node == one processor, as on the SP).
    memory_per_proc:
        Accumulator memory budget per processor, bytes.  Scalar or
        ``(n_procs,)`` array.
    inputs, outputs:
        Placed chunk populations selected by the query (dense local
        ids).  ``inputs.node`` / ``outputs.node`` are the owners.
    graph:
        Input -> output chunk incidence over the dense local ids.
    acc_nbytes:
        Accumulator bytes per output chunk; defaults to the output
        chunk size, but accumulators are typically wider (running sums,
        counts, best-value metadata), which is the knob the paper's
        applications differ on.
    init_from_output:
        True when accumulator initialization must read the existing
        output dataset (phase-1 retrieval + forwarding).
    hilbert_bits:
        Order of the Hilbert curve used to sort output chunks.
    """

    n_procs: int
    memory_per_proc: np.ndarray
    inputs: ChunkSet
    outputs: ChunkSet
    graph: ChunkGraph
    acc_nbytes: Optional[np.ndarray] = None
    init_from_output: bool = False
    hilbert_bits: int = 16
    #: Original dataset chunk ids behind the dense local ids (set when
    #: the problem was restricted to a range query); default identity.
    input_global_ids: Optional[np.ndarray] = None
    output_global_ids: Optional[np.ndarray] = None
    #: Global ids of chunks that spatially intersect the query but were
    #: dropped by value-synopsis pruning before planning, and the input
    #: bytes those reads would have cost.  Informational: the planner
    #: never sees pruned chunks, so plans and schedules are simply built
    #: over the surviving inputs.
    pruned_input_ids: Optional[np.ndarray] = None
    pruned_bytes: int = 0

    def __post_init__(self) -> None:
        if self.n_procs < 1:
            raise ValueError("n_procs must be >= 1")
        mem = np.asarray(self.memory_per_proc, dtype=np.int64)
        if mem.ndim == 0:
            mem = np.full(self.n_procs, int(mem), dtype=np.int64)
        if mem.shape != (self.n_procs,):
            raise ValueError("memory_per_proc must be scalar or (n_procs,)")
        if np.any(mem <= 0):
            raise ValueError("memory budgets must be positive")
        self.memory_per_proc = mem
        if self.graph.n_in != len(self.inputs) or self.graph.n_out != len(self.outputs):
            raise ValueError("graph shape does not match chunk populations")
        if not self.inputs.placed or not self.outputs.placed:
            raise ValueError("planning requires placed chunks (run declustering first)")
        if self.inputs.node.max(initial=-1) >= self.n_procs or self.outputs.node.max(initial=-1) >= self.n_procs:
            raise ValueError("chunk placements reference processors beyond n_procs")
        if self.acc_nbytes is None:
            self.acc_nbytes = self.outputs.nbytes.copy()
        else:
            self.acc_nbytes = np.asarray(self.acc_nbytes, dtype=np.int64)
            if self.acc_nbytes.shape != (len(self.outputs),):
                raise ValueError("acc_nbytes must have one entry per output chunk")
            if np.any(self.acc_nbytes < 0):
                raise ValueError("acc_nbytes must be non-negative")
        if self.input_global_ids is None:
            self.input_global_ids = np.arange(len(self.inputs), dtype=np.int64)
        else:
            self.input_global_ids = np.asarray(self.input_global_ids, dtype=np.int64)
            if self.input_global_ids.shape != (len(self.inputs),):
                raise ValueError("input_global_ids must parallel the input chunks")
        if self.output_global_ids is None:
            self.output_global_ids = np.arange(len(self.outputs), dtype=np.int64)
        else:
            self.output_global_ids = np.asarray(self.output_global_ids, dtype=np.int64)
            if self.output_global_ids.shape != (len(self.outputs),):
                raise ValueError("output_global_ids must parallel the output chunks")
        if self.pruned_input_ids is None:
            self.pruned_input_ids = np.empty(0, dtype=np.int64)
        else:
            self.pruned_input_ids = np.asarray(self.pruned_input_ids, dtype=np.int64)
            if self.pruned_input_ids.ndim != 1:
                raise ValueError("pruned_input_ids must be a 1-d id array")
        self.pruned_bytes = int(self.pruned_bytes)
        if self.pruned_bytes < 0:
            raise ValueError("pruned_bytes must be non-negative")

    # -- convenient views ------------------------------------------------

    @property
    def n_in(self) -> int:
        return len(self.inputs)

    @property
    def n_out(self) -> int:
        return len(self.outputs)

    @property
    def n_pruned(self) -> int:
        """Input chunks dropped by value-synopsis pruning."""
        return len(self.pruned_input_ids)

    def pruned_in_plan_mask(self) -> Optional[np.ndarray]:
        """Boolean mask over the dense input ids marking chunks that
        value-synopsis pruning will skip at execution time even though
        they are part of this planning universe.

        Normally ``None``: the front end drops pruned chunks *before*
        planning, so ``pruned_input_ids`` and ``input_global_ids`` are
        disjoint.  A caller pricing plans over an unpruned universe --
        the shard router's global pricing problem, where each shard
        prunes locally at execution time -- lists the prunable chunks
        here instead, and the cost model subtracts their reads,
        aggregation pairs and forwards (a ``where=`` query priced
        without that correction is systematically over-estimated).
        """
        if self.n_pruned == 0:
            return None
        mask = np.isin(self.input_global_ids, self.pruned_input_ids)
        return mask if mask.any() else None

    @property
    def input_owner(self) -> np.ndarray:
        return self.inputs.node

    @property
    def output_owner(self) -> np.ndarray:
        return self.outputs.node

    def output_hilbert_order(self) -> np.ndarray:
        """Output chunk ids in the tiling selection order (Section 3)."""
        return self.outputs.hilbert_order(self.hilbert_bits)

    def procs_with_input_for(self, output_id: int) -> np.ndarray:
        """The SRA set ``So``: processors owning at least one input
        chunk that projects to *output_id* (Figure 5, step 5)."""
        ins = self.graph.inputs_of(output_id)
        return np.unique(self.input_owner[ins])

    def describe(self) -> str:
        """One-line summary for logs and reports."""
        pruned = (
            f", pruned {self.n_pruned} ({self.pruned_bytes / 2**20:.1f} MB)"
            if self.n_pruned
            else ""
        )
        return (
            f"{self.n_in} input chunks ({self.inputs.total_bytes / 2**20:.1f} MB) -> "
            f"{self.n_out} output chunks ({self.outputs.total_bytes / 2**20:.1f} MB, "
            f"acc {int(self.acc_nbytes.sum()) / 2**20:.1f} MB) on {self.n_procs} procs, "
            f"fan-in {self.graph.avg_fan_in:.1f}, fan-out {self.graph.avg_fan_out:.2f}"
            f"{pruned}"
        )
