"""Fused reduction kernels: the functional engine's hot path.

The local-reduction phase turns a retrieved input chunk into scatter
updates on accumulator chunks.  The original engine did this with a
Python loop per (input chunk, output chunk) segment -- an ``argsort``
followed by a per-segment ``grid.local_cell_index`` call and a
per-segment ``np.add.at`` (which re-validated and re-coerced its
operands every time).  On realistic workloads that loop, not the disk,
dominated wall-clock.

This module replaces it with fused, fully vectorized kernels shared by
the sequential engine and the multiprocess backend:

- :class:`GridIndexer` precomputes per-output-chunk block starts and
  row-major strides so *all* mapped cells of a read resolve to flat
  local accumulator indices in one vectorized expression (the old path
  called ``grid.local_cell_index`` once per segment);
- :func:`group_read` performs **one lexsort per read** over
  ``(output chunk, flat cell)`` and hands back contiguous, cell-sorted
  segments, which lets
  :meth:`~repro.aggregation.functions.AggregationSpec.aggregate_grouped`
  pre-reduce duplicate cells with ``ufunc.reduceat`` and update the
  accumulator with plain fancy indexing instead of ``np.add.at``;
- :func:`coerce_values` does the dtype-stable float coercion once per
  chunk instead of once per segment;
- :class:`RoutingCache` memoizes the item->cell routing of a chunk per
  (chunk, region, mapping, grid) across tiles and across queries -- an
  input chunk straddling several tiles (the multiple-retrieval cost
  tiling tries to minimize) is mapped once.

:func:`reference_segment_reduction` preserves the original per-segment
loop verbatim.  It is the correctness oracle for every fused kernel
and the baseline of ``benchmarks/bench_kernels.py``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.aggregation.output_grid import OutputGrid
from repro.dataset.chunk import Chunk
from repro.space.mapping import GridMapping, Mapping
from repro.util.geometry import Rect

__all__ = [
    "GridIndexer",
    "ReadSegments",
    "RoutingCache",
    "TileSchedule",
    "coerce_values",
    "filter_predicate",
    "group_read",
    "reference_segment_reduction",
    "route_chunk",
    "routing_key",
    "tile_schedule",
]


# ---------------------------------------------------------------------------
# Vectorized cell -> flat local index
# ---------------------------------------------------------------------------


class GridIndexer:
    """Per-grid lookup tables turning ``(output chunk, cell coords)``
    into flat local accumulator indices without per-chunk Python calls.

    For every output chunk the grid's block start and the row-major
    strides of its (possibly truncated edge-) shape are tabulated once;
    ``flat_index`` is then a single gather + multiply-add over all
    cells of a read.
    """

    def __init__(self, grid: OutputGrid) -> None:
        n, d = grid.n_chunks, grid.ndim
        self.starts = np.empty((n, d), dtype=np.int64)
        self.strides = np.empty((n, d), dtype=np.int64)
        for cid in range(n):
            start, stop = grid.chunk_block(cid)
            shape = [b - a for a, b in zip(start, stop)]
            stride = [0] * d
            acc = 1
            for j in range(d - 1, -1, -1):
                stride[j] = acc
                acc *= shape[j]
            self.starts[cid] = start
            self.strides[cid] = stride

    def flat_index(self, out_chunks: np.ndarray, cells: np.ndarray) -> np.ndarray:
        """Flat row-major index of each cell within its output chunk.

        ``out_chunks`` is ``(m,)`` grid chunk ids, ``cells`` the
        matching ``(m, d)`` cell coordinates; cells are assumed inside
        their chunk block (which ``grid.chunk_of_cells`` guarantees).
        """
        local = cells - self.starts[out_chunks]
        return np.einsum("ij,ij->i", local, self.strides[out_chunks])


def grid_indexer(grid: OutputGrid) -> GridIndexer:
    """The grid's (cached) :class:`GridIndexer`."""
    indexer = getattr(grid, "_kernel_indexer", None)
    if indexer is None:
        indexer = GridIndexer(grid)
        grid._kernel_indexer = indexer
    return indexer


# ---------------------------------------------------------------------------
# Per-chunk value coercion
# ---------------------------------------------------------------------------


def coerce_values(values: np.ndarray, value_components: int) -> np.ndarray:
    """Dtype-stable ``(n_items, value_components)`` float view of a
    chunk's payload values, validated **once per chunk** (the scalar
    path re-validates per segment inside ``AggregationSpec``)."""
    out = np.asarray(values, dtype=np.float64)
    if out.ndim == 1:
        out = out[:, None]
    if out.ndim != 2 or out.shape[1] != value_components:
        raise ValueError(
            f"expected {value_components} value components, got shape {out.shape}"
        )
    return np.ascontiguousarray(out)


# ---------------------------------------------------------------------------
# Routing cache
# ---------------------------------------------------------------------------


def _mapping_fingerprint(mapping: Mapping) -> Optional[tuple]:
    """A value-based cache key for a mapping, or None when the mapping
    is not declaratively keyable (custom subclasses are not cached)."""
    if type(mapping) is GridMapping:
        return (
            "grid",
            tuple(mapping.grid_shape),
            tuple(mapping.scale.tolist()),
            tuple(mapping.offset.tolist()),
            tuple(mapping.dim_select),
            tuple(mapping.footprint),
        )
    return None


def routing_key(
    chunk_id: int,
    mapping: Mapping,
    grid: OutputGrid,
    region: Optional[Rect],
) -> Optional[tuple]:
    """Cache key for one chunk's routing, or None when uncacheable."""
    mkey = _mapping_fingerprint(mapping)
    if mkey is None:
        return None
    rkey = None if region is None else (tuple(region.lo), tuple(region.hi))
    gkey = (tuple(grid.grid_shape), tuple(grid.chunk_shape))
    return (int(chunk_id), rkey, mkey, gkey)


class RoutingCache:
    """Bounded LRU memo of ``map_chunk_to_cells`` results.

    The same input chunk is re-routed once per tile it straddles and
    once per query that retrieves it; the mapping is pure, so the
    (item_idx, cells) arrays can be reused as long as the (chunk,
    region, mapping, grid) key matches.  Entries are immutable (the
    arrays are marked read-only) and evicted LRU by byte size.

    Thread safety: the concurrent query service executes several
    queries over the same dataset -- and therefore the same per-dataset
    routing cache -- at once, so the LRU ordering, byte budget and
    counters are guarded by one lock.  Entries are read-only arrays,
    safe to share between the queries that hit them.
    """

    def __init__(self, max_bytes: int = 128 * 2**20) -> None:
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, Tuple[np.ndarray, np.ndarray]]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def nbytes(self) -> int:
        with self._lock:
            return self._bytes

    def get(self, key: tuple) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: tuple, item_idx: np.ndarray, cells: np.ndarray) -> None:
        item_idx = item_idx.copy()
        cells = cells.copy()
        item_idx.setflags(write=False)
        cells.setflags(write=False)
        size = int(item_idx.nbytes + cells.nbytes)
        if size > self.max_bytes:
            return
        with self._lock:
            if key in self._entries:
                return
            while self._bytes + size > self.max_bytes and self._entries:
                _, (old_idx, old_cells) = self._entries.popitem(last=False)
                self._bytes -= int(old_idx.nbytes + old_cells.nbytes)
                self.evictions += 1
            self._entries[key] = (item_idx, cells)
            self._bytes += size

    def invalidate_chunk_ids(self, chunk_ids) -> None:
        """Drop entries for specific chunk ids (dataset reloaded)."""
        wanted = set(int(c) for c in chunk_ids)
        with self._lock:
            for key in [k for k in self._entries if k[0] in wanted]:
                idx, cells = self._entries.pop(key)
                self._bytes -= int(idx.nbytes + cells.nbytes)

    def stats(self) -> dict:
        with self._lock:
            return {
                "routing_hits": self.hits,
                "routing_misses": self.misses,
                "routing_evictions": self.evictions,
                "routing_bytes": self._bytes,
            }


def route_chunk(
    chunk: Chunk,
    mapping: Mapping,
    grid: OutputGrid,
    region: Optional[Rect],
    cache: Optional[RoutingCache] = None,
    chunk_id: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """``map_chunk_to_cells`` with optional memoization.

    ``chunk_id`` namespaces the cache entry (dataset-level id); when a
    cache is provided but the mapping is not declaratively keyable the
    call transparently falls through to the uncached path.
    """
    from repro.runtime.serial import map_chunk_to_cells

    key = None
    if cache is not None and chunk_id is not None:
        key = routing_key(chunk_id, mapping, grid, region)
        if key is not None:
            hit = cache.get(key)
            if hit is not None:
                return hit
    item_idx, cells = map_chunk_to_cells(chunk, mapping, grid, region)
    if key is not None:
        cache.put(key, item_idx, cells)
    return item_idx, cells


# ---------------------------------------------------------------------------
# Residual value-predicate filtering
# ---------------------------------------------------------------------------


def filter_predicate(
    chunk: Chunk,
    item_idx: np.ndarray,
    cells: np.ndarray,
    predicate,
) -> Tuple[np.ndarray, np.ndarray]:
    """Drop routed items whose values fail the query's ``where``
    predicate.

    Applied *after* :func:`route_chunk` so :class:`RoutingCache`
    entries stay predicate-independent (the same chunk routing serves
    queries with different -- or no -- predicates).  This is the exact
    residual filter matching the planner's synopsis pruning: pruning
    only skips chunks this filter would empty entirely, which is what
    keeps pruned and unpruned runs bit-identical.
    """
    if predicate is None or len(item_idx) == 0:
        return item_idx, cells
    keep = predicate.mask(chunk.values)[item_idx]
    if keep.all():
        return item_idx, cells
    return item_idx[keep], cells[keep]


# ---------------------------------------------------------------------------
# Fused read grouping
# ---------------------------------------------------------------------------


@dataclass
class ReadSegments:
    """One read's scatter work, lexsorted by (output chunk, cell).

    ``starts[k]:ends[k]`` slices ``flat``/``values`` for the segment
    aimed at local output chunk ``seg_out[k]``; within a segment the
    flat cell indices are sorted ascending, which is the precondition
    of the ``aggregate_grouped`` fast path.

    ``group_starts``/``group_bounds`` describe the read's *cell runs*
    (maximal runs of one (output chunk, cell) pair): run ``j`` is
    ``flat[group_starts[j]:group_starts[j+1]]`` and segment *k* owns
    runs ``group_bounds[k]:group_bounds[k+1]``.  Computed once per
    read, they let ``AggregationSpec.prereduce_groups`` collapse every
    duplicate cell in one ``reduceat`` sweep; the per-segment work then
    shrinks to a single fancy-indexed scatter of pre-reduced rows.
    """

    seg_out: np.ndarray  # (k,) local output chunk ids, ascending
    starts: np.ndarray  # (k,)
    ends: np.ndarray  # (k,)
    flat: np.ndarray  # (m,) flat local cell indices, segment-sorted
    values: np.ndarray  # (m, value_components) float64
    group_starts: np.ndarray  # (g,) run starts into flat/values
    group_bounds: np.ndarray  # (k+1,) segment -> run range


def group_read(
    item_idx: np.ndarray,
    cells: np.ndarray,
    values: np.ndarray,
    grid: OutputGrid,
    sel_map: np.ndarray,
    tile_of_output: np.ndarray,
    tile: int,
    indexer: Optional[GridIndexer] = None,
) -> Optional[ReadSegments]:
    """Filter one read's mapped cells to the current tile and group
    them into cell-sorted segments with a single lexsort.

    ``item_idx``/``cells`` come from :func:`route_chunk`; ``values`` is
    the chunk's payload already through :func:`coerce_values`.
    Returns None when nothing lands in this tile.
    """
    if len(cells) == 0:
        return None
    out_chunks = grid.chunk_of_cells(cells)
    local_out = sel_map[out_chunks]
    keep = local_out >= 0
    keep &= np.where(keep, tile_of_output[local_out] == tile, False)
    if not keep.any():
        return None
    item_idx = item_idx[keep]
    out_chunks = out_chunks[keep]
    local_out = local_out[keep]
    if indexer is None:
        indexer = grid_indexer(grid)
    flat = indexer.flat_index(out_chunks, cells[keep])

    order = np.lexsort((flat, local_out))
    lo_sorted = local_out[order]
    flat_sorted = flat[order]
    seg_change = np.diff(lo_sorted) != 0
    boundaries = np.flatnonzero(seg_change) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(lo_sorted)]))
    # Cell runs: a new run wherever the segment OR the cell changes.
    # Every segment start is also a run start, so the per-segment run
    # ranges come straight out of one searchsorted.
    run_change = seg_change | (np.diff(flat_sorted) != 0)
    group_starts = np.concatenate(([0], np.flatnonzero(run_change) + 1))
    group_bounds = np.searchsorted(
        group_starts, np.concatenate((starts, [len(lo_sorted)]))
    )
    return ReadSegments(
        seg_out=lo_sorted[starts],
        starts=starts,
        ends=ends,
        flat=flat_sorted,
        values=values[item_idx[order]],
        group_starts=group_starts,
        group_bounds=group_bounds,
    )


# ---------------------------------------------------------------------------
# Reference (pre-fusion) path: oracle + benchmark baseline
# ---------------------------------------------------------------------------


def reference_segment_reduction(
    item_idx: np.ndarray,
    cells: np.ndarray,
    raw_values: np.ndarray,
    grid: OutputGrid,
    sel_map: np.ndarray,
    tile_of_output: np.ndarray,
    tile: int,
    out_global: np.ndarray,
    aggregate: Callable[[int, np.ndarray, np.ndarray], None],
) -> int:
    """The original per-segment local-reduction loop, verbatim.

    ``argsort`` by output chunk, then per segment a Python-level
    ``grid.local_cell_index`` call and one scalar ``aggregate(o,
    local_cells, values)`` callback (which, through
    ``AggregationSpec.aggregate``, re-coerces and re-validates the
    batch and scatters with ``np.add.at``-style ufuncs).  Kept as the
    oracle the fused kernels are tested against and as the baseline
    ``benchmarks/bench_kernels.py`` measures the speedup over.
    Returns the number of segments processed.
    """
    if len(cells) == 0:
        return 0
    out_chunks = grid.chunk_of_cells(cells)
    local_out = sel_map[out_chunks]
    keep = local_out >= 0
    keep &= np.where(keep, tile_of_output[local_out] == tile, False)
    if not keep.any():
        return 0
    item_idx, cells = item_idx[keep], cells[keep]
    local_out = local_out[keep]

    values = np.asarray(raw_values, dtype=float)
    if values.ndim == 1:
        values = values[:, None]

    order = np.argsort(local_out, kind="stable")
    lo_sorted = local_out[order]
    boundaries = np.flatnonzero(np.diff(lo_sorted)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(lo_sorted)]))
    n_segments = 0
    for s, e in zip(starts, ends):  # noqa: ADR305 -- preserved pre-fusion oracle
        o = int(lo_sorted[s])
        sel = order[s:e]
        local_cells = grid.local_cell_index(int(out_global[o]), cells[sel])
        aggregate(o, local_cells, values[item_idx[sel]])
        n_segments += 1
    return n_segments


# ---------------------------------------------------------------------------
# Plan tile schedule (shared by the sequential and parallel backends)
# ---------------------------------------------------------------------------


@dataclass
class TileSchedule:
    """Per-tile grouping of the plan's reads / ghost transfers /
    outputs: ``x_order[x_bounds[t]:x_bounds[t+1]]`` are tile *t*'s
    entries in deterministic (tile, original index) order -- the order
    both backends execute, which is what makes them comparable
    bit-for-bit."""

    read_order: np.ndarray
    read_bounds: np.ndarray
    gt_order: np.ndarray
    gt_bounds: np.ndarray
    out_order: np.ndarray
    out_bounds: np.ndarray

    def reads_of(self, tile: int) -> np.ndarray:
        return self.read_order[self.read_bounds[tile] : self.read_bounds[tile + 1]]

    def transfers_of(self, tile: int) -> np.ndarray:
        return self.gt_order[self.gt_bounds[tile] : self.gt_bounds[tile + 1]]

    def outputs_of(self, tile: int) -> np.ndarray:
        return self.out_order[self.out_bounds[tile] : self.out_bounds[tile + 1]]


def tile_schedule(plan) -> TileSchedule:
    """Group the plan's traffic tables by tile (stable order)."""
    ticks = np.arange(plan.n_tiles + 1)
    reads = plan.reads
    read_order = np.argsort(reads.tile, kind="stable")
    read_bounds = np.searchsorted(reads.tile[read_order], ticks)
    gt = plan.ghost_transfers
    gt_order = np.argsort(gt.tile, kind="stable")
    gt_bounds = np.searchsorted(gt.tile[gt_order], ticks)
    out_order = np.argsort(plan.tile_of_output, kind="stable")
    out_bounds = np.searchsorted(plan.tile_of_output[out_order], ticks)
    return TileSchedule(
        read_order, read_bounds, gt_order, gt_bounds, out_order, out_bounds
    )
