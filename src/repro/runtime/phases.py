"""The unified per-tile phase pipeline: one executor for every backend.

Both functional backends and the discrete-event simulator execute the
same computation -- the paper's Initialization, Local Reduction,
Global Combine, Output Handling loop per tile -- but historically each
transcribed it independently.  This module is the single home of that
loop:

- :class:`PhaseSchedule` derives everything schedule-shaped from the
  plan once: the per-tile read/transfer/output orders (via
  :func:`~repro.runtime.kernels.tile_schedule`), the per-read
  forwarding recipients, and the per-(tile, processor) work tallies
  the simulator turns into events.  ``plan.schedule()`` caches one.
- :class:`AccumulatorHost` is the accumulator state for the ranks one
  executor hosts -- the sequential engine hosts every rank, a
  multiprocess worker hosts its group -- backed either by pooled
  private buffers or by externally provided shared-memory arena views.
- :class:`PhaseExecutor` walks the four phases over a
  :class:`~repro.runtime.transport.Transport`.  The sequential engine
  and the multiprocess workers are now thin drivers around it; the
  executor is the only place phase sequencing lives (lint rule ADR501
  keeps it that way).

**Counter contract** (one definition for every backend; the
functional corpus asserts cross-backend equality):

- ``n_reads``: successfully retrieved scheduled chunk reads, summed
  over ranks.  A chunk read once per tile it straddles counts each
  time; a read absorbed by ``on_error='degrade'`` does not count (it
  lands in ``chunk_errors`` instead).
- ``bytes_read``: ``problem.inputs.nbytes`` summed over those counted
  reads.
- ``n_aggregations``: applied (input chunk, accumulator chunk)
  segment scatters, on whichever rank the plan assigned the edge --
  forwarded segments count where they are applied.
- ``n_combines``: ghost accumulator merges performed in global-combine
  phases, counted at the owning (receiving) rank.
- ``chunks_pruned`` / ``bytes_pruned``: input chunks the planner
  dropped by value-synopsis pruning and the bytes those reads would
  have cost.  Plan-level facts (``problem.n_pruned`` /
  ``problem.pruned_bytes``): every backend executing the plan reports
  the same numbers, and pruned chunks never appear in ``n_reads`` /
  ``bytes_read`` because they were never scheduled.
- ``phase_times``: wall-clock seconds per phase with the keys of
  :data:`PHASES`.  Each executor reports its own wall-clock; the
  parallel parent reduces per-host times with ``max`` (the critical
  path), so absolute values are backend-dependent -- only the key set
  is part of the cross-backend contract.

**Determinism.** The executor walks reads, transfers and outputs in
the plan's deterministic schedule order, and each accumulator receives
at most one segment per read (segments within a read target distinct
output chunks), so per-accumulator floating-point operation order is
identical no matter how ranks are hosted -- the backends agree bit for
bit, counters included.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.aggregation.accumulator import AccumulatorSet, BufferPool
from repro.aggregation.functions import AggregationSpec
from repro.aggregation.output_grid import OutputGrid
from repro.dataset.chunk import Chunk
from repro.planner.plan import QueryPlan
from repro.runtime.kernels import (
    RoutingCache,
    TileSchedule,
    coerce_values,
    filter_predicate,
    grid_indexer,
    group_read,
    route_chunk,
    tile_schedule,
)
from repro.runtime.transport import Transport
from repro.space.mapping import GridMapping
from repro.store.chunk_store import RECOVERABLE_READ_ERRORS

__all__ = [
    "MESSAGE_OPS",
    "MessageFlow",
    "PHASES",
    "AccumulatorHost",
    "ChunkSource",
    "PhaseExecutor",
    "PhaseSchedule",
    "ProviderChunkSource",
]

#: Execution phases, in order; the keys of ``phase_times``.
PHASES = ("initialize", "reduce", "combine", "output")

#: Transport-visible operations a rank performs, in the vocabulary of
#: :class:`MessageFlow` events.  ``send_seg``/``recv_seg`` forward
#: reduction segments (keyed by read index), ``send_ghost``/
#: ``recv_ghost`` ship ghost accumulators (keyed by transfer index),
#: ``emit`` posts a finished output chunk (keyed by local output id).
MESSAGE_OPS = ("send_seg", "recv_seg", "send_ghost", "recv_ghost", "emit")


@dataclass(frozen=True)
class MessageFlow:
    """The per-rank communication program the executor will run.

    ``events[p]`` is the exact ordered sequence of transport operations
    rank *p* performs, each a ``(op, tile, index, peer)`` tuple with
    *op* from :data:`MESSAGE_OPS`, *index* the schedule key of the
    message (read index for segments, transfer index for ghosts, local
    output chunk id for emits) and *peer* the destination rank of a
    send, the source rank of a receive, and ``-1`` for an emit (the
    result queue has no rank).

    This is the object :mod:`repro.analysis.comm` model-checks: a send
    event corresponds one-to-one with a
    :meth:`~repro.runtime.transport.Transport.send_segments` /
    :meth:`~repro.runtime.transport.Transport.send_ghost` call under
    the message key of
    :func:`repro.runtime.transport.message_key`, so proofs about the
    flow (deadlock-freedom, matched multisets, combine completeness,
    re-send safety) are proofs about what
    :class:`PhaseExecutor` asks any transport to do.
    """

    n_procs: int
    n_tiles: int
    events: Dict[int, List[Tuple[str, int, int, int]]] = field(default_factory=dict)

    def sends(self) -> List[Tuple[int, str, int, int, int]]:
        """``(src, kind, tile, index, dst)`` rows for every send."""
        out = []
        for p, evs in self.events.items():
            for op, tile, index, peer in evs:
                if op in ("send_seg", "send_ghost"):
                    out.append((p, op[5:], tile, index, peer))
        return out

    def recvs(self) -> List[Tuple[int, str, int, int, int]]:
        """``(dst, kind, tile, index, src)`` rows for every receive."""
        out = []
        for p, evs in self.events.items():
            for op, tile, index, peer in evs:
                if op in ("recv_seg", "recv_ghost"):
                    out.append((p, op[5:], tile, index, peer))
        return out


# ---------------------------------------------------------------------------
# Plan-derived schedule (shared by engines, workers and the simulator)
# ---------------------------------------------------------------------------


class PhaseSchedule:
    """Everything schedule-shaped the phase loop needs, derived from
    the plan once and shared by every consumer.

    ``plan.schedule()`` caches one per plan, so the sequential engine,
    the multiprocess parent (whose forked workers inherit it), the
    prefetcher and the simulator all walk literally the same arrays.

    Attributes
    ----------
    tiles:
        The per-tile read/ghost-transfer/output orders
        (:class:`~repro.runtime.kernels.TileSchedule`); delegated via
        :meth:`reads_of` / :meth:`transfers_of` / :meth:`outputs_of`.
    recipients:
        Per read, the ranks beyond the reader that receive a forwarded
        segment message.  Derived from the plan's edge assignment
        restricted to the read's tile, so sender and receivers agree
        on the message schedule even for reads that map no items.
    cu_tile, cu_in, cu_proc, cu_pairs, cu_bounds:
        The *compute units*: unique (tile, input chunk, processor)
        triples with the number of (input, accumulator) pairs each
        represents, tile-sliced by ``cu_bounds`` -- the quantities the
        discrete-event simulator prices.
    init_counts:
        ``(max(n_tiles, 1), n_procs)`` accumulator allocations per
        (tile, processor) -- phase 1's work tally.
    """

    def __init__(self, plan: QueryPlan) -> None:
        problem = plan.problem
        P = problem.n_procs
        n_in = problem.n_in
        self.n_tiles = plan.n_tiles
        self.tiles: TileSchedule = tile_schedule(plan)

        fwd_indptr, fwd_ids = problem.graph.forward_csr
        reads = plan.reads
        self.recipients: List[np.ndarray] = []
        for r in range(len(reads)):
            i = int(reads.chunk[r])
            t = int(reads.tile[r])
            lo, hi = fwd_indptr[i], fwd_indptr[i + 1]
            active = plan.tile_of_output[fwd_ids[lo:hi]] == t
            procs = np.unique(plan.edge_proc[lo:hi][active])
            self.recipients.append(procs[procs != int(reads.proc[r])])

        # The endpoint tables :meth:`message_flow` replays the phase
        # loop over (kept here so the flow is derived from the same
        # schedule object every backend walks).
        self.n_procs = int(P)
        self.read_proc = reads.proc.astype(np.int64)
        gt = plan.ghost_transfers
        self.transfer_src = gt.src.astype(np.int64)
        self.transfer_dst = gt.dst.astype(np.int64)
        self.output_owner = problem.output_owner.astype(np.int64)

        # Compute units: unique (tile, input chunk, processor) with the
        # number of (input, accumulator) pairs each represents.
        edge_in, _ = plan.edge_arrays
        if len(edge_in):
            key = (plan.edge_tile.astype(np.int64) * n_in + edge_in) * P + plan.edge_proc
            uniq, counts = np.unique(key, return_counts=True)
            self.cu_tile = (uniq // (n_in * P)).astype(np.int64)
            rem = uniq % (n_in * P)
            self.cu_in = (rem // P).astype(np.int64)
            self.cu_proc = (rem % P).astype(np.int64)
            self.cu_pairs = counts.astype(np.int64)
        else:
            self.cu_tile = np.empty(0, dtype=np.int64)
            self.cu_in = np.empty(0, dtype=np.int64)
            self.cu_proc = np.empty(0, dtype=np.int64)
            self.cu_pairs = np.empty(0, dtype=np.int64)
        self.cu_bounds = np.searchsorted(self.cu_tile, np.arange(self.n_tiles + 1))

        # Initialization work: accumulator allocations per (tile, proc).
        counts = np.diff(plan.holders_indptr)
        flat_out = np.repeat(np.arange(problem.n_out, dtype=np.int64), counts)
        flat_tile = plan.tile_of_output[flat_out]
        self.init_counts = np.zeros((max(self.n_tiles, 1), P), dtype=np.int64)
        if len(flat_out):
            np.add.at(self.init_counts, (flat_tile, plan.holders_ids), 1)

    def reads_of(self, tile: int) -> np.ndarray:
        return self.tiles.reads_of(tile)

    def transfers_of(self, tile: int) -> np.ndarray:
        return self.tiles.transfers_of(tile)

    def outputs_of(self, tile: int) -> np.ndarray:
        return self.tiles.outputs_of(tile)

    def message_flow(self) -> MessageFlow:
        """The per-rank transport program (:class:`MessageFlow`).

        Replays exactly the walk :meth:`PhaseExecutor.run` performs --
        reads, then ghost transfers, then outputs, tile by tile in
        schedule order -- recording every transport call each rank
        would make.  :func:`repro.analysis.comm.check_plan_comm`
        model-checks the result against the plan tables.
        """
        events: Dict[int, List[Tuple[str, int, int, int]]] = {
            p: [] for p in range(self.n_procs)
        }
        for t in range(self.n_tiles):
            for r in self.reads_of(t):
                r = int(r)
                reader = int(self.read_proc[r])
                for q in self.recipients[r]:
                    events[reader].append(("send_seg", t, r, int(q)))
                for q in self.recipients[r]:
                    events[int(q)].append(("recv_seg", t, r, reader))
            for g in self.transfers_of(t):
                g = int(g)
                src, dst = int(self.transfer_src[g]), int(self.transfer_dst[g])
                events[src].append(("send_ghost", t, g, dst))
                events[dst].append(("recv_ghost", t, g, src))
            for o in self.outputs_of(t):
                o = int(o)
                events[int(self.output_owner[o])].append(("emit", t, o, -1))
        return MessageFlow(n_procs=self.n_procs, n_tiles=self.n_tiles, events=events)


# ---------------------------------------------------------------------------
# Chunk sources (synchronous provider or threaded prefetcher)
# ---------------------------------------------------------------------------


class ChunkSource:
    """Where the reduce phase gets its chunk payloads.

    ``get`` is addressed by the plan's *read index* (so a prefetching
    source can match issue against consumption) plus the dataset-level
    chunk id a synchronous source needs.  Exceptions raised by the
    underlying provider surface from ``get`` exactly as they would
    from a direct provider call, wherever the payload was actually
    fetched -- that is what keeps ``on_error='degrade'`` and the fault
    corpus backend-agnostic.
    """

    def begin_tile(self, tile: int) -> None:
        """The executor is about to consume tile *tile*'s reads."""

    def get(self, read_index: int, chunk_id: int) -> Chunk:
        raise NotImplementedError

    def close(self) -> None:
        """Release background resources (idempotent)."""


class ProviderChunkSource(ChunkSource):
    """Synchronous source: one provider call at consumption time."""

    def __init__(self, provider: Callable[[int], Chunk]) -> None:
        self._provider = provider

    def get(self, read_index: int, chunk_id: int) -> Chunk:
        return self._provider(chunk_id)


# ---------------------------------------------------------------------------
# Accumulator hosting
# ---------------------------------------------------------------------------


class AccumulatorHost:
    """Accumulator state for the ranks one executor hosts.

    Wraps one :class:`~repro.aggregation.accumulator.AccumulatorSet`
    per hosted rank.  The sequential engine hosts every rank with
    pooled private buffers (and optional per-rank memory budgets); a
    multiprocess worker hosts its rank group with *buffer_for*
    supplying shared-memory arena views, so allocation only
    re-initializes the view in place.
    """

    def __init__(
        self,
        spec: AggregationSpec,
        ranks: Sequence[int],
        memory_limit: Optional[Callable[[int], Optional[int]]] = None,
        pool: Optional[BufferPool] = None,
        buffer_for: Optional[Callable[[int, int, int, int], np.ndarray]] = None,
    ) -> None:
        self.spec = spec
        self.ranks = tuple(int(p) for p in ranks)
        self.rank_set = frozenset(self.ranks)
        self._buffer_for = buffer_for
        self._sets = {
            p: AccumulatorSet(
                spec,
                memory_limit=memory_limit(p) if memory_limit is not None else None,
                pool=pool,
            )
            for p in self.ranks
        }
        self._tile = -1

    def begin_tile(self, tile: int) -> None:
        self._tile = int(tile)

    def allocate(self, rank: int, output_chunk: int, n_cells: int, ghost: bool):
        data = None
        if self._buffer_for is not None:
            data = self._buffer_for(self._tile, rank, output_chunk, n_cells)
        return self._sets[rank].allocate(output_chunk, n_cells, ghost, data=data)

    def holds(self, rank: int, output_chunk: int) -> bool:
        return output_chunk in self._sets[rank]

    def get(self, rank: int, output_chunk: int):
        return self._sets[rank].get(output_chunk)

    def aggregate_grouped(self, rank, output_chunk, cell_idx, values) -> None:
        self._sets[rank].aggregate_grouped(output_chunk, cell_idx, values)

    def scatter_groups(self, rank, output_chunk, cell_idx, reduced) -> None:
        self._sets[rank].scatter_groups(output_chunk, cell_idx, reduced)

    def combine_from(self, rank, output_chunk, ghost_data) -> None:
        self._sets[rank].combine_from(output_chunk, ghost_data)

    def end_tile(self) -> None:
        """Release every rank's accumulators (tile boundary)."""
        for s in self._sets.values():
            s.clear()


# ---------------------------------------------------------------------------
# The phase executor
# ---------------------------------------------------------------------------


class PhaseExecutor:
    """Walk the plan's tiles through the four phases for a set of
    hosted ranks, over a transport.

    This is the one implementation of phase sequencing (ADR501).  The
    sequential engine instantiates it once with every rank and an
    :class:`~repro.runtime.transport.InprocTransport`; each
    multiprocess worker instantiates it with its rank group and a
    :class:`~repro.runtime.transport.QueueTransport`.  *observer* is
    the optional :class:`~repro.analysis.races.RaceDetector` hook
    surface (``on_allocate`` / ``on_aggregate`` / ``on_combine`` /
    ``on_output`` / ``end_tile``).

    After :meth:`run`, the counters (``n_reads``, ``bytes_read``,
    ``n_aggregations``, ``n_combines``, ``chunk_errors``,
    ``phase_times``) hold this executor's totals across its hosted
    ranks, per the module-level counter contract.
    """

    def __init__(
        self,
        plan: QueryPlan,
        grid: OutputGrid,
        spec: AggregationSpec,
        mapping: GridMapping,
        source: ChunkSource,
        accs: AccumulatorHost,
        transport: Transport,
        *,
        schedule: Optional[PhaseSchedule] = None,
        region=None,
        prior: Optional[Callable[[int], np.ndarray]] = None,
        routing_cache: Optional[RoutingCache] = None,
        on_error: str = "raise",
        observer=None,
        predicate=None,
    ) -> None:
        self.plan = plan
        self.problem = plan.problem
        self.grid = grid
        self.spec = spec
        self.mapping = mapping
        self.source = source
        self.accs = accs
        self.transport = transport
        self.schedule = schedule if schedule is not None else plan.schedule()
        self.region = region
        self.prior = prior
        self.routing_cache = routing_cache
        self.on_error = on_error
        self.observer = observer
        self.predicate = predicate

        self._indexer = grid_indexer(grid)
        self._fwd_indptr, self._fwd_ids = self.problem.graph.forward_csr
        # Dataset-level output chunk id -> dense local id (or -1).
        self._sel_map = np.full(grid.n_chunks, -1, dtype=np.int64)
        self._sel_map[self.problem.output_global_ids] = np.arange(self.problem.n_out)

        self.n_reads = 0
        self.bytes_read = 0
        self.n_aggregations = 0
        self.n_combines = 0
        self.chunk_errors: Dict[int, str] = {}
        self.phase_times = dict.fromkeys(PHASES, 0.0)
        self._reads_seen = {p: 0 for p in accs.ranks}

    # -- phase 1: initialization ---------------------------------------

    def _initialize(self, t: int) -> None:
        problem, spec = self.problem, self.spec
        out_global = problem.output_global_ids
        rank_set = self.accs.rank_set
        for k in self.schedule.outputs_of(t):
            o = int(k)
            n_cells = self.grid.cells_in_chunk(int(out_global[o]))
            owner = int(problem.output_owner[o])
            prior_acc = None
            prior_checked = False
            for p in self.plan.holders_of(o):
                p = int(p)
                if p not in rank_set:
                    continue
                acc = self.accs.allocate(p, o, n_cells, ghost=p != owner)
                if self.observer is not None:
                    self.observer.on_allocate(p, o, t)
                # Replicated (ghost) holders are seeded only for
                # idempotent aggregations -- otherwise the global
                # combine would double-count the prior.  The prior is
                # fetched lazily so a worker host never retrieves
                # existing output it does not seed from.
                if (
                    problem.init_from_output
                    and self.prior is not None
                    and (p == owner or spec.idempotent)
                ):
                    if not prior_checked:
                        prior_checked = True
                        prior_vals = self.prior(int(out_global[o]))
                        if prior_vals is not None:
                            prior_acc = spec.initialize_from(prior_vals)
                    if prior_acc is not None:
                        acc.data[:] = prior_acc

    # -- phase 2: local reduction --------------------------------------

    def _edge_slices(self, i: int):
        lo, hi = self._fwd_indptr[i], self._fwd_indptr[i + 1]
        return self._fwd_ids[lo:hi], self.plan.edge_proc[lo:hi]

    def _edge_proc_of(self, i: int, o: int) -> int:
        edges_out, edges_proc = self._edge_slices(i)
        pos = np.searchsorted(edges_out, o)
        if pos >= len(edges_out) or edges_out[pos] != o:
            raise AssertionError(
                f"items of input chunk {i} land in output chunk {o} "
                "but the chunk graph has no such edge -- the graph "
                "must be a superset of the item-level mapping"
            )
        return int(edges_proc[pos])

    def _reduce(self, t: int) -> None:
        plan, problem, spec = self.plan, self.problem, self.spec
        reads = plan.reads
        in_global = problem.input_global_ids
        rank_set = self.accs.rank_set
        observer = self.observer
        for r in self.schedule.reads_of(t):
            r = int(r)
            reader = int(reads.proc[r])
            recipients = self.schedule.recipients[r]
            if reader in rank_set:
                self.transport.before_read(reader, self._reads_seen[reader])
                self._reads_seen[reader] += 1
                i = int(reads.chunk[r])
                gid = int(in_global[i])
                chunk = None
                try:
                    chunk = self.source.get(r, gid)
                except RECOVERABLE_READ_ERRORS as e:
                    if self.on_error != "degrade":
                        raise
                    self.chunk_errors.setdefault(gid, f"{type(e).__name__}: {e}")
                segs = None
                if chunk is not None:
                    self.n_reads += 1
                    self.bytes_read += int(problem.inputs.nbytes[i])
                    item_idx, cells = route_chunk(
                        chunk, self.mapping, self.grid, self.region,
                        cache=self.routing_cache, chunk_id=gid,
                    )
                    # Residual value filter *after* routing, so the
                    # routing cache stays predicate-independent.
                    item_idx, cells = filter_predicate(
                        chunk, item_idx, cells, self.predicate
                    )
                    if len(cells):
                        values = coerce_values(chunk.values, spec.value_components)
                        segs = group_read(
                            item_idx, cells, values, self.grid, self._sel_map,
                            plan.tile_of_output, t, self._indexer,
                        )
                # Partition segments by assigned processor; apply own,
                # forward the rest (the DA communication), keeping the
                # ascending-segment order everywhere.  Duplicate cells
                # are pre-reduced read-wide first (when the aggregation
                # supports it), so forwarded segments ship one row per
                # distinct cell and both sides apply one fancy-indexed
                # scatter per segment -- the same arithmetic, in the
                # same order, on every backend.  A degraded (unreadable)
                # chunk still ships its (empty) messages, so the
                # cross-rank message schedule never skews.
                outbound: Dict[int, list] = {int(q): [] for q in recipients}
                if segs is not None:
                    edges_out, edges_proc = self._edge_slices(i)
                    pos = np.searchsorted(edges_out, segs.seg_out)
                    if len(edges_out):
                        found = pos < len(edges_out)
                        found &= edges_out[np.where(found, pos, 0)] == segs.seg_out
                    else:
                        found = np.zeros(len(segs.seg_out), dtype=bool)
                    if not found.all():
                        o = int(segs.seg_out[np.flatnonzero(~found)[0]])
                        raise AssertionError(
                            f"items of input chunk {i} land in output chunk {o} "
                            "but the chunk graph has no such edge -- the graph "
                            "must be a superset of the item-level mapping"
                        )
                    seg_procs = edges_proc[pos]
                    reduced = spec.prereduce_groups(segs.values, segs.group_starts)
                    gflat = (
                        segs.flat[segs.group_starts] if reduced is not None else None
                    )
                    gb = segs.group_bounds
                    for k in range(len(segs.seg_out)):
                        o = int(segs.seg_out[k])
                        q = int(seg_procs[k])
                        if q == reader:
                            assert self.accs.holds(reader, o), (
                                "reader aggregating into chunk it does not hold"
                            )
                            if observer is not None:
                                observer.on_aggregate(reader, o, t)
                            if reduced is None:
                                s, e = int(segs.starts[k]), int(segs.ends[k])
                                self.accs.aggregate_grouped(
                                    reader, o, segs.flat[s:e], segs.values[s:e]
                                )
                            else:
                                self.accs.scatter_groups(
                                    reader, o,
                                    gflat[gb[k] : gb[k + 1]],
                                    reduced[gb[k] : gb[k + 1]],
                                )
                            self.n_aggregations += 1
                        elif reduced is None:
                            s, e = int(segs.starts[k]), int(segs.ends[k])
                            outbound[q].append(
                                ("raw", o, np.ascontiguousarray(segs.flat[s:e]),
                                 np.ascontiguousarray(segs.values[s:e]))
                            )
                        else:
                            outbound[q].append(
                                ("red", o,
                                 np.ascontiguousarray(gflat[gb[k] : gb[k + 1]]),
                                 np.ascontiguousarray(reduced[gb[k] : gb[k + 1]]))
                            )
                for q in recipients:
                    self.transport.send_segments(int(q), t, r, outbound[int(q)])
            for q in recipients:
                q = int(q)
                if q not in rank_set:
                    continue
                segments = self.transport.recv_segments(q, t, r)
                i = int(reads.chunk[r])
                for kind, o, cell_idx, payload in segments:
                    assert self._edge_proc_of(i, o) == q, (
                        "forwarded segment for an edge the plan did not "
                        "assign to this processor"
                    )
                    assert self.accs.holds(q, o), (
                        "segment for a chunk this rank does not hold"
                    )
                    if observer is not None:
                        observer.on_aggregate(q, o, t)
                    if kind == "red":
                        self.accs.scatter_groups(q, o, cell_idx, payload)
                    else:
                        self.accs.aggregate_grouped(q, o, cell_idx, payload)
                    self.n_aggregations += 1

    # -- phase 3: global combine ---------------------------------------

    def _combine(self, t: int) -> None:
        problem = self.problem
        gt = self.plan.ghost_transfers
        rank_set = self.accs.rank_set
        for g in self.schedule.transfers_of(t):
            g = int(g)
            o = int(gt.chunk[g])
            src, dst = int(gt.src[g]), int(gt.dst[g])
            if src in rank_set:
                assert self.accs.holds(src, o), (
                    "shipping a ghost this rank does not hold"
                )
                self.transport.send_ghost(dst, t, g, self.accs.get(src, o).data)
            if dst in rank_set:
                ghost_data = self.transport.recv_ghost(dst, t, g)
                assert int(problem.output_owner[o]) == dst, (
                    "ghost shipped to a non-owner"
                )
                if self.observer is not None:
                    self.observer.on_combine(src, dst, o, t)
                self.accs.combine_from(dst, o, ghost_data)
                self.n_combines += 1

    # -- phase 4: output handling --------------------------------------

    def _output(self, t: int) -> None:
        problem, spec = self.problem, self.spec
        rank_set = self.accs.rank_set
        for k in self.schedule.outputs_of(t):
            o = int(k)
            owner = int(problem.output_owner[o])
            if owner not in rank_set:
                continue
            acc = self.accs.get(owner, o)
            if acc.ghost:
                raise AssertionError("owner holds a ghost for its own chunk")
            if self.observer is not None:
                self.observer.on_output(owner, o, t)
            self.transport.emit_result(o, spec.output(acc.data))
        self.accs.end_tile()

    # -- driver ---------------------------------------------------------

    def run(self) -> None:
        """Execute every tile; counters accumulate on ``self``."""
        for t in range(self.plan.n_tiles):
            self.accs.begin_tile(t)
            self.source.begin_tile(t)
            t0 = time.perf_counter()
            self._initialize(t)
            self.phase_times["initialize"] += time.perf_counter() - t0
            t0 = time.perf_counter()
            self._reduce(t)
            self.phase_times["reduce"] += time.perf_counter() - t0
            t0 = time.perf_counter()
            self._combine(t)
            self.phase_times["combine"] += time.perf_counter() - t0
            t0 = time.perf_counter()
            self._output(t)
            self.phase_times["output"] += time.perf_counter() - t0
            self.transport.tile_done(t)
            if self.observer is not None:
                self.observer.end_tile(t)
