"""Serial reference execution of the basic processing loop.

A direct transcription of the paper's Figure 1 on one processor with
unlimited memory: no tiling, no partitioning, no communication.  Every
parallel strategy is tested against this oracle.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

from repro.aggregation.functions import AggregationSpec
from repro.aggregation.output_grid import OutputGrid
from repro.dataset.chunk import Chunk
from repro.space.mapping import GridMapping
from repro.util.cells import expand_cell_ranges
from repro.util.geometry import Rect

__all__ = ["execute_serial", "map_chunk_to_cells", "filter_items"]


def filter_items(chunk: Chunk, region: Optional[Rect]) -> np.ndarray:
    """Indices of the chunk's items inside the range query.

    Chunks are the unit of *retrieval*, but the paper's semantics are
    item-level: "only the data items whose associated coordinates fall
    within the multi-dimensional box are retrieved".  A chunk whose MBR
    merely straddles the query boundary contributes only its in-box
    items.
    """
    if region is None:
        return np.arange(chunk.n_items)
    lo, hi = region.as_arrays()
    keep = np.all((chunk.coords >= lo) & (chunk.coords <= hi), axis=1)
    return np.flatnonzero(keep)


def map_chunk_to_cells(
    chunk: Chunk, mapping: GridMapping, grid: OutputGrid,
    region: Optional[Rect] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Map a chunk's in-region items into output grid cells.

    Returns ``(item_idx, cells)``: which item produced each mapped
    cell (fan-out expands footprints) and the ``(m, d_out)`` cell
    coordinates, clipped into the grid.  ``item_idx`` refers to the
    chunk's original item numbering.
    """
    idx = filter_items(chunk, region)
    lo_cells, hi_cells = mapping.cell_ranges_for_points(chunk.coords[idx])
    item_idx, cells = expand_cell_ranges(lo_cells, hi_cells)
    return idx[item_idx], grid.clip_cells(cells)


def execute_serial(
    chunks: Iterable[Chunk],
    mapping: GridMapping,
    grid: OutputGrid,
    spec: AggregationSpec,
    output_ids: Optional[np.ndarray] = None,
    region: Optional[Rect] = None,
    fused: bool = True,
    predicate=None,
) -> Dict[int, np.ndarray]:
    """Run the Figure-1 loop over *chunks*; returns per-output-chunk
    final values keyed by output chunk id.

    ``output_ids`` restricts the computation to a subset of output
    chunks (the ones a range query selects); items mapping elsewhere
    are dropped, mirroring step 7's ``Map(ic) ∩ Ot``.  ``region``
    applies the item-level range filter (items of retrieved chunks
    outside the box are skipped).  ``predicate`` (a
    :class:`~repro.dataset.predicate.ValuePredicate`) additionally
    skips items whose *values* fail the query's ``where`` clause --
    the oracle semantics synopsis pruning must preserve.

    ``fused`` selects the grouped-scatter kernels from
    :mod:`repro.runtime.kernels` (the default); ``fused=False`` runs
    the original scalar per-segment loop, kept as the oracle the fused
    path -- and every parallel strategy -- is tested against.
    """
    from repro.runtime.kernels import (
        coerce_values,
        filter_predicate,
        grid_indexer,
        group_read,
    )

    if output_ids is None:
        wanted = np.arange(grid.n_chunks, dtype=np.int64)
    else:
        wanted = np.unique(np.asarray(output_ids, dtype=np.int64))
        if len(wanted) and (wanted.min() < 0 or wanted.max() >= grid.n_chunks):
            raise ValueError("output ids outside the grid")
    selected = np.zeros(grid.n_chunks, dtype=bool)
    selected[wanted] = True
    # Identity local-id map / single-tile map, so the serial loop can
    # share group_read with the engine backends.
    sel_map = np.where(selected, np.arange(grid.n_chunks, dtype=np.int64), -1)
    tile_of_output = np.zeros(grid.n_chunks, dtype=np.int64)
    indexer = grid_indexer(grid)

    # Initialization (steps 1-3).
    accs: Dict[int, np.ndarray] = {
        int(o): spec.initialize(grid.cells_in_chunk(int(o))) for o in wanted
    }

    # Reduction (steps 4-8).
    for chunk in chunks:
        item_idx, cells = map_chunk_to_cells(chunk, mapping, grid, region)
        item_idx, cells = filter_predicate(chunk, item_idx, cells, predicate)
        if len(cells) == 0:
            continue
        if fused:
            values = coerce_values(chunk.values, spec.value_components)
            segs = group_read(
                item_idx, cells, values, grid, sel_map, tile_of_output, 0, indexer
            )
            if segs is None:
                continue
            reduced = spec.prereduce_groups(segs.values, segs.group_starts)  # noqa: ADR501 -- reference oracle
            if reduced is None:
                for k in range(len(segs.seg_out)):
                    o = int(segs.seg_out[k])
                    s, e = segs.starts[k], segs.ends[k]
                    spec.aggregate_grouped(accs[o], segs.flat[s:e], segs.values[s:e])  # noqa: ADR501 -- reference oracle
            else:
                gflat = segs.flat[segs.group_starts]
                gb = segs.group_bounds
                for k in range(len(segs.seg_out)):
                    o = int(segs.seg_out[k])
                    spec.scatter_groups(  # noqa: ADR501 -- reference oracle
                        accs[o], gflat[gb[k] : gb[k + 1]], reduced[gb[k] : gb[k + 1]]
                    )
            continue

        # Scalar oracle path: argsort by output chunk, per-segment
        # local_cell_index + scalar aggregate.
        out_chunks = grid.chunk_of_cells(cells)
        keep = selected[out_chunks]
        if not keep.any():
            continue
        item_idx, cells, out_chunks = item_idx[keep], cells[keep], out_chunks[keep]
        order = np.argsort(out_chunks, kind="stable")
        out_sorted = out_chunks[order]
        boundaries = np.flatnonzero(np.diff(out_sorted)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(out_sorted)]))
        values = np.asarray(chunk.values, dtype=float)
        if values.ndim == 1:
            values = values[:, None]
        for s, e in zip(starts, ends):  # noqa: ADR305 -- reference oracle
            o = int(out_sorted[s])
            sel = order[s:e]
            local = grid.local_cell_index(o, cells[sel])
            spec.aggregate(accs[o], local, values[item_idx[sel]])

    # Output (steps 9-11).
    return {o: spec.output(acc) for o, acc in accs.items()}
