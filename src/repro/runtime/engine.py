"""Sequential functional execution of a query plan.

Executes the four phases per tile over *virtual processors*, each with
its own :class:`~repro.aggregation.accumulator.AccumulatorSet`:

1. **Initialization** -- every holder listed by the plan allocates and
   initializes accumulator chunks for the tile's output chunks
   (ghosts where it is not the owner).
2. **Local reduction** -- each distinct read retrieves the input chunk
   payload; items are mapped through the user ``Map`` into output grid
   cells, and each (input chunk, output chunk) edge is aggregated on
   the processor the plan assigned it to (the input owner under
   FRA/SRA; the output owner under DA -- which is where forwarding the
   chunk is implied).
3. **Global combine** -- ghost accumulators are merged into the
   owner's accumulator, following the plan's ghost-transfer list.
4. **Output handling** -- owners post-process accumulators into final
   output values.

The phase loop itself lives in :class:`repro.runtime.phases.
PhaseExecutor` -- this module is a thin driver that hosts *every*
virtual processor in one address space over an
:class:`~repro.runtime.transport.InprocTransport` (the multiprocess
backend drives the same executor per worker host over a
:class:`~repro.runtime.transport.QueueTransport`).  Because the
virtual processors run in one address space the engine is sequential,
but it honors the plan's *data placement* exactly: an aggregation only
ever touches the accumulator set of its assigned processor, and a
combine only merges data the plan actually ships.  That is what makes
"FRA == SRA == DA == serial" a meaningful test of the planner rather
than a tautology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.aggregation.accumulator import BufferPool
from repro.aggregation.functions import AggregationSpec
from repro.aggregation.output_grid import OutputGrid
from repro.dataset.chunk import Chunk
from repro.dataset.dataset import Dataset
from repro.planner.plan import QueryPlan
from repro.runtime.kernels import RoutingCache
from repro.runtime.phases import (
    PHASES,
    AccumulatorHost,
    ChunkSource,
    PhaseExecutor,
    ProviderChunkSource,
)
from repro.runtime.transport import InprocTransport
from repro.space.mapping import GridMapping
from repro.store.prefetch import PrefetchPolicy

__all__ = ["QueryResult", "execute_plan"]

ChunkProvider = Callable[[int], Chunk]


@dataclass
class QueryResult:
    """Final values per output chunk, plus execution counters.

    The counters follow one backend-independent contract (documented
    in full in :mod:`repro.runtime.phases` and asserted across
    backends by the functional corpus): ``n_reads`` counts successful
    scheduled chunk retrievals summed over ranks, ``bytes_read`` the
    plan's chunk bytes over those reads, ``n_aggregations`` applied
    edge segments on whichever rank the plan assigned them,
    ``n_combines`` ghost merges at the owning rank, and
    ``phase_times`` has exactly the keys of
    :data:`repro.runtime.phases.PHASES` (sequential: this process's
    wall clock; parallel: the per-phase maximum across worker hosts,
    i.e. the critical path).
    """

    strategy: str
    #: dataset-level output chunk ids, parallel to ``chunk_values``
    output_ids: np.ndarray
    chunk_values: List[np.ndarray]
    n_tiles: int
    #: distinct chunk retrievals performed (reads x tiles multiplicity)
    n_reads: int
    bytes_read: int
    #: ghost accumulator merges performed in global-combine phases
    n_combines: int
    #: aggregate() calls, i.e. executed (input, accumulator) edges
    n_aggregations: int
    #: simulated-race findings (empty unless executed with the
    #: ``detect_races`` opt-in; see :mod:`repro.analysis.races`)
    race_diagnostics: List = field(default_factory=list)
    #: wall-clock seconds per execution phase (initialize / reduce /
    #: combine / output), as measured by the executing backend
    phase_times: Dict[str, float] = field(default_factory=dict)
    #: cache and pool counters (routing-cache hits/misses, chunk
    #: payload cache hits/misses, accumulator buffer-pool reuses)
    cache_stats: Dict[str, int] = field(default_factory=dict)
    #: degraded execution only: dataset-level *input* chunk ids that
    #: could not be read, mapped to a short error description
    chunk_errors: Dict[int, str] = field(default_factory=dict)
    #: fraction of the plan's input chunks successfully incorporated
    #: (1.0 for a clean run; ``1 - len(chunk_errors)/n_inputs`` when
    #: degraded)
    completeness: float = 1.0
    #: input chunks dropped before planning by value-synopsis pruning
    #: (they spatially intersect the query but provably contain no item
    #: satisfying its ``where`` predicate) and the input bytes those
    #: reads would have cost; 0 without a predicate or synopsis
    chunks_pruned: int = 0
    bytes_pruned: int = 0
    #: scheduled chunk retrievals served from the shared payload cache
    #: during this query (and their decoded bytes) -- some earlier
    #: query paid the disk read.  Filled by the ADR facade from its
    #: per-query :class:`~repro.store.cache.ScanRecorder`.  These are
    #: the *only* counters allowed to differ between a query executed
    #: inside a shared-scan batch and the same query run alone: shared
    #: execution changes where bytes come from, never what is computed.
    shared_reads: int = 0
    shared_bytes: int = 0
    #: sharded deployments only: shard id -> error description for every
    #: shard whose sub-plan could not be fetched (dead, timed out, torn
    #: connection).  Filled by :class:`repro.shard.router.ShardRouter`
    #: under ``on_error='degrade'``; the failed shard's planned input
    #: chunks additionally appear in ``chunk_errors`` (dataset-global
    #: ids) and ``completeness`` accounts for them.  Always empty on
    #: single-process results.
    shard_errors: Dict[int, str] = field(default_factory=dict)
    #: automatic strategy selection only: the concrete strategy
    #: ``strategy='auto'`` resolved to, and the full cost-model ranking
    #: (strategy -> estimated seconds, cheapest first) behind that
    #: decision.  Empty when the caller fixed the strategy explicitly.
    selected_strategy: str = ""
    strategy_ranking: Dict[str, float] = field(default_factory=dict)

    def value_of(self, output_id: int) -> np.ndarray:
        pos = np.flatnonzero(self.output_ids == output_id)
        if not len(pos):
            raise KeyError(f"output chunk {output_id} was not computed")
        return self.chunk_values[int(pos[0])]

    def as_dict(self) -> Dict[int, np.ndarray]:
        return {int(o): v for o, v in zip(self.output_ids, self.chunk_values)}

    def assemble(self, grid: OutputGrid) -> np.ndarray:
        """Dense output array; chunks outside the query are NaN.

        An empty result (a query selecting nothing, or a plan with
        zero tiles) assembles to an all-NaN single-component grid
        rather than failing on ``chunk_values[0]``.
        """
        k = self.chunk_values[0].shape[1] if len(self.chunk_values) else 1
        parts = []
        computed = self.as_dict()
        for cid in range(grid.n_chunks):
            if cid in computed:
                parts.append(computed[cid])
            else:
                parts.append(np.full((grid.cells_in_chunk(cid), k), np.nan))
        return grid.assemble(parts)


def _provider(source: Union[Dataset, ChunkProvider]) -> ChunkProvider:
    if isinstance(source, Dataset):
        return source.payload
    if callable(source):
        return source
    raise TypeError("chunk source must be a Dataset with payloads or a callable")


def _chunk_source(
    provider: ChunkProvider, plan: QueryPlan, prefetch, ranks=None
) -> ChunkSource:
    """The reduce phase's payload source: synchronous provider calls,
    or a :class:`~repro.store.prefetch.TilePrefetcher` issuing them
    ahead of consumption in placement order.  *ranks* restricts the
    prefetched reads to the hosted processors (worker hosts)."""
    policy = PrefetchPolicy.coerce(prefetch)
    if policy is None:
        return ProviderChunkSource(provider)
    from repro.store.prefetch import TilePrefetcher, read_batches

    return TilePrefetcher(provider, read_batches(plan, ranks=ranks), policy)


def execute_plan(
    plan: QueryPlan,
    chunks: Union[Dataset, ChunkProvider],
    mapping: GridMapping,
    grid: OutputGrid,
    spec: AggregationSpec,
    enforce_memory: bool = False,
    region=None,
    prior: Optional[Callable[[int], np.ndarray]] = None,
    detect_races: Optional[bool] = None,
    race_detector=None,
    backend: str = "sequential",
    routing_cache: Optional[RoutingCache] = None,
    on_error: str = "raise",
    fault_injector=None,
    recovery=None,
    prefetch: Union[bool, PrefetchPolicy, None] = None,
    predicate=None,
) -> QueryResult:
    """Execute *plan* over real chunk payloads.

    Parameters
    ----------
    plan:
        Any validated plan (FRA/SRA/DA/hybrid) over a geometry-derived
        problem.
    chunks:
        A payload-carrying :class:`Dataset` or a callable mapping
        *dataset-level* input chunk ids to :class:`Chunk`.
    mapping, grid, spec:
        The user customization: ``Map``, the output dataset layout,
        and the aggregation functions.
    enforce_memory:
        When True, virtual processors enforce the plan's accumulator
        budget at allocation time (useful in tests; requires the
        problem's ``acc_nbytes`` to match ``spec.acc_bytes``).
    region:
        Optional range-query box in the input attribute space; items
        of retrieved chunks outside it are skipped (the paper's
        item-level retrieval semantics).
    prior:
        For update queries (``problem.init_from_output``): maps a
        dataset-level output chunk id to its *existing* output values;
        owners seed their accumulators from it via
        ``spec.initialize_from`` ("an output chunk is retrieved by the
        processor that has the chunk on its local disk").  Replicated
        (ghost) holders are seeded too only for idempotent
        aggregations -- otherwise the global combine would double-count
        the prior.
    detect_races:
        Opt-in simulated-race detection: every accumulator access is
        checked against the plan's ownership tables by a
        :class:`repro.analysis.races.RaceDetector`, and findings land
        in ``QueryResult.race_diagnostics``.  ``None`` (the default)
        defers to the ``REPRO_DETECT_RACES`` environment variable.
    race_detector:
        A pre-built detector to report to (overrides *detect_races*);
        tests pass a detector built from a *reference* plan to catch
        an engine/plan drifting apart.
    backend:
        ``"sequential"`` (default) executes the virtual processors in
        one address space; ``"parallel"`` runs each virtual processor
        as a real OS process (:mod:`repro.runtime.parallel`) with
        shared-memory accumulators and ghost transfers as real IPC.
        Both backends drive the same
        :class:`~repro.runtime.phases.PhaseExecutor` over the same
        fused kernels and per-accumulator operation order, so their
        results agree bit-for-bit.  Race detection is a
        sequential-backend feature: requesting it explicitly together
        with ``backend="parallel"`` raises (the parallel backend
        instead asserts plan-authorized access inside each worker);
        the ``REPRO_DETECT_RACES`` environment default is silently
        ignored by the parallel backend.
    routing_cache:
        Optional :class:`repro.runtime.kernels.RoutingCache` memoizing
        ``map_chunk_to_cells`` per (chunk, region) across tiles and
        queries; hit counters land in ``QueryResult.cache_stats``.
    on_error:
        ``"raise"`` (default): the first unreadable input chunk aborts
        the query with its error (``CorruptChunkError`` for damage,
        ``KeyError`` for absence, ``OSError`` for I/O failure).
        ``"degrade"``: unreadable chunks are skipped, their ids and
        errors land in ``QueryResult.chunk_errors``, and
        ``QueryResult.completeness`` reports the fraction of input
        chunks incorporated; only
        :data:`~repro.store.chunk_store.RECOVERABLE_READ_ERRORS` are
        absorbed.
    fault_injector:
        Optional :class:`repro.faults.FaultInjector` arming
        deterministic fault injection on the read path (both backends)
        and on worker crashes / message drops (parallel backend).
    recovery:
        Optional :class:`repro.runtime.parallel.RecoveryPolicy` tuning
        worker-crash detection and the restart budget (parallel
        backend only).
    prefetch:
        I/O read-ahead: ``True`` (or a
        :class:`~repro.store.prefetch.PrefetchPolicy`) overlaps chunk
        retrieval with reduction by issuing the current tile's and the
        next tile's reads from background threads in placement order
        (see :mod:`repro.store.prefetch`).  ``None``/``False`` (the
        default) reads synchronously.  Results are bit-for-bit
        identical either way, counters included.
    predicate:
        Optional :class:`~repro.dataset.predicate.ValuePredicate`
        residual filter: items of retrieved chunks whose values fail
        it are skipped after routing, on every backend.  This is the
        exact counterpart of the planner's value-synopsis pruning
        (reported in ``QueryResult.chunks_pruned`` / ``bytes_pruned``
        from the plan), and what makes pruned plans bit-identical to
        unpruned ones.
    """
    if backend not in ("sequential", "parallel"):
        raise ValueError(
            f"unknown backend {backend!r}; expected 'sequential' or 'parallel'"
        )
    if on_error not in ("raise", "degrade"):
        raise ValueError(
            f"unknown on_error {on_error!r}; expected 'raise' or 'degrade'"
        )
    PrefetchPolicy.coerce(prefetch)  # validate early, on any backend
    if backend == "parallel":
        if race_detector is not None or detect_races:
            raise ValueError(
                "race detection runs on the sequential backend; the parallel "
                "backend asserts plan-authorized access inside each worker "
                "instead -- drop detect_races/race_detector or use "
                "backend='sequential'"
            )
        from repro.runtime.parallel import execute_parallel

        kwargs = {} if recovery is None else {"recovery": recovery}
        return execute_parallel(
            plan,
            chunks,
            mapping,
            grid,
            spec,
            enforce_memory=enforce_memory,
            region=region,
            prior=prior,
            routing_cache=routing_cache,
            on_error=on_error,
            fault_injector=fault_injector,
            prefetch=prefetch,
            predicate=predicate,
            **kwargs,
        )
    problem = plan.problem
    detector = race_detector
    if detector is None:
        if detect_races is None:
            from repro.analysis.races import races_enabled_by_env

            detect_races = races_enabled_by_env()
        if detect_races:
            from repro.analysis.races import RaceDetector

            detector = RaceDetector(plan)
    provider = _provider(chunks)
    if fault_injector is not None:
        provider = fault_injector.wrap_provider(provider)

    pool = BufferPool()
    accs = AccumulatorHost(
        spec,
        range(problem.n_procs),
        memory_limit=(
            (lambda p: int(problem.memory_per_proc[p])) if enforce_memory else None
        ),
        pool=pool,
    )
    transport = InprocTransport()
    source = _chunk_source(provider, plan, prefetch)
    executor = PhaseExecutor(
        plan,
        grid,
        spec,
        mapping,
        source,
        accs,
        transport,
        region=region,
        prior=prior,
        routing_cache=routing_cache,
        on_error=on_error,
        observer=detector,
        predicate=predicate,
    )
    try:
        executor.run()
    finally:
        source.close()

    cache_stats: Dict[str, int] = dict(pool.stats())
    if routing_cache is not None:
        cache_stats.update(routing_cache.stats())

    results = transport.results
    out_global = problem.output_global_ids
    ordered = sorted(results)
    return QueryResult(
        strategy=plan.strategy,
        output_ids=out_global[np.asarray(ordered, dtype=np.int64)]
        if ordered
        else np.empty(0, dtype=np.int64),
        chunk_values=[results[o] for o in ordered],
        n_tiles=plan.n_tiles,
        n_reads=executor.n_reads,
        bytes_read=executor.bytes_read,
        n_combines=executor.n_combines,
        n_aggregations=executor.n_aggregations,
        race_diagnostics=detector.report() if detector is not None else [],
        phase_times=executor.phase_times,
        cache_stats=cache_stats,
        chunk_errors=dict(sorted(executor.chunk_errors.items())),
        completeness=1.0 - len(executor.chunk_errors) / max(problem.n_in, 1),
        chunks_pruned=problem.n_pruned,
        bytes_pruned=problem.pruned_bytes,
    )
