"""Parallel functional execution of a query plan.

Executes the four phases per tile over *virtual processors*, each with
its own :class:`~repro.aggregation.accumulator.AccumulatorSet`:

1. **Initialization** -- every holder listed by the plan allocates and
   initializes accumulator chunks for the tile's output chunks
   (ghosts where it is not the owner).
2. **Local reduction** -- each distinct read retrieves the input chunk
   payload; items are mapped through the user ``Map`` into output grid
   cells, and each (input chunk, output chunk) edge is aggregated on
   the processor the plan assigned it to (the input owner under
   FRA/SRA; the output owner under DA -- which is where forwarding the
   chunk is implied).
3. **Global combine** -- ghost accumulators are merged into the
   owner's accumulator, following the plan's ghost-transfer list.
4. **Output handling** -- owners post-process accumulators into final
   output values.

Because the virtual processors run in one address space the engine is
sequential, but it honors the plan's *data placement* exactly: an
aggregation only ever touches the accumulator set of its assigned
processor, and a combine only merges data the plan actually ships.
That is what makes "FRA == SRA == DA == serial" a meaningful test of
the planner rather than a tautology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.aggregation.accumulator import AccumulatorSet
from repro.aggregation.functions import AggregationSpec
from repro.aggregation.output_grid import OutputGrid
from repro.dataset.chunk import Chunk
from repro.dataset.dataset import Dataset
from repro.planner.plan import QueryPlan
from repro.runtime.serial import map_chunk_to_cells
from repro.space.mapping import GridMapping

__all__ = ["QueryResult", "execute_plan"]

ChunkProvider = Callable[[int], Chunk]


@dataclass
class QueryResult:
    """Final values per output chunk, plus execution counters."""

    strategy: str
    #: dataset-level output chunk ids, parallel to ``chunk_values``
    output_ids: np.ndarray
    chunk_values: List[np.ndarray]
    n_tiles: int
    #: distinct chunk retrievals performed (reads x tiles multiplicity)
    n_reads: int
    bytes_read: int
    #: ghost accumulator merges performed in global-combine phases
    n_combines: int
    #: aggregate() calls, i.e. executed (input, accumulator) edges
    n_aggregations: int
    #: simulated-race findings (empty unless executed with the
    #: ``detect_races`` opt-in; see :mod:`repro.analysis.races`)
    race_diagnostics: List = field(default_factory=list)

    def value_of(self, output_id: int) -> np.ndarray:
        pos = np.flatnonzero(self.output_ids == output_id)
        if not len(pos):
            raise KeyError(f"output chunk {output_id} was not computed")
        return self.chunk_values[int(pos[0])]

    def as_dict(self) -> Dict[int, np.ndarray]:
        return {int(o): v for o, v in zip(self.output_ids, self.chunk_values)}

    def assemble(self, grid: OutputGrid) -> np.ndarray:
        """Dense output array; chunks outside the query are NaN.

        An empty result (a query selecting nothing, or a plan with
        zero tiles) assembles to an all-NaN single-component grid
        rather than failing on ``chunk_values[0]``.
        """
        k = self.chunk_values[0].shape[1] if len(self.chunk_values) else 1
        parts = []
        computed = self.as_dict()
        for cid in range(grid.n_chunks):
            if cid in computed:
                parts.append(computed[cid])
            else:
                parts.append(np.full((grid.cells_in_chunk(cid), k), np.nan))
        return grid.assemble(parts)


def _provider(source: Union[Dataset, ChunkProvider]) -> ChunkProvider:
    if isinstance(source, Dataset):
        return source.payload
    if callable(source):
        return source
    raise TypeError("chunk source must be a Dataset with payloads or a callable")


def execute_plan(
    plan: QueryPlan,
    chunks: Union[Dataset, ChunkProvider],
    mapping: GridMapping,
    grid: OutputGrid,
    spec: AggregationSpec,
    enforce_memory: bool = False,
    region=None,
    prior: Optional[Callable[[int], np.ndarray]] = None,
    detect_races: Optional[bool] = None,
    race_detector=None,
) -> QueryResult:
    """Execute *plan* over real chunk payloads.

    Parameters
    ----------
    plan:
        Any validated plan (FRA/SRA/DA/hybrid) over a geometry-derived
        problem.
    chunks:
        A payload-carrying :class:`Dataset` or a callable mapping
        *dataset-level* input chunk ids to :class:`Chunk`.
    mapping, grid, spec:
        The user customization: ``Map``, the output dataset layout,
        and the aggregation functions.
    enforce_memory:
        When True, virtual processors enforce the plan's accumulator
        budget at allocation time (useful in tests; requires the
        problem's ``acc_nbytes`` to match ``spec.acc_bytes``).
    region:
        Optional range-query box in the input attribute space; items
        of retrieved chunks outside it are skipped (the paper's
        item-level retrieval semantics).
    prior:
        For update queries (``problem.init_from_output``): maps a
        dataset-level output chunk id to its *existing* output values;
        owners seed their accumulators from it via
        ``spec.initialize_from`` ("an output chunk is retrieved by the
        processor that has the chunk on its local disk").  Replicated
        (ghost) holders are seeded too only for idempotent
        aggregations -- otherwise the global combine would double-count
        the prior.
    detect_races:
        Opt-in simulated-race detection: every accumulator access is
        checked against the plan's ownership tables by a
        :class:`repro.analysis.races.RaceDetector`, and findings land
        in ``QueryResult.race_diagnostics``.  ``None`` (the default)
        defers to the ``REPRO_DETECT_RACES`` environment variable.
    race_detector:
        A pre-built detector to report to (overrides *detect_races*);
        tests pass a detector built from a *reference* plan to catch
        an engine/plan drifting apart.
    """
    problem = plan.problem
    detector = race_detector
    if detector is None:
        if detect_races is None:
            from repro.analysis.races import races_enabled_by_env

            detect_races = races_enabled_by_env()
        if detect_races:
            from repro.analysis.races import RaceDetector

            detector = RaceDetector(plan)
    provider = _provider(chunks)
    in_global = problem.input_global_ids
    out_global = problem.output_global_ids

    acc_sets = [
        AccumulatorSet(
            spec,
            memory_limit=int(problem.memory_per_proc[p]) if enforce_memory else None,
        )
        for p in range(problem.n_procs)
    ]

    # Dataset-level output chunk id -> dense local id (or -1).
    sel_map = np.full(grid.n_chunks, -1, dtype=np.int64)
    sel_map[out_global] = np.arange(problem.n_out)

    # Per-input-chunk edge lookup: outputs_of(i) is sorted and aligned
    # with the same slice of plan.edge_proc (forward-CSR order).
    fwd_indptr, fwd_ids = problem.graph.forward_csr

    # Reads grouped by tile.
    reads = plan.reads
    read_order = np.argsort(reads.tile, kind="stable")
    read_bounds = np.searchsorted(reads.tile[read_order], np.arange(plan.n_tiles + 1))

    # Ghost transfers grouped by tile.
    gt = plan.ghost_transfers
    gt_order = np.argsort(gt.tile, kind="stable")
    gt_bounds = np.searchsorted(gt.tile[gt_order], np.arange(plan.n_tiles + 1))

    # Outputs grouped by tile.
    out_order = np.argsort(plan.tile_of_output, kind="stable")
    out_bounds = np.searchsorted(
        plan.tile_of_output[out_order], np.arange(plan.n_tiles + 1)
    )

    results: Dict[int, np.ndarray] = {}
    n_reads = 0
    bytes_read = 0
    n_combines = 0
    n_aggregations = 0

    for t in range(plan.n_tiles):
        # -- phase 1: initialization -----------------------------------
        for k in range(out_bounds[t], out_bounds[t + 1]):
            o = int(out_order[k])
            n_cells = grid.cells_in_chunk(int(out_global[o]))
            owner = int(problem.output_owner[o])
            prior_acc = None
            if problem.init_from_output and prior is not None:
                prior_vals = prior(int(out_global[o]))
                if prior_vals is not None:
                    prior_acc = spec.initialize_from(prior_vals)
            for p in plan.holders_of(o):
                acc = acc_sets[int(p)].allocate(o, n_cells, ghost=int(p) != owner)
                if detector is not None:
                    detector.on_allocate(int(p), o, t)
                if prior_acc is not None and (int(p) == owner or spec.idempotent):
                    acc.data[:] = prior_acc

        # -- phase 2: local reduction --------------------------------------
        for k in range(read_bounds[t], read_bounds[t + 1]):
            r = int(read_order[k])
            i = int(reads.chunk[r])
            chunk = provider(int(in_global[i]))
            n_reads += 1
            bytes_read += int(problem.inputs.nbytes[i])

            item_idx, cells = map_chunk_to_cells(chunk, mapping, grid, region)
            if len(cells) == 0:
                continue
            out_chunks = grid.chunk_of_cells(cells)
            local_out = sel_map[out_chunks]
            keep = local_out >= 0
            keep &= np.where(keep, plan.tile_of_output[local_out] == t, False)
            if not keep.any():
                continue
            item_idx, cells = item_idx[keep], cells[keep]
            out_chunks, local_out = out_chunks[keep], local_out[keep]

            values = np.asarray(chunk.values, dtype=float)
            if values.ndim == 1:
                values = values[:, None]

            edges_out = fwd_ids[fwd_indptr[i] : fwd_indptr[i + 1]]
            edges_proc = plan.edge_proc[fwd_indptr[i] : fwd_indptr[i + 1]]

            order = np.argsort(local_out, kind="stable")
            lo_sorted = local_out[order]
            boundaries = np.flatnonzero(np.diff(lo_sorted)) + 1
            starts = np.concatenate(([0], boundaries))
            ends = np.concatenate((boundaries, [len(lo_sorted)]))
            for s, e in zip(starts, ends):
                o = int(lo_sorted[s])
                pos = np.searchsorted(edges_out, o)
                if pos >= len(edges_out) or edges_out[pos] != o:
                    raise AssertionError(
                        f"items of input chunk {i} land in output chunk {o} "
                        "but the chunk graph has no such edge -- the graph "
                        "must be a superset of the item-level mapping"
                    )
                q = int(edges_proc[pos])
                sel = order[s:e]
                local_cells = grid.local_cell_index(int(out_global[o]), cells[sel])
                if detector is not None:
                    detector.on_aggregate(q, o, t)
                acc_sets[q].aggregate(o, local_cells, values[item_idx[sel]])
                n_aggregations += 1

        # -- phase 3: global combine ----------------------------------------
        for k in range(gt_bounds[t], gt_bounds[t + 1]):
            g = int(gt_order[k])
            o = int(gt.chunk[g])
            src, dst = int(gt.src[g]), int(gt.dst[g])
            if detector is not None:
                detector.on_combine(src, dst, o, t)
            acc_sets[dst].combine_from(o, acc_sets[src].get(o).data)
            n_combines += 1

        # -- phase 4: output handling -----------------------------------------
        for k in range(out_bounds[t], out_bounds[t + 1]):
            o = int(out_order[k])
            owner = int(problem.output_owner[o])
            acc = acc_sets[owner].get(o)
            if acc.ghost:
                raise AssertionError("owner holds a ghost for its own chunk")
            if detector is not None:
                detector.on_output(owner, o, t)
            results[o] = spec.output(acc.data)

        for s in acc_sets:
            s.clear()
        if detector is not None:
            detector.end_tile(t)

    ordered = sorted(results)
    return QueryResult(
        strategy=plan.strategy,
        output_ids=out_global[np.asarray(ordered, dtype=np.int64)]
        if ordered
        else np.empty(0, dtype=np.int64),
        chunk_values=[results[o] for o in ordered],
        n_tiles=plan.n_tiles,
        n_reads=n_reads,
        bytes_read=bytes_read,
        n_combines=n_combines,
        n_aggregations=n_aggregations,
        race_diagnostics=detector.report() if detector is not None else [],
    )
