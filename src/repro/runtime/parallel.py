"""Multiprocess execution backend: one OS process per virtual processor.

The sequential engine (:mod:`repro.runtime.engine`) honors the plan's
data placement inside one address space.  This backend makes the
placement physical: each virtual processor is a forked worker with

- its own slice of a :class:`multiprocessing.shared_memory.SharedMemory`
  arena holding the accumulator chunks it is a plan-declared holder of,
- a private inbox :class:`multiprocessing.Queue` over which forwarded
  input segments (the DA communication) and ghost accumulator chunks
  (the FRA/SRA communication) arrive as real IPC,
- plan-authorization asserts on every access: a worker only ever
  touches accumulators it holds, applies edges the plan assigned to it,
  and combines ghosts the plan declares shipped to it.  (The simulated
  race detector is a sequential-backend feature; this backend enforces
  the same contracts structurally, per worker.)

**Determinism.** Both backends share the fused kernels of
:mod:`repro.runtime.kernels` and iterate the same
:func:`~repro.runtime.kernels.tile_schedule`: every worker walks the
tile's reads in global read order -- the reader routes the chunk and
forwards per-edge segments, recipients block for the forward before
moving on -- so each accumulator receives exactly the same floating-
point operations in exactly the same order as under the sequential
backend, and results agree **bit for bit** (``np.array_equal``).

**Deadlock freedom.** Sends never block (unbounded queues); a worker
only blocks waiting for the message of the earliest unprocessed read
(or declared ghost transfer).  A wait chain therefore strictly
decreases in schedule index and must end at a worker that is actively
producing, so global progress is guaranteed; out-of-order arrivals are
stashed by schedule index until their turn.

The backend is selected with ``execute_plan(..., backend="parallel")``.
It requires the ``fork`` start method (the chunk provider and prior
callables are inherited, never pickled), i.e. a POSIX host.
"""

from __future__ import annotations

import queue as queue_mod
import time
import traceback
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.aggregation.functions import AggregationSpec
from repro.aggregation.output_grid import OutputGrid
from repro.dataset.chunk import Chunk
from repro.dataset.dataset import Dataset
from repro.planner.plan import QueryPlan
from repro.runtime.kernels import (
    RoutingCache,
    coerce_values,
    grid_indexer,
    group_read,
    route_chunk,
    tile_schedule,
)
from repro.space.mapping import GridMapping

__all__ = ["execute_parallel"]

ChunkProvider = Callable[[int], Chunk]

#: Seconds a worker waits on its inbox before concluding a peer died.
_INBOX_TIMEOUT = 120.0
#: Seconds the parent waits between liveness checks of the workers.
_PARENT_POLL = 0.5

_ALIGN = 64  # worker arena slices are cache-line aligned


# ---------------------------------------------------------------------------
# Plan-derived layout (computed once, in the parent, before forking)
# ---------------------------------------------------------------------------


class _Layout:
    """Shared-memory arena layout + per-read forwarding expectations.

    Everything here is a pure function of (plan, grid, spec); workers
    inherit it read-only through fork, so parent and every worker agree
    on offsets and message schedules without any further coordination.
    """

    def __init__(
        self, plan: QueryPlan, grid: OutputGrid, spec: AggregationSpec,
        enforce_memory: bool,
    ) -> None:
        problem = plan.problem
        out_global = problem.output_global_ids
        self.schedule = tile_schedule(plan)
        n_procs = problem.n_procs

        # Per (tile, proc): [(local output id, n_cells, byte offset)].
        self.tile_accs: List[List[List[Tuple[int, int, int]]]] = [
            [[] for _ in range(n_procs)] for _ in range(plan.n_tiles)
        ]
        per_tile_bytes = np.zeros((plan.n_tiles, n_procs), dtype=np.int64)
        for t in range(plan.n_tiles):
            for k in self.schedule.outputs_of(t):
                o = int(k)
                n_cells = grid.cells_in_chunk(int(out_global[o]))
                nbytes = spec.acc_bytes(n_cells)
                for p in plan.holders_of(o):
                    p = int(p)
                    offset = int(per_tile_bytes[t, p])
                    self.tile_accs[t][p].append((o, n_cells, offset))
                    per_tile_bytes[t, p] = offset + nbytes
        if enforce_memory:
            over = per_tile_bytes > problem.memory_per_proc[None, :]
            if over.any():
                t, p = map(int, np.argwhere(over)[0])
                raise MemoryError(
                    f"tile {t} needs {int(per_tile_bytes[t, p])} accumulator "
                    f"bytes on processor {p}, over the "
                    f"{int(problem.memory_per_proc[p])}-byte budget -- the "
                    "tiling step should prevent this"
                )

        # Worker arena slices (cache-line aligned, >= 1 byte each).
        slice_bytes = per_tile_bytes.max(axis=0) if plan.n_tiles else np.zeros(
            n_procs, dtype=np.int64
        )
        self.slice_starts = np.zeros(n_procs, dtype=np.int64)
        total = 0
        for p in range(n_procs):
            self.slice_starts[p] = total
            total += -(-max(int(slice_bytes[p]), 1) // _ALIGN) * _ALIGN
        self.arena_bytes = max(total, 1)

        # Per read: which procs (beyond the reader) get a forwarded
        # segment message.  Derived from the plan's edge assignment
        # restricted to the read's tile, so sender and receivers agree
        # on the message schedule even for reads that map no items.
        fwd_indptr, fwd_ids = problem.graph.forward_csr
        reads = plan.reads
        self.recipients: List[np.ndarray] = []
        for r in range(len(reads)):
            i = int(reads.chunk[r])
            t = int(reads.tile[r])
            lo, hi = fwd_indptr[i], fwd_indptr[i + 1]
            active = plan.tile_of_output[fwd_ids[lo:hi]] == t
            procs = np.unique(plan.edge_proc[lo:hi][active])
            self.recipients.append(procs[procs != int(reads.proc[r])])


# ---------------------------------------------------------------------------
# Worker
# ---------------------------------------------------------------------------


class _Inbox:
    """Ordered receive over an unordered queue: messages are keyed by
    schedule position and stashed until their turn comes."""

    def __init__(self, q) -> None:
        self._q = q
        self._stash: Dict[tuple, object] = {}

    def expect(self, key: tuple):
        while key not in self._stash:
            try:
                got_key, payload = self._q.get(timeout=_INBOX_TIMEOUT)
            except queue_mod.Empty:
                raise RuntimeError(
                    f"worker timed out waiting for message {key!r}; a peer "
                    "processor likely died"
                ) from None
            self._stash[got_key] = payload
        return self._stash.pop(key)


def _worker(
    rank: int,
    plan: QueryPlan,
    provider: ChunkProvider,
    mapping: GridMapping,
    grid: OutputGrid,
    spec: AggregationSpec,
    region,
    prior,
    routing_cache: Optional[RoutingCache],
    layout: _Layout,
    shm_name: str,
    inboxes,
    result_q,
) -> None:
    """One virtual processor as a real process."""
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        _worker_body(
            rank, plan, provider, mapping, grid, spec, region, prior,
            routing_cache, layout, shm, inboxes, result_q,
        )
    except BaseException:
        result_q.put(("error", rank, traceback.format_exc()))
    finally:
        shm.close()


def _worker_body(
    rank, plan, provider, mapping, grid, spec, region, prior,
    routing_cache, layout, shm, inboxes, result_q,
) -> None:
    problem = plan.problem
    in_global = problem.input_global_ids
    out_global = problem.output_global_ids
    schedule = layout.schedule
    indexer = grid_indexer(grid)
    inbox = _Inbox(inboxes[rank])
    reads = plan.reads
    gt = plan.ghost_transfers
    fwd_indptr, fwd_ids = problem.graph.forward_csr

    sel_map = np.full(grid.n_chunks, -1, dtype=np.int64)
    sel_map[out_global] = np.arange(problem.n_out)

    # The cache was forked with the parent's counters baked in; report
    # only this worker's delta so the parent can sum across workers.
    cache_base = routing_cache.stats() if routing_cache is not None else {}

    arena = np.frombuffer(shm.buf, dtype=np.uint8)
    base = int(layout.slice_starts[rank])

    n_reads = 0
    bytes_read = 0
    n_aggregations = 0
    n_combines = 0
    phase_times = {"initialize": 0.0, "reduce": 0.0, "combine": 0.0, "output": 0.0}

    def edge_proc_of(i: int, o: int) -> int:
        lo, hi = fwd_indptr[i], fwd_indptr[i + 1]
        edges_out = fwd_ids[lo:hi]
        pos = np.searchsorted(edges_out, o)
        if pos >= len(edges_out) or edges_out[pos] != o:
            raise AssertionError(
                f"items of input chunk {i} land in output chunk {o} "
                "but the chunk graph has no such edge -- the graph "
                "must be a superset of the item-level mapping"
            )
        return int(plan.edge_proc[lo + pos])

    for t in range(plan.n_tiles):
        # -- phase 1: initialization (arena views) ---------------------
        t0 = time.perf_counter()
        accs: Dict[int, np.ndarray] = {}
        for o, n_cells, offset in layout.tile_accs[t][rank]:
            assert rank in plan.holders_of(o), "not a plan-declared holder"
            start = base + offset
            acc = arena[start : start + spec.acc_bytes(n_cells)].view(
                spec.acc_dtype
            ).reshape(n_cells, spec.acc_components)
            spec.initialize_into(acc)
            if problem.init_from_output and prior is not None:
                owner = int(problem.output_owner[o])
                if rank == owner or spec.idempotent:
                    prior_vals = prior(int(out_global[o]))
                    if prior_vals is not None:
                        acc[:] = spec.initialize_from(prior_vals)
            accs[o] = acc
        phase_times["initialize"] += time.perf_counter() - t0

        # -- phase 2: local reduction (global read order) --------------
        t0 = time.perf_counter()
        for r in schedule.reads_of(t):
            r = int(r)
            reader = int(reads.proc[r])
            recipients = layout.recipients[r]
            if rank == reader:
                i = int(reads.chunk[r])
                gid = int(in_global[i])
                chunk = provider(gid)
                n_reads += 1
                bytes_read += int(problem.inputs.nbytes[i])
                item_idx, cells = route_chunk(
                    chunk, mapping, grid, region,
                    cache=routing_cache, chunk_id=gid,
                )
                segs = None
                if len(cells):
                    values = coerce_values(chunk.values, spec.value_components)
                    segs = group_read(
                        item_idx, cells, values, grid, sel_map,
                        plan.tile_of_output, t, indexer,
                    )
                # Partition segments by assigned processor; apply own,
                # forward the rest (the DA communication), keeping the
                # ascending-segment order everywhere.  Duplicate cells
                # are pre-reduced read-wide first (when the aggregation
                # supports it), so forwarded segments ship one row per
                # distinct cell and both sides apply one fancy-indexed
                # scatter per segment -- the same arithmetic, in the
                # same order, as the sequential backend.
                outbound: Dict[int, list] = {int(q): [] for q in recipients}
                if segs is not None:
                    reduced = spec.prereduce_groups(segs.values, segs.group_starts)
                    gflat = (
                        segs.flat[segs.group_starts] if reduced is not None else None
                    )
                    gb = segs.group_bounds
                    for k in range(len(segs.seg_out)):
                        o = int(segs.seg_out[k])
                        q = edge_proc_of(i, o)
                        if q == rank:
                            assert o in accs, "reader aggregating into chunk it does not hold"
                            if reduced is None:
                                s, e = segs.starts[k], segs.ends[k]
                                spec.aggregate_grouped(
                                    accs[o], segs.flat[s:e], segs.values[s:e]
                                )
                            else:
                                spec.scatter_groups(
                                    accs[o],
                                    gflat[gb[k] : gb[k + 1]],
                                    reduced[gb[k] : gb[k + 1]],
                                )
                            n_aggregations += 1
                        elif reduced is None:
                            s, e = segs.starts[k], segs.ends[k]
                            outbound[q].append(
                                ("raw", o, np.ascontiguousarray(segs.flat[s:e]),
                                 np.ascontiguousarray(segs.values[s:e]))
                            )
                        else:
                            outbound[q].append(
                                ("red", o,
                                 np.ascontiguousarray(gflat[gb[k] : gb[k + 1]]),
                                 np.ascontiguousarray(reduced[gb[k] : gb[k + 1]]))
                            )
                for q in recipients:
                    inboxes[int(q)].put((("seg", t, r), outbound[int(q)]))
            elif rank in recipients:
                segments = inbox.expect(("seg", t, r))
                i = int(reads.chunk[r])
                for kind, o, cell_idx, payload in segments:
                    assert edge_proc_of(i, o) == rank, (
                        "forwarded segment for an edge the plan did not "
                        "assign to this processor"
                    )
                    assert o in accs, "segment for a chunk this worker does not hold"
                    if kind == "red":
                        spec.scatter_groups(accs[o], cell_idx, payload)
                    else:
                        spec.aggregate_grouped(accs[o], cell_idx, payload)
                    n_aggregations += 1
        phase_times["reduce"] += time.perf_counter() - t0

        # -- phase 3: global combine (declared transfer order) ---------
        t0 = time.perf_counter()
        for g in schedule.transfers_of(t):
            g = int(g)
            o = int(gt.chunk[g])
            src, dst = int(gt.src[g]), int(gt.dst[g])
            if rank == src:
                assert o in accs, "shipping a ghost this worker does not hold"
                # Copy before put: Queue serializes in a feeder thread,
                # and the arena view is recycled next tile.
                inboxes[dst].put((("ghost", t, g), accs[o].copy()))
            if rank == dst:
                ghost_data = inbox.expect(("ghost", t, g))
                assert int(problem.output_owner[o]) == rank, (
                    "ghost shipped to a non-owner"
                )
                assert o in accs and ghost_data.shape == accs[o].shape
                spec.combine(accs[o], ghost_data)
                n_combines += 1
        phase_times["combine"] += time.perf_counter() - t0

        # -- phase 4: output handling ----------------------------------
        t0 = time.perf_counter()
        for k in schedule.outputs_of(t):
            o = int(k)
            if int(problem.output_owner[o]) != rank:
                continue
            assert o in accs, "owner does not hold its own chunk"
            result_q.put(("result", o, spec.output(accs[o])))
        accs.clear()
        phase_times["output"] += time.perf_counter() - t0

    cache_stats = {}
    if routing_cache is not None:
        for key, v in routing_cache.stats().items():
            if key.endswith("_bytes"):
                cache_stats[key] = int(v)
            else:
                cache_stats[key] = int(v) - int(cache_base.get(key, 0))
    stats = {
        "n_reads": n_reads,
        "bytes_read": bytes_read,
        "n_aggregations": n_aggregations,
        "n_combines": n_combines,
        "phase_times": phase_times,
        "cache_stats": cache_stats,
    }
    result_q.put(("done", rank, stats))


# ---------------------------------------------------------------------------
# Parent orchestration
# ---------------------------------------------------------------------------


def execute_parallel(
    plan: QueryPlan,
    chunks: Union[Dataset, ChunkProvider],
    mapping: GridMapping,
    grid: OutputGrid,
    spec: AggregationSpec,
    enforce_memory: bool = False,
    region=None,
    prior: Optional[Callable[[int], np.ndarray]] = None,
    routing_cache: Optional[RoutingCache] = None,
):
    """Execute *plan* with one OS process per virtual processor.

    Same contract and result as ``execute_plan(..., backend=
    "sequential")`` -- bit for bit -- except that race detection is not
    available (each worker asserts plan-authorized access instead) and
    ``phase_times`` reports the per-phase maximum across workers (the
    critical path).  A *routing_cache* is forked copy-on-write into
    each worker: hits still apply per worker, but the parent's cache
    object is not updated; per-worker hit counters are summed into
    ``cache_stats``.

    Requires the ``fork`` start method (POSIX): the chunk provider and
    *prior* callables are inherited, never pickled.
    """
    import multiprocessing
    from multiprocessing import shared_memory

    from repro.runtime.engine import QueryResult, _provider

    problem = plan.problem
    provider = _provider(chunks)
    layout = _Layout(plan, grid, spec, enforce_memory)

    if plan.n_tiles == 0 or problem.n_out == 0:
        return QueryResult(
            strategy=plan.strategy,
            output_ids=np.empty(0, dtype=np.int64),
            chunk_values=[],
            n_tiles=plan.n_tiles,
            n_reads=0,
            bytes_read=0,
            n_combines=0,
            n_aggregations=0,
        )

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        raise RuntimeError(
            "backend='parallel' requires the fork start method (POSIX)"
        ) from None

    shm = shared_memory.SharedMemory(create=True, size=layout.arena_bytes)
    inboxes = [ctx.Queue() for _ in range(problem.n_procs)]
    result_q = ctx.Queue()
    workers = [
        ctx.Process(
            target=_worker,
            args=(
                p, plan, provider, mapping, grid, spec, region, prior,
                routing_cache, layout, shm.name, inboxes, result_q,
            ),
            daemon=True,
        )
        for p in range(problem.n_procs)
    ]
    results: Dict[int, np.ndarray] = {}
    totals = {"n_reads": 0, "bytes_read": 0, "n_aggregations": 0, "n_combines": 0}
    phase_times = {"initialize": 0.0, "reduce": 0.0, "combine": 0.0, "output": 0.0}
    cache_stats: Dict[str, int] = {}
    try:
        for w in workers:
            w.start()
        pending = set(range(problem.n_procs))
        quiet_polls = 0
        while pending:
            try:
                msg = result_q.get(timeout=_PARENT_POLL)
            except queue_mod.Empty:
                dead = [
                    p for p in pending
                    if not workers[p].is_alive() and workers[p].exitcode is not None
                ]
                # A worker that exited without reporting "done" broke the
                # protocol; give the queue a few grace polls in case its
                # final messages are still in flight.
                quiet_polls += 1
                if dead and (
                    quiet_polls >= 10
                    or any(workers[p].exitcode != 0 for p in dead)
                ):
                    raise RuntimeError(
                        f"parallel worker(s) {dead} died without reporting "
                        "(exit codes "
                        f"{[workers[p].exitcode for p in dead]})"
                    )
                continue
            quiet_polls = 0
            kind = msg[0]
            if kind == "result":
                _, o, value = msg
                results[int(o)] = value
            elif kind == "done":
                _, rank, stats = msg
                pending.discard(rank)
                for key in totals:
                    totals[key] += stats[key]
                for key in phase_times:
                    phase_times[key] = max(phase_times[key], stats["phase_times"][key])
                for key, v in stats["cache_stats"].items():
                    if key.endswith("_bytes"):
                        cache_stats[key] = max(cache_stats.get(key, 0), int(v))
                    else:
                        cache_stats[key] = cache_stats.get(key, 0) + int(v)
            elif kind == "error":
                _, rank, tb = msg
                raise RuntimeError(
                    f"parallel worker {rank} failed:\n{tb}"
                )
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unexpected worker message {kind!r}")
        for w in workers:
            w.join(timeout=30)
    finally:
        for w in workers:
            if w.is_alive():
                w.terminate()
        for w in workers:
            w.join(timeout=5)
        for q in inboxes:
            q.close()
        result_q.close()
        shm.close()
        shm.unlink()

    out_global = problem.output_global_ids
    ordered = sorted(results)
    return QueryResult(
        strategy=plan.strategy,
        output_ids=out_global[np.asarray(ordered, dtype=np.int64)]
        if ordered
        else np.empty(0, dtype=np.int64),
        chunk_values=[results[o] for o in ordered],
        n_tiles=plan.n_tiles,
        n_reads=totals["n_reads"],
        bytes_read=totals["bytes_read"],
        n_combines=totals["n_combines"],
        n_aggregations=totals["n_aggregations"],
        race_diagnostics=[],
        phase_times=phase_times,
        cache_stats=cache_stats,
    )
