"""Multiprocess execution backend: virtual processors as OS processes.

The sequential engine (:mod:`repro.runtime.engine`) honors the plan's
data placement inside one address space.  This backend makes the
placement physical: virtual processors run inside forked *worker
hosts*, each with

- its own slice of a :class:`multiprocessing.shared_memory.SharedMemory`
  arena holding the accumulator chunks it is a plan-declared holder of,
- a private inbox :class:`multiprocessing.Queue` per hosted rank over
  which forwarded input segments (the DA communication) and ghost
  accumulator chunks (the FRA/SRA communication) arrive as real IPC,
- plan-authorization asserts on every access: a rank only ever touches
  accumulators it holds, applies edges the plan assigned to it, and
  combines ghosts the plan declares shipped to it.

**Hosting.** A healthy run hosts one rank per OS process.  After a
worker crash, the dead rank's virtual processor is *reassigned*: the
recovery re-execution co-hosts it on a surviving host, which walks the
combined schedule for all its ranks in global order (exactly how the
sequential backend hosts every rank at once).  Messages between
co-hosted ranks still travel their queues, so the message schedule is
identical whatever the hosting.

**Determinism.** Every worker host drives the same
:class:`~repro.runtime.phases.PhaseExecutor` as the sequential engine
-- the phase loop is not transcribed here -- over a
:class:`~repro.runtime.transport.QueueTransport` instead of the
in-process mailbox, and all hosts share one
:class:`~repro.runtime.phases.PhaseSchedule` inherited through fork.
Every rank walks the tile's reads in global read order -- the reader
routes the chunk and forwards per-edge segments, recipients block for
the forward before moving on -- so each accumulator receives exactly
the same floating-point operations in exactly the same order as under
the sequential backend, and results agree **bit for bit**
(``np.array_equal``) regardless of hosting, crashes, or recovery.

**Fault tolerance.** The parent polls worker liveness and per-tile
heartbeat messages.  When a host dies (or a survivor times out waiting
on a dead peer), the parent terminates the attempt, reassigns the dead
ranks to survivors, re-initializes every accumulator from scratch
(initialization is idempotent: phase 1 of every tile overwrites the
arena, so no partial sums from the failed attempt survive), and
re-executes.  Counters and outputs are taken exclusively from the
successful attempt, keeping recovered runs bit-identical to the
sequential backend.  Deterministic fault injection (crashes, dropped
messages, read faults) plugs in via
:class:`repro.faults.FaultInjector`; see ``docs/robustness.md``.

**Deadlock freedom.** Sends never block (unbounded queues); a rank
only blocks waiting for the message of the earliest unprocessed read
(or declared ghost transfer).  A wait chain therefore strictly
decreases in schedule index and must end at a rank that is actively
producing, so global progress is guaranteed; out-of-order arrivals are
stashed by schedule index until their turn.

The backend is selected with ``execute_plan(..., backend="parallel")``.
It requires the ``fork`` start method (the chunk provider and prior
callables are inherited, never pickled), i.e. a POSIX host.
"""

from __future__ import annotations

import queue as queue_mod
import traceback
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.aggregation.functions import AggregationSpec
from repro.aggregation.output_grid import OutputGrid
from repro.dataset.chunk import Chunk
from repro.dataset.dataset import Dataset
from repro.planner.plan import QueryPlan
from repro.runtime.kernels import RoutingCache
from repro.runtime.phases import AccumulatorHost, PhaseExecutor
from repro.runtime.transport import (  # noqa: F401  (CRASH_EXIT_CODE re-export)
    CRASH_EXIT_CODE,
    QueueTransport,
    RecoveryPolicy,
)
from repro.space.mapping import GridMapping
from repro.store.chunk_store import RECOVERABLE_READ_ERRORS

__all__ = ["execute_parallel", "RecoveryPolicy"]

ChunkProvider = Callable[[int], Chunk]

_ALIGN = 64  # worker arena slices are cache-line aligned


@dataclass(frozen=True)
class _WorkerConfig:
    """Per-attempt execution settings inherited by every worker."""

    on_error: str = "raise"
    inbox_timeout: float = 120.0
    injector: Optional[object] = None  # repro.faults.FaultInjector
    prefetch: object = None  # bool | PrefetchPolicy | None
    predicate: object = None  # repro.dataset.predicate.ValuePredicate | None


# ---------------------------------------------------------------------------
# Plan-derived layout (computed once, in the parent, before forking)
# ---------------------------------------------------------------------------


class _Layout:
    """Shared-memory arena layout over the plan's phase schedule.

    Everything here is a pure function of (plan, grid, spec); workers
    inherit it read-only through fork, so parent and every worker agree
    on offsets and message schedules without any further coordination.
    The layout is keyed by *rank*, never by host process, so it is
    invariant under recovery re-hosting.  The schedule itself (per-tile
    orders, forwarding recipients) is ``plan.schedule()`` -- the same
    object the sequential engine and the simulator consume.
    """

    def __init__(
        self, plan: QueryPlan, grid: OutputGrid, spec: AggregationSpec,
        enforce_memory: bool,
    ) -> None:
        problem = plan.problem
        out_global = problem.output_global_ids
        self.schedule = plan.schedule()
        n_procs = problem.n_procs

        # Per (tile, rank): [(local output id, n_cells, byte offset)].
        self.tile_accs: List[List[List[Tuple[int, int, int]]]] = [
            [[] for _ in range(n_procs)] for _ in range(plan.n_tiles)
        ]
        per_tile_bytes = np.zeros((plan.n_tiles, n_procs), dtype=np.int64)
        for t in range(plan.n_tiles):
            for k in self.schedule.outputs_of(t):
                o = int(k)
                n_cells = grid.cells_in_chunk(int(out_global[o]))
                nbytes = spec.acc_bytes(n_cells)
                for p in plan.holders_of(o):
                    p = int(p)
                    offset = int(per_tile_bytes[t, p])
                    self.tile_accs[t][p].append((o, n_cells, offset))
                    per_tile_bytes[t, p] = offset + nbytes
        if enforce_memory:
            over = per_tile_bytes > problem.memory_per_proc[None, :]
            if over.any():
                t, p = map(int, np.argwhere(over)[0])
                raise MemoryError(
                    f"tile {t} needs {int(per_tile_bytes[t, p])} accumulator "
                    f"bytes on processor {p}, over the "
                    f"{int(problem.memory_per_proc[p])}-byte budget -- the "
                    "tiling step should prevent this"
                )

        # Per-rank arena slices (cache-line aligned, >= 1 byte each).
        slice_bytes = per_tile_bytes.max(axis=0) if plan.n_tiles else np.zeros(
            n_procs, dtype=np.int64
        )
        self.slice_starts = np.zeros(n_procs, dtype=np.int64)
        total = 0
        for p in range(n_procs):
            self.slice_starts[p] = total
            total += -(-max(int(slice_bytes[p]), 1) // _ALIGN) * _ALIGN
        self.arena_bytes = max(total, 1)


# ---------------------------------------------------------------------------
# Worker
# ---------------------------------------------------------------------------


def _worker(
    host: int,
    ranks: Tuple[int, ...],
    plan: QueryPlan,
    provider: ChunkProvider,
    mapping: GridMapping,
    grid: OutputGrid,
    spec: AggregationSpec,
    region,
    prior,
    routing_cache: Optional[RoutingCache],
    layout: _Layout,
    shm_name: str,
    inboxes,
    result_q,
    cfg: _WorkerConfig,
) -> None:
    """One worker host executing one or more virtual processors."""
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        _worker_body(
            host, ranks, plan, provider, mapping, grid, spec, region, prior,
            routing_cache, layout, shm, inboxes, result_q, cfg,
        )
    except BaseException as e:
        # Deterministic data errors (corrupt/missing/unreadable chunks
        # under on_error='raise') will recur on a re-execution; process
        # faults (peer timeouts, anything else) are worth a restart.
        retryable = not isinstance(e, RECOVERABLE_READ_ERRORS)
        result_q.put(("error", host, traceback.format_exc(), retryable))
    finally:
        shm.close()


def _worker_body(
    host, ranks, plan, provider, mapping, grid, spec, region, prior,
    routing_cache, layout, shm, inboxes, result_q, cfg,
) -> None:
    """Thin driver: arena views + queue transport around the unified
    :class:`~repro.runtime.phases.PhaseExecutor`."""
    from repro.runtime.engine import _chunk_source

    ranks = tuple(int(p) for p in ranks)
    injector = cfg.injector
    if injector is not None:
        provider = injector.wrap_provider(provider)

    # The cache was forked with the parent's counters baked in; report
    # only this host's delta so the parent can sum across hosts.
    cache_base = routing_cache.stats() if routing_cache is not None else {}

    arena = np.frombuffer(shm.buf, dtype=np.uint8)
    bases = {p: int(layout.slice_starts[p]) for p in ranks}
    offsets = {
        (t, p, o): offset
        for t in range(plan.n_tiles)
        for p in ranks
        for (o, n_cells, offset) in layout.tile_accs[t][p]
    }

    def buffer_for(tile: int, rank: int, o: int, n_cells: int) -> np.ndarray:
        start = bases[rank] + offsets[(tile, rank, o)]
        return (
            arena[start : start + spec.acc_bytes(n_cells)]
            .view(spec.acc_dtype)
            .reshape(n_cells, spec.acc_components)
        )

    accs = AccumulatorHost(spec, ranks, buffer_for=buffer_for)
    transport = QueueTransport(
        host, ranks, inboxes, result_q, cfg.inbox_timeout, injector=injector
    )
    source = _chunk_source(provider, plan, cfg.prefetch, ranks=frozenset(ranks))
    executor = PhaseExecutor(
        plan,
        grid,
        spec,
        mapping,
        source,
        accs,
        transport,
        schedule=layout.schedule,
        region=region,
        prior=prior,
        routing_cache=routing_cache,
        on_error=cfg.on_error,
        predicate=cfg.predicate,
    )
    try:
        executor.run()
    finally:
        source.close()

    cache_stats = {}
    if routing_cache is not None:
        for key, v in routing_cache.stats().items():
            if key.endswith("_bytes"):
                cache_stats[key] = int(v)
            else:
                cache_stats[key] = int(v) - int(cache_base.get(key, 0))
    stats = {
        "n_reads": executor.n_reads,
        "bytes_read": executor.bytes_read,
        "n_aggregations": executor.n_aggregations,
        "n_combines": executor.n_combines,
        "phase_times": executor.phase_times,
        "cache_stats": cache_stats,
        "chunk_errors": executor.chunk_errors,
    }
    result_q.put(("done", host, stats))


# ---------------------------------------------------------------------------
# Parent orchestration
# ---------------------------------------------------------------------------


def _regroup(
    groups: List[List[int]], dead_hosts: Sequence[int]
) -> List[List[int]]:
    """Reassign the ranks of dead hosts to survivors.

    Orphaned ranks are adopted by the first surviving host (lowest
    index); if every host died, one fresh host takes all ranks.  The
    result is deterministic, so a recovered run's hosting -- and hence
    its message schedule -- is reproducible.
    """
    dead = set(dead_hosts)
    survivors = [list(g) for h, g in enumerate(groups) if h not in dead]
    orphaned = sorted(r for h in dead for r in groups[h])
    if not survivors:
        return [orphaned]
    survivors[0] = survivors[0] + orphaned
    return survivors


def execute_parallel(
    plan: QueryPlan,
    chunks: Union[Dataset, ChunkProvider],
    mapping: GridMapping,
    grid: OutputGrid,
    spec: AggregationSpec,
    enforce_memory: bool = False,
    region=None,
    prior: Optional[Callable[[int], np.ndarray]] = None,
    routing_cache: Optional[RoutingCache] = None,
    on_error: str = "raise",
    fault_injector=None,
    recovery: Optional[RecoveryPolicy] = None,
    prefetch=None,
    predicate=None,
):
    """Execute *plan* with the virtual processors as OS processes.

    Same contract and result as ``execute_plan(..., backend=
    "sequential")`` -- bit for bit -- except that race detection is not
    available (each rank asserts plan-authorized access instead) and
    ``phase_times`` reports the per-phase maximum across worker hosts
    (the critical path).  A *routing_cache* is forked copy-on-write
    into each host: hits still apply per host, but the parent's cache
    object is not updated; per-host hit counters are summed into
    ``cache_stats``.

    Fault tolerance: a worker host that dies (or a peer timeout it
    causes) triggers up to ``recovery.max_restarts`` deterministic
    re-executions with the dead ranks reassigned to surviving hosts;
    outputs and counters come exclusively from the successful attempt.
    ``on_error='degrade'`` absorbs unreadable chunks into the result's
    ``chunk_errors`` / ``completeness`` instead of failing the query.
    *fault_injector* (a :class:`repro.faults.FaultInjector`) arms
    deterministic fault injection in the workers' read paths, read
    loops, and IPC sends.

    *prefetch* (a bool or :class:`~repro.store.prefetch.PrefetchPolicy`)
    enables per-host threaded read-ahead: each worker prefetches only
    the reads its hosted ranks perform, in placement order, through
    its own fully-wrapped provider (cache, retry, fault injection), so
    injected read faults surface identically to the synchronous path.

    Requires the ``fork`` start method (POSIX): the chunk provider and
    *prior* callables are inherited, never pickled.
    """
    import multiprocessing
    from multiprocessing import shared_memory

    from repro.runtime.engine import QueryResult, _provider

    if recovery is None:
        recovery = RecoveryPolicy()
    problem = plan.problem
    provider = _provider(chunks)
    layout = _Layout(plan, grid, spec, enforce_memory)

    if plan.n_tiles == 0 or problem.n_out == 0:
        return QueryResult(
            strategy=plan.strategy,
            output_ids=np.empty(0, dtype=np.int64),
            chunk_values=[],
            n_tiles=plan.n_tiles,
            n_reads=0,
            bytes_read=0,
            n_combines=0,
            n_aggregations=0,
            chunks_pruned=problem.n_pruned,
            bytes_pruned=problem.pruned_bytes,
        )

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        raise RuntimeError(
            "backend='parallel' requires the fork start method (POSIX)"
        ) from None

    cfg = _WorkerConfig(
        on_error=on_error,
        inbox_timeout=recovery.inbox_timeout,
        injector=fault_injector,
        prefetch=prefetch,
        predicate=predicate,
    )
    groups: List[List[int]] = [[p] for p in range(problem.n_procs)]
    shm = shared_memory.SharedMemory(create=True, size=layout.arena_bytes)

    results: Dict[int, np.ndarray] = {}
    totals = {"n_reads": 0, "bytes_read": 0, "n_aggregations": 0, "n_combines": 0}
    phase_times = {"initialize": 0.0, "reduce": 0.0, "combine": 0.0, "output": 0.0}
    cache_stats: Dict[str, int] = {}
    chunk_errors: Dict[int, str] = {}

    try:
        attempt = 0
        restarts_left = recovery.max_restarts
        while True:
            if fault_injector is not None:
                fault_injector.attempt = attempt
            # Fresh queues per attempt: messages of a failed attempt
            # must never leak into its re-execution.
            inboxes = [ctx.Queue() for _ in range(problem.n_procs)]
            result_q = ctx.Queue()
            workers = [
                ctx.Process(
                    target=_worker,
                    args=(
                        h, tuple(group), plan, provider, mapping, grid, spec,
                        region, prior, routing_cache, layout, shm.name,
                        inboxes, result_q, cfg,
                    ),
                    daemon=True,
                )
                for h, group in enumerate(groups)
            ]
            # Per-attempt tallies: only the successful attempt counts,
            # keeping recovered counters identical to a clean run.
            results.clear()
            for key in totals:
                totals[key] = 0
            for key in phase_times:
                phase_times[key] = 0.0
            cache_stats.clear()
            chunk_errors.clear()

            failed: Optional[str] = None
            fatal: Optional[str] = None
            dead_hosts: List[int] = []
            try:
                for w in workers:
                    w.start()
                pending = set(range(len(groups)))
                quiet_polls = 0
                while pending:
                    try:
                        msg = result_q.get(timeout=recovery.poll_interval)
                    except queue_mod.Empty:
                        dead = [
                            h for h in pending
                            if not workers[h].is_alive()
                            and workers[h].exitcode is not None
                        ]
                        # A worker that exited 0 without reporting
                        # "done" broke the protocol; give the queue a
                        # few grace polls in case its final messages
                        # are still in flight.  Nonzero exits are
                        # immediate failures.
                        quiet_polls += 1
                        if dead and (
                            quiet_polls >= recovery.grace_polls
                            or any(workers[h].exitcode != 0 for h in dead)
                        ):
                            dead_hosts = dead
                            failed = (
                                f"worker host(s) {dead} died without reporting "
                                f"(exit codes "
                                f"{[workers[h].exitcode for h in dead]})"
                            )
                            break
                        continue
                    quiet_polls = 0
                    kind = msg[0]
                    if kind == "result":
                        _, o, value = msg
                        results[int(o)] = value
                    elif kind == "tile":
                        pass  # heartbeat: progress noted, quiet_polls reset
                    elif kind == "done":
                        _, h, stats = msg
                        pending.discard(h)
                        for key in totals:
                            totals[key] += stats[key]
                        for key in phase_times:
                            phase_times[key] = max(
                                phase_times[key], stats["phase_times"][key]
                            )
                        for key, v in stats["cache_stats"].items():
                            if key.endswith("_bytes"):
                                cache_stats[key] = max(
                                    cache_stats.get(key, 0), int(v)
                                )
                            else:
                                cache_stats[key] = cache_stats.get(key, 0) + int(v)
                        for gid, err in stats["chunk_errors"].items():
                            chunk_errors.setdefault(int(gid), err)
                    elif kind == "error":
                        _, h, tb, retryable = msg
                        dead_hosts = [
                            x for x in pending
                            if workers[x].exitcode not in (None, 0)
                        ]
                        if retryable:
                            failed = f"worker host {h} failed:\n{tb}"
                        else:
                            fatal = f"parallel worker host {h} failed:\n{tb}"
                        break
                    else:  # pragma: no cover - defensive
                        raise RuntimeError(f"unexpected worker message {kind!r}")
                if failed is None and fatal is None:
                    for w in workers:
                        w.join(timeout=30)
            finally:
                for w in workers:
                    if w.is_alive():
                        w.terminate()
                for w in workers:
                    w.join(timeout=5)
                for w in workers:
                    if w.is_alive():  # pragma: no cover - stuck worker
                        w.kill()
                        w.join(timeout=5)
                for q in inboxes:
                    q.close()
                result_q.close()
            if fatal is not None:
                raise RuntimeError(fatal)
            if failed is None:
                break  # attempt succeeded
            if restarts_left <= 0:
                raise RuntimeError(
                    f"parallel execution failed after "
                    f"{recovery.max_restarts} restart(s); last failure: "
                    f"{failed}"
                )
            restarts_left -= 1
            attempt += 1
            groups = _regroup(groups, dead_hosts)
    finally:
        shm.close()
        shm.unlink()

    out_global = problem.output_global_ids
    ordered = sorted(results)
    n_in = max(problem.n_in, 1)
    return QueryResult(
        strategy=plan.strategy,
        output_ids=out_global[np.asarray(ordered, dtype=np.int64)]
        if ordered
        else np.empty(0, dtype=np.int64),
        chunk_values=[results[o] for o in ordered],
        n_tiles=plan.n_tiles,
        n_reads=totals["n_reads"],
        bytes_read=totals["bytes_read"],
        n_combines=totals["n_combines"],
        n_aggregations=totals["n_aggregations"],
        race_diagnostics=[],
        phase_times=phase_times,
        cache_stats=cache_stats,
        chunk_errors=dict(sorted(chunk_errors.items())),
        completeness=1.0 - len(chunk_errors) / n_in,
        chunks_pruned=problem.n_pruned,
        bytes_pruned=problem.pruned_bytes,
    )
