"""Multiprocess execution backend: virtual processors as OS processes.

The sequential engine (:mod:`repro.runtime.engine`) honors the plan's
data placement inside one address space.  This backend makes the
placement physical: virtual processors run inside forked *worker
hosts*, each with

- its own slice of a :class:`multiprocessing.shared_memory.SharedMemory`
  arena holding the accumulator chunks it is a plan-declared holder of,
- a private inbox :class:`multiprocessing.Queue` per hosted rank over
  which forwarded input segments (the DA communication) and ghost
  accumulator chunks (the FRA/SRA communication) arrive as real IPC,
- plan-authorization asserts on every access: a rank only ever touches
  accumulators it holds, applies edges the plan assigned to it, and
  combines ghosts the plan declares shipped to it.

**Hosting.** A healthy run hosts one rank per OS process.  After a
worker crash, the dead rank's virtual processor is *reassigned*: the
recovery re-execution co-hosts it on a surviving host, which walks the
combined schedule for all its ranks in global order (exactly how the
sequential backend hosts every rank at once).  Messages between
co-hosted ranks still travel their queues, so the message schedule is
identical whatever the hosting.

**Determinism.** Both backends share the fused kernels of
:mod:`repro.runtime.kernels` and iterate the same
:func:`~repro.runtime.kernels.tile_schedule`: every rank walks the
tile's reads in global read order -- the reader routes the chunk and
forwards per-edge segments, recipients block for the forward before
moving on -- so each accumulator receives exactly the same floating-
point operations in exactly the same order as under the sequential
backend, and results agree **bit for bit** (``np.array_equal``)
regardless of hosting, crashes, or recovery.

**Fault tolerance.** The parent polls worker liveness and per-tile
heartbeat messages.  When a host dies (or a survivor times out waiting
on a dead peer), the parent terminates the attempt, reassigns the dead
ranks to survivors, re-initializes every accumulator from scratch
(initialization is idempotent: phase 1 of every tile overwrites the
arena, so no partial sums from the failed attempt survive), and
re-executes.  Counters and outputs are taken exclusively from the
successful attempt, keeping recovered runs bit-identical to the
sequential backend.  Deterministic fault injection (crashes, dropped
messages, read faults) plugs in via
:class:`repro.faults.FaultInjector`; see ``docs/robustness.md``.

**Deadlock freedom.** Sends never block (unbounded queues); a rank
only blocks waiting for the message of the earliest unprocessed read
(or declared ghost transfer).  A wait chain therefore strictly
decreases in schedule index and must end at a rank that is actively
producing, so global progress is guaranteed; out-of-order arrivals are
stashed by schedule index until their turn.

The backend is selected with ``execute_plan(..., backend="parallel")``.
It requires the ``fork`` start method (the chunk provider and prior
callables are inherited, never pickled), i.e. a POSIX host.
"""

from __future__ import annotations

import os
import queue as queue_mod
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.aggregation.functions import AggregationSpec
from repro.aggregation.output_grid import OutputGrid
from repro.dataset.chunk import Chunk
from repro.dataset.dataset import Dataset
from repro.planner.plan import QueryPlan
from repro.runtime.kernels import (
    RoutingCache,
    coerce_values,
    grid_indexer,
    group_read,
    route_chunk,
    tile_schedule,
)
from repro.space.mapping import GridMapping
from repro.store.chunk_store import RECOVERABLE_READ_ERRORS

__all__ = ["execute_parallel", "RecoveryPolicy"]

ChunkProvider = Callable[[int], Chunk]

_ALIGN = 64  # worker arena slices are cache-line aligned

#: Exit code of an injected hard crash (``os._exit``), distinguishable
#: from clean exits (0) and signal deaths (negative) in diagnostics.
CRASH_EXIT_CODE = 3


@dataclass(frozen=True)
class RecoveryPolicy:
    """Worker-crash detection and recovery knobs.

    The parent detects failure two ways: a worker process that exited
    without reporting completion (liveness polling every
    ``poll_interval`` seconds, with ``grace_polls`` quiet polls of
    slack for in-flight final messages of a cleanly-exited worker),
    and a surviving worker reporting a peer timeout after waiting
    ``inbox_timeout`` seconds on its inbox.  Each failure consumes one
    of ``max_restarts`` re-executions; with ``max_restarts=0`` any
    worker death is immediately fatal (the pre-recovery behavior).
    """

    max_restarts: int = 2
    #: seconds a rank waits on its inbox before concluding a peer died
    inbox_timeout: float = 120.0
    #: seconds between parent liveness checks
    poll_interval: float = 0.5
    #: quiet polls tolerated for a zero-exit worker's final messages
    grace_polls: int = 10


@dataclass(frozen=True)
class _WorkerConfig:
    """Per-attempt execution settings inherited by every worker."""

    on_error: str = "raise"
    inbox_timeout: float = 120.0
    injector: Optional[object] = None  # repro.faults.FaultInjector


# ---------------------------------------------------------------------------
# Plan-derived layout (computed once, in the parent, before forking)
# ---------------------------------------------------------------------------


class _Layout:
    """Shared-memory arena layout + per-read forwarding expectations.

    Everything here is a pure function of (plan, grid, spec); workers
    inherit it read-only through fork, so parent and every worker agree
    on offsets and message schedules without any further coordination.
    The layout is keyed by *rank*, never by host process, so it is
    invariant under recovery re-hosting.
    """

    def __init__(
        self, plan: QueryPlan, grid: OutputGrid, spec: AggregationSpec,
        enforce_memory: bool,
    ) -> None:
        problem = plan.problem
        out_global = problem.output_global_ids
        self.schedule = tile_schedule(plan)
        n_procs = problem.n_procs

        # Per (tile, rank): [(local output id, n_cells, byte offset)].
        self.tile_accs: List[List[List[Tuple[int, int, int]]]] = [
            [[] for _ in range(n_procs)] for _ in range(plan.n_tiles)
        ]
        per_tile_bytes = np.zeros((plan.n_tiles, n_procs), dtype=np.int64)
        for t in range(plan.n_tiles):
            for k in self.schedule.outputs_of(t):
                o = int(k)
                n_cells = grid.cells_in_chunk(int(out_global[o]))
                nbytes = spec.acc_bytes(n_cells)
                for p in plan.holders_of(o):
                    p = int(p)
                    offset = int(per_tile_bytes[t, p])
                    self.tile_accs[t][p].append((o, n_cells, offset))
                    per_tile_bytes[t, p] = offset + nbytes
        if enforce_memory:
            over = per_tile_bytes > problem.memory_per_proc[None, :]
            if over.any():
                t, p = map(int, np.argwhere(over)[0])
                raise MemoryError(
                    f"tile {t} needs {int(per_tile_bytes[t, p])} accumulator "
                    f"bytes on processor {p}, over the "
                    f"{int(problem.memory_per_proc[p])}-byte budget -- the "
                    "tiling step should prevent this"
                )

        # Per-rank arena slices (cache-line aligned, >= 1 byte each).
        slice_bytes = per_tile_bytes.max(axis=0) if plan.n_tiles else np.zeros(
            n_procs, dtype=np.int64
        )
        self.slice_starts = np.zeros(n_procs, dtype=np.int64)
        total = 0
        for p in range(n_procs):
            self.slice_starts[p] = total
            total += -(-max(int(slice_bytes[p]), 1) // _ALIGN) * _ALIGN
        self.arena_bytes = max(total, 1)

        # Per read: which ranks (beyond the reader) get a forwarded
        # segment message.  Derived from the plan's edge assignment
        # restricted to the read's tile, so sender and receivers agree
        # on the message schedule even for reads that map no items.
        fwd_indptr, fwd_ids = problem.graph.forward_csr
        reads = plan.reads
        self.recipients: List[np.ndarray] = []
        for r in range(len(reads)):
            i = int(reads.chunk[r])
            t = int(reads.tile[r])
            lo, hi = fwd_indptr[i], fwd_indptr[i + 1]
            active = plan.tile_of_output[fwd_ids[lo:hi]] == t
            procs = np.unique(plan.edge_proc[lo:hi][active])
            self.recipients.append(procs[procs != int(reads.proc[r])])


# ---------------------------------------------------------------------------
# Worker
# ---------------------------------------------------------------------------


class _Inbox:
    """Ordered receive over an unordered queue: messages are keyed by
    schedule position and stashed until their turn comes."""

    def __init__(self, q, timeout: float) -> None:
        self._q = q
        self._timeout = timeout
        self._stash: Dict[tuple, object] = {}

    def expect(self, key: tuple):
        while key not in self._stash:
            try:
                got_key, payload = self._q.get(timeout=self._timeout)
            except queue_mod.Empty:
                raise RuntimeError(
                    f"worker timed out waiting for message {key!r}; a peer "
                    "processor likely died or its message was lost"
                ) from None
            self._stash[got_key] = payload
        return self._stash.pop(key)


def _worker(
    host: int,
    ranks: Tuple[int, ...],
    plan: QueryPlan,
    provider: ChunkProvider,
    mapping: GridMapping,
    grid: OutputGrid,
    spec: AggregationSpec,
    region,
    prior,
    routing_cache: Optional[RoutingCache],
    layout: _Layout,
    shm_name: str,
    inboxes,
    result_q,
    cfg: _WorkerConfig,
) -> None:
    """One worker host executing one or more virtual processors."""
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        _worker_body(
            host, ranks, plan, provider, mapping, grid, spec, region, prior,
            routing_cache, layout, shm, inboxes, result_q, cfg,
        )
    except BaseException as e:
        # Deterministic data errors (corrupt/missing/unreadable chunks
        # under on_error='raise') will recur on a re-execution; process
        # faults (peer timeouts, anything else) are worth a restart.
        retryable = not isinstance(e, RECOVERABLE_READ_ERRORS)
        result_q.put(("error", host, traceback.format_exc(), retryable))
    finally:
        shm.close()


def _worker_body(
    host, ranks, plan, provider, mapping, grid, spec, region, prior,
    routing_cache, layout, shm, inboxes, result_q, cfg,
) -> None:
    problem = plan.problem
    in_global = problem.input_global_ids
    out_global = problem.output_global_ids
    schedule = layout.schedule
    indexer = grid_indexer(grid)
    reads = plan.reads
    gt = plan.ghost_transfers
    fwd_indptr, fwd_ids = problem.graph.forward_csr

    ranks = tuple(int(p) for p in ranks)
    rank_set = frozenset(ranks)
    inbox = {p: _Inbox(inboxes[p], cfg.inbox_timeout) for p in ranks}
    injector = cfg.injector
    if injector is not None:
        provider = injector.wrap_provider(provider)

    sel_map = np.full(grid.n_chunks, -1, dtype=np.int64)
    sel_map[out_global] = np.arange(problem.n_out)

    # The cache was forked with the parent's counters baked in; report
    # only this host's delta so the parent can sum across hosts.
    cache_base = routing_cache.stats() if routing_cache is not None else {}

    arena = np.frombuffer(shm.buf, dtype=np.uint8)
    bases = {p: int(layout.slice_starts[p]) for p in ranks}

    n_reads = 0
    bytes_read = 0
    n_aggregations = 0
    n_combines = 0
    reads_seen = {p: 0 for p in ranks}
    chunk_errors: Dict[int, str] = {}
    phase_times = {"initialize": 0.0, "reduce": 0.0, "combine": 0.0, "output": 0.0}

    def edge_proc_of(i: int, o: int) -> int:
        lo, hi = fwd_indptr[i], fwd_indptr[i + 1]
        edges_out = fwd_ids[lo:hi]
        pos = np.searchsorted(edges_out, o)
        if pos >= len(edges_out) or edges_out[pos] != o:
            raise AssertionError(
                f"items of input chunk {i} land in output chunk {o} "
                "but the chunk graph has no such edge -- the graph "
                "must be a superset of the item-level mapping"
            )
        return int(plan.edge_proc[lo + pos])

    for t in range(plan.n_tiles):
        # -- phase 1: initialization (arena views, idempotent) ---------
        t0 = time.perf_counter()
        accs: Dict[int, Dict[int, np.ndarray]] = {p: {} for p in ranks}
        for p in ranks:
            for o, n_cells, offset in layout.tile_accs[t][p]:
                assert p in plan.holders_of(o), "not a plan-declared holder"
                start = bases[p] + offset
                acc = arena[start : start + spec.acc_bytes(n_cells)].view(
                    spec.acc_dtype
                ).reshape(n_cells, spec.acc_components)
                spec.initialize_into(acc)
                if problem.init_from_output and prior is not None:
                    owner = int(problem.output_owner[o])
                    if p == owner or spec.idempotent:
                        prior_vals = prior(int(out_global[o]))
                        if prior_vals is not None:
                            acc[:] = spec.initialize_from(prior_vals)
                accs[p][o] = acc
        phase_times["initialize"] += time.perf_counter() - t0

        # -- phase 2: local reduction (global read order) --------------
        t0 = time.perf_counter()
        for r in schedule.reads_of(t):
            r = int(r)
            reader = int(reads.proc[r])
            recipients = layout.recipients[r]
            if reader in rank_set:
                if injector is not None and injector.should_crash(
                    reader, reads_seen[reader]
                ):
                    # A hard crash: no cleanup, no goodbye message --
                    # the parent's liveness polling must catch it.
                    os._exit(CRASH_EXIT_CODE)
                reads_seen[reader] += 1
                i = int(reads.chunk[r])
                gid = int(in_global[i])
                chunk = None
                try:
                    chunk = provider(gid)
                except RECOVERABLE_READ_ERRORS as e:
                    if cfg.on_error != "degrade":
                        raise
                    chunk_errors.setdefault(gid, f"{type(e).__name__}: {e}")
                segs = None
                if chunk is not None:
                    n_reads += 1
                    bytes_read += int(problem.inputs.nbytes[i])
                    item_idx, cells = route_chunk(
                        chunk, mapping, grid, region,
                        cache=routing_cache, chunk_id=gid,
                    )
                    if len(cells):
                        values = coerce_values(chunk.values, spec.value_components)
                        segs = group_read(
                            item_idx, cells, values, grid, sel_map,
                            plan.tile_of_output, t, indexer,
                        )
                # Partition segments by assigned processor; apply own,
                # forward the rest (the DA communication), keeping the
                # ascending-segment order everywhere.  Duplicate cells
                # are pre-reduced read-wide first (when the aggregation
                # supports it), so forwarded segments ship one row per
                # distinct cell and both sides apply one fancy-indexed
                # scatter per segment -- the same arithmetic, in the
                # same order, as the sequential backend.  A degraded
                # (unreadable) chunk still ships its (empty) messages,
                # so the cross-rank message schedule never skews.
                outbound: Dict[int, list] = {int(q): [] for q in recipients}
                if segs is not None:
                    reduced = spec.prereduce_groups(segs.values, segs.group_starts)
                    gflat = (
                        segs.flat[segs.group_starts] if reduced is not None else None
                    )
                    gb = segs.group_bounds
                    for k in range(len(segs.seg_out)):
                        o = int(segs.seg_out[k])
                        q = edge_proc_of(i, o)
                        if q == reader:
                            assert o in accs[reader], (
                                "reader aggregating into chunk it does not hold"
                            )
                            if reduced is None:
                                s, e = segs.starts[k], segs.ends[k]
                                spec.aggregate_grouped(
                                    accs[reader][o], segs.flat[s:e], segs.values[s:e]
                                )
                            else:
                                spec.scatter_groups(
                                    accs[reader][o],
                                    gflat[gb[k] : gb[k + 1]],
                                    reduced[gb[k] : gb[k + 1]],
                                )
                            n_aggregations += 1
                        elif reduced is None:
                            s, e = segs.starts[k], segs.ends[k]
                            outbound[q].append(
                                ("raw", o, np.ascontiguousarray(segs.flat[s:e]),
                                 np.ascontiguousarray(segs.values[s:e]))
                            )
                        else:
                            outbound[q].append(
                                ("red", o,
                                 np.ascontiguousarray(gflat[gb[k] : gb[k + 1]]),
                                 np.ascontiguousarray(reduced[gb[k] : gb[k + 1]]))
                            )
                for q in recipients:
                    if injector is not None and injector.should_drop("seg", r):
                        continue
                    inboxes[int(q)].put((("seg", t, r), outbound[int(q)]))
            for q in recipients:
                q = int(q)
                if q not in rank_set:
                    continue
                segments = inbox[q].expect(("seg", t, r))
                i = int(reads.chunk[r])
                for kind, o, cell_idx, payload in segments:
                    assert edge_proc_of(i, o) == q, (
                        "forwarded segment for an edge the plan did not "
                        "assign to this processor"
                    )
                    assert o in accs[q], (
                        "segment for a chunk this rank does not hold"
                    )
                    if kind == "red":
                        spec.scatter_groups(accs[q][o], cell_idx, payload)
                    else:
                        spec.aggregate_grouped(accs[q][o], cell_idx, payload)
                    n_aggregations += 1
        phase_times["reduce"] += time.perf_counter() - t0

        # -- phase 3: global combine (declared transfer order) ---------
        t0 = time.perf_counter()
        for g in schedule.transfers_of(t):
            g = int(g)
            o = int(gt.chunk[g])
            src, dst = int(gt.src[g]), int(gt.dst[g])
            if src in rank_set:
                assert o in accs[src], "shipping a ghost this rank does not hold"
                # Copy before put: Queue serializes in a feeder thread,
                # and the arena view is recycled next tile.
                if not (
                    injector is not None and injector.should_drop("ghost", g)
                ):
                    inboxes[dst].put((("ghost", t, g), accs[src][o].copy()))
            if dst in rank_set:
                ghost_data = inbox[dst].expect(("ghost", t, g))
                assert int(problem.output_owner[o]) == dst, (
                    "ghost shipped to a non-owner"
                )
                assert o in accs[dst] and ghost_data.shape == accs[dst][o].shape
                spec.combine(accs[dst][o], ghost_data)
                n_combines += 1
        phase_times["combine"] += time.perf_counter() - t0

        # -- phase 4: output handling ----------------------------------
        t0 = time.perf_counter()
        for k in schedule.outputs_of(t):
            o = int(k)
            owner = int(problem.output_owner[o])
            if owner not in rank_set:
                continue
            assert o in accs[owner], "owner does not hold its own chunk"
            result_q.put(("result", o, spec.output(accs[owner][o])))
        accs.clear()
        phase_times["output"] += time.perf_counter() - t0
        # Per-tile heartbeat: progress signal for the parent's
        # liveness/stall tracking.
        result_q.put(("tile", host, t))

    cache_stats = {}
    if routing_cache is not None:
        for key, v in routing_cache.stats().items():
            if key.endswith("_bytes"):
                cache_stats[key] = int(v)
            else:
                cache_stats[key] = int(v) - int(cache_base.get(key, 0))
    stats = {
        "n_reads": n_reads,
        "bytes_read": bytes_read,
        "n_aggregations": n_aggregations,
        "n_combines": n_combines,
        "phase_times": phase_times,
        "cache_stats": cache_stats,
        "chunk_errors": chunk_errors,
    }
    result_q.put(("done", host, stats))


# ---------------------------------------------------------------------------
# Parent orchestration
# ---------------------------------------------------------------------------


def _regroup(
    groups: List[List[int]], dead_hosts: Sequence[int]
) -> List[List[int]]:
    """Reassign the ranks of dead hosts to survivors.

    Orphaned ranks are adopted by the first surviving host (lowest
    index); if every host died, one fresh host takes all ranks.  The
    result is deterministic, so a recovered run's hosting -- and hence
    its message schedule -- is reproducible.
    """
    dead = set(dead_hosts)
    survivors = [list(g) for h, g in enumerate(groups) if h not in dead]
    orphaned = sorted(r for h in dead for r in groups[h])
    if not survivors:
        return [orphaned]
    survivors[0] = survivors[0] + orphaned
    return survivors


def execute_parallel(
    plan: QueryPlan,
    chunks: Union[Dataset, ChunkProvider],
    mapping: GridMapping,
    grid: OutputGrid,
    spec: AggregationSpec,
    enforce_memory: bool = False,
    region=None,
    prior: Optional[Callable[[int], np.ndarray]] = None,
    routing_cache: Optional[RoutingCache] = None,
    on_error: str = "raise",
    fault_injector=None,
    recovery: Optional[RecoveryPolicy] = None,
):
    """Execute *plan* with the virtual processors as OS processes.

    Same contract and result as ``execute_plan(..., backend=
    "sequential")`` -- bit for bit -- except that race detection is not
    available (each rank asserts plan-authorized access instead) and
    ``phase_times`` reports the per-phase maximum across worker hosts
    (the critical path).  A *routing_cache* is forked copy-on-write
    into each host: hits still apply per host, but the parent's cache
    object is not updated; per-host hit counters are summed into
    ``cache_stats``.

    Fault tolerance: a worker host that dies (or a peer timeout it
    causes) triggers up to ``recovery.max_restarts`` deterministic
    re-executions with the dead ranks reassigned to surviving hosts;
    outputs and counters come exclusively from the successful attempt.
    ``on_error='degrade'`` absorbs unreadable chunks into the result's
    ``chunk_errors`` / ``completeness`` instead of failing the query.
    *fault_injector* (a :class:`repro.faults.FaultInjector`) arms
    deterministic fault injection in the workers' read paths, read
    loops, and IPC sends.

    Requires the ``fork`` start method (POSIX): the chunk provider and
    *prior* callables are inherited, never pickled.
    """
    import multiprocessing
    from multiprocessing import shared_memory

    from repro.runtime.engine import QueryResult, _provider

    if recovery is None:
        recovery = RecoveryPolicy()
    problem = plan.problem
    provider = _provider(chunks)
    layout = _Layout(plan, grid, spec, enforce_memory)

    if plan.n_tiles == 0 or problem.n_out == 0:
        return QueryResult(
            strategy=plan.strategy,
            output_ids=np.empty(0, dtype=np.int64),
            chunk_values=[],
            n_tiles=plan.n_tiles,
            n_reads=0,
            bytes_read=0,
            n_combines=0,
            n_aggregations=0,
        )

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        raise RuntimeError(
            "backend='parallel' requires the fork start method (POSIX)"
        ) from None

    cfg = _WorkerConfig(
        on_error=on_error,
        inbox_timeout=recovery.inbox_timeout,
        injector=fault_injector,
    )
    groups: List[List[int]] = [[p] for p in range(problem.n_procs)]
    shm = shared_memory.SharedMemory(create=True, size=layout.arena_bytes)

    results: Dict[int, np.ndarray] = {}
    totals = {"n_reads": 0, "bytes_read": 0, "n_aggregations": 0, "n_combines": 0}
    phase_times = {"initialize": 0.0, "reduce": 0.0, "combine": 0.0, "output": 0.0}
    cache_stats: Dict[str, int] = {}
    chunk_errors: Dict[int, str] = {}

    try:
        attempt = 0
        restarts_left = recovery.max_restarts
        while True:
            if fault_injector is not None:
                fault_injector.attempt = attempt
            # Fresh queues per attempt: messages of a failed attempt
            # must never leak into its re-execution.
            inboxes = [ctx.Queue() for _ in range(problem.n_procs)]
            result_q = ctx.Queue()
            workers = [
                ctx.Process(
                    target=_worker,
                    args=(
                        h, tuple(group), plan, provider, mapping, grid, spec,
                        region, prior, routing_cache, layout, shm.name,
                        inboxes, result_q, cfg,
                    ),
                    daemon=True,
                )
                for h, group in enumerate(groups)
            ]
            # Per-attempt tallies: only the successful attempt counts,
            # keeping recovered counters identical to a clean run.
            results.clear()
            for key in totals:
                totals[key] = 0
            for key in phase_times:
                phase_times[key] = 0.0
            cache_stats.clear()
            chunk_errors.clear()

            failed: Optional[str] = None
            fatal: Optional[str] = None
            dead_hosts: List[int] = []
            try:
                for w in workers:
                    w.start()
                pending = set(range(len(groups)))
                quiet_polls = 0
                while pending:
                    try:
                        msg = result_q.get(timeout=recovery.poll_interval)
                    except queue_mod.Empty:
                        dead = [
                            h for h in pending
                            if not workers[h].is_alive()
                            and workers[h].exitcode is not None
                        ]
                        # A worker that exited 0 without reporting
                        # "done" broke the protocol; give the queue a
                        # few grace polls in case its final messages
                        # are still in flight.  Nonzero exits are
                        # immediate failures.
                        quiet_polls += 1
                        if dead and (
                            quiet_polls >= recovery.grace_polls
                            or any(workers[h].exitcode != 0 for h in dead)
                        ):
                            dead_hosts = dead
                            failed = (
                                f"worker host(s) {dead} died without reporting "
                                f"(exit codes "
                                f"{[workers[h].exitcode for h in dead]})"
                            )
                            break
                        continue
                    quiet_polls = 0
                    kind = msg[0]
                    if kind == "result":
                        _, o, value = msg
                        results[int(o)] = value
                    elif kind == "tile":
                        pass  # heartbeat: progress noted, quiet_polls reset
                    elif kind == "done":
                        _, h, stats = msg
                        pending.discard(h)
                        for key in totals:
                            totals[key] += stats[key]
                        for key in phase_times:
                            phase_times[key] = max(
                                phase_times[key], stats["phase_times"][key]
                            )
                        for key, v in stats["cache_stats"].items():
                            if key.endswith("_bytes"):
                                cache_stats[key] = max(
                                    cache_stats.get(key, 0), int(v)
                                )
                            else:
                                cache_stats[key] = cache_stats.get(key, 0) + int(v)
                        for gid, err in stats["chunk_errors"].items():
                            chunk_errors.setdefault(int(gid), err)
                    elif kind == "error":
                        _, h, tb, retryable = msg
                        dead_hosts = [
                            x for x in pending
                            if workers[x].exitcode not in (None, 0)
                        ]
                        if retryable:
                            failed = f"worker host {h} failed:\n{tb}"
                        else:
                            fatal = f"parallel worker host {h} failed:\n{tb}"
                        break
                    else:  # pragma: no cover - defensive
                        raise RuntimeError(f"unexpected worker message {kind!r}")
                if failed is None and fatal is None:
                    for w in workers:
                        w.join(timeout=30)
            finally:
                for w in workers:
                    if w.is_alive():
                        w.terminate()
                for w in workers:
                    w.join(timeout=5)
                for w in workers:
                    if w.is_alive():  # pragma: no cover - stuck worker
                        w.kill()
                        w.join(timeout=5)
                for q in inboxes:
                    q.close()
                result_q.close()
            if fatal is not None:
                raise RuntimeError(fatal)
            if failed is None:
                break  # attempt succeeded
            if restarts_left <= 0:
                raise RuntimeError(
                    f"parallel execution failed after "
                    f"{recovery.max_restarts} restart(s); last failure: "
                    f"{failed}"
                )
            restarts_left -= 1
            attempt += 1
            groups = _regroup(groups, dead_hosts)
    finally:
        shm.close()
        shm.unlink()

    out_global = problem.output_global_ids
    ordered = sorted(results)
    n_in = max(problem.n_in, 1)
    return QueryResult(
        strategy=plan.strategy,
        output_ids=out_global[np.asarray(ordered, dtype=np.int64)]
        if ordered
        else np.empty(0, dtype=np.int64),
        chunk_values=[results[o] for o in ordered],
        n_tiles=plan.n_tiles,
        n_reads=totals["n_reads"],
        bytes_read=totals["bytes_read"],
        n_combines=totals["n_combines"],
        n_aggregations=totals["n_aggregations"],
        race_diagnostics=[],
        phase_times=phase_times,
        cache_stats=cache_stats,
        chunk_errors=dict(sorted(chunk_errors.items())),
        completeness=1.0 - len(chunk_errors) / n_in,
    )
