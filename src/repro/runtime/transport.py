"""Transport abstraction for the unified phase executor.

The per-tile four-phase loop (:mod:`repro.runtime.phases`) is the same
computation whether the virtual processors share one address space or
run as forked worker hosts; what differs is how a forwarded input
segment, a ghost accumulator chunk, or a finished output chunk travels
between them.  :class:`Transport` captures exactly that surface:

- :class:`InprocTransport` backs the sequential engine.  Sends park
  the payload in an in-process mailbox (by reference -- sender and
  receiver share the address space) and the matching receive pops it
  within the same schedule step, so the "communication" costs one dict
  operation and results accumulate in :attr:`InprocTransport.results`.
- :class:`QueueTransport` backs the multiprocess backend.  Sends go
  over per-rank :class:`multiprocessing.Queue` inboxes exactly as
  before the refactor: ordered receive via :class:`_Inbox` stashing,
  ghost payloads copied before the feeder thread serializes them,
  results and per-tile heartbeats posted to the parent's result
  queue, and deterministic fault injection (worker crashes before a
  scheduled read, dropped messages at the send) consulted at the
  transport boundary.

Both transports deliver byte-identical payloads in the identical
schedule order, which is what keeps the backends bit-for-bit equal.

:class:`RecoveryPolicy` lives here too: crash detection and restart
budgets are properties of the transport layer (the in-process
transport cannot lose a worker), though
:mod:`repro.runtime.parallel` re-exports it for compatibility.
"""

from __future__ import annotations

import os
import queue as queue_mod
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

__all__ = [
    "CRASH_EXIT_CODE",
    "InprocTransport",
    "QueueTransport",
    "RecoveryPolicy",
    "Transport",
    "message_key",
]

#: Exit code of an injected hard crash (``os._exit``), distinguishable
#: from clean exits (0) and signal deaths (negative) in diagnostics.
CRASH_EXIT_CODE = 3


def message_key(kind: str, tile: int, index: int) -> tuple:
    """The schedule key a payload travels under.

    *kind* is ``"seg"`` (forwarded reduction segments, *index* = read
    index) or ``"ghost"`` (shipped ghost accumulators, *index* =
    transfer index).  Both transports address messages by this key --
    the in-process mailbox adds the destination rank, the queue
    transport's :class:`_Inbox` stashes by it -- so it must be unique
    per destination within one execution attempt: a duplicate key
    would silently overwrite a stashed payload, and a
    :class:`RecoveryPolicy` re-execution (which replays every send
    into fresh queues) is only safe because each attempt's key space
    is disjoint by construction.  :mod:`repro.analysis.comm` checks
    that uniqueness statically (ADR604).
    """
    if kind not in ("seg", "ghost"):
        raise ValueError(f"unknown message kind {kind!r}")
    return (kind, int(tile), int(index))


@dataclass(frozen=True)
class RecoveryPolicy:
    """Worker-crash detection and recovery knobs.

    The parent detects failure two ways: a worker process that exited
    without reporting completion (liveness polling every
    ``poll_interval`` seconds, with ``grace_polls`` quiet polls of
    slack for in-flight final messages of a cleanly-exited worker),
    and a surviving worker reporting a peer timeout after waiting
    ``inbox_timeout`` seconds on its inbox.  Each failure consumes one
    of ``max_restarts`` re-executions; with ``max_restarts=0`` any
    worker death is immediately fatal (the pre-recovery behavior).
    """

    max_restarts: int = 2
    #: seconds a rank waits on its inbox before concluding a peer died
    inbox_timeout: float = 120.0
    #: seconds between parent liveness checks
    poll_interval: float = 0.5
    #: quiet polls tolerated for a zero-exit worker's final messages
    grace_polls: int = 10


class Transport:
    """How phase traffic travels between virtual processors.

    The phase executor calls these hooks in deterministic schedule
    order; a transport only moves payloads (and, for the multiprocess
    case, applies the fault-injection hooks that live at the process /
    message boundary).  Payloads must arrive byte-identical to what
    was sent -- the bit-for-bit backend equivalence rests on it.
    """

    def before_read(self, rank: int, reads_done: int) -> None:
        """Hook before rank's ``reads_done``-th scheduled read (crash
        injection point on the multiprocess transport)."""

    def send_segments(self, dst: int, tile: int, read: int, segments) -> None:
        raise NotImplementedError

    def recv_segments(self, rank: int, tile: int, read: int):
        raise NotImplementedError

    def send_ghost(self, dst: int, tile: int, transfer: int, data: np.ndarray) -> None:
        raise NotImplementedError

    def recv_ghost(self, rank: int, tile: int, transfer: int) -> np.ndarray:
        raise NotImplementedError

    def emit_result(self, output_chunk: int, values: np.ndarray) -> None:
        raise NotImplementedError

    def tile_done(self, tile: int) -> None:
        """Hook after a tile completes (heartbeat on the multiprocess
        transport)."""


class InprocTransport(Transport):
    """Mailbox transport for virtual processors in one address space.

    A send parks the payload under its schedule key; the matching
    receive -- always within the same schedule step, since every rank
    is hosted here -- pops it.  Ghost payloads travel by reference
    (the receiver combines before the sender's accumulator is
    recycled at the tile boundary), so the sequential engine pays no
    copy the pre-refactor code did not pay.
    """

    def __init__(self) -> None:
        self._mail: Dict[tuple, object] = {}
        #: local output chunk id -> finalized values (phase 4)
        self.results: Dict[int, np.ndarray] = {}

    def send_segments(self, dst: int, tile: int, read: int, segments) -> None:
        self._mail[message_key("seg", tile, read) + (int(dst),)] = segments

    def recv_segments(self, rank: int, tile: int, read: int):
        return self._mail.pop(message_key("seg", tile, read) + (int(rank),))

    def send_ghost(self, dst: int, tile: int, transfer: int, data: np.ndarray) -> None:
        self._mail[message_key("ghost", tile, transfer) + (int(dst),)] = data

    def recv_ghost(self, rank: int, tile: int, transfer: int) -> np.ndarray:
        return self._mail.pop(message_key("ghost", tile, transfer) + (int(rank),))

    def emit_result(self, output_chunk: int, values: np.ndarray) -> None:
        self.results[int(output_chunk)] = values


class _Inbox:
    """Ordered receive over an unordered queue: messages are keyed by
    schedule position and stashed until their turn comes."""

    def __init__(self, q, timeout: float) -> None:
        self._q = q
        self._timeout = timeout
        self._stash: Dict[tuple, object] = {}

    def expect(self, key: tuple):
        while key not in self._stash:
            try:
                got_key, payload = self._q.get(timeout=self._timeout)
            except queue_mod.Empty:
                raise RuntimeError(
                    f"worker timed out waiting for message {key!r}; a peer "
                    "processor likely died or its message was lost"
                ) from None
            self._stash[got_key] = payload
        return self._stash.pop(key)


class QueueTransport(Transport):
    """IPC transport for one worker host of the multiprocess backend.

    Sends put onto the destination rank's inbox queue (never blocking
    -- queues are unbounded, which is what makes the wait-chain
    deadlock-freedom argument work); receives go through a per-hosted-
    rank :class:`_Inbox` that stashes out-of-order arrivals.  Results
    and per-tile heartbeats are posted to the parent's result queue.
    Deterministic fault injection hooks in at this boundary: worker
    crashes fire before a scheduled read (``os._exit``, no goodbye
    message -- the parent's liveness polling must catch it) and
    message drops are consulted once per send.
    """

    def __init__(
        self,
        host: int,
        ranks: Sequence[int],
        inboxes,
        result_q,
        inbox_timeout: float,
        injector: Optional[object] = None,
    ) -> None:
        self.host = int(host)
        self._inboxes = inboxes
        self._result_q = result_q
        self._inbox = {
            int(p): _Inbox(inboxes[int(p)], inbox_timeout) for p in ranks
        }
        self._injector = injector

    def before_read(self, rank: int, reads_done: int) -> None:
        if self._injector is not None and self._injector.should_crash(
            rank, reads_done
        ):
            # A hard crash: no cleanup, no goodbye message -- the
            # parent's liveness polling must catch it.
            os._exit(CRASH_EXIT_CODE)

    def send_segments(self, dst: int, tile: int, read: int, segments) -> None:
        if self._injector is not None and self._injector.should_drop("seg", read):
            return
        self._inboxes[int(dst)].put((message_key("seg", tile, read), segments))

    def recv_segments(self, rank: int, tile: int, read: int):
        return self._inbox[int(rank)].expect(message_key("seg", tile, read))

    def send_ghost(self, dst: int, tile: int, transfer: int, data: np.ndarray) -> None:
        if self._injector is not None and self._injector.should_drop(
            "ghost", transfer
        ):
            return
        # Copy before put: Queue serializes in a feeder thread, and the
        # arena view is recycled next tile.
        self._inboxes[int(dst)].put((message_key("ghost", tile, transfer), data.copy()))

    def recv_ghost(self, rank: int, tile: int, transfer: int) -> np.ndarray:
        return self._inbox[int(rank)].expect(message_key("ghost", tile, transfer))

    def emit_result(self, output_chunk: int, values: np.ndarray) -> None:
        self._result_q.put(("result", int(output_chunk), values))

    def tile_done(self, tile: int) -> None:
        # Per-tile heartbeat: progress signal for the parent's
        # liveness/stall tracking.
        self._result_q.put(("tile", self.host, int(tile)))
