"""Query execution service: the functional engine.

Whereas :mod:`repro.sim` *times* a plan on a machine model, this
package *executes* it on real data: virtual processors hold
accumulator sets, input chunk payloads are retrieved and aggregated
edge by edge exactly as the plan dictates (including ghost-chunk
combining), and final output values are produced.  Running the same
query under FRA, SRA and DA must -- and in the test suite does --
yield the same answer as a serial reference execution, which is the
correctness proof for the planner's workload partitioning.
"""

from repro.runtime.engine import QueryResult, execute_plan
from repro.runtime.serial import execute_serial

__all__ = ["QueryResult", "execute_plan", "execute_serial"]
