"""Query execution service: the functional engine.

Whereas :mod:`repro.sim` *times* a plan on a machine model, this
package *executes* it on real data: virtual processors hold
accumulator sets, input chunk payloads are retrieved and aggregated
edge by edge exactly as the plan dictates (including ghost-chunk
combining), and final output values are produced.  Running the same
query under FRA, SRA and DA must -- and in the test suite does --
yield the same answer as a serial reference execution, which is the
correctness proof for the planner's workload partitioning.

The per-tile four-phase loop itself lives in
:mod:`repro.runtime.phases` (one :class:`PhaseExecutor` for every
backend, over the :mod:`repro.runtime.transport` abstraction); the
sequential engine and the multiprocess backend are thin drivers around
it.
"""

from repro.runtime.engine import QueryResult, execute_plan
from repro.runtime.phases import PHASES, PhaseExecutor, PhaseSchedule
from repro.runtime.serial import execute_serial
from repro.runtime.transport import (
    InprocTransport,
    QueueTransport,
    RecoveryPolicy,
    Transport,
)

__all__ = [
    "PHASES",
    "InprocTransport",
    "PhaseExecutor",
    "PhaseSchedule",
    "QueryResult",
    "QueueTransport",
    "RecoveryPolicy",
    "Transport",
    "execute_plan",
    "execute_serial",
]
