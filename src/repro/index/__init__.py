"""Indexing service (paper Section 2.1--2.2).

"After all data chunks are stored into the desired locations in the
disk farm, an index (e.g., an R-tree) is constructed using the MBRs of
the chunks.  The index is used by the back-end nodes to find the local
chunks with MBRs that intersect the range query."

This package implements that index from scratch:

- :class:`RTree` -- dynamic inserts with quadratic split plus an STR
  (Sort-Tile-Recursive) bulk loader used by the dataset loader;
- :class:`GridIndex` -- a uniform-grid baseline;
- :class:`BruteForceIndex` -- the vectorized linear scan every other
  index is checked against in tests and benches;
- :class:`ScanIndex` -- packed MBR columns sorted on the primary
  dimension, binsearch-narrowed branchless scan (modern-hardware
  answer to tree traversal);
- :class:`HierarchicalBitmapIndex` -- per-level uint64 bin bitsets
  with segment-tree covers, AND/OR word ops per query.
"""

from repro.index.base import SpatialIndex
from repro.index.bitmap import HierarchicalBitmapIndex
from repro.index.brute import BruteForceIndex
from repro.index.grid import GridIndex
from repro.index.rtree import RTree
from repro.index.scan import ScanIndex

__all__ = [
    "SpatialIndex",
    "BruteForceIndex",
    "GridIndex",
    "RTree",
    "ScanIndex",
    "HierarchicalBitmapIndex",
]
