"""R-tree over chunk MBRs.

A from-scratch implementation of Guttman's R-tree with

- dynamic insertion (least-enlargement descent, quadratic split),
- STR (Sort-Tile-Recursive) bulk loading, the path the dataset loader
  uses because chunk populations arrive all at once, and
- Hilbert-packed bulk loading (Kamel & Faloutsos), which reuses the
  library's space-filling curve: entries sorted by the Hilbert key of
  their MBR centre are packed into consecutive leaves.

Node MBRs are kept in packed arrays inside each node so that the
"which children intersect the query" test is one vectorized mask per
visited node rather than a Python loop over children.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.index.base import SpatialIndex
from repro.util.geometry import Rect, rects_intersect_mask

__all__ = ["RTree"]


class _Node:
    """One R-tree node.

    ``children`` is either a list of child ``_Node`` (internal) or
    ``None`` (leaf); ``ids`` holds entry ids at leaves.  ``los/his``
    store per-entry MBRs in packed arrays, kept in sync with
    children/ids.
    """

    __slots__ = ("los", "his", "children", "ids")

    def __init__(self, ndim: int, leaf: bool) -> None:
        self.los = np.empty((0, ndim), dtype=float)
        self.his = np.empty((0, ndim), dtype=float)
        self.children: Optional[List["_Node"]] = None if leaf else []
        self.ids: Optional[List[int]] = [] if leaf else None

    @property
    def is_leaf(self) -> bool:
        return self.children is None

    @property
    def n_entries(self) -> int:
        return len(self.los)

    def mbr_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The node's own MBR (union of its entries)."""
        return self.los.min(axis=0), self.his.max(axis=0)

    def append(self, lo: np.ndarray, hi: np.ndarray, payload) -> None:
        self.los = np.vstack([self.los, lo[None, :]])
        self.his = np.vstack([self.his, hi[None, :]])
        if self.is_leaf:
            self.ids.append(payload)
        else:
            self.children.append(payload)


class RTree(SpatialIndex):
    """Guttman R-tree with quadratic split and STR bulk load.

    Parameters
    ----------
    ndim:
        Dimensionality of indexed MBRs.
    max_entries:
        Node capacity M (split on overflow).  ``min_entries`` defaults
        to ``M // 2`` as in Guttman's paper.
    """

    def __init__(self, ndim: int, max_entries: int = 16, min_entries: Optional[int] = None) -> None:
        if ndim < 1:
            raise ValueError("ndim must be >= 1")
        if max_entries < 4:
            raise ValueError("max_entries must be >= 4")
        self.ndim = ndim
        self.max_entries = max_entries
        self.min_entries = max_entries // 2 if min_entries is None else min_entries
        if not 1 <= self.min_entries <= max_entries // 2:
            raise ValueError("min_entries must be in [1, max_entries // 2]")
        self._root = _Node(ndim, leaf=True)
        self._count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_rects(
        cls,
        los: np.ndarray,
        his: np.ndarray,
        max_entries: int = 16,
        bulk: "bool | str" = True,
        **kwargs,
    ) -> "RTree":
        """``bulk`` may be True/"str" (Sort-Tile-Recursive), "hilbert"
        (Hilbert-packed), or False (one-by-one insertion)."""
        los = np.ascontiguousarray(los, dtype=float)
        his = np.ascontiguousarray(his, dtype=float)
        if los.ndim != 2 or los.shape != his.shape:
            raise ValueError("los/his must be matching (n, d) arrays")
        tree = cls(los.shape[1], max_entries=max_entries, **kwargs)
        if len(los) == 0:
            return tree
        if bulk == "hilbert":
            tree._bulk_load(los, his, method="hilbert")
        elif bulk is True or bulk == "str":
            tree._bulk_load(los, his, method="str")
        elif bulk is False:
            for i in range(len(los)):
                tree.insert(i, los[i], his[i])  # noqa: ADR306 -- Guttman dynamic insert (bulk=False), inherently per-entry
        else:
            raise ValueError(f"unknown bulk-load method {bulk!r}")
        return tree

    def insert(self, entry_id: int, lo: np.ndarray, hi: np.ndarray) -> None:
        """Insert one MBR with payload id (Guttman Insert)."""
        lo = np.asarray(lo, dtype=float)
        hi = np.asarray(hi, dtype=float)
        if lo.shape != (self.ndim,) or hi.shape != (self.ndim,):
            raise ValueError("entry MBR dimensionality mismatch")
        if np.any(lo > hi):
            raise ValueError("entry MBR has lo > hi")
        split = self._insert(self._root, lo, hi, int(entry_id))
        if split is not None:
            # Root overflowed: grow the tree by one level.
            old_root, new_node = self._root, split
            root = _Node(self.ndim, leaf=False)
            for child in (old_root, new_node):
                clo, chi = child.mbr_arrays()
                root.append(clo, chi, child)
            self._root = root
        self._count += 1

    def _insert(self, node: _Node, lo: np.ndarray, hi: np.ndarray, entry_id: int) -> Optional[_Node]:
        """Recursive insert; returns the new sibling if *node* split."""
        if node.is_leaf:
            node.append(lo, hi, entry_id)
        else:
            ci = self._choose_subtree(node, lo, hi)
            child = node.children[ci]
            split = self._insert(child, lo, hi, entry_id)
            clo, chi = child.mbr_arrays()
            node.los[ci] = clo
            node.his[ci] = chi
            if split is not None:
                slo, shi = split.mbr_arrays()
                node.append(slo, shi, split)
        if node.n_entries > self.max_entries:
            return self._split(node)
        return None

    def _choose_subtree(self, node: _Node, lo: np.ndarray, hi: np.ndarray) -> int:
        """Least-enlargement child; ties broken by smaller volume."""
        ulo = np.minimum(node.los, lo)
        uhi = np.maximum(node.his, hi)
        new_vol = np.prod(uhi - ulo, axis=1)
        old_vol = np.prod(node.his - node.los, axis=1)
        enlargement = new_vol - old_vol
        best = np.lexsort((old_vol, enlargement))[0]
        return int(best)

    def _split(self, node: _Node) -> _Node:
        """Quadratic split: returns the new sibling node."""
        los, his = node.los, node.his
        n = len(los)
        payloads = node.ids if node.is_leaf else node.children

        # PickSeeds: the pair wasting the most volume together.
        ulo = np.minimum(los[:, None, :], los[None, :, :])
        uhi = np.maximum(his[:, None, :], his[None, :, :])
        pair_vol = np.prod(uhi - ulo, axis=2)
        own_vol = np.prod(his - los, axis=1)
        waste = pair_vol - own_vol[:, None] - own_vol[None, :]
        np.fill_diagonal(waste, -np.inf)
        s1, s2 = np.unravel_index(np.argmax(waste), waste.shape)

        groups: Tuple[List[int], List[int]] = ([int(s1)], [int(s2)])
        glo = [los[s1].copy(), los[s2].copy()]
        ghi = [his[s1].copy(), his[s2].copy()]
        remaining = [i for i in range(n) if i not in (s1, s2)]

        while remaining:
            # Force-assign when a group must absorb everything left to
            # reach min_entries.
            for g in (0, 1):
                need = self.min_entries - len(groups[g])
                if need > 0 and need >= len(remaining):
                    for i in remaining:
                        groups[g].append(i)
                        glo[g] = np.minimum(glo[g], los[i])  # noqa: ADR306 -- quadratic split, bounded by node capacity
                        ghi[g] = np.maximum(ghi[g], his[i])  # noqa: ADR306 -- quadratic split, bounded by node capacity
                    remaining = []
                    break
            if not remaining:
                break
            # PickNext: entry with max preference between groups.
            rem = np.asarray(remaining)
            d = []
            for g in (0, 1):
                u_lo = np.minimum(glo[g], los[rem])
                u_hi = np.maximum(ghi[g], his[rem])
                d.append(np.prod(u_hi - u_lo, axis=1) - np.prod(ghi[g] - glo[g]))
            diff = np.abs(d[0] - d[1])
            pick = int(np.argmax(diff))
            i = int(rem[pick])
            g = 0 if d[0][pick] < d[1][pick] else 1
            if d[0][pick] == d[1][pick]:
                g = 0 if len(groups[0]) <= len(groups[1]) else 1
            groups[g].append(i)
            glo[g] = np.minimum(glo[g], los[i])
            ghi[g] = np.maximum(ghi[g], his[i])
            remaining.remove(i)

        # Rebuild this node from group 0 and a sibling from group 1.
        sibling = _Node(self.ndim, leaf=node.is_leaf)
        idx0 = np.asarray(groups[0])
        idx1 = np.asarray(groups[1])
        sibling.los = los[idx1].copy()
        sibling.his = his[idx1].copy()
        if node.is_leaf:
            sibling.ids = [payloads[i] for i in groups[1]]
            node.ids = [payloads[i] for i in groups[0]]
        else:
            sibling.children = [payloads[i] for i in groups[1]]
            node.children = [payloads[i] for i in groups[0]]
        node.los = los[idx0].copy()
        node.his = his[idx0].copy()
        return sibling

    # ------------------------------------------------------------------
    # STR bulk load
    # ------------------------------------------------------------------

    def _bulk_load(self, los: np.ndarray, his: np.ndarray, method: str = "str") -> None:
        """Bottom-up packing: STR (Leutenegger et al.) or Hilbert
        (Kamel & Faloutsos)."""
        if self._count:
            raise RuntimeError("bulk load requires an empty tree")
        centers = (los + his) * 0.5
        order = np.arange(len(los))
        if method == "hilbert":
            leaves = self._hilbert_pack_level(los, his, centers)
        else:
            leaves = self._str_pack_level(los, his, centers, order)
        level: List[_Node] = leaves
        while len(level) > 1:
            level = self._pack_parents(level)
        self._root = level[0]
        self._count = len(los)

    def _hilbert_pack_level(
        self, los: np.ndarray, his: np.ndarray, centers: np.ndarray
    ) -> List[_Node]:
        """Pack entries into leaves along the Hilbert curve of their
        MBR centres."""
        from repro.util.geometry import Rect
        from repro.util.hilbert import hilbert_sort_keys

        bbox = Rect(tuple(los.min(axis=0)), tuple(his.max(axis=0)))
        keys = hilbert_sort_keys(centers, bbox, bits=16)
        order = np.lexsort((np.arange(len(keys)), keys))
        cap = self.max_entries
        leaves: List[_Node] = []
        for s in range(0, len(order), cap):
            group = order[s : s + cap]
            leaf = _Node(self.ndim, leaf=True)
            leaf.los = los[group].copy()  # noqa: ADR306 -- vectorized gather (group is an id array)
            leaf.his = his[group].copy()  # noqa: ADR306 -- vectorized gather (group is an id array)
            leaf.ids = [int(i) for i in group]
            leaves.append(leaf)
        return leaves

    def _str_pack_level(
        self,
        los: np.ndarray,
        his: np.ndarray,
        centers: np.ndarray,
        ids: np.ndarray,
    ) -> List[_Node]:
        """Recursively tile entries by center coordinate into leaves."""
        cap = self.max_entries

        def tile(idx: np.ndarray, dim: int) -> List[np.ndarray]:
            if dim >= self.ndim - 1 or len(idx) <= cap:
                srt = idx[np.argsort(centers[idx, dim], kind="stable")]
                # final dimension: cut into leaf-sized runs
                return [srt[i : i + cap] for i in range(0, len(srt), cap)]
            n_leaves = math.ceil(len(idx) / cap)
            n_slabs = math.ceil(n_leaves ** (1.0 / (self.ndim - dim)))
            slab_size = math.ceil(len(idx) / n_slabs)
            srt = idx[np.argsort(centers[idx, dim], kind="stable")]
            groups: List[np.ndarray] = []
            for i in range(0, len(srt), slab_size):
                groups.extend(tile(srt[i : i + slab_size], dim + 1))
            return groups

        leaves = []
        for group in tile(np.asarray(ids), 0):
            leaf = _Node(self.ndim, leaf=True)
            leaf.los = los[group].copy()  # noqa: ADR306 -- vectorized gather (group is an id array)
            leaf.his = his[group].copy()  # noqa: ADR306 -- vectorized gather (group is an id array)
            leaf.ids = [int(i) for i in group]
            leaves.append(leaf)
        return leaves

    def _pack_parents(self, nodes: List[_Node]) -> List[_Node]:
        """Group a level of nodes into parents, STR-ordered."""
        mbrs = np.asarray([(n.mbr_arrays()) for n in nodes])  # (k, 2, d)
        los = mbrs[:, 0, :]
        his = mbrs[:, 1, :]
        centers = (los + his) * 0.5
        cap = self.max_entries
        order = np.lexsort(tuple(centers[:, d] for d in range(self.ndim - 1, -1, -1)))
        parents: List[_Node] = []
        for i in range(0, len(nodes), cap):
            grp = order[i : i + cap]
            parent = _Node(self.ndim, leaf=False)
            parent.los = los[grp].copy()
            parent.his = his[grp].copy()
            parent.children = [nodes[j] for j in grp]
            parents.append(parent)
        return parents

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def query(self, rect: Rect) -> np.ndarray:
        if rect.ndim != self.ndim:
            raise ValueError("query dimensionality mismatch")
        if self._count == 0:
            return np.empty(0, dtype=np.int64)
        out: List[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.n_entries == 0:
                continue
            mask = rects_intersect_mask(node.los, node.his, rect)
            if node.is_leaf:
                out.extend(node.ids[i] for i in np.flatnonzero(mask))
            else:
                stack.extend(node.children[i] for i in np.flatnonzero(mask))
        return np.asarray(sorted(out), dtype=np.int64)

    @property
    def n_entries(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    # Introspection / invariants
    # ------------------------------------------------------------------

    @property
    def height(self) -> int:
        h = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h

    def node_count(self) -> int:
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(node.children)
        return count

    def validate(self) -> None:
        """Check structural invariants; raises ``AssertionError``.

        - every internal entry MBR equals the union of the child's
          entry MBRs (tight bounding);
        - all leaves sit at the same depth;
        - node occupancy within [min_entries, max_entries] (root
          exempt) for trees built by insertion or bulk load;
        - the leaf id multiset has no duplicates and size n_entries.
        """
        ids: List[int] = []
        leaf_depths: List[int] = []

        def walk(node: _Node, depth: int, is_root: bool) -> None:
            if not is_root:
                if not self.min_entries <= node.n_entries <= self.max_entries:
                    # STR packing can leave one underfull node per level.
                    if node.n_entries > self.max_entries or node.n_entries < 1:
                        raise AssertionError(
                            f"node occupancy {node.n_entries} outside [1, {self.max_entries}]"
                        )
            if node.is_leaf:
                leaf_depths.append(depth)
                ids.extend(node.ids)
                return
            if len(node.children) != node.n_entries:
                raise AssertionError("children list out of sync with MBR arrays")
            for i, child in enumerate(node.children):
                clo, chi = child.mbr_arrays()
                if not (
                    np.allclose(node.los[i], clo) and np.allclose(node.his[i], chi)  # noqa: ADR306 -- structural invariant checker, not a query path
                ):
                    raise AssertionError("stale entry MBR for a child node")
                walk(child, depth + 1, False)

        walk(self._root, 0, True)
        if len(set(leaf_depths)) > 1:
            raise AssertionError(f"leaves at differing depths: {set(leaf_depths)}")
        if len(ids) != self._count:
            raise AssertionError(f"{len(ids)} leaf ids but count={self._count}")
        if len(set(ids)) != len(ids):
            raise AssertionError("duplicate ids in leaves")
