"""Sorted-MBR scan index: vectorized linear scan + binsearch narrowing.

Modern-hardware counterpoint to the 1999 R-tree (cf. Sprenger et al.,
*Multidimensional Range Queries on Modern Hardware*): instead of
chasing tree pointers, keep the MBRs packed in column arrays sorted by
the primary-dimension lower corner and answer a query with two binary
searches plus one branchless interval test over the narrowed slice.

The narrowing is exact on the upper side -- an MBR with
``lo[0] > query.hi[0]`` can never intersect -- and conservative on the
lower side via the running maximum of ``hi[0]``: every MBR before the
first position where ``cummax(hi[0]) >= query.lo[0]`` ends left of the
query and is skipped wholesale.  For typical chunk populations (near
cube-shaped MBRs from a regular partitioner) the slice is a small
fraction of ``n``, and the remaining test is a single NumPy reduction
with no Python-level per-rectangle work.
"""

from __future__ import annotations

import numpy as np

from repro.index.base import SpatialIndex
from repro.util.geometry import Rect

__all__ = ["ScanIndex"]


class ScanIndex(SpatialIndex):
    """Linear-scan index over MBRs sorted by ``lo[:, 0]``.

    Stored state (all arrays packed, C-contiguous):

    - ``los``, ``his``: ``(n, d)`` MBR corners in sorted order
    - ``ids``: ``(n,)`` original chunk ids, ``ids[i]`` owns row ``i``
    - ``cummax_hi0``: running maximum of ``his[:, 0]`` in sorted order
    """

    def __init__(self, los: np.ndarray, his: np.ndarray) -> None:
        los = np.ascontiguousarray(los, dtype=float)
        his = np.ascontiguousarray(his, dtype=float)
        if los.ndim != 2 or los.shape != his.shape:
            raise ValueError("los/his must be matching (n, d) arrays")
        if np.any(los > his):
            raise ValueError("some MBRs have lo > hi")
        order = np.argsort(los[:, 0], kind="stable")
        self.ids = order.astype(np.int64)
        self.los = np.ascontiguousarray(los[order])
        self.his = np.ascontiguousarray(his[order])
        self.cummax_hi0 = (
            np.maximum.accumulate(self.his[:, 0])
            if len(self.his)
            else np.empty(0, dtype=float)
        )

    @classmethod
    def from_rects(cls, los: np.ndarray, his: np.ndarray, **kwargs) -> "ScanIndex":
        return cls(los, his)

    def query(self, rect: Rect) -> np.ndarray:
        qlo, qhi = rect.as_arrays()
        if self.los.shape[1] != rect.ndim:
            raise ValueError("query dimensionality mismatch")
        # Upper cut: rows with lo0 > qhi0 start right of the query.
        upper = int(np.searchsorted(self.los[:, 0], qhi[0], side="right"))
        # Lower cut: rows before the first cummax(hi0) >= qlo0 all end
        # left of the query (cummax is non-decreasing, so binsearch works).
        first = int(np.searchsorted(self.cummax_hi0[:upper], qlo[0], side="left"))
        if first >= upper:
            return np.empty(0, dtype=np.int64)
        slos = self.los[first:upper]
        shis = self.his[first:upper]
        mask = np.all((slos <= qhi) & (qlo <= shis), axis=1)
        return np.sort(self.ids[first:upper][mask])

    @property
    def n_entries(self) -> int:
        return len(self.los)
