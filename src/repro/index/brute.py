"""Brute-force index: a vectorized linear scan.

The correctness oracle for the R-tree and grid index, and -- thanks to
NumPy -- a respectable baseline for small chunk populations, which the
index ablation bench quantifies.
"""

from __future__ import annotations

import numpy as np

from repro.index.base import SpatialIndex
from repro.util.geometry import Rect, rects_intersect_mask

__all__ = ["BruteForceIndex"]


class BruteForceIndex(SpatialIndex):
    def __init__(self, los: np.ndarray, his: np.ndarray) -> None:
        self.los = np.ascontiguousarray(los, dtype=float)
        self.his = np.ascontiguousarray(his, dtype=float)
        if self.los.ndim != 2 or self.los.shape != self.his.shape:
            raise ValueError("los/his must be matching (n, d) arrays")

    @classmethod
    def from_rects(cls, los: np.ndarray, his: np.ndarray, **kwargs) -> "BruteForceIndex":
        return cls(los, his)

    def query(self, rect: Rect) -> np.ndarray:
        return np.flatnonzero(rects_intersect_mask(self.los, self.his, rect))

    @property
    def n_entries(self) -> int:
        return len(self.los)
