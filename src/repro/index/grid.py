"""Uniform-grid spatial index.

Bins MBRs into the cells of a regular grid over the data bounding box;
a query gathers candidates from the cells it overlaps and verifies
them exactly.  Cheap to build and very fast for uniformly distributed
chunk populations (WCS/VM), degrading for skewed ones (SAT) -- the
trade-off quantified by the index ablation bench.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from repro.index.base import SpatialIndex
from repro.util.geometry import Rect, rects_intersect_mask

__all__ = ["GridIndex"]


class GridIndex(SpatialIndex):
    def __init__(
        self, los: np.ndarray, his: np.ndarray, cells_per_dim: int | None = None
    ) -> None:
        self.los = np.ascontiguousarray(los, dtype=float)
        self.his = np.ascontiguousarray(his, dtype=float)
        if self.los.ndim != 2 or self.los.shape != self.his.shape:
            raise ValueError("los/his must be matching (n, d) arrays")
        n, d = self.los.shape
        if cells_per_dim is None:
            # ~one entry per cell on average, capped for high dimensions.
            cells_per_dim = max(1, min(64, int(round(n ** (1.0 / d)))))
        if cells_per_dim < 1:
            raise ValueError("cells_per_dim must be >= 1")
        self.cells_per_dim = int(cells_per_dim)
        if n:
            self._lo = self.los.min(axis=0)
            hi = self.his.max(axis=0)
            span = hi - self._lo
            self._span = np.where(span > 0, span, 1.0)
        else:
            self._lo = np.zeros(d)
            self._span = np.ones(d)
        self._cells: Dict[Tuple[int, ...], List[int]] = {}
        for i in range(n):
            for cell in self._cells_of(self.los[i], self.his[i]):  # noqa: ADR306 -- one-time build loop; the query path is vectorized
                self._cells.setdefault(cell, []).append(i)

    @classmethod
    def from_rects(cls, los: np.ndarray, his: np.ndarray, **kwargs) -> "GridIndex":
        return cls(los, his, **kwargs)

    def _cell_range(self, lo: np.ndarray, hi: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        k = self.cells_per_dim
        c_lo = np.floor((lo - self._lo) / self._span * k).astype(int)
        c_hi = np.floor((hi - self._lo) / self._span * k).astype(int)
        return np.clip(c_lo, 0, k - 1), np.clip(c_hi, 0, k - 1)

    def _cells_of(self, lo: np.ndarray, hi: np.ndarray):
        c_lo, c_hi = self._cell_range(lo, hi)
        ranges = [range(a, b + 1) for a, b in zip(c_lo, c_hi)]
        # Cartesian product over covered cells.
        idx = [r.start for r in ranges]
        while True:
            yield tuple(idx)
            for dpos in range(len(ranges) - 1, -1, -1):
                idx[dpos] += 1
                if idx[dpos] < ranges[dpos].stop:
                    break
                idx[dpos] = ranges[dpos].start
            else:
                return

    def query(self, rect: Rect) -> np.ndarray:
        if rect.ndim != self.los.shape[1]:
            raise ValueError("query dimensionality mismatch")
        if len(self.los) == 0:
            return np.empty(0, dtype=np.int64)
        qlo, qhi = rect.as_arrays()
        candidates: set[int] = set()
        for cell in self._cells_of(qlo, qhi):
            candidates.update(self._cells.get(cell, ()))
        if not candidates:
            return np.empty(0, dtype=np.int64)
        cand = np.asarray(sorted(candidates), dtype=np.int64)
        mask = rects_intersect_mask(self.los[cand], self.his[cand], rect)
        return cand[mask]

    @property
    def n_entries(self) -> int:
        return len(self.los)

    @property
    def n_cells(self) -> int:
        return len(self._cells)
