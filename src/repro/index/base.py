"""Common interface for spatial indices over chunk MBRs."""

from __future__ import annotations

import pickle
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Union

import numpy as np

from repro.dataset.chunkset import ChunkSet
from repro.util.geometry import Rect

__all__ = ["SpatialIndex"]


class SpatialIndex(ABC):
    """Maps a range query to the ids of chunks whose MBR intersects it.

    All implementations answer :meth:`query` with a *sorted* int64 id
    array, so results are directly comparable across index types.
    """

    @classmethod
    def build(cls, chunks: ChunkSet, **kwargs) -> "SpatialIndex":
        """Construct an index over a chunk population."""
        return cls.from_rects(chunks.los, chunks.his, **kwargs)

    @classmethod
    @abstractmethod
    def from_rects(cls, los: np.ndarray, his: np.ndarray, **kwargs) -> "SpatialIndex":
        """Construct from packed ``(n, d)`` MBR arrays."""

    @abstractmethod
    def query(self, rect: Rect) -> np.ndarray:
        """Sorted ids of indexed MBRs intersecting *rect*."""

    @property
    @abstractmethod
    def n_entries(self) -> int:
        """Number of indexed MBRs."""

    # -- persistence -----------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Persist the index (the dataset loader stores one per dataset)."""
        with open(path, "wb") as fh:
            pickle.dump(self, fh, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def load(path: Union[str, Path]) -> "SpatialIndex":
        with open(path, "rb") as fh:
            obj = pickle.load(fh)
        if not isinstance(obj, SpatialIndex):
            raise TypeError(f"{path} does not contain a SpatialIndex")
        return obj
