"""Hierarchical bitmap index over chunk MBRs.

After Krčál & Ho (*Hierarchical Bitmap Indexing for Range and
Membership Queries on Multidimensional Arrays*): each dimension's
domain is cut into ``n_bins`` equal bins, and bin ``b`` keeps a bitset
(packed uint64 words) of every chunk whose interval in that dimension
touches the bin.  On top of the fine level sits a binary hierarchy --
level ``L`` bin ``j`` is the OR of level ``L-1`` bins ``2j`` and
``2j+1`` -- so a query interval spanning ``m`` fine bins is covered by
``O(log m)`` pre-OR'ed bitsets (the classic segment-tree cover)
instead of ``m`` ORs.

A query ORs the covering bitsets per dimension (superset of the
chunks intersecting the query in that dimension), ANDs the per-
dimension words (candidate set for the conjunction), and finishes
with one exact vectorized interval test over the unpacked candidates,
so the sorted-int64 ``query()`` contract holds exactly.

All build and probe steps are word-parallel NumPy ops; the only
Python loops run over bins and levels (bounded by ``n_bins``), never
over rectangles.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.index.base import SpatialIndex
from repro.util.geometry import Rect, rects_intersect_mask

__all__ = ["HierarchicalBitmapIndex"]


def _pack_mask(mask: np.ndarray, n_words: int) -> np.ndarray:
    """Pack an ``(n,)`` bool mask into ``n_words`` little-endian uint64."""
    padded = np.zeros(n_words * 64, dtype=bool)
    padded[: len(mask)] = mask
    return np.packbits(padded, bitorder="little").view(np.uint64)


class HierarchicalBitmapIndex(SpatialIndex):
    """Per-dimension hierarchical bin bitmaps + exact candidate check.

    Parameters
    ----------
    n_bins:
        Fine-level bins per dimension; rounded up to a power of two so
        the hierarchy halves cleanly (default 128).
    """

    def __init__(self, los: np.ndarray, his: np.ndarray, n_bins: int = 128) -> None:
        los = np.ascontiguousarray(los, dtype=float)
        his = np.ascontiguousarray(his, dtype=float)
        if los.ndim != 2 or los.shape != his.shape:
            raise ValueError("los/his must be matching (n, d) arrays")
        if np.any(los > his):
            raise ValueError("some MBRs have lo > hi")
        if n_bins < 1:
            raise ValueError("n_bins must be positive")
        self.los = los
        self.his = his
        n, d = los.shape
        self.n_bins = 1 << max(0, int(np.ceil(np.log2(n_bins)))) if n_bins > 1 else 1
        self.n_words = max(1, -(-n // 64))
        self.dom_lo = los.min(axis=0) if n else np.zeros(d)
        self.dom_hi = his.max(axis=0) if n else np.zeros(d)
        width = self.dom_hi - self.dom_lo
        with np.errstate(divide="ignore", invalid="ignore"):
            self.scale = np.where(width > 0, self.n_bins / width, 0.0)
        # levels[dim][0] is the fine level, shape (n_bins, n_words); each
        # coarser level ORs pairs of the one below, down to a single bin.
        self.levels: List[List[np.ndarray]] = []
        for dim in range(d):
            blo = self._bin(los[:, dim], dim)
            bhi = self._bin(his[:, dim], dim)
            fine = np.empty((self.n_bins, self.n_words), dtype=np.uint64)
            for b in range(self.n_bins):
                fine[b] = _pack_mask((blo <= b) & (b <= bhi), self.n_words)
            dim_levels = [fine]
            while len(dim_levels[-1]) > 1:
                cur = dim_levels[-1]
                dim_levels.append(cur[0::2] | cur[1::2])
            self.levels.append(dim_levels)

    def _bin(self, x: np.ndarray, dim: int) -> np.ndarray:
        """Fine-level bin of coordinates *x* in *dim* (clipped)."""
        raw = np.floor((np.asarray(x) - self.dom_lo[dim]) * self.scale[dim])
        return np.clip(raw, 0, self.n_bins - 1).astype(np.int64)

    @classmethod
    def from_rects(
        cls, los: np.ndarray, his: np.ndarray, **kwargs
    ) -> "HierarchicalBitmapIndex":
        return cls(los, his, **kwargs)

    def _cover(self, dim: int, lo_bin: int, hi_bin: int) -> np.ndarray:
        """OR of the segment-tree cover of fine bins ``[lo_bin, hi_bin]``."""
        words = np.zeros(self.n_words, dtype=np.uint64)
        levels = self.levels[dim]
        level = 0
        while lo_bin <= hi_bin and level < len(levels):
            if lo_bin & 1:
                words |= levels[level][lo_bin]
                lo_bin += 1
            if not (hi_bin & 1):
                words |= levels[level][hi_bin]
                hi_bin -= 1
            lo_bin >>= 1
            hi_bin >>= 1
            level += 1
        return words

    def query(self, rect: Rect) -> np.ndarray:
        qlo, qhi = rect.as_arrays()
        if self.los.shape[1] != rect.ndim:
            raise ValueError("query dimensionality mismatch")
        if not len(self.los):
            return np.empty(0, dtype=np.int64)
        # Clip to the indexed domain: chunks live entirely inside it, so
        # a query missing the domain in any dimension matches nothing.
        clo = np.maximum(qlo, self.dom_lo)
        chi = np.minimum(qhi, self.dom_hi)
        if np.any(clo > chi):
            return np.empty(0, dtype=np.int64)
        words = np.full(self.n_words, ~np.uint64(0), dtype=np.uint64)
        for dim in range(self.los.shape[1]):
            a = int(self._bin(clo[dim], dim))
            b = int(self._bin(chi[dim], dim))
            words &= self._cover(dim, a, b)
            if not words.any():
                return np.empty(0, dtype=np.int64)
        bits = np.unpackbits(words.view(np.uint8), bitorder="little")
        cand = np.flatnonzero(bits[: len(self.los)])
        exact = rects_intersect_mask(self.los[cand], self.his[cand], rect)
        return cand[exact].astype(np.int64)

    @property
    def n_entries(self) -> int:
        return len(self.los)
