"""repro: a reproduction of "Querying Very Large Multi-dimensional
Datasets in ADR" (Kurc, Chang, Ferreira, Sussman, Saltz -- SC 1999).

The Active Data Repository (ADR) integrates storage, retrieval and
processing of multi-dimensional datasets on distributed-memory
machines with disks attached to each node.  This package implements
the full system in Python:

- the chunked, declustered, R-tree-indexed storage substrate
  (:mod:`repro.dataset`, :mod:`repro.store`, :mod:`repro.index`,
  :mod:`repro.decluster`);
- the user-customization services (:mod:`repro.space` for ``Map``,
  :mod:`repro.aggregation` for ``Initialize``/``Aggregate``/``Output``);
- the paper's core contribution, the query planning strategies FRA,
  SRA and DA, plus the Section-6 hybrid and cost-model extensions
  (:mod:`repro.planner`);
- two execution engines: a functional one producing real query
  answers (:mod:`repro.runtime`) and a discrete-event performance
  simulator of the 1999 IBM SP testbed (:mod:`repro.machine`,
  :mod:`repro.sim`);
- the application emulators used by the paper's evaluation
  (:mod:`repro.emulator`) and a client façade (:mod:`repro.frontend`).

Quickstart::

    from repro import ADR, RangeQuery, ibm_sp
    adr = ADR(machine=ibm_sp(8))
    adr.load("readings", space, chunks)
    result = adr.execute(RangeQuery("readings", region, mapping, grid,
                                    aggregation="mean"))
"""

from repro.frontend.adr import ADR
from repro.frontend.query import RangeQuery
from repro.machine.presets import ibm_sp, IBM_SP_COSTS
from repro.machine.config import MachineConfig, ComputeCosts
from repro.planner import (
    PlanningProblem,
    QueryPlan,
    plan_fra,
    plan_sra,
    plan_da,
    plan_hybrid,
    plan_query,
    validate_plan,
    plan_stats,
    estimate_cost,
    select_strategy,
)
from repro.sim.query_sim import simulate_query, SimResult
from repro.runtime.engine import execute_plan, QueryResult
from repro.runtime.serial import execute_serial
from repro.emulator import SATEmulator, WCSEmulator, VMEmulator, EMULATORS
from repro.util.geometry import Rect

__version__ = "1.0.0"

__all__ = [
    "ADR",
    "RangeQuery",
    "Rect",
    "MachineConfig",
    "ComputeCosts",
    "ibm_sp",
    "IBM_SP_COSTS",
    "PlanningProblem",
    "QueryPlan",
    "plan_fra",
    "plan_sra",
    "plan_da",
    "plan_hybrid",
    "plan_query",
    "validate_plan",
    "plan_stats",
    "estimate_cost",
    "select_strategy",
    "simulate_query",
    "SimResult",
    "execute_plan",
    "execute_serial",
    "QueryResult",
    "SATEmulator",
    "WCSEmulator",
    "VMEmulator",
    "EMULATORS",
    "__version__",
]
