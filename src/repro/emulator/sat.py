"""SAT emulator: satellite data processing (AVHRR-style).

Table 1: 9K--144K input chunks (1.6--26 GB), 256 output chunks
(25 MB), average fan-in 161--1307, average fan-out 4.6, per-chunk
costs 1-40-20-1 ms.

Geometry follows the paper's description of the AVHRR dataset: "the
distribution of the individual data items and the data chunks in the
input dataset of SAT is irregular.  This is because of the polar orbit
of the satellite; the data chunks near the poles are more elongated on
the surface of the earth than those near the equator and there are
more overlapping chunks near the poles."  Input chunk footprints are
therefore widened in longitude by ``1 / cos(latitude)``, which makes
polar output chunks receive far more input (the fan-in skew that
drives DA's load imbalance) while keeping the average fan-out at the
published ~4.6.

The input attribute space is (longitude, latitude, time); scaled
datasets extend the time dimension, adding chunks with the same
spatial distribution (fan-out stays put, fan-in grows), exactly how
longer acquisition periods scale the real dataset.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.chunkset import ChunkSet
from repro.emulator.base import ApplicationEmulator, ApplicationScenario, grid_overlap_graph
from repro.machine.config import ComputeCosts
from repro.machine.presets import IBM_SP_COSTS
from repro.space.attribute_space import AttributeSpace
from repro.util.rng import make_rng
from repro.util.units import KB, MB

__all__ = ["SATEmulator"]


class SATEmulator(ApplicationEmulator):
    name = "SAT"

    def __init__(
        self,
        base_chunks: int = 9000,
        chunk_bytes: int = 186 * KB,
        output_blocks: tuple[int, int] = (16, 16),
        output_chunk_bytes: int = 100 * KB,
        acc_factor: float = 8.0,
        max_lat: float = 88.0,
    ) -> None:
        """``acc_factor`` widens the accumulator relative to the output
        (the composite keeps several bands plus the best-NDVI metadata
        per pixel); 8x calibrates FRA's per-processor communication
        volume to the paper's Figure 9(a) level."""
        if base_chunks < 1:
            raise ValueError("base_chunks must be >= 1")
        self.base_chunks = base_chunks
        self.chunk_bytes = chunk_bytes
        self.output_blocks = output_blocks
        self.output_chunk_bytes = output_chunk_bytes
        self.acc_factor = acc_factor
        self.max_lat = max_lat

    @property
    def costs(self) -> ComputeCosts:
        return IBM_SP_COSTS["SAT"]

    def scenario(self, scale: int = 1, seed: int = 0) -> ApplicationScenario:
        if scale < 1:
            raise ValueError("scale must be >= 1")
        rng = make_rng(seed)
        n = self.base_chunks * scale

        input_space = AttributeSpace.regular(
            "sat-sensor", ("lon", "lat", "time"), (-180, -90, 0), (180, 90, float(scale))
        )
        output_space = AttributeSpace.regular(
            "sat-composite", ("lon", "lat"), (-180, -90), (180, 90)
        )

        # Ground-track samples: a polar orbiter's coverage density
        # grows like sec(latitude) toward the poles (every orbit passes
        # near them), so latitude is drawn with a sec-shaped density
        # via the inverse Gudermannian; longitude and time are uniform.
        x_max = np.arcsinh(np.tan(np.radians(self.max_lat)))
        lat = np.degrees(np.arctan(np.sinh(rng.uniform(-x_max, x_max, size=n))))
        lon = rng.uniform(-180.0, 180.0, size=n)
        time = rng.uniform(0.0, float(scale), size=n)

        # Footprints: fixed extent along the track (latitude), widened
        # across the track by the meridian convergence factor.
        out_cell_lon = 360.0 / self.output_blocks[0]
        out_cell_lat = 180.0 / self.output_blocks[1]
        half_lat = out_cell_lat / 2.0
        widen = 1.0 / np.cos(np.radians(lat))
        half_lon = np.minimum(out_cell_lon / 4.6 * widen, 45.0)

        los = np.stack(
            (
                np.maximum(lon - half_lon, -180.0),
                np.maximum(lat - half_lat, -90.0),
                time,
            ),
            axis=1,
        )
        his = np.stack(
            (
                np.minimum(lon + half_lon, 180.0),
                np.minimum(lat + half_lat, 90.0),
                np.minimum(time + 1.0 / self.base_chunks, float(scale)),
            ),
            axis=1,
        )
        # ~10% size jitter keeps disk traffic from being suspiciously uniform.
        nbytes = (self.chunk_bytes * rng.uniform(0.9, 1.1, size=n)).astype(np.int64)
        inputs = ChunkSet(los, his, nbytes)

        graph = grid_overlap_graph(
            los, his, output_space.bounds, self.output_blocks, dims=(0, 1)
        )

        from repro.dataset.partition import regular_grid_chunkset

        outputs = regular_grid_chunkset(
            output_space.bounds, self.output_blocks, self.output_chunk_bytes
        )
        acc_nbytes = (outputs.nbytes * self.acc_factor).astype(np.int64)

        return ApplicationScenario(
            name=self.name,
            costs=self.costs,
            input_space=input_space,
            output_space=output_space,
            inputs=inputs,
            outputs=outputs,
            graph=graph,
            acc_nbytes=acc_nbytes,
        )
