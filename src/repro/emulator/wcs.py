"""WCS emulator: water contamination studies.

Table 1: 7.5K--120K input chunks (1.7--27 GB), 150 output chunks
(17 MB), average fan-in 60--960, average fan-out 1.2, per-chunk costs
1-20-1-1 ms.

The workload couples a hydrodynamics simulation to a chemical
transport code (paper ref [19]): the input is a dense regular grid of
simulation output over (x, y, time), chunked into equal rectangular
blocks; the output is a coarser 15x10 grid over (x, y).  Most input
chunks nest inside a single output chunk; a configurable fraction
carry a halo (overlapping boundary data, as coupled simulations
exchange) and touch a neighbour, producing the published average
fan-out of 1.2.  Scaling extends the time dimension: more time steps,
same spatial structure -- fan-out stays at 1.2 while fan-in grows
linearly, matching Table 1's 60 -> 960 progression exactly.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.chunkset import ChunkSet
from repro.dataset.partition import regular_grid_chunkset
from repro.emulator.base import ApplicationEmulator, ApplicationScenario, grid_overlap_graph
from repro.machine.config import ComputeCosts
from repro.machine.presets import IBM_SP_COSTS
from repro.space.attribute_space import AttributeSpace
from repro.util.rng import make_rng
from repro.util.units import KB

__all__ = ["WCSEmulator"]


class WCSEmulator(ApplicationEmulator):
    name = "WCS"

    def __init__(
        self,
        input_grid: tuple[int, int] = (15, 50),
        steps_per_scale: int = 10,
        chunk_bytes: int = 237 * KB,
        output_blocks: tuple[int, int] = (15, 10),
        output_chunk_bytes: int = 116 * KB,
        acc_factor: float = 4.0,
        halo_fraction: float = 0.2,
    ) -> None:
        self.input_grid = input_grid
        self.steps_per_scale = steps_per_scale
        self.chunk_bytes = chunk_bytes
        self.output_blocks = output_blocks
        self.output_chunk_bytes = output_chunk_bytes
        self.acc_factor = acc_factor
        if not 0.0 <= halo_fraction <= 1.0:
            raise ValueError("halo_fraction must be in [0, 1]")
        self.halo_fraction = halo_fraction

    @property
    def costs(self) -> ComputeCosts:
        return IBM_SP_COSTS["WCS"]

    def scenario(self, scale: int = 1, seed: int = 0) -> ApplicationScenario:
        if scale < 1:
            raise ValueError("scale must be >= 1")
        rng = make_rng(seed)
        gx, gy = self.input_grid
        steps = self.steps_per_scale * scale
        n = gx * gy * steps

        input_space = AttributeSpace.regular(
            "wcs-simulation", ("x", "y", "time"), (0, 0, 0), (1, 1, float(steps))
        )
        output_space = AttributeSpace.regular(
            "wcs-transport-grid", ("x", "y"), (0, 0), (1, 1)
        )

        # Dense regular blocks: cell (i, j) at time step s.
        idx = np.arange(n)
        s = idx // (gx * gy)
        rem = idx % (gx * gy)
        i = rem // gy
        j = rem % gy
        cx, cy = 1.0 / gx, 1.0 / gy
        los = np.stack((i * cx, j * cy, s.astype(float)), axis=1)
        his = np.stack(((i + 1) * cx, (j + 1) * cy, s + 1.0), axis=1)

        # A fraction of chunks carry a boundary halo along x and spill
        # into the neighbouring output chunk (input x-blocks align 1:1
        # with output chunks, so any x-halo crosses a chunk boundary).
        halo = rng.random(n) < self.halo_fraction
        shift = cx * 0.1
        direction = rng.random(n) < 0.5
        left = halo & direction & (i > 0)
        right = halo & ~direction & (i < gx - 1)
        los[left, 0] -= shift
        his[right, 0] += shift
        los[:, 0] = np.clip(los[:, 0], 0.0, 1.0)
        his[:, 0] = np.clip(his[:, 0], 0.0, 1.0)

        nbytes = np.full(n, self.chunk_bytes, dtype=np.int64)
        nbytes[halo] += int(self.chunk_bytes * 0.1)  # halo data rides along
        inputs = ChunkSet(los, his, nbytes)

        graph = grid_overlap_graph(
            los, his, output_space.bounds, self.output_blocks, dims=(0, 1)
        )

        outputs = regular_grid_chunkset(
            output_space.bounds, self.output_blocks, self.output_chunk_bytes
        )
        acc_nbytes = (outputs.nbytes * self.acc_factor).astype(np.int64)

        return ApplicationScenario(
            name=self.name,
            costs=self.costs,
            input_space=input_space,
            output_space=output_space,
            inputs=inputs,
            outputs=outputs,
            graph=graph,
            acc_nbytes=acc_nbytes,
        )
