"""Emulator infrastructure: scenarios and problem assembly."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.dataset.chunkset import ChunkSet
from repro.dataset.graph import ChunkGraph
from repro.decluster.base import Declusterer
from repro.decluster.hilbert import HilbertDeclusterer
from repro.machine.config import ComputeCosts, MachineConfig
from repro.planner.problem import PlanningProblem
from repro.space.attribute_space import AttributeSpace
from repro.util.cells import expand_cell_ranges
from repro.util.geometry import Rect

__all__ = ["ApplicationScenario", "ApplicationEmulator", "grid_overlap_graph"]


@dataclass
class ApplicationScenario:
    """One generated workload: everything needed to build plans."""

    name: str
    costs: ComputeCosts
    input_space: AttributeSpace
    output_space: AttributeSpace
    inputs: ChunkSet
    outputs: ChunkSet
    graph: ChunkGraph
    acc_nbytes: np.ndarray

    @property
    def input_bytes(self) -> int:
        return self.inputs.total_bytes

    @property
    def output_bytes(self) -> int:
        return self.outputs.total_bytes

    def problem(
        self,
        machine: MachineConfig,
        declusterer: Optional[Declusterer] = None,
        init_from_output: bool = False,
    ) -> PlanningProblem:
        """Place both chunk populations on *machine*'s disks (Hilbert
        declustering by default, as in the paper's experiments) and
        assemble the planning problem."""
        decl = declusterer if declusterer is not None else HilbertDeclusterer()
        inputs = decl.place(self.inputs, machine.n_procs, machine.disks_per_node)
        outputs = decl.place(self.outputs, machine.n_procs, machine.disks_per_node)
        return PlanningProblem(
            n_procs=machine.n_procs,
            memory_per_proc=machine.memory_per_proc,
            inputs=inputs,
            outputs=outputs,
            graph=self.graph,
            acc_nbytes=self.acc_nbytes,
            init_from_output=init_from_output,
        )

    def table1_row(self) -> str:
        """This scenario's line of the paper's Table 1."""
        return (
            f"{self.name:>4} | {len(self.inputs):7d} chunks "
            f"{self.input_bytes / 2**30:6.2f} GB | "
            f"{len(self.outputs):4d} chunks {self.output_bytes / 2**20:6.1f} MB | "
            f"fan-in {self.graph.avg_fan_in:7.1f} | fan-out {self.graph.avg_fan_out:5.2f}"
        )


class ApplicationEmulator(ABC):
    """Parameterized generator for one application class."""

    #: class name as used in Table 1 ("SAT", "WCS", "VM")
    name: str = "?"

    @property
    @abstractmethod
    def costs(self) -> ComputeCosts:
        """Per-chunk computation costs (Table 1, I-LR-GC-OH)."""

    @abstractmethod
    def scenario(self, scale: int = 1, seed: int = 0) -> ApplicationScenario:
        """Generate a workload.

        ``scale`` multiplies the input dataset size; the paper's
        scaled-input experiments use ``scale = n_procs / 8``.
        """


def grid_overlap_graph(
    in_los: np.ndarray,
    in_his: np.ndarray,
    out_bounds: Rect,
    out_blocks: Tuple[int, ...],
    dims: Optional[Tuple[int, ...]] = None,
) -> ChunkGraph:
    """Chunk graph: input MBRs vs a regular grid of output chunks.

    All of the paper's output datasets are regular arrays, so the
    "which output chunks does this input chunk touch" question reduces
    to an inclusive cell-range computation per input rectangle --
    vectorized here over the whole input population (no spatial index
    needed for planning-scale populations of 10^5 chunks).

    ``dims`` selects which input dimensions project onto the output
    space (e.g. ``(0, 1)`` drops time); default: the first d output
    dims.
    """
    d_out = out_bounds.ndim
    if dims is None:
        dims = tuple(range(d_out))
    lo, hi = out_bounds.as_arrays()
    blocks = np.asarray(out_blocks, dtype=np.int64)
    span = np.where(hi > lo, hi - lo, 1.0)
    cell = span / blocks

    p_lo = in_los[:, list(dims)]
    p_hi = in_his[:, list(dims)]
    lo_cells = np.clip(np.floor((p_lo - lo) / cell).astype(np.int64), 0, blocks - 1)
    # Upper corners exactly on a cell boundary belong to the lower cell
    # (closed-open grid cells), hence the tiny epsilon pullback.
    eps = cell * 1e-9
    hi_cells = np.clip(
        np.floor((p_hi - lo - eps) / cell).astype(np.int64), 0, blocks - 1
    )
    hi_cells = np.maximum(hi_cells, lo_cells)
    item_idx, cells = expand_cell_ranges(lo_cells, hi_cells)
    out_ids = np.ravel_multi_index(tuple(cells.T), tuple(out_blocks))
    return ChunkGraph(len(in_los), int(np.prod(out_blocks)), item_idx, out_ids)
