"""Generic parameterized application emulator.

The paper's emulators (ref [37]) are *parameterized models* of
application classes: "adjusting the parameter values makes it possible
to generate different application scenarios within the application
class and scale applications in a controlled way".  SAT/WCS/VM fix
those parameters to Table 1; :class:`GenericEmulator` exposes them, so
new application classes can be positioned against the three published
ones -- which strategy wins for *your* fan-out, compute intensity and
spatial skew?  (``benchmarks/bench_crossover_map.py`` sweeps exactly
that.)

Parameters and their strategy-relevant effects:

========================  ==================================================
parameter                 drives
========================  ==================================================
``base_chunks``, bytes    I/O volume; per-processor work
``fan_out``               DA's forwarding volume (input bytes x fan-out)
``spatial``               fan-in skew: ``uniform`` none, ``hotspot`` strong
                          (DA's ownership-granularity load imbalance),
                          ``polar`` the SAT pattern
``acc_factor``            FRA/SRA ghost traffic and tile count
``costs``                 compute-vs-I/O balance; the LR cost scales both
                          the work DA must balance and the time FRA's
                          combine overhead hides under
========================  ==================================================
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.dataset.chunkset import ChunkSet
from repro.dataset.partition import regular_grid_chunkset
from repro.emulator.base import ApplicationEmulator, ApplicationScenario, grid_overlap_graph
from repro.machine.config import ComputeCosts
from repro.space.attribute_space import AttributeSpace
from repro.util.rng import make_rng
from repro.util.units import KB

__all__ = ["GenericEmulator"]

SPATIAL_KINDS = ("uniform", "hotspot", "polar")


class GenericEmulator(ApplicationEmulator):
    name = "GEN"

    def __init__(
        self,
        base_chunks: int = 5000,
        chunk_bytes: int = 200 * KB,
        fan_out: float = 2.0,
        spatial: str = "uniform",
        output_blocks: Tuple[int, int] = (16, 16),
        output_chunk_bytes: int = 100 * KB,
        acc_factor: float = 4.0,
        costs: ComputeCosts = ComputeCosts.from_ms(1, 10, 5, 1),
        name: str = "GEN",
    ) -> None:
        if base_chunks < 1:
            raise ValueError("base_chunks must be >= 1")
        if fan_out < 1.0:
            raise ValueError("fan_out must be >= 1 (every chunk maps somewhere)")
        if spatial not in SPATIAL_KINDS:
            raise ValueError(f"spatial must be one of {SPATIAL_KINDS}")
        self.base_chunks = base_chunks
        self.chunk_bytes = chunk_bytes
        self.fan_out = float(fan_out)
        self.spatial = spatial
        self.output_blocks = output_blocks
        self.output_chunk_bytes = output_chunk_bytes
        self.acc_factor = acc_factor
        self._costs = costs
        self.name = name

    @property
    def costs(self) -> ComputeCosts:
        return self._costs

    # -- spatial distributions of input-chunk centres -------------------

    def _centers(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if self.spatial == "uniform":
            return rng.uniform(0, 1, size=(n, 2))
        if self.spatial == "hotspot":
            # 70% clustered around a fixed hotspot, 30% background
            hot = rng.random(n) < 0.7
            pts = rng.uniform(0, 1, size=(n, 2))
            pts[hot] = np.clip(
                rng.normal(loc=(0.3, 0.6), scale=0.08, size=(int(hot.sum()), 2)),
                0.0,
                1.0,
            )
            return pts
        # polar: sec-shaped density toward y = 0 and y = 1 (SAT-like)
        x_max = np.arcsinh(np.tan(np.radians(80.0)))
        lat = np.degrees(np.arctan(np.sinh(rng.uniform(-x_max, x_max, n))))
        y = (lat + 90.0) / 180.0
        x = rng.uniform(0, 1, size=n)
        return np.stack((x, y), axis=1)

    def scenario(self, scale: int = 1, seed: int = 0) -> ApplicationScenario:
        if scale < 1:
            raise ValueError("scale must be >= 1")
        rng = make_rng(seed)
        n = self.base_chunks * scale

        input_space = AttributeSpace.regular(
            f"{self.name}-input", ("x", "y", "t"), (0, 0, 0), (1, 1, float(scale))
        )
        output_space = AttributeSpace.regular(
            f"{self.name}-output", ("u", "v"), (0, 0), (1, 1)
        )

        centers = self._centers(rng, n)
        t = rng.uniform(0, float(scale), size=n)

        # Footprints sized so the average output-chunk span per
        # dimension is ~sqrt(fan_out); the -0.5 accounts for the +1
        # from almost-sure boundary straddling at spans >= 1.
        bx, by = self.output_blocks
        span = max(np.sqrt(self.fan_out) - 1.0, 0.0)
        half = np.stack(
            (
                rng.uniform(0.4, 1.6, size=n) * span / (2 * bx),
                rng.uniform(0.4, 1.6, size=n) * span / (2 * by),
            ),
            axis=1,
        )
        if self.spatial == "polar":
            widen = 1.0 / np.maximum(np.cos(np.radians(centers[:, 1] * 180 - 90)), 1 / 8)
            half[:, 0] = np.maximum(half[:, 0], (widen - 1) / (2 * bx) * 0.5)
        los = np.concatenate(
            (np.clip(centers - half, 0, 1), t[:, None]), axis=1
        )
        his = np.concatenate(
            (np.clip(centers + half, 0, 1), (t + 1e-3)[:, None]), axis=1
        )
        nbytes = (self.chunk_bytes * rng.uniform(0.9, 1.1, size=n)).astype(np.int64)
        inputs = ChunkSet(los, his, nbytes)

        graph = grid_overlap_graph(
            los, his, output_space.bounds, self.output_blocks, dims=(0, 1)
        )
        outputs = regular_grid_chunkset(
            output_space.bounds, self.output_blocks, self.output_chunk_bytes
        )
        acc_nbytes = (outputs.nbytes * self.acc_factor).astype(np.int64)

        return ApplicationScenario(
            name=self.name,
            costs=self.costs,
            input_space=input_space,
            output_space=output_space,
            inputs=inputs,
            outputs=outputs,
            graph=graph,
            acc_nbytes=acc_nbytes,
        )
