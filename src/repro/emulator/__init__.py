"""Application emulators (paper Section 4, ref [37]).

"An application emulator provides a parameterized model of an
application class; adjusting the parameter values makes it possible to
generate different application scenarios within the application class
and scale applications in a controlled way."

Three emulators reproduce the paper's Table 1 workloads:

- :class:`SATEmulator` -- satellite data processing: irregular input
  chunks from a polar-orbit sensor, elongated and overlapping near the
  poles, high fan-in and a ~4.6 average fan-out;
- :class:`WCSEmulator` -- water contamination studies: a dense regular
  simulation grid over time, fan-out ~1.2;
- :class:`VMEmulator` -- the Virtual Microscope: dense focal-plane
  image blocks aligned to the output grid, fan-out exactly 1.

Each produces an :class:`ApplicationScenario` (chunk populations +
chunk graph + accumulator sizes) from which a placed
:class:`~repro.planner.problem.PlanningProblem` is derived for any
machine size; ``scale`` multiplies the input dataset as the paper's
scaled-input experiments do.
"""

from repro.emulator.base import ApplicationEmulator, ApplicationScenario
from repro.emulator.generic import GenericEmulator
from repro.emulator.sat import SATEmulator
from repro.emulator.wcs import WCSEmulator
from repro.emulator.vm import VMEmulator

EMULATORS = {
    "SAT": SATEmulator,
    "WCS": WCSEmulator,
    "VM": VMEmulator,
}

__all__ = [
    "ApplicationEmulator",
    "ApplicationScenario",
    "GenericEmulator",
    "SATEmulator",
    "WCSEmulator",
    "VMEmulator",
    "EMULATORS",
]
