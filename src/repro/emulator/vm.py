"""VM emulator: the Virtual Microscope.

Table 1: 4K--64K input chunks (1.5--24 GB), 256 output chunks (48 MB),
average fan-in 16--128, average fan-out 1.0, per-chunk costs
1-5-1-1 ms.

A digitized slide is "effectively a three-dimensional dataset, since
each slide can contain multiple two-dimensional focal planes"; the
image is stored as dense, perfectly regular blocks.  Each input block
nests exactly inside one output chunk (fan-out 1.0 -- the most regular
workload in the paper), and scaling adds focal planes, multiplying
fan-in without touching fan-out.  This is the application where the
paper *expected* DA to win ("the computation cost per block in VM is
small, and it is a highly regular application with low fan-out") but
measured I/O fluctuation instead -- reproduced here via the machine
model's ``io_jitter``.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.chunkset import ChunkSet
from repro.dataset.partition import regular_grid_chunkset
from repro.emulator.base import ApplicationEmulator, ApplicationScenario, grid_overlap_graph
from repro.machine.config import ComputeCosts
from repro.machine.presets import IBM_SP_COSTS
from repro.space.attribute_space import AttributeSpace
from repro.util.rng import make_rng
from repro.util.units import KB

__all__ = ["VMEmulator"]


class VMEmulator(ApplicationEmulator):
    name = "VM"

    def __init__(
        self,
        input_grid: tuple[int, int] = (64, 64),
        planes_per_scale: int = 1,
        chunk_bytes: int = 390 * KB,
        output_blocks: tuple[int, int] = (16, 16),
        output_chunk_bytes: int = 190 * KB,
        acc_factor: float = 2.0,
    ) -> None:
        gx, gy = input_grid
        ox, oy = output_blocks
        if gx % ox or gy % oy:
            raise ValueError(
                "input grid must align to the output blocks (fan-out 1.0)"
            )
        self.input_grid = input_grid
        self.planes_per_scale = planes_per_scale
        self.chunk_bytes = chunk_bytes
        self.output_blocks = output_blocks
        self.output_chunk_bytes = output_chunk_bytes
        self.acc_factor = acc_factor

    @property
    def costs(self) -> ComputeCosts:
        return IBM_SP_COSTS["VM"]

    def scenario(self, scale: int = 1, seed: int = 0) -> ApplicationScenario:
        if scale < 1:
            raise ValueError("scale must be >= 1")
        rng = make_rng(seed)
        gx, gy = self.input_grid
        planes = self.planes_per_scale * scale
        n = gx * gy * planes

        input_space = AttributeSpace.regular(
            "vm-slide", ("x", "y", "plane"), (0, 0, 0), (1, 1, float(planes))
        )
        output_space = AttributeSpace.regular(
            "vm-view", ("x", "y"), (0, 0), (1, 1)
        )

        idx = np.arange(n)
        p = idx // (gx * gy)
        rem = idx % (gx * gy)
        i = rem // gy
        j = rem % gy
        cx, cy = 1.0 / gx, 1.0 / gy
        los = np.stack((i * cx, j * cy, p.astype(float)), axis=1)
        his = np.stack(((i + 1) * cx, (j + 1) * cy, p + 1.0), axis=1)

        # Dense image blocks: essentially uniform size (JPEG-style
        # compression variation of a few percent).
        nbytes = (self.chunk_bytes * rng.uniform(0.97, 1.03, size=n)).astype(np.int64)
        inputs = ChunkSet(los, his, nbytes)

        graph = grid_overlap_graph(
            los, his, output_space.bounds, self.output_blocks, dims=(0, 1)
        )

        outputs = regular_grid_chunkset(
            output_space.bounds, self.output_blocks, self.output_chunk_bytes
        )
        acc_nbytes = (outputs.nbytes * self.acc_factor).astype(np.int64)

        return ApplicationScenario(
            name=self.name,
            costs=self.costs,
            input_space=input_space,
            output_space=output_space,
            inputs=inputs,
            outputs=outputs,
            graph=graph,
            acc_nbytes=acc_nbytes,
        )
