"""Discrete-event simulation of ADR query execution.

The paper's query execution service overlaps disk operations, network
operations and processing by keeping per-kind operation queues and
switching between them (Section 2.4).  This package reproduces that
runtime as a discrete-event simulation: every node has a disk, a CPU
and full-duplex NIC channels, each a FIFO server; query-plan traffic
(reads, input forwards, ghost shipments) and per-chunk computation
flow through them with real dependency chains, so overlap, contention,
pipelining and load imbalance emerge rather than being assumed.

- :mod:`repro.sim.events` -- the generic event core (simulator clock,
  FIFO resources, barriers);
- :mod:`repro.sim.query_sim` -- executes a
  :class:`~repro.planner.plan.QueryPlan` on a
  :class:`~repro.machine.config.MachineConfig` and reports
  per-phase/per-processor timing (the Figure 8 and 9 quantities).
"""

from repro.sim.events import Simulator, Resource, Barrier
from repro.sim.query_sim import SimResult, simulate_query
from repro.sim.timeline import render_timeline, utilization

__all__ = [
    "Simulator",
    "Resource",
    "Barrier",
    "SimResult",
    "simulate_query",
    "render_timeline",
    "utilization",
]
