"""ASCII timeline (Gantt) rendering for simulated executions.

The paper's Section 2.4 performance story is about *overlap*: disk,
network and CPU operations proceeding concurrently through per-kind
operation queues.  A timeline makes that visible: one row per resource
per processor, time bucketed across the terminal width, a filled cell
whenever the resource was busy during that bucket.

Usage::

    res = simulate_query(plan, machine, costs, record_timeline=True)
    print(render_timeline(res))
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.sim.query_sim import SimResult

__all__ = ["render_timeline", "utilization", "timeline_records", "write_timeline_csv"]

_KIND_ORDER = ("disk", "cpu", "out", "in")


def _parse_name(name: str) -> Tuple[int, str]:
    """Resource name -> (processor, kind); e.g. 'disk3.0' -> (3, 'disk')."""
    for kind in _KIND_ORDER:
        if name.startswith(kind):
            rest = name[len(kind):]
            proc = rest.split(".")[0]
            return int(proc), kind
    raise ValueError(f"unrecognized resource name {name!r}")


def _coverage(intervals: List[tuple], t0: float, t1: float) -> float:
    """Busy time inside the bucket [t0, t1)."""
    total = 0.0
    for s, e in intervals:
        lo = max(s, t0)
        hi = min(e, t1)
        if hi > lo:
            total += hi - lo
    return total


def render_timeline(
    result: SimResult,
    width: int = 72,
    procs: Optional[List[int]] = None,
) -> str:
    """Render per-resource busy timelines as text.

    Cells: `` `` idle, ``.`` <25% busy, ``-`` <50%, ``=`` <75%,
    ``#`` >=75% of the bucket.
    """
    if result.timelines is None:
        raise ValueError(
            "result has no timelines; simulate with record_timeline=True"
        )
    if width < 8:
        raise ValueError("width must be at least 8")
    total = result.total_time
    if total <= 0:
        return "(empty simulation)"
    bucket = total / width

    rows: Dict[Tuple[int, str], List[tuple]] = {}
    for name, intervals in result.timelines.items():
        proc, kind = _parse_name(name)
        rows.setdefault((proc, kind), []).extend(intervals)

    wanted = procs if procs is not None else sorted({p for p, _ in rows})
    shades = " .-=#"
    lines = [
        f"timeline: {result.strategy}, {result.total_time:.2f} s total, "
        f"{width} buckets of {bucket * 1e3:.1f} ms"
    ]
    for p in wanted:
        for kind in _KIND_ORDER:
            intervals = rows.get((p, kind))
            if intervals is None:
                continue
            cells = []
            for b in range(width):
                frac = _coverage(intervals, b * bucket, (b + 1) * bucket) / bucket
                idx = min(int(frac * 4 + 0.999), 4) if frac > 0 else 0
                cells.append(shades[idx])
            lines.append(f"P{p:<3d}{kind:>4} |{''.join(cells)}|")
        lines.append("")
    return "\n".join(lines).rstrip()


def utilization(result: SimResult) -> Dict[str, float]:
    """Mean busy fraction per resource kind over the whole run."""
    if result.total_time <= 0:
        return {k: 0.0 for k in _KIND_ORDER}
    return {
        "disk": float(result.disk_busy.mean() / result.total_time),
        "cpu": float(result.cpu_busy.mean() / result.total_time),
        "out": float(result.net_out_busy.mean() / result.total_time),
        "in": float(result.net_in_busy.mean() / result.total_time),
    }


def timeline_records(result: SimResult) -> List[Dict[str, object]]:
    """Flatten recorded intervals into plottable records.

    Each record: ``{"proc", "kind", "start", "end"}`` -- the schema a
    notebook or plotting tool wants for a proper Gantt chart.
    """
    if result.timelines is None:
        raise ValueError(
            "result has no timelines; simulate with record_timeline=True"
        )
    records: List[Dict[str, object]] = []
    for name, intervals in sorted(result.timelines.items()):
        proc, kind = _parse_name(name)
        for s, e in intervals:
            records.append({"proc": proc, "kind": kind, "start": s, "end": e})
    records.sort(key=lambda r: (r["proc"], r["kind"], r["start"]))
    return records


def write_timeline_csv(result: SimResult, path) -> int:
    """Write the timeline records as CSV; returns the row count."""
    import csv

    records = timeline_records(result)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(fh, fieldnames=["proc", "kind", "start", "end"])
        writer.writeheader()
        writer.writerows(records)
    return len(records)
