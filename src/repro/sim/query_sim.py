"""Simulate the execution of a query plan on a machine model.

Execution follows the paper's Section 2.4 exactly: for every tile the
back end runs four phases -- Initialization, Local Reduction, Global
Combine, Output Handling -- with a barrier between phases, and inside
each phase disk, network and CPU operations flow through per-resource
FIFO queues with true dependency chains ("data chunks are retrieved
and processed in a pipelined fashion").

Modeling decisions (also recorded in DESIGN.md):

- One processor per node, one CPU resource, one FIFO per local disk,
  and full-duplex NIC channels (send/receive) at the per-node link
  bandwidth; messages occupy both endpoints for ``bytes/bandwidth``
  seconds, separated by the link latency (store-and-forward).
- Under DA the paper advances tiles per processor; by default tiles
  are simulated as synchronized rounds (round ``t`` activates every
  output chunk with tile index ``t``), matching Section 2.4's
  phase-by-phase description.  ``sync_tiles=False`` switches to the
  literal Figure-6 semantics: fully asynchronous per-processor
  progression where only data dependencies (forwarded inputs, ghost
  receipts) order work -- the barrier-cost ablation.
- ``overlap=False`` models the layered architecture the paper
  contrasts against: within the local-reduction phase a processor may
  not start computing or forwarding until all its reads for the tile
  have completed, and may not aggregate received chunks before that
  either.  This is the Section 2.4 ablation.
- ``io_jitter`` multiplies each disk operation by a unit-mean
  log-normal factor, reproducing the AIX file-cache I/O fluctuation
  the paper reports for VM on large configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.machine.config import ComputeCosts, MachineConfig
from repro.planner.plan import QueryPlan
from repro.sim.events import Barrier, Resource, Simulator

__all__ = ["SimResult", "simulate_query"]

PHASES = ("init", "reduction", "combine", "output")


@dataclass
class SimResult:
    """Outcome of one simulated query execution."""

    strategy: str
    n_procs: int
    n_tiles: int
    total_time: float
    phase_times: Dict[str, float]
    cpu_busy: np.ndarray
    disk_busy: np.ndarray
    net_out_busy: np.ndarray
    net_in_busy: np.ndarray
    sent_bytes: np.ndarray
    recv_bytes: np.ndarray
    read_bytes: np.ndarray
    #: per-resource (start, end) busy intervals; populated only when
    #: the simulation ran with record_timeline=True
    timelines: Optional[Dict[str, List[tuple]]] = None
    #: chunks the planner dropped via value-synopsis pruning; the
    #: simulated schedule already excludes them, so the priced I/O and
    #: communication reflect the pruned query
    chunks_pruned: int = 0
    bytes_pruned: int = 0

    @property
    def computation_time(self) -> float:
        """Busiest processor's CPU time (the Figure 9 c/d metric: load
        imbalance shows up here, as the paper discusses)."""
        return float(self.cpu_busy.max())

    @property
    def computation_time_mean(self) -> float:
        return float(self.cpu_busy.mean())

    @property
    def comm_volume_per_proc(self) -> float:
        """Mean bytes sent+received per processor (Figure 9 a/b)."""
        return float((self.sent_bytes + self.recv_bytes).mean())

    @property
    def io_time(self) -> float:
        return float(self.disk_busy.max())

    def row(self) -> str:
        return (
            f"{self.strategy:>6}: {self.total_time:8.2f} s  "
            f"(comp {self.computation_time:8.2f} s, io {self.io_time:7.2f} s, "
            f"comm {self.comm_volume_per_proc / 2**20:8.1f} MB/proc, "
            f"{self.n_tiles} tiles)"
        )


class _QuerySim:
    def __init__(
        self,
        plan: QueryPlan,
        machine: MachineConfig,
        costs: ComputeCosts,
        seed: int,
        overlap: bool,
        cached_inputs: Optional[frozenset] = None,
        record_timeline: bool = False,
        sync_tiles: bool = True,
    ) -> None:
        problem = plan.problem
        if machine.n_procs != problem.n_procs:
            raise ValueError(
                f"plan targets {problem.n_procs} processors but the machine "
                f"has {machine.n_procs}"
            )
        self.plan = plan
        self.problem = problem
        self.machine = machine
        self.costs = costs
        self.overlap = overlap
        self.cached_inputs = cached_inputs if cached_inputs is not None else frozenset()
        self.sync_tiles = sync_tiles
        self.rng = np.random.default_rng(seed)

        P = machine.n_procs
        self.sim = Simulator()
        rec = record_timeline
        self.cpu = [Resource(self.sim, f"cpu{p}", rec) for p in range(P)]
        self.disk = [
            [
                Resource(self.sim, f"disk{p}.{d}", rec)
                for d in range(machine.disks_per_node)
            ]
            for p in range(P)
        ]
        self.nic_out = [Resource(self.sim, f"out{p}", rec) for p in range(P)]
        self.nic_in = [Resource(self.sim, f"in{p}", rec) for p in range(P)]
        self._record_timeline = rec

        self.sent_bytes = np.zeros(P, dtype=np.int64)
        self.recv_bytes = np.zeros(P, dtype=np.int64)
        self.read_bytes = np.zeros(P, dtype=np.int64)
        self.phase_times = {k: 0.0 for k in PHASES}

        self._prepare()

    # ------------------------------------------------------------------
    # Static preparation: group plan traffic by tile
    # ------------------------------------------------------------------

    def _prepare(self) -> None:
        plan, problem = self.plan, self.problem
        self.n_tiles = plan.n_tiles

        # The simulator prices the very schedule the functional
        # backends execute: every per-tile grouping below comes from
        # the shared :class:`~repro.runtime.phases.PhaseSchedule`
        # (``plan.schedule()``), so simulated and measured executions
        # can never drift apart structurally.
        sched = plan.schedule()
        tiles = sched.tiles

        # Compute units: unique (tile, input chunk, processor) with the
        # number of (input, accumulator) pairs each represents.
        self.cu_tile = sched.cu_tile
        self.cu_in = sched.cu_in
        self.cu_proc = sched.cu_proc
        self.cu_pairs = sched.cu_pairs
        # Tile slice boundaries over the (sorted) unit arrays.
        self.cu_bounds = sched.cu_bounds

        # Initialization work: accumulator allocations per (tile, proc).
        self.init_counts = sched.init_counts

        # Ghost shipments per tile (global combine).
        g = plan.ghost_transfers
        self.gt_tile = g.tile[tiles.gt_order]
        self.gt_out = g.chunk[tiles.gt_order]
        self.gt_src = g.src[tiles.gt_order]
        self.gt_dst = g.dst[tiles.gt_order]
        self.gt_bounds = tiles.gt_bounds

        # Output handling per tile.
        self.oh_out = tiles.out_order.astype(np.int64)
        self.oh_tile = plan.tile_of_output[tiles.out_order]
        self.oh_bounds = tiles.out_bounds

        # Initialization-from-output chains (rare; off in the paper's
        # experiments): owners re-read existing output chunks and
        # forward to ghost holders.
        self.init_from_output = problem.init_from_output

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _jitter(self) -> float:
        sigma = self.machine.io_jitter
        if sigma <= 0:
            return 1.0
        return float(self.rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma))

    def _read(self, proc: int, disk: int, nbytes: int, on_done: Callable[[], None]) -> None:
        dur = self.machine.read_time(nbytes) * self._jitter()
        self.read_bytes[proc] += nbytes
        self.disk[proc][disk].submit(dur, on_done)

    def _write(self, proc: int, disk: int, nbytes: int, on_done: Callable[[], None]) -> None:
        dur = self.machine.read_time(nbytes) * self._jitter()
        self.disk[proc][disk].submit(dur, on_done)

    def _send(self, src: int, dst: int, nbytes: int, on_done: Callable[[], None]) -> None:
        """Store-and-forward message: CPU-driven marshalling at the
        source, src out-channel, latency, dst in-channel, CPU-driven
        unmarshalling at the destination, then *on_done* there.

        The CPU legs model the SP's processor-driven message passing
        (``cpu_per_byte``); with it at zero they are free but keep the
        dependency chain identical."""
        dur = self.machine.send_time(nbytes)
        cpu_cost = self.machine.cpu_per_byte * nbytes
        self.sent_bytes[src] += nbytes
        self.recv_bytes[dst] += nbytes

        if cpu_cost > 0:
            def received() -> None:
                self.cpu[dst].submit(cpu_cost, on_done)

            def arrive() -> None:
                self.nic_in[dst].submit(dur, received)

            def marshalled() -> None:
                self.nic_out[src].submit(
                    dur, lambda: self.sim.after(self.machine.link_latency, arrive)
                )

            self.cpu[src].submit(cpu_cost, marshalled)
        else:
            def arrive() -> None:
                self.nic_in[dst].submit(dur, on_done)

            self.nic_out[src].submit(
                dur, lambda: self.sim.after(self.machine.link_latency, arrive)
            )

    # ------------------------------------------------------------------
    # Phase drivers
    # ------------------------------------------------------------------

    def _run_tile(self, t: int, on_done: Callable[[], None]) -> None:
        self._phase_init(
            t,
            lambda: self._phase_reduction(
                t,
                lambda: self._phase_combine(
                    t, lambda: self._phase_output(t, on_done)
                ),
            ),
        )

    def _timed_barrier(self, phase: str, count: int, on_done: Callable[[], None]) -> Barrier:
        start = self.sim.now

        def fire() -> None:
            self.phase_times[phase] += self.sim.now - start
            on_done()

        return Barrier(self.sim, count, fire)

    def _phase_init(self, t: int, on_done: Callable[[], None]) -> None:
        counts = self.init_counts[t]
        cpu_ops = int((counts > 0).sum())
        extra = 0
        if self.init_from_output:
            a, b = self.oh_bounds[t], self.oh_bounds[t + 1]
            # one read per output chunk + one receive per ghost holder
            extra = (b - a) + int(self.gt_bounds[t + 1] - self.gt_bounds[t])
        barrier = self._timed_barrier("init", cpu_ops + extra, on_done)
        for p in np.flatnonzero(counts):
            self.cpu[int(p)].submit(self.costs.init * int(counts[p]), barrier.hit)
        if self.init_from_output:
            problem = self.problem
            for k in range(self.oh_bounds[t], self.oh_bounds[t + 1]):
                o = int(self.oh_out[k])
                owner = int(problem.output_owner[o])
                disk = int(problem.outputs.disk[o])
                nbytes = int(problem.outputs.nbytes[o])
                holders = [int(h) for h in self.plan.holders_of(o) if int(h) != owner]

                def after_read(o=o, owner=owner, nbytes=nbytes, holders=holders) -> None:
                    barrier.hit()
                    for h in holders:
                        self._send(owner, h, nbytes, barrier.hit)

                self._read(owner, disk, nbytes, after_read)

    def _phase_reduction(self, t: int, on_done: Callable[[], None]) -> None:
        problem, machine = self.problem, self.machine
        a, b = int(self.cu_bounds[t]), int(self.cu_bounds[t + 1])
        barrier = self._timed_barrier("reduction", b - a, on_done)
        if b == a:
            return
        lr = self.costs.reduction
        in_owner = problem.input_owner
        in_disk = problem.inputs.disk
        in_bytes = problem.inputs.nbytes

        # overlap=False bookkeeping: per-proc gate that opens when all
        # of the processor's reads for this tile are done.
        gates: Optional[List[_Gate]] = None
        if not self.overlap:
            reads_per_proc = np.zeros(machine.n_procs, dtype=np.int64)
            k = a
            while k < b:
                i = int(self.cu_in[k])
                reads_per_proc[in_owner[i]] += 1
                k += 1
                while k < b and self.cu_in[k] == i and self.cu_tile[k] == t:
                    k += 1
            gates = [_Gate(int(n)) for n in reads_per_proc]

        k = a
        while k < b:
            i = int(self.cu_in[k])
            p = int(in_owner[i])
            nbytes = int(in_bytes[i])
            # Gather this read's compute units (same tile, same input).
            local_pairs = 0
            remote: List[tuple[int, int]] = []
            while k < b and int(self.cu_in[k]) == i:
                q, pairs = int(self.cu_proc[k]), int(self.cu_pairs[k])
                if q == p:
                    local_pairs += pairs
                else:
                    remote.append((q, pairs))
                k += 1

            def after_read(
                p=p, i=i, nbytes=nbytes, local_pairs=local_pairs, remote=remote
            ) -> None:
                if gates is not None:
                    gates[p].read_done()

                def do_work() -> None:
                    if local_pairs:
                        self.cpu[p].submit(lr * local_pairs, barrier.hit)
                    for q, pairs in remote:

                        def on_arrival(q=q, pairs=pairs) -> None:
                            compute = lambda: self.cpu[q].submit(lr * pairs, barrier.hit)
                            if gates is not None:
                                gates[q].when_open(compute)
                            else:
                                compute()

                        self._send(p, q, nbytes, on_arrival)

                if gates is not None:
                    gates[p].when_open(do_work)
                else:
                    do_work()

            if i in self.cached_inputs:
                # Resident from a previous query in the batch (scan
                # sharing): no disk operation, immediate availability.
                self.sim.after(0.0, after_read)
            else:
                self._read(p, int(in_disk[i]), nbytes, after_read)

    def _phase_combine(self, t: int, on_done: Callable[[], None]) -> None:
        problem = self.problem
        a, b = int(self.gt_bounds[t]), int(self.gt_bounds[t + 1])
        barrier = self._timed_barrier("combine", b - a, on_done)
        gc = self.costs.combine
        for k in range(a, b):
            o = int(self.gt_out[k])
            src, dst = int(self.gt_src[k]), int(self.gt_dst[k])
            nbytes = int(problem.acc_nbytes[o])
            self._send(
                src,
                dst,
                nbytes,
                lambda dst=dst: self.cpu[dst].submit(gc, barrier.hit),
            )

    def _phase_output(self, t: int, on_done: Callable[[], None]) -> None:
        problem = self.problem
        a, b = int(self.oh_bounds[t]), int(self.oh_bounds[t + 1])
        barrier = self._timed_barrier("output", b - a, on_done)
        oh = self.costs.output
        for k in range(a, b):
            o = int(self.oh_out[k])
            p = int(problem.output_owner[o])
            disk = int(problem.outputs.disk[o])
            nbytes = int(problem.outputs.nbytes[o])
            self.cpu[p].submit(
                oh,
                lambda p=p, disk=disk, nbytes=nbytes: self._write(
                    p, disk, nbytes, barrier.hit
                ),
            )

    # ------------------------------------------------------------------
    # Asynchronous tile progression (the Figure-6 per-processor tiles)
    # ------------------------------------------------------------------

    def _prepare_async(self) -> None:
        """Per-(tile, proc) structures for barrier-free progression."""
        P = self.machine.n_procs
        T = max(self.n_tiles, 1)
        # compute units owed per (tile, proc)
        self.n_cu_tp = np.zeros((T, P), dtype=np.int64)
        if len(self.cu_tile):
            np.add.at(self.n_cu_tp, (self.cu_tile, self.cu_proc), 1)
        # ghost messages expected per (tile, dst proc)
        self.n_gin_tp = np.zeros((T, P), dtype=np.int64)
        if len(self.gt_tile):
            np.add.at(self.n_gin_tp, (self.gt_tile, self.gt_dst), 1)
        # reads grouped per (tile, reader): list of
        # (chunk, disk, nbytes, local_pairs, [(dst, pairs), ...])
        self.reads_tp: Dict[tuple, list] = {}
        in_owner = self.problem.input_owner
        in_disk = self.problem.inputs.disk
        in_bytes = self.problem.inputs.nbytes
        k, n = 0, len(self.cu_tile)
        while k < n:
            t, i = int(self.cu_tile[k]), int(self.cu_in[k])
            p = int(in_owner[i])
            local_pairs = 0
            remote: List[tuple] = []
            while k < n and int(self.cu_tile[k]) == t and int(self.cu_in[k]) == i:
                q, pairs = int(self.cu_proc[k]), int(self.cu_pairs[k])
                if q == p:
                    local_pairs += pairs
                else:
                    remote.append((q, pairs))
                k += 1
            self.reads_tp.setdefault((t, p), []).append(
                (i, int(in_disk[i]), int(in_bytes[i]), local_pairs, remote)
            )
        # ghost sends grouped per (tile, src)
        self.gsend_tp: Dict[tuple, list] = {}
        for k in range(len(self.gt_tile)):
            self.gsend_tp.setdefault(
                (int(self.gt_tile[k]), int(self.gt_src[k])), []
            ).append((int(self.gt_out[k]), int(self.gt_dst[k])))
        # outputs grouped per (tile, owner)
        self.oh_tp: Dict[tuple, list] = {}
        owner = self.problem.output_owner
        for k in range(len(self.oh_out)):
            o = int(self.oh_out[k])
            self.oh_tp.setdefault((int(self.oh_tile[k]), int(owner[o])), []).append(o)

    def _run_async(self, on_all_done: Callable[[], None]) -> None:
        """Every processor walks its own tile sequence; the only
        cross-processor waits are message counts (forwarded-input
        aggregations and ghost receipts), exactly the coupling the data
        itself imposes.  Phase-time attribution is undefined here (the
        phases of different tiles overlap across processors)."""
        if self.init_from_output:
            raise NotImplementedError(
                "asynchronous tiles do not support init_from_output"
            )
        self._prepare_async()
        P = self.machine.n_procs
        lr, gc, oh = self.costs.reduction, self.costs.combine, self.costs.output
        problem = self.problem
        done_barrier = Barrier(self.sim, P, on_all_done)
        # acc-ready gates per (proc, tile): computes and combines into
        # a processor's tile-t accumulators wait here until its
        # initialization for tile t ran.
        init_gates: Dict[tuple, _Gate] = {
            (p, t): _Gate(1) for p in range(P) for t in range(self.n_tiles)
        }

        def start_tile(p: int, t: int) -> None:
            if t >= self.n_tiles:
                done_barrier.hit()
                return
            gate = init_gates[(p, t)]

            # completion accounting for this processor's tile
            state = {"cu": int(self.n_cu_tp[t, p]), "gin": int(self.n_gin_tp[t, p])}

            def maybe_output() -> None:
                if state["cu"] == 0 and state["gin"] == 0:
                    state["cu"] = state["gin"] = -1  # fire once
                    do_output()

            def cu_hit() -> None:
                state["cu"] -= 1
                if state["cu"] == 0:
                    do_ghost_sends()
                    maybe_output()

            def gin_hit() -> None:
                state["gin"] -= 1
                maybe_output()

            def do_ghost_sends() -> None:
                for o, dst in self.gsend_tp.get((t, p), ()):
                    nbytes = int(problem.acc_nbytes[o])

                    def combine_at(dst=dst) -> None:
                        init_gates[(dst, t)].when_open(
                            lambda: self.cpu[dst].submit(
                                gc, lambda: async_gin_hits[(dst, t)]()
                            )
                        )

                    self._send(p, dst, nbytes, combine_at)

            def do_output() -> None:
                chunks = self.oh_tp.get((t, p), [])
                bar = Barrier(self.sim, len(chunks), lambda: start_tile(p, t + 1))
                for o in chunks:
                    disk = int(problem.outputs.disk[o])
                    nbytes = int(problem.outputs.nbytes[o])
                    self.cpu[p].submit(
                        oh,
                        lambda disk=disk, nbytes=nbytes: self._write(
                            p, disk, nbytes, bar.hit
                        ),
                    )

            async_cu_hits[(p, t)] = cu_hit
            async_gin_hits[(p, t)] = gin_hit

            # A: initialization (opens the acc gate)
            alloc = int(self.init_counts[t][p])
            self.cpu[p].submit(self.costs.init * alloc, gate.read_done)

            # B: this processor's reads for the tile
            for i, disk, nbytes, local_pairs, remote in self.reads_tp.get((t, p), ()):

                def after_read(local_pairs=local_pairs, remote=remote, nbytes=nbytes) -> None:
                    if local_pairs:
                        gate.when_open(
                            lambda: self.cpu[p].submit(
                                lr * local_pairs, lambda: async_cu_hits[(p, t)]()
                            )
                        )
                    for q, pairs in remote:

                        def on_arrival(q=q, pairs=pairs) -> None:
                            init_gates[(q, t)].when_open(
                                lambda: self.cpu[q].submit(
                                    lr * pairs, lambda: async_cu_hits[(q, t)]()
                                )
                            )

                        self._send(p, q, nbytes, on_arrival)

                if i in self.cached_inputs:
                    self.sim.after(0.0, after_read)
                else:
                    self._read(p, disk, nbytes, after_read)

            # degenerate tiles complete immediately
            if state["cu"] == 0:
                do_ghost_sends()
            maybe_output()

        async_cu_hits: Dict[tuple, Callable[[], None]] = {}
        async_gin_hits: Dict[tuple, Callable[[], None]] = {}
        for p in range(P):
            start_tile(p, 0)

    # ------------------------------------------------------------------
    # Entry
    # ------------------------------------------------------------------

    def run(self) -> SimResult:
        done = {"flag": False}

        def finish() -> None:
            done["flag"] = True

        if self.sync_tiles:
            def next_tile(t: int) -> None:
                if t >= self.n_tiles:
                    finish()
                    return
                self._run_tile(t, lambda: next_tile(t + 1))

            next_tile(0)
        elif self.n_tiles > 0:
            self._run_async(finish)
        else:
            finish()
        total = self.sim.run()
        if not done["flag"] and self.n_tiles > 0:
            raise RuntimeError("simulation ended before all tiles completed")
        return SimResult(
            strategy=self.plan.strategy,
            n_procs=self.machine.n_procs,
            n_tiles=self.n_tiles,
            total_time=total,
            phase_times=dict(self.phase_times),
            cpu_busy=np.asarray([r.busy_time for r in self.cpu]),
            disk_busy=np.asarray(
                [sum(d.busy_time for d in disks) for disks in self.disk]
            ),
            net_out_busy=np.asarray([r.busy_time for r in self.nic_out]),
            net_in_busy=np.asarray([r.busy_time for r in self.nic_in]),
            sent_bytes=self.sent_bytes.copy(),
            recv_bytes=self.recv_bytes.copy(),
            read_bytes=self.read_bytes.copy(),
            timelines=self._collect_timelines() if self._record_timeline else None,
            chunks_pruned=self.problem.n_pruned,
            bytes_pruned=self.problem.pruned_bytes,
        )

    def _collect_timelines(self) -> Dict[str, List[tuple]]:
        out: Dict[str, List[tuple]] = {}
        for r in self.cpu + self.nic_out + self.nic_in:
            out[r.name] = list(r.intervals or [])
        for disks in self.disk:
            for r in disks:
                out[r.name] = list(r.intervals or [])
        return out


class _Gate:
    """overlap=False helper: queues actions until N reads complete."""

    __slots__ = ("_remaining", "_pending")

    def __init__(self, n_reads: int) -> None:
        self._remaining = n_reads
        self._pending: Optional[List[Callable[[], None]]] = [] if n_reads else None

    def read_done(self) -> None:
        self._remaining -= 1
        if self._remaining == 0 and self._pending is not None:
            pending, self._pending = self._pending, None
            for fn in pending:
                fn()

    def when_open(self, fn: Callable[[], None]) -> None:
        if self._pending is None:
            fn()
        else:
            self._pending.append(fn)


def simulate_query(
    plan: QueryPlan,
    machine: MachineConfig,
    costs: ComputeCosts,
    seed: int = 0,
    overlap: bool = True,
    cached_inputs: Optional[frozenset] = None,
    record_timeline: bool = False,
    sync_tiles: bool = True,
) -> SimResult:
    """Simulate executing *plan* on *machine* with per-chunk *costs*.

    Returns a :class:`SimResult` with the total elapsed (virtual) time,
    per-phase times, and per-processor CPU/disk/network occupancy and
    traffic -- everything Figures 8 and 9 plot.

    ``cached_inputs`` names (problem-local) input chunk ids already
    resident in memory from a preceding query of the same batch; their
    retrievals cost no disk time (see
    :func:`repro.planner.batch.simulate_batch`).

    ``record_timeline`` attaches per-resource busy intervals to the
    result for rendering with :mod:`repro.sim.timeline`.

    ``sync_tiles=False`` switches to asynchronous per-processor tile
    progression (the literal Figure-6 semantics for DA: "Tile(p)"
    counters per processor): the global per-tile phase barriers are
    replaced by the message-count waits the data itself imposes.
    Per-phase time attribution is undefined in this mode
    (``phase_times`` stays zero).
    """
    return _QuerySim(
        plan, machine, costs, seed, overlap, cached_inputs, record_timeline,
        sync_tiles,
    ).run()
