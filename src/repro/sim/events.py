"""Generic discrete-event core: clock, FIFO resources, barriers.

Deliberately minimal -- a heap of timestamped callbacks plus a FIFO
server abstraction -- because the query simulator drives everything
through explicit dependency chains.  Determinism matters for tests:
events at equal timestamps fire in submission order (a monotone
sequence number breaks ties), so simulations are exactly repeatable.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

__all__ = ["Simulator", "Resource", "Barrier"]


class Simulator:
    """Event loop with a virtual clock."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self.now = 0.0

    def at(self, time: float, fn: Callable[[], None]) -> None:
        """Schedule *fn* at absolute virtual time *time*."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        heapq.heappush(self._heap, (time, self._seq, fn))
        self._seq += 1

    def after(self, delay: float, fn: Callable[[], None]) -> None:
        self.at(self.now + delay, fn)

    def run(self, max_events: Optional[int] = None) -> float:
        """Drain the event heap; returns the final clock value."""
        n = 0
        heap = self._heap
        while heap:
            time, _, fn = heapq.heappop(heap)
            self.now = time
            fn()
            n += 1
            if max_events is not None and n >= max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events -- likely a cycle"
                )
        return self.now


class Resource:
    """A FIFO server: one operation at a time, queued arrivals.

    This is the unit everything contends on -- a disk, a CPU, one
    direction of a NIC.  ``busy_time`` accumulates total service time,
    which is how the simulator reports per-processor computation time
    and disk/network occupancy.
    """

    __slots__ = (
        "_sim", "_queue", "_busy", "busy_time", "op_count", "name", "intervals"
    )

    def __init__(self, sim: Simulator, name: str = "", record: bool = False) -> None:
        self._sim = sim
        self._queue: Deque[Tuple[float, Optional[Callable[[], None]]]] = deque()
        self._busy = False
        self.busy_time = 0.0
        self.op_count = 0
        self.name = name
        #: (start, end) service intervals, recorded when *record* is set
        self.intervals: Optional[List[Tuple[float, float]]] = [] if record else None

    def submit(self, duration: float, on_done: Optional[Callable[[], None]] = None) -> None:
        """Enqueue an operation of *duration* seconds."""
        if duration < 0:
            raise ValueError("operation duration must be non-negative")
        self._queue.append((duration, on_done))
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        duration, on_done = self._queue.popleft()
        self._busy = True
        self.busy_time += duration
        self.op_count += 1
        if self.intervals is not None and duration > 0:
            self.intervals.append((self._sim.now, self._sim.now + duration))
        self._sim.after(duration, lambda: self._finish(on_done))

    def _finish(self, on_done: Optional[Callable[[], None]]) -> None:
        self._busy = False
        if self._queue:
            self._start_next()
        if on_done is not None:
            on_done()

    @property
    def queue_depth(self) -> int:
        return len(self._queue) + (1 if self._busy else 0)


class Barrier:
    """Fires a callback after *count* completions have been reported.

    A zero-count barrier fires immediately on construction via the
    event loop (delay 0), keeping control flow uniform.
    """

    __slots__ = ("_remaining", "_on_done", "_fired")

    def __init__(self, sim: Simulator, count: int, on_done: Callable[[], None]) -> None:
        if count < 0:
            raise ValueError("barrier count must be non-negative")
        self._remaining = count
        self._on_done = on_done
        self._fired = False
        if count == 0:
            sim.after(0.0, self._fire)

    def hit(self) -> None:
        if self._fired:
            raise RuntimeError("barrier hit after it already fired")
        self._remaining -= 1
        if self._remaining == 0:
            self._fire()
        elif self._remaining < 0:
            raise RuntimeError("barrier hit more times than its count")

    def _fire(self) -> None:
        self._fired = True
        self._on_done()
