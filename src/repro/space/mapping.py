"""User-defined mapping functions (the paper's ``Map``).

A mapping projects items of an input dataset into the attribute space
of an output dataset.  ADR uses mappings at two granularities:

- *item level* (query execution): each retrieved input item is mapped
  to the output items it contributes to (steps 6--7 of the processing
  loop, Figure 1);
- *chunk level* (query planning): an input chunk's MBR is projected
  into the output space to determine which output chunks it
  intersects -- this builds the bipartite input/output chunk graph the
  tiling and workload-partitioning algorithms operate on.

A mapping may be one-to-many ("a mapping function may map an input
element to multiple output elements").  That fan-out is expressed here
as a rectangular *footprint*: each mapped point contributes to every
output cell intersecting the footprint box centred on its image, which
models e.g. a satellite sensor reading being composited into several
pixels of the output grid.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.space.attribute_space import AttributeSpace
from repro.util.geometry import Rect

__all__ = ["Mapping", "IdentityMapping", "AffineMapping", "GridMapping"]


class Mapping(ABC):
    """Projection from an input attribute space to an output space."""

    def __init__(
        self,
        input_space: AttributeSpace,
        output_space: AttributeSpace,
        footprint: Optional[Sequence[float]] = None,
    ) -> None:
        self.input_space = input_space
        self.output_space = output_space
        if footprint is None:
            footprint = (0.0,) * output_space.ndim
        fp = tuple(float(f) for f in footprint)
        if len(fp) != output_space.ndim:
            raise ValueError("footprint dimensionality must match output space")
        if any(f < 0 for f in fp):
            raise ValueError("footprint half-widths must be non-negative")
        self.footprint: Tuple[float, ...] = fp

    # -- item level ----------------------------------------------------

    @abstractmethod
    def map_points(self, points: np.ndarray) -> np.ndarray:
        """Project an ``(n, d_in)`` array into ``(n, d_out)`` output coords."""

    # -- chunk level ---------------------------------------------------

    def project_rect(self, rect: Rect) -> Rect:
        """Project an input MBR to its output-space MBR (incl. footprint).

        The default implementation maps the 2^d corner points and takes
        their bounding box, which is exact for any affine mapping and a
        conservative (enclosing) approximation otherwise -- exactly
        what the planner needs: a superset of intersecting output
        chunks is safe, a subset is not.
        """
        corners = _rect_corners(rect)
        mapped = self.map_points(corners)
        lo = mapped.min(axis=0) - np.asarray(self.footprint)
        hi = mapped.max(axis=0) + np.asarray(self.footprint)
        return Rect(tuple(lo), tuple(hi))

    def point_footprints(self, points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Per-point output boxes ``(lo, hi)`` including the footprint."""
        mapped = self.map_points(points)
        fp = np.asarray(self.footprint)
        return mapped - fp, mapped + fp


def _rect_corners(rect: Rect) -> np.ndarray:
    """All 2^d corner points of a Rect as an array."""
    lo, hi = rect.as_arrays()
    d = rect.ndim
    corners = np.empty((1 << d, d), dtype=float)
    for i in range(1 << d):
        for j in range(d):
            corners[i, j] = hi[j] if (i >> j) & 1 else lo[j]
    return corners


class IdentityMapping(Mapping):
    """Input and output share a space; items map onto themselves.

    This is the Virtual Microscope situation at full magnification: the
    output grid is a sub-region of the input image at the same
    resolution.
    """

    def __init__(self, space: AttributeSpace, footprint: Optional[Sequence[float]] = None) -> None:
        super().__init__(space, space, footprint)

    def map_points(self, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != self.input_space.ndim:
            raise ValueError("points must be (n, d_in)")
        return pts


class AffineMapping(Mapping):
    """Per-dimension affine projection with optional dimension selection.

    ``out[j] = in[dim_select[j]] * scale[j] + offset[j]``

    Dimension selection models projections that drop axes, e.g. mapping
    satellite readings in (longitude, latitude, time) onto a 2-D
    composite image in (x, y): ``dim_select=(0, 1)`` discards time.
    """

    def __init__(
        self,
        input_space: AttributeSpace,
        output_space: AttributeSpace,
        scale: Sequence[float],
        offset: Sequence[float],
        dim_select: Optional[Sequence[int]] = None,
        footprint: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(input_space, output_space, footprint)
        d_out = output_space.ndim
        if dim_select is None:
            dim_select = tuple(range(d_out))
        self.dim_select = tuple(int(i) for i in dim_select)
        if len(self.dim_select) != d_out:
            raise ValueError("dim_select length must equal output ndim")
        if any(not 0 <= i < input_space.ndim for i in self.dim_select):
            raise ValueError("dim_select indexes outside the input space")
        self.scale = np.asarray(scale, dtype=float)
        self.offset = np.asarray(offset, dtype=float)
        if self.scale.shape != (d_out,) or self.offset.shape != (d_out,):
            raise ValueError("scale/offset must have one entry per output dim")
        if np.any(self.scale == 0):
            raise ValueError("zero scale would collapse a dimension")

    def map_points(self, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != self.input_space.ndim:
            raise ValueError("points must be (n, d_in)")
        return pts[:, self.dim_select] * self.scale + self.offset

    @staticmethod
    def between_bounds(
        input_space: AttributeSpace,
        output_space: AttributeSpace,
        dim_select: Optional[Sequence[int]] = None,
        footprint: Optional[Sequence[float]] = None,
    ) -> "AffineMapping":
        """The affine map taking the selected input extent onto the
        full output extent -- the common "project the queried region
        onto the output grid" case from the paper's applications."""
        d_out = output_space.ndim
        if dim_select is None:
            dim_select = tuple(range(d_out))
        in_lo = np.asarray([input_space.dims[i].lo for i in dim_select])
        in_hi = np.asarray([input_space.dims[i].hi for i in dim_select])
        out_lo, out_hi = output_space.bounds.as_arrays()
        span_in = np.where(in_hi > in_lo, in_hi - in_lo, 1.0)
        scale = (out_hi - out_lo) / span_in
        offset = out_lo - in_lo * scale
        return AffineMapping(
            input_space, output_space, scale, offset, dim_select, footprint
        )


class GridMapping(AffineMapping):
    """Affine projection onto a regular output grid.

    Convenience subclass that also knows the grid resolution, used by
    the functional execution engine to bin mapped points into output
    cells.
    """

    def __init__(
        self,
        input_space: AttributeSpace,
        output_space: AttributeSpace,
        grid_shape: Sequence[int],
        dim_select: Optional[Sequence[int]] = None,
        footprint: Optional[Sequence[float]] = None,
    ) -> None:
        shape = tuple(int(s) for s in grid_shape)
        if len(shape) != output_space.ndim or any(s < 1 for s in shape):
            raise ValueError("grid_shape must be positive, one per output dim")
        self.grid_shape = shape
        base = AffineMapping.between_bounds(
            input_space, output_space, dim_select, footprint
        )
        super().__init__(
            input_space,
            output_space,
            base.scale,
            base.offset,
            base.dim_select,
            footprint,
        )

    def cells_for_points(self, points: np.ndarray) -> np.ndarray:
        """Grid cell index per point (no footprint), shape ``(n, d_out)``."""
        mapped = self.map_points(points)
        return self.cells_for_coords(mapped)

    def cells_for_coords(self, coords: np.ndarray) -> np.ndarray:
        """Snap output-space coordinates to grid cell indices."""
        lo, hi = self.output_space.bounds.as_arrays()
        span = np.where(hi > lo, hi - lo, 1.0)
        shape = np.asarray(self.grid_shape)
        cells = np.floor((coords - lo) / span * shape).astype(np.int64)
        return np.clip(cells, 0, shape - 1)

    def cell_ranges_for_points(
        self, points: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Inclusive cell-index ranges covered by each point's footprint.

        Returns ``(lo_cells, hi_cells)`` arrays of shape ``(n, d_out)``;
        a point with a zero footprint yields ``lo == hi``.  This is the
        item-level fan-out used by the aggregation engine.
        """
        lo_box, hi_box = self.point_footprints(points)
        return self.cells_for_coords(lo_box), self.cells_for_coords(hi_box)
