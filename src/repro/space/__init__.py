"""Attribute space service (paper Section 2.1).

Manages the registration and use of multi-dimensional attribute spaces
and user-defined mapping functions (``Map``).  An attribute space is
specified by the number of dimensions and the range of values in each
dimension; mappings project points (and, at planning granularity,
chunk MBRs) from an input space into an output space.
"""

from repro.space.attribute_space import AttributeSpace, AttributeSpaceRegistry, Dimension
from repro.space.mapping import (
    Mapping,
    IdentityMapping,
    AffineMapping,
    GridMapping,
)

__all__ = [
    "AttributeSpace",
    "AttributeSpaceRegistry",
    "Dimension",
    "Mapping",
    "IdentityMapping",
    "AffineMapping",
    "GridMapping",
]
