"""Multi-dimensional attribute spaces.

Every dataset in ADR lives in an attribute space: satellite sensor
readings in (longitude, latitude, time), microscope pixels in
(x, y, focal plane), simulation output in (x, y, z, time).  The
attribute space service keeps a registry of named spaces so that
datasets, queries and mappings can be validated against each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

from repro.util.geometry import Rect

__all__ = ["Dimension", "AttributeSpace", "AttributeSpaceRegistry"]


@dataclass(frozen=True)
class Dimension:
    """One axis of an attribute space: a name and a closed value range."""

    name: str
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("dimension name must be non-empty")
        if not float(self.lo) <= float(self.hi):
            raise ValueError(
                f"dimension {self.name!r}: lo {self.lo} exceeds hi {self.hi}"
            )

    @property
    def extent(self) -> float:
        return float(self.hi) - float(self.lo)


@dataclass(frozen=True)
class AttributeSpace:
    """A named multi-dimensional attribute space.

    Parameters
    ----------
    name:
        Registry key, e.g. ``"earth-surface-time"``.
    dims:
        Ordered dimensions; their ranges define :attr:`bounds`.
    """

    name: str
    dims: Tuple[Dimension, ...]

    def __post_init__(self) -> None:
        dims = tuple(self.dims)
        if not dims:
            raise ValueError("attribute space needs at least one dimension")
        names = [d.name for d in dims]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate dimension names in {names}")
        object.__setattr__(self, "dims", dims)

    @staticmethod
    def regular(name: str, dim_names: Sequence[str], lo: Sequence[float], hi: Sequence[float]) -> "AttributeSpace":
        """Build a space from parallel name/lo/hi sequences."""
        if not len(dim_names) == len(lo) == len(hi):
            raise ValueError("dim_names, lo and hi must have equal lengths")
        return AttributeSpace(
            name, tuple(Dimension(n, a, b) for n, a, b in zip(dim_names, lo, hi))
        )

    @property
    def ndim(self) -> int:
        return len(self.dims)

    @property
    def bounds(self) -> Rect:
        """The full extent of the space as a Rect."""
        return Rect(tuple(d.lo for d in self.dims), tuple(d.hi for d in self.dims))

    def dim_index(self, name: str) -> int:
        for i, d in enumerate(self.dims):
            if d.name == name:
                return i
        raise KeyError(f"no dimension named {name!r} in space {self.name!r}")

    def contains(self, rect: Rect) -> bool:
        """True when *rect* lies fully inside the space bounds."""
        return self.bounds.contains_rect(rect)

    def clip(self, rect: Rect) -> Rect | None:
        """Clip *rect* to the space bounds (None when fully outside)."""
        return self.bounds.intersection(rect)

    def validate_query(self, rect: Rect) -> Rect:
        """Check a range query against this space and clip it.

        Raises ``ValueError`` for dimensionality mismatches or queries
        entirely outside the space, mirroring the front-end validation
        the ADR query interface service performs.
        """
        if rect.ndim != self.ndim:
            raise ValueError(
                f"query has {rect.ndim} dims, space {self.name!r} has {self.ndim}"
            )
        clipped = self.clip(rect)
        if clipped is None:
            raise ValueError(f"query {rect} lies outside space {self.name!r}")
        return clipped

    def random_points(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform sample of *n* points inside the space (for tests)."""
        lo, hi = self.bounds.as_arrays()
        return rng.uniform(lo, hi, size=(n, self.ndim))


class AttributeSpaceRegistry:
    """Name -> space registry used by the front end.

    The registry rejects double registration under a different
    definition but is idempotent for identical re-registration, so
    application customizations can be loaded repeatedly.
    """

    def __init__(self) -> None:
        self._spaces: Dict[str, AttributeSpace] = {}

    def register(self, space: AttributeSpace) -> AttributeSpace:
        existing = self._spaces.get(space.name)
        if existing is not None and existing != space:
            raise ValueError(
                f"space {space.name!r} already registered with a different definition"
            )
        self._spaces[space.name] = space
        return space

    def get(self, name: str) -> AttributeSpace:
        try:
            return self._spaces[name]
        except KeyError:
            raise KeyError(f"attribute space {name!r} is not registered") from None

    def __contains__(self, name: str) -> bool:
        return name in self._spaces

    def __len__(self) -> int:
        return len(self._spaces)

    def names(self) -> Iterable[str]:
        return self._spaces.keys()
