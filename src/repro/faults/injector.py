"""The fault injector: interprets a :class:`~repro.faults.plan.FaultPlan`.

One injector instance is threaded through the execution stack and
consulted at three kinds of injection point:

- **chunk reads** -- :meth:`FaultInjector.read_faults` (used by
  :class:`repro.faults.store.FaultyChunkStore` and
  :meth:`FaultInjector.wrap_provider`) can raise :class:`InjectedFault`
  (an ``OSError``), stall the read, or corrupt the payload so the
  on-disk CRC trips a real
  :class:`~repro.store.format.CorruptChunkError`;
- **worker loops** -- :meth:`FaultInjector.should_crash` tells a
  parallel worker to hard-exit before processing a scheduled read;
- **IPC queues** -- :meth:`FaultInjector.should_drop` tells the
  parallel backend to silently drop a forward/ghost message.

State notes: ``times`` counters live in the consulting process.  The
parallel backend forks workers, so each worker counts its own firings;
cross-restart one-shot behavior for crashes and drops comes from the
spec's ``attempt`` scoping (the parent bumps
:attr:`FaultInjector.attempt` before each re-execution), not from
shared counters.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

from repro.faults.plan import FaultPlan, FaultSpec
from repro.util.rng import spawn_rngs

__all__ = ["InjectedFault", "FaultInjector"]


class InjectedFault(OSError):
    """A deterministic, injector-raised I/O failure.

    Subclasses ``OSError`` so retry policies and degraded execution
    treat it exactly like a real disk error.
    """


class _SpecState:
    """A spec plus its mutable firing state (counter + rng stream)."""

    __slots__ = ("spec", "remaining", "rng")

    def __init__(self, spec: FaultSpec, rng) -> None:
        self.spec = spec
        self.remaining = spec.times  # None = unlimited
        self.rng = rng

    def fire(self, attempt: int) -> bool:
        spec = self.spec
        if spec.attempt is not None and spec.attempt != attempt:
            return False
        if self.remaining is not None and self.remaining <= 0:
            return False
        if spec.p < 1.0 and float(self.rng.uniform()) >= spec.p:
            return False
        if self.remaining is not None:
            self.remaining -= 1
        return True


class FaultInjector:
    """Deterministic interpreter of one fault plan.

    ``sleep`` is injectable so slow-read tests run on a fake clock.
    """

    def __init__(self, plan: FaultPlan, sleep: Callable[[float], None] = time.sleep):
        self.plan = plan
        self.sleep = sleep
        #: current parallel execution attempt (bumped by the parent on
        #: each crash-recovery re-execution; irrelevant elsewhere)
        self.attempt = 0
        self._states = [
            _SpecState(spec, rng)
            for spec, rng in zip(plan.specs, spawn_rngs(plan.seed, max(len(plan), 1)))
        ]
        self.fired: List[FaultSpec] = []

    # -- matching ---------------------------------------------------------

    def _fire_matching(self, predicate) -> List[FaultSpec]:
        hits: List[FaultSpec] = []
        for state in self._states:
            if predicate(state.spec) and state.fire(self.attempt):
                hits.append(state.spec)
                self.fired.append(state.spec)
        return hits

    # -- chunk-read faults ------------------------------------------------

    def read_faults(self, dataset: Optional[str], chunk_id: int) -> List[FaultSpec]:
        """Fire every armed read-level spec matching this read.

        Returns the fired specs in plan order; the caller applies them
        (delay first, then raise/corrupt -- see :func:`apply_read_faults`).
        """

        def matches(spec: FaultSpec) -> bool:
            if spec.kind not in ("io_error", "corrupt", "slow_read"):
                return False
            if spec.dataset is not None and spec.dataset != dataset:
                return False
            return spec.chunk_id is None or int(spec.chunk_id) == int(chunk_id)

        return self._fire_matching(matches)

    def apply_read_faults(self, dataset: Optional[str], chunk_id: int) -> bool:
        """Consult and apply pre-read faults; returns True when the
        payload of the upcoming read must be corrupted by the caller."""
        corrupt = False
        for spec in self.read_faults(dataset, chunk_id):
            if spec.kind == "slow_read":
                self.sleep(spec.delay)
            elif spec.kind == "io_error":
                raise InjectedFault(
                    f"injected I/O error reading chunk {chunk_id}"
                    + (f" of {dataset!r}" if dataset else "")
                )
            else:  # corrupt
                corrupt = True
        return corrupt

    def wrap_provider(self, provider, dataset: Optional[str] = None):
        """Wrap a dataset-level chunk provider with read-fault injection.

        Corruption is physical: the chunk is re-encoded, one payload
        byte is flipped, and decoding raises the same
        :class:`~repro.store.format.CorruptChunkError` a rotten file
        would produce.
        """
        from repro.faults.store import corrupt_decode

        def faulty_provider(chunk_id: int):
            corrupt = self.apply_read_faults(dataset, chunk_id)
            chunk = provider(chunk_id)
            if corrupt:
                return corrupt_decode(chunk)
            return chunk

        return faulty_provider

    # -- worker-loop faults -----------------------------------------------

    def should_crash(self, rank: int, reads_done: int) -> bool:
        """True when virtual processor *rank*, about to process its
        (reads_done+1)-th scheduled read, must hard-crash."""

        def matches(spec: FaultSpec) -> bool:
            return (
                spec.kind == "worker_crash"
                and int(spec.rank) == int(rank)
                and int(spec.after_reads) == int(reads_done)
            )

        return bool(self._fire_matching(matches))

    # -- IPC faults ---------------------------------------------------------

    def should_drop(self, message_kind: str, message_index: int) -> bool:
        """True when the forward/ghost message keyed by
        ``(message_kind, message_index)`` must be silently dropped."""

        def matches(spec: FaultSpec) -> bool:
            if spec.kind != "drop_message":
                return False
            if spec.message_kind is not None and spec.message_kind != message_kind:
                return False
            return (
                spec.message_index is None
                or int(spec.message_index) == int(message_index)
            )

        return bool(self._fire_matching(matches))
