"""Declarative fault plans: *what* goes wrong, *where*, and *when*.

A :class:`FaultPlan` is a seedable, deterministic list of
:class:`FaultSpec` entries.  Nothing here touches the execution stack;
the plan is pure data, and :class:`repro.faults.injector.FaultInjector`
interprets it at the injection points (chunk-store reads, the parallel
backend's worker loop, and the ghost/forward IPC queues).

Determinism contract: given the same seed and the same sequence of
injector queries, a plan makes the same decisions -- probabilistic
specs draw from per-spec generators spawned from the plan seed
(:func:`repro.util.rng.spawn_rngs`), so one spec's draws never perturb
another's.

The ``attempt`` field scopes process-level faults to one parallel
execution attempt: a worker crash injected with ``attempt=0`` (the
default for :meth:`FaultPlan.crash_worker` and
:meth:`FaultPlan.drop_message`) fires during the first attempt and
stays quiet during the recovery re-execution -- modelling a node that
died once, not a node that dies every time it is replaced.  Store-level
faults default to ``attempt=None`` (a corrupt file does not heal when a
worker restarts); use ``times`` to model transient flakiness instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultPlan"]

#: Supported fault kinds, by injection point:
#:
#: - ``io_error`` / ``corrupt`` / ``slow_read``: chunk-store reads
#: - ``worker_crash``: the parallel backend's per-worker read loop
#: - ``drop_message``: the forward/ghost IPC queues
FAULT_KINDS = ("io_error", "corrupt", "slow_read", "worker_crash", "drop_message")


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault.

    Matching fields left as ``None`` act as wildcards.  ``times``
    bounds how often the spec fires (``None`` = every match);
    ``p`` makes firing probabilistic (drawn from the plan's seeded
    per-spec stream); ``attempt`` restricts firing to one parallel
    execution attempt (``None`` = every attempt).
    """

    kind: str
    #: store faults: match the dataset name (None = any)
    dataset: Optional[str] = None
    #: store faults: match the chunk id (None = any)
    chunk_id: Optional[int] = None
    #: worker_crash: the virtual processor to kill
    rank: Optional[int] = None
    #: worker_crash: crash when the rank is about to process its
    #: (after_reads+1)-th scheduled read
    after_reads: int = 0
    #: drop_message: message kind to drop ("seg" / "ghost", None = any)
    message_kind: Optional[str] = None
    #: drop_message: schedule index of the message (None = any)
    message_index: Optional[int] = None
    #: slow_read: seconds to stall the read
    delay: float = 0.0
    #: firing probability per match
    p: float = 1.0
    #: maximum number of firings (None = unlimited)
    times: Optional[int] = 1
    #: parallel execution attempt this spec is scoped to (None = all)
    attempt: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not (0.0 <= self.p <= 1.0):
            raise ValueError(f"fault probability must be in [0, 1], got {self.p}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times}")
        if self.kind == "worker_crash" and self.rank is None:
            raise ValueError("worker_crash needs an explicit rank")


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, seedable collection of fault specs."""

    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __len__(self) -> int:
        return len(self.specs)

    def extend(self, *specs: FaultSpec) -> "FaultPlan":
        return FaultPlan(self.specs + specs, seed=self.seed)

    # -- convenience constructors (one per supported scenario) ----------

    @staticmethod
    def corrupt_chunk(
        chunk_id: int, dataset: Optional[str] = None,
        times: Optional[int] = None, seed: int = 0,
    ) -> "FaultPlan":
        """Bit-rot on one chunk: every read decodes to a CRC mismatch
        (``times=None`` -- a corrupt file stays corrupt)."""
        return FaultPlan(
            (FaultSpec("corrupt", dataset=dataset, chunk_id=chunk_id, times=times),),
            seed=seed,
        )

    @staticmethod
    def flaky_read(
        chunk_id: Optional[int] = None, dataset: Optional[str] = None,
        times: int = 2, p: float = 1.0, seed: int = 0,
    ) -> "FaultPlan":
        """A transient disk: the first *times* matching reads raise
        ``InjectedFault`` (an ``OSError``), later reads succeed."""
        return FaultPlan(
            (FaultSpec("io_error", dataset=dataset, chunk_id=chunk_id,
                       times=times, p=p),),
            seed=seed,
        )

    @staticmethod
    def slow_read(
        delay: float, chunk_id: Optional[int] = None,
        dataset: Optional[str] = None, times: Optional[int] = None, seed: int = 0,
    ) -> "FaultPlan":
        """Stall matching reads by *delay* seconds (deadline testing)."""
        return FaultPlan(
            (FaultSpec("slow_read", dataset=dataset, chunk_id=chunk_id,
                       delay=delay, times=times),),
            seed=seed,
        )

    @staticmethod
    def crash_worker(
        rank: int, after_reads: int = 0, attempt: int = 0, seed: int = 0,
    ) -> "FaultPlan":
        """Kill virtual processor *rank* (hard exit, no cleanup) when it
        is about to process its (after_reads+1)-th scheduled read of
        parallel execution attempt *attempt*."""
        return FaultPlan(
            (FaultSpec("worker_crash", rank=rank, after_reads=after_reads,
                       attempt=attempt),),
            seed=seed,
        )

    @staticmethod
    def drop_messages(
        message_kind: Optional[str] = None, message_index: Optional[int] = None,
        times: Optional[int] = 1, attempt: int = 0, seed: int = 0,
    ) -> "FaultPlan":
        """Silently drop matching forward/ghost IPC messages during
        parallel execution attempt *attempt*."""
        return FaultPlan(
            (FaultSpec("drop_message", message_kind=message_kind,
                       message_index=message_index, times=times, attempt=attempt),),
            seed=seed,
        )
