"""Fault-injecting chunk-store wrapper.

:class:`FaultyChunkStore` sits between any real
:class:`~repro.store.chunk_store.ChunkStore` and its callers and
consults a :class:`~repro.faults.injector.FaultInjector` on every read.
Injected corruption is physical -- the decoded chunk is re-encoded, one
payload byte is flipped, and decoding trips the on-disk CRC -- so the
failure surfaces as the same
:class:`~repro.store.format.CorruptChunkError` a rotten file produces,
exercising the real integrity path rather than a simulated exception.

Compose it under the resilience wrappers to test them::

    CachedChunkStore(RetryingChunkStore(FaultyChunkStore(inner, injector),
                                        RetryPolicy(...)))
"""

from __future__ import annotations

from typing import Iterator, List

from repro.dataset.chunk import Chunk
from repro.faults.injector import FaultInjector
from repro.store.chunk_store import ChunkStore
from repro.store.format import decode_chunk, encode_chunk

__all__ = ["FaultyChunkStore", "corrupt_decode"]


def corrupt_decode(chunk: Chunk) -> Chunk:
    """Re-encode *chunk*, flip one payload byte, decode.

    Always raises :class:`~repro.store.format.CorruptChunkError` (the
    flipped byte is in the CRC-covered body); the return type exists
    only for signature honesty.
    """
    data = bytearray(encode_chunk(chunk))
    data[-1] ^= 0xFF
    return decode_chunk(bytes(data))


class FaultyChunkStore(ChunkStore):
    """Injects planned faults into reads of the wrapped store.

    Writes, placements and deletions pass through untouched; only the
    read path is fault-injected (the paper's degraded scenarios are all
    read-side: query processing never mutates input datasets).
    """

    def __init__(self, inner: ChunkStore, injector: FaultInjector) -> None:
        self.inner = inner
        self.injector = injector

    def read_chunk(self, dataset: str, chunk_id: int) -> Chunk:
        corrupt = self.injector.apply_read_faults(dataset, chunk_id)
        chunk = self.inner.read_chunk(dataset, chunk_id)
        if corrupt:
            return corrupt_decode(chunk)
        return chunk

    def read_many(self, dataset: str, chunk_ids: List[int]) -> Iterator[Chunk]:
        """Per-chunk reads so each id is individually fault-checked
        (forgoes the inner store's placement-order batching)."""
        for cid in chunk_ids:
            yield self.read_chunk(dataset, cid)

    def write_chunk(self, dataset: str, chunk: Chunk, node: int, disk: int) -> None:
        self.inner.write_chunk(dataset, chunk, node, disk)

    def placement(self, dataset: str, chunk_id: int):
        return self.inner.placement(dataset, chunk_id)

    def chunk_ids(self, dataset: str) -> List[int]:
        return self.inner.chunk_ids(dataset)

    def delete_dataset(self, dataset: str) -> None:
        self.inner.delete_dataset(dataset)

    def __getattr__(self, name: str):
        return getattr(self.inner, name)
