"""Wire-level fault injection: a chaos proxy for the shard protocol.

The store-level injectors in this package model disks going bad; a
sharded deployment also has to survive the *network* going bad --
connections refused, frames torn mid-payload, bytes flipped in
transit, peers that answer arbitrarily slowly.  :class:`ChaosProxy`
sits between a :class:`~repro.shard.router.ShardRouter` endpoint and
the real :class:`~repro.shard.server.ShardServer`, forwarding traffic
byte-for-byte except where a seeded :class:`WireFaultPlan` says to
injure it.

Faults act on the **response** direction (server to client) of one
proxied connection, except ``refuse`` which acts at accept time.  The
router opens a fresh client connection per fetch attempt, so "fires
once per connection" and "fires once per attempt" coincide -- which is
what makes ``times=1`` specs express "transient glitch, retry wins"
and ``times=None`` express "persistently broken link, shard degrades".

Kinds (:data:`WIRE_FAULT_KINDS`):

- ``refuse``   -- close the client connection at accept, before any
  bytes flow (a dead process's OS resetting the handshake);
- ``delay``    -- stall ``delay_s`` seconds before forwarding the
  first response byte (a congested or wedged peer; pairs with client
  deadlines);
- ``cut``      -- forward ``after_bytes`` response bytes, then sever
  both sides (a mid-frame disconnect; the client must surface a loud
  :class:`~repro.frontend.protocol.ProtocolError`, never a short
  result);
- ``corrupt``  -- XOR ``0xFF`` into the response byte at offset
  ``after_bytes`` and keep forwarding (``after_bytes=0`` hits the
  frame header's most significant length byte, declaring an absurd
  frame the client must refuse; an offset inside the payload breaks
  the JSON instead).

Determinism mirrors :class:`~repro.faults.plan.FaultPlan`: each spec
draws from its own generator spawned from the plan seed, and ``times``
counters are updated under a lock, so a scenario replays identically
for a given seed and connection order.
"""

from __future__ import annotations

import contextlib
import socket
import threading
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.util.rng import spawn_rngs

__all__ = ["WIRE_FAULT_KINDS", "WireFaultSpec", "WireFaultPlan", "ChaosProxy"]

#: Supported wire fault kinds (see module docstring for semantics).
WIRE_FAULT_KINDS = ("refuse", "delay", "cut", "corrupt")


@dataclass(frozen=True)
class WireFaultSpec:
    """One injectable wire fault.

    ``times`` bounds how many connections the spec injures (``None`` =
    every connection); ``p`` makes firing probabilistic, drawn from the
    plan's seeded per-spec stream.
    """

    kind: str
    #: delay: seconds to stall the response
    delay_s: float = 0.0
    #: cut: response bytes forwarded before severing;
    #: corrupt: offset of the response byte to flip
    after_bytes: int = 0
    #: firing probability per connection
    p: float = 1.0
    #: maximum number of firings (None = unlimited)
    times: Optional[int] = 1

    def __post_init__(self) -> None:
        if self.kind not in WIRE_FAULT_KINDS:
            raise ValueError(
                f"unknown wire fault kind {self.kind!r}; "
                f"expected one of {WIRE_FAULT_KINDS}"
            )
        if not (0.0 <= self.p <= 1.0):
            raise ValueError(f"fault probability must be in [0, 1], got {self.p}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times}")
        if self.delay_s < 0.0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")
        if self.after_bytes < 0:
            raise ValueError(f"after_bytes must be >= 0, got {self.after_bytes}")


@dataclass(frozen=True)
class WireFaultPlan:
    """An ordered, seedable collection of wire fault specs."""

    specs: Tuple[WireFaultSpec, ...] = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __len__(self) -> int:
        return len(self.specs)

    def extend(self, *specs: WireFaultSpec) -> "WireFaultPlan":
        return WireFaultPlan(self.specs + specs, seed=self.seed)

    # -- convenience constructors (one per supported scenario) ----------

    @staticmethod
    def refuse(times: Optional[int] = 1, seed: int = 0) -> "WireFaultPlan":
        """Refuse the next *times* connections (``None`` = all: the
        peer is gone for good and the shard must degrade)."""
        return WireFaultPlan((WireFaultSpec("refuse", times=times),), seed=seed)

    @staticmethod
    def slow(
        delay_s: float, times: Optional[int] = 1, seed: int = 0,
    ) -> "WireFaultPlan":
        """Stall responses by *delay_s* seconds (deadline testing)."""
        return WireFaultPlan(
            (WireFaultSpec("delay", delay_s=delay_s, times=times),), seed=seed
        )

    @staticmethod
    def cut(
        after_bytes: int = 6, times: Optional[int] = 1, seed: int = 0,
    ) -> "WireFaultPlan":
        """Sever the connection *after_bytes* into the response -- the
        default lands mid-payload of any framed message (4-byte header
        plus two JSON bytes), tearing the frame."""
        return WireFaultPlan(
            (WireFaultSpec("cut", after_bytes=after_bytes, times=times),),
            seed=seed,
        )

    @staticmethod
    def corrupt(
        after_bytes: int = 0, times: Optional[int] = 1, seed: int = 0,
    ) -> "WireFaultPlan":
        """Flip the response byte at *after_bytes* -- the default hits
        the frame header, declaring an oversized frame."""
        return WireFaultPlan(
            (WireFaultSpec("corrupt", after_bytes=after_bytes, times=times),),
            seed=seed,
        )


class _WireSpecState:
    """Firing bookkeeping for one spec (same contract as the store
    injector's ``_SpecState``: probabilistic draws come from the
    spec's own seeded stream, ``times`` bounds total firings)."""

    def __init__(self, spec: WireFaultSpec, rng) -> None:
        self.spec = spec
        self.rng = rng
        self.fired = 0

    def fire(self) -> bool:
        if self.spec.times is not None and self.fired >= self.spec.times:
            return False
        if self.spec.p < 1.0 and float(self.rng.random()) >= self.spec.p:
            return False
        self.fired += 1
        return True


class ChaosProxy:
    """A TCP proxy that injures the response stream per a seeded plan.

    Point a router endpoint at :attr:`address` instead of the real
    shard server; traffic is pumped verbatim both ways except where
    the plan fires.  ``start()``/``close()`` (or the context manager)
    bound the accept loop; every socket the proxy touches carries a
    timeout, so ``close()`` converges without hanging on a dead peer.
    """

    _POLL_S = 0.2
    _BUF = 65536

    def __init__(
        self,
        upstream: Tuple[str, int],
        plan: WireFaultPlan,
        host: str = "127.0.0.1",
        port: int = 0,
        connect_timeout_s: float = 5.0,
    ) -> None:
        self.upstream = upstream
        self.plan = plan
        self.connect_timeout_s = float(connect_timeout_s)
        self._states = [
            _WireSpecState(spec, rng)
            for spec, rng in zip(
                plan.specs, spawn_rngs(plan.seed, max(len(plan), 1))
            )
        ]
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._conns: List[socket.socket] = []
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.settimeout(self._POLL_S)
        self._listener.bind((host, port))
        self._listener.listen(16)
        self.address: Tuple[str, int] = self._listener.getsockname()
        self._accept_thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "ChaosProxy":
        if self._accept_thread is None:
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="chaos-accept", daemon=True
            )
            self._accept_thread.start()
        return self

    def close(self) -> None:
        self._stop.set()
        with contextlib.suppress(OSError):
            self._listener.close()
        with self._lock:
            conns, self._conns = self._conns, []
            threads, self._threads = self._threads, []
        for conn in conns:
            with contextlib.suppress(OSError):
                conn.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for t in threads:
            t.join(timeout=5.0)

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- plan interpretation --------------------------------------------

    def _connection_faults(self) -> List[WireFaultSpec]:
        """Decide, once per accepted connection, which specs injure it."""
        with self._lock:
            return [s.spec for s in self._states if s.fire()]

    # -- proxying --------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                client, _ = self._listener.accept()
            except socket.timeout:  # noqa: ADR401 -- accept-poll tick, re-checks stop flag
                continue
            except OSError:
                return  # listener closed under us: shutdown
            faults = self._connection_faults()
            if any(f.kind == "refuse" for f in faults):
                with contextlib.suppress(OSError):
                    client.close()
                continue
            t = threading.Thread(
                target=self._serve, args=(client, faults),
                name="chaos-conn", daemon=True,
            )
            with self._lock:
                self._conns.append(client)
                self._threads.append(t)
            t.start()

    def _serve(self, client: socket.socket, faults: List[WireFaultSpec]) -> None:
        try:
            upstream = socket.create_connection(
                self.upstream, timeout=self.connect_timeout_s
            )
        except OSError:
            with contextlib.suppress(OSError):
                client.close()
            return
        with self._lock:
            self._conns.append(upstream)
        request = threading.Thread(
            target=self._pump, args=(client, upstream, []),
            name="chaos-request", daemon=True,
        )
        with self._lock:
            self._threads.append(request)
        request.start()
        # The response direction runs on this connection's own thread
        # and carries the injected faults.
        self._pump(upstream, client, faults)
        request.join(timeout=5.0)

    def _pump(
        self,
        src: socket.socket,
        dst: socket.socket,
        faults: List[WireFaultSpec],
    ) -> None:
        """Forward *src* to *dst* until EOF/teardown, applying *faults*.

        Either side ending the conversation closes both sockets: the
        peer must see EOF, not a silent stall (a proxy that half-closes
        would turn every injected cut into a hang instead of the loud
        failure the scenario wants)."""
        delay_s = sum(f.delay_s for f in faults if f.kind == "delay")
        cut_at = min(
            (f.after_bytes for f in faults if f.kind == "cut"), default=None
        )
        corrupt_at = [f.after_bytes for f in faults if f.kind == "corrupt"]
        forwarded = 0
        delayed = delay_s <= 0.0
        src.settimeout(self._POLL_S)
        try:
            while not self._stop.is_set():
                try:
                    data = src.recv(self._BUF)
                except socket.timeout:  # noqa: ADR401 -- pump-poll tick, re-checks stop flag
                    continue
                except OSError:
                    break
                if not data:
                    break
                if not delayed:
                    # Interruptible stall: close() unblocks it.
                    self._stop.wait(delay_s)
                    delayed = True
                data = bytearray(data)
                for offset in corrupt_at:
                    local = offset - forwarded
                    if 0 <= local < len(data):
                        data[local] ^= 0xFF
                if cut_at is not None and forwarded + len(data) >= cut_at:
                    with contextlib.suppress(OSError):
                        dst.sendall(bytes(data[: cut_at - forwarded]))
                    break
                try:
                    dst.sendall(bytes(data))
                except OSError:
                    break
                forwarded += len(data)
        finally:
            for sock in (src, dst):
                with contextlib.suppress(OSError):
                    sock.close()
