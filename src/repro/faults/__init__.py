"""Deterministic fault injection for the query-execution stack.

ADR queries span many disks on many nodes; this package makes the
failures such a deployment actually sees -- I/O errors, bit-rot,
slow disks, dead workers, lost messages -- injectable on demand and
reproducible by seed, so the recovery machinery (chunk CRCs, retry
policies, degraded results, worker-crash recovery) is tested against
real failure paths rather than hand-mocked exceptions.

- :class:`FaultPlan` / :class:`FaultSpec` -- declarative, seedable
  fault scenarios (pure data);
- :class:`FaultInjector` -- interprets a plan at the injection points;
- :class:`FaultyChunkStore` -- wraps any chunk store with read faults;
- :class:`InjectedFault` -- the ``OSError`` raised for injected I/O
  failures;
- :class:`WireFaultPlan` / :class:`WireFaultSpec` /
  :class:`ChaosProxy` -- wire-level faults (refused connections, torn
  and corrupted frames, slow peers) for the sharded deployment.

See ``docs/robustness.md`` for the fault model and recovery contracts.
"""

from repro.faults.injector import FaultInjector, InjectedFault
from repro.faults.plan import FAULT_KINDS, FaultPlan, FaultSpec
from repro.faults.store import FaultyChunkStore
from repro.faults.wire import (
    WIRE_FAULT_KINDS,
    ChaosProxy,
    WireFaultPlan,
    WireFaultSpec,
)

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "InjectedFault",
    "FaultyChunkStore",
    "WIRE_FAULT_KINDS",
    "WireFaultSpec",
    "WireFaultPlan",
    "ChaosProxy",
]
