"""Shard topology: Hilbert-declustered chunk-to-shard assignment.

The paper's customized back end runs as N independent processes, each
owning a disk farm; queries scatter over all of them and gather
partial accumulators.  This module decides *which* process owns each
chunk, reusing the declustering insight already applied to disks
(:mod:`repro.decluster.hilbert`): sort chunks by the Hilbert key of
their MBR mid-point and deal them round-robin across shards, so
spatially adjacent chunks -- the ones a range query co-retrieves --
land on *different* shards and every query parallelizes across the
deployment instead of hammering one process.

The assignment is a pure function of the chunk population, so the
router and every shard can recompute it independently and agree; the
dataset-global chunk-id spine (``global_ids`` / local positions) is
the contract the router uses to translate shard-local degradation
reports back into dataset-global ``chunk_errors``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Type

import numpy as np

from repro.dataset.chunk import Chunk
from repro.dataset.chunkset import ChunkSet
from repro.index.base import SpatialIndex
from repro.index.rtree import RTree
from repro.space.attribute_space import AttributeSpace

__all__ = ["ShardAssignment", "ShardTopology", "assign_shards", "shard_chunks"]


@dataclass(frozen=True)
class ShardAssignment:
    """Chunk-to-shard map over one dataset's global chunk ids.

    ``shard_of[gid]`` is the owning shard of global chunk *gid*.  A
    shard's chunks are re-numbered densely (0..k-1) in ascending
    global-id order when loaded into its local ADR, so
    ``global_ids(sid)[local_id]`` recovers the global id of a shard's
    local chunk -- the translation used for degradation reports.
    """

    n_shards: int
    shard_of: np.ndarray

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        shard_of = np.ascontiguousarray(self.shard_of, dtype=np.int64)
        if shard_of.ndim != 1:
            raise ValueError("shard_of must be a 1-d array")
        if len(shard_of) and (
            shard_of.min() < 0 or shard_of.max() >= self.n_shards
        ):
            raise ValueError("shard_of entries must be in [0, n_shards)")
        object.__setattr__(self, "shard_of", shard_of)

    def __len__(self) -> int:
        return len(self.shard_of)

    def global_ids(self, shard_id: int) -> np.ndarray:
        """Global chunk ids owned by *shard_id*, ascending -- the
        shard's local id ``i`` is position ``i`` of this array."""
        if not 0 <= shard_id < self.n_shards:
            raise ValueError(f"shard id {shard_id} outside [0, {self.n_shards})")
        return np.flatnonzero(self.shard_of == shard_id)

    def counts(self) -> np.ndarray:
        """Chunks per shard, ``(n_shards,)``."""
        return np.bincount(self.shard_of, minlength=self.n_shards)


def assign_shards(
    chunks: ChunkSet, n_shards: int, bits: int = 16
) -> ShardAssignment:
    """Deal chunks round-robin across shards in Hilbert order.

    Mirrors :class:`repro.decluster.hilbert.HilbertDeclusterer` one
    level up: the curve's locality puts a range query's chunks on many
    shards, which is exactly what scatter/gather parallelism wants.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    order = chunks.hilbert_order(bits)
    shard_of = np.empty(len(chunks), dtype=np.int64)
    shard_of[order] = np.arange(len(chunks)) % n_shards
    return ShardAssignment(n_shards, shard_of)


def shard_chunks(
    chunks: Sequence[Chunk], assignment: ShardAssignment, shard_id: int
) -> List[Chunk]:
    """One shard's chunk payloads, re-numbered densely (0..k-1) in
    ascending global-id order so they load as a standalone dataset."""
    from dataclasses import replace

    if len(chunks) != len(assignment):
        raise ValueError(
            f"{len(chunks)} chunks for an assignment over {len(assignment)}"
        )
    out: List[Chunk] = []
    for local_id, gid in enumerate(assignment.global_ids(shard_id)):
        c = chunks[int(gid)]
        out.append(Chunk(replace(c.meta, chunk_id=local_id), c.coords, c.values))
    return out


@dataclass(frozen=True)
class ShardTopology:
    """Everything the router knows about one sharded dataset: the
    global chunk population, a spatial index over it (for planning the
    scatter without contacting any shard), and the shard assignment."""

    dataset: str
    space: AttributeSpace
    chunks: ChunkSet
    index: SpatialIndex
    assignment: ShardAssignment

    @classmethod
    def build(
        cls,
        dataset: str,
        space: AttributeSpace,
        chunks: Sequence[Chunk],
        n_shards: int,
        bits: int = 16,
        index_cls: Type[SpatialIndex] = RTree,
    ) -> "ShardTopology":
        chunkset = ChunkSet.from_metas([c.meta for c in chunks])
        # The router prunes with the same per-chunk value synopses the
        # single-process planner uses (None when values are absent).
        from repro.dataset.synopsis import ValueSynopsis

        chunkset = chunkset.with_synopsis(
            ValueSynopsis.from_chunks(chunks)
        )
        return cls(
            dataset=dataset,
            space=space,
            chunks=chunkset,
            index=index_cls.build(chunkset),
            assignment=assign_shards(chunkset, n_shards, bits),
        )

    @property
    def n_shards(self) -> int:
        return self.assignment.n_shards
