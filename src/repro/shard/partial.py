"""Partial aggregation: raw accumulators over the wire.

The paper's back end "combines partial accumulators globally" -- each
process aggregates its own chunks, then the intermediate accumulator
state is merged across processes.  :class:`PartialAggregationSpec`
makes that state wire-visible without touching the engine: it wraps a
query's aggregation and swaps the output phase to the identity, so the
shard's :class:`~repro.runtime.engine.QueryResult` carries raw
``(n_cells, acc_components)`` accumulators instead of finalized
values.  The router then merges partials with the *inner* spec's
``combine`` -- the documented FRA global-combine semantics
(associative, commutative, ``combine(init, x) == x``) -- and runs the
real ``output`` exactly once per output chunk.

Everything else delegates to the inner spec, tile budgeting included
(``acc_bytes`` is the inner accumulator footprint), so a shard plans
and executes exactly as a standalone ADR over its chunk subset would.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Tuple

import numpy as np

from repro.aggregation.functions import AggregationSpec
from repro.aggregation.output_grid import OutputGrid
from repro.frontend.query import RangeQuery
from repro.runtime.engine import QueryResult

__all__ = [
    "PartialAggregationSpec",
    "as_partial",
    "empty_partial_result",
    "combine_partials",
]

#: Substring of the planner's empty-selection errors ("selects no
#: input chunks", "... after value-synopsis pruning").  A shard whose
#: local index selects nothing for a query is not an error in a
#: scatter -- it contributes an empty partial.
EMPTY_SELECTION_MARK = "selects no input chunks"


class PartialAggregationSpec(AggregationSpec):
    """Wrap a spec so the output phase returns the raw accumulator."""

    def __init__(self, inner: AggregationSpec) -> None:
        super().__init__(inner.value_components)
        self.inner = inner
        self.idempotent = inner.idempotent

    # -- layout (inner accumulator travels as the "output") ------------

    @property
    def acc_components(self) -> int:
        return self.inner.acc_components

    @property
    def output_components(self) -> int:
        return self.inner.acc_components

    @property
    def acc_dtype(self) -> np.dtype:
        return self.inner.acc_dtype

    # -- delegation ----------------------------------------------------

    def initialize(self, n_cells: int) -> np.ndarray:
        return self.inner.initialize(n_cells)

    def initialize_from(self, values: np.ndarray) -> np.ndarray:
        return self.inner.initialize_from(values)

    def initialize_into(self, acc: np.ndarray) -> None:
        self.inner.initialize_into(acc)

    def aggregate(self, acc, cell_idx, values) -> None:
        self.inner.aggregate(acc, cell_idx, values)

    def aggregate_grouped(self, acc, cell_idx, values) -> None:
        self.inner.aggregate_grouped(acc, cell_idx, values)

    def prereduce_groups(self, values, group_starts):
        return self.inner.prereduce_groups(values, group_starts)

    def scatter_groups(self, acc, cell_idx, reduced) -> None:
        self.inner.scatter_groups(acc, cell_idx, reduced)

    def combine(self, acc_into, acc_from) -> None:
        self.inner.combine(acc_into, acc_from)

    def output(self, acc: np.ndarray) -> np.ndarray:
        """Identity: the raw accumulator is this query's output."""
        return acc.copy()


def as_partial(query: RangeQuery) -> RangeQuery:
    """The same query with its aggregation wrapped for partial output."""
    return replace(query, aggregation=PartialAggregationSpec(query.spec()))


def empty_partial_result(query: RangeQuery) -> QueryResult:
    """The partial of a shard that owns no chunk the query selects.

    Zero everywhere: nothing was read, aggregated, or pruned.  (A
    shard whose *entire* selection is value-synopsis-pruned also lands
    here -- the planner refuses to plan an empty selection before any
    counters exist -- so such a shard reports ``chunks_pruned = 0``;
    the router's completeness denominator keeps its planned chunks,
    which is conservative and documented in ``docs/sharding.md``.)
    """
    return QueryResult(
        strategy=query.strategy.upper(),
        output_ids=np.empty(0, dtype=np.int64),
        chunk_values=[],
        n_tiles=0,
        n_reads=0,
        bytes_read=0,
        n_combines=0,
        n_aggregations=0,
    )


def combine_partials(
    spec: AggregationSpec,
    grid: OutputGrid,
    output_ids: np.ndarray,
    partials: List[Tuple[int, QueryResult]],
) -> Tuple[List[np.ndarray], int]:
    """FRA global combine over shard partials.

    *spec* is the query's **inner** aggregation; *output_ids* the
    router-planned (authoritative) output chunk ids; *partials* the
    live shards' ``(shard_id, partial_result)`` pairs.  Shards are
    folded in ascending shard-id order -- a deterministic order, so
    repeated queries over the same deployment are bit-identical even
    though combine is commutative.

    Returns the finalized per-chunk values and the number of
    ``combine`` calls performed (the router's contribution to the
    merged ``n_combines`` counter).
    """
    per_shard: List[Tuple[int, Dict[int, np.ndarray]]] = sorted(
        (
            (sid, {int(o): v for o, v in zip(r.output_ids, r.chunk_values)})
            for sid, r in partials
        ),
        key=lambda item: item[0],
    )
    values: List[np.ndarray] = []
    n_combines = 0
    for gid in output_ids:
        acc = spec.initialize(grid.cells_in_chunk(int(gid)))
        for _, by_output in per_shard:
            part = by_output.get(int(gid))
            if part is not None:
                spec.combine(acc, part)
                n_combines += 1
        values.append(spec.output(acc))
    return values, n_combines
