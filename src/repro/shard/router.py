"""Scatter/gather query router over shard servers.

The paper's deployment: "the back-end processes carry out retrieval
and processing of the data, and the partial results are combined".
:class:`ShardRouter` is the front of that deployment -- it plans a
query *once* against the global :class:`~repro.shard.topology.ShardTopology`
(spatial selection, output projection, the same empty-selection errors
a single-process ADR raises), fans the query out to every shard owning
a selected chunk, and merges the returned raw accumulators with the
FRA global-combine semantics
(:func:`repro.shard.partial.combine_partials`).

Robustness is the router's job, not the shards':

- **Deadlines.**  Every shard fetch has a wall-clock budget
  (``RouterPolicy.shard_deadline_s``) covering all its attempts; each
  socket operation inherits the remaining budget, so no query ever
  hangs on a dead peer.
- **Retry / failover.**  Transient fetch failures (connection refused,
  torn frame, timeout, an ``overloaded`` rejection) are retried on the
  endpoint's address cycle -- primary first, then replicas -- under
  the backoff schedule of a :class:`~repro.store.retry.RetryPolicy`
  with injectable clock/sleep.  ``bad_request`` is never retried: the
  query itself is at fault.
- **Degrade.**  Under ``on_error='degrade'`` a shard that stays dead
  is recorded in ``QueryResult.shard_errors`` and its planned chunks
  in ``chunk_errors`` (dataset-global ids); ``completeness`` accounts
  for both shard- and chunk-level loss.  Under ``on_error='raise'``
  any dead shard raises :class:`ShardUnavailableError`.
- **Hedging.**  With ``hedge_after_s`` set, a straggling primary's
  sub-plan is re-dispatched to its replicas after that delay and the
  first response wins (the loser is abandoned, never joined).

See ``docs/sharding.md`` for the merged-counter and completeness
contracts.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataset.graph import ChunkGraph
from repro.decluster.hilbert import HilbertDeclusterer
from repro.frontend.protocol import DeadlineExceededError, ProtocolError
from repro.frontend.query import RangeQuery
from repro.frontend.service import RemoteQueryError
from repro.machine.config import MachineConfig
from repro.planner.problem import PlanningProblem
from repro.planner.select import StrategyChoice, choose_strategy, is_auto
from repro.runtime.engine import QueryResult
from repro.runtime.phases import PHASES
from repro.shard.partial import combine_partials
from repro.shard.server import ShardClient
from repro.shard.topology import ShardTopology
from repro.store.retry import RetryPolicy

__all__ = [
    "ShardEndpoint",
    "RouterPolicy",
    "ScatterPlan",
    "ShardRouter",
    "ShardUnavailableError",
]

#: Extra seconds the gather waits past a shard's deadline before
#: declaring its fetch thread lost -- covers scheduling slop between
#: the socket timeout firing and the thread recording its error.
_JOIN_GRACE_S = 2.0


class ShardUnavailableError(RuntimeError):
    """A shard stayed unreachable and the query demanded completeness.

    Raised under ``on_error='raise'``; :attr:`shard_errors` maps each
    failed shard id to its last error description.
    """

    def __init__(self, message: str, shard_errors: Dict[int, str]) -> None:
        super().__init__(message)
        self.shard_errors = dict(shard_errors)


@dataclass(frozen=True)
class ShardEndpoint:
    """Where one shard is reachable: a primary address plus replicas.

    Addresses are opaque to the router -- whatever the deployment's
    ``client_factory`` accepts (``(host, port)`` tuples for the socket
    factory).  Replicas must serve the *same* chunk shard.
    """

    shard_id: int
    address: Any
    replicas: Tuple[Any, ...] = ()

    @property
    def addresses(self) -> Tuple[Any, ...]:
        return (self.address,) + tuple(self.replicas)


def _default_retry() -> RetryPolicy:
    return RetryPolicy(
        max_attempts=2,
        base_delay=0.05,
        retry_on=(OSError, ProtocolError),
    )


@dataclass(frozen=True)
class RouterPolicy:
    """Fault-handling knobs of a :class:`ShardRouter`.

    Attributes
    ----------
    shard_deadline_s:
        Wall-clock budget for one shard's fetch, covering every retry
        and failover attempt; an exhausted budget marks the shard dead.
    connect_timeout_s:
        TCP connect budget per attempt (further capped by the
        remaining shard deadline).
    retry:
        Backoff schedule and retryable-error classes for per-shard
        attempts; attempts cycle through the endpoint's address list,
        so ``max_attempts >= 2`` gives automatic replica failover.
    hedge_after_s:
        When set and a shard has replicas, a straggler's sub-plan is
        re-dispatched to the replicas after this many seconds and the
        first response wins.  ``None`` disables hedging.
    """

    shard_deadline_s: float = 30.0
    connect_timeout_s: float = 5.0
    retry: RetryPolicy = field(default_factory=_default_retry)
    hedge_after_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.shard_deadline_s <= 0:
            raise ValueError("shard_deadline_s must be positive")
        if self.connect_timeout_s <= 0:
            raise ValueError("connect_timeout_s must be positive")
        if self.hedge_after_s is not None and self.hedge_after_s < 0:
            raise ValueError("hedge_after_s must be >= 0")


@dataclass
class ScatterPlan:
    """One query's scatter: which shards serve which global chunks.

    ``query`` always carries a *concrete* strategy: when the client
    submitted ``strategy='auto'``, the router resolved it once against
    the global topology before scattering (every shard must run the
    same strategy or the partial accumulators would not be comparable),
    and ``choice`` keeps the priced ranking behind that decision.
    """

    query: RangeQuery
    output_ids: np.ndarray
    #: shard id -> dataset-global input chunk ids it must serve
    in_ids_by_shard: Dict[int, np.ndarray]
    #: the auto-selection audit trail; ``None`` for explicit strategies
    choice: Optional[StrategyChoice] = None

    @property
    def shard_ids(self) -> List[int]:
        return sorted(self.in_ids_by_shard)

    @property
    def n_planned(self) -> int:
        return sum(len(ids) for ids in self.in_ids_by_shard.values())


def _socket_client_factory(address: Any, timeout: float) -> ShardClient:
    host, port = address
    return ShardClient(host, port, timeout=timeout)


class ShardRouter:
    """Scatter/gather front end over one sharded dataset.

    ``client_factory(address, timeout)`` builds a fresh client per
    attempt (a failed attempt's connection state is never reused);
    ``clock``/``sleep`` are injectable for deterministic retry tests.
    """

    def __init__(
        self,
        topology: ShardTopology,
        endpoints: Sequence[ShardEndpoint],
        policy: Optional[RouterPolicy] = None,
        client_factory: Callable[[Any, float], ShardClient] = _socket_client_factory,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        machine: Optional[MachineConfig] = None,
        cost_model=None,
    ) -> None:
        self.topology = topology
        self.policy = policy if policy is not None else RouterPolicy()
        # Pricing for strategy='auto': the router models the deployment
        # as one machine with a processor per shard (each shard is an
        # independent process owning a disk farm).  A calibrated model
        # fitted from this deployment's telemetry can be passed instead.
        if machine is None:
            from repro.machine.presets import ibm_sp

            machine = ibm_sp(topology.n_shards)
        self.machine = machine
        if cost_model is None:
            from repro.frontend.adr import DEFAULT_COSTS
            from repro.planner.costmodel import CostModel

            cost_model = CostModel(machine, DEFAULT_COSTS)
        self.cost_model = cost_model
        self.endpoints: Dict[int, ShardEndpoint] = {}
        for ep in endpoints:
            if ep.shard_id in self.endpoints:
                raise ValueError(f"duplicate endpoint for shard {ep.shard_id}")
            self.endpoints[ep.shard_id] = ep
        missing = set(range(topology.n_shards)) - set(self.endpoints)
        if missing:
            raise ValueError(f"no endpoint for shards {sorted(missing)}")
        self._client_factory = client_factory
        self._clock = clock
        self._sleep = sleep

    # -- planning -------------------------------------------------------

    def plan(self, query: RangeQuery) -> ScatterPlan:
        """Plan the scatter once, router-side.

        ``strategy='auto'`` is resolved here, once, against the global
        topology -- the scattered sub-queries all carry the concrete
        winning strategy, so every shard partitions its work the same
        way and the partial accumulators merge consistently.

        Raises the same ``ValueError`` messages a single-process
        ``ADR.build_problem`` would for empty selections/projections,
        so clients cannot tell a router from a standalone server.
        """
        topo = self.topology
        if query.dataset != topo.dataset:
            raise ValueError(
                f"query targets dataset {query.dataset!r}; this router "
                f"serves {topo.dataset!r}"
            )
        region = topo.space.validate_query(query.region)
        in_ids = topo.index.query(region)
        if len(in_ids) == 0:
            raise ValueError(f"query region {region} selects no input chunks")

        out_all = query.grid.chunkset()
        out_ids = out_all.intersecting(query.mapping.project_rect(region))
        if len(out_ids) == 0:
            raise ValueError("query region projects onto no output chunks")

        choice: Optional[StrategyChoice] = None
        if is_auto(query.strategy):
            from dataclasses import replace

            problem = self._pricing_problem(query, in_ids, out_ids)
            choice = choose_strategy(problem, self.cost_model)
            query = replace(query, strategy=choice.selected)

        shard_of = topo.assignment.shard_of[in_ids]
        by_shard = {
            int(sid): in_ids[shard_of == sid] for sid in np.unique(shard_of)
        }
        return ScatterPlan(
            query=query, output_ids=out_ids, in_ids_by_shard=by_shard,
            choice=choice,
        )

    def _pricing_problem(
        self, query: RangeQuery, in_ids: np.ndarray, out_ids: np.ndarray
    ) -> PlanningProblem:
        """The global planning problem ``strategy='auto'`` is priced on.

        One "processor" per shard, inputs placed on their owning shard.
        The scatter itself is *not* pruned here -- each shard prunes
        locally at execution time, and the completeness denominator
        must keep covering what was planned -- so prunable chunks stay
        in the input universe and are listed in ``pruned_input_ids``
        (the overlapping convention of
        :meth:`~repro.planner.problem.PlanningProblem.pruned_in_plan_mask`),
        letting the cost model subtract the work they will not cost.
        """
        topo = self.topology
        n = topo.n_shards
        shard_of = topo.assignment.shard_of[in_ids]
        inputs = topo.chunks.subset(in_ids).with_placement(
            shard_of, np.zeros(len(in_ids), dtype=np.int64)
        )
        out_all = query.grid.chunkset()
        node, disk = HilbertDeclusterer().assign(out_all, n, 1)
        outputs = out_all.with_placement(node, disk).subset(out_ids)
        graph = ChunkGraph.from_geometry(inputs, outputs, query.mapping)
        spec = query.spec()
        acc_nbytes = np.asarray(
            [spec.acc_bytes(query.grid.cells_in_chunk(int(o))) for o in out_ids],
            dtype=np.int64,
        )
        pruned_ids = np.empty(0, dtype=np.int64)
        pruned_bytes = 0
        predicate = query.predicate()
        if predicate is not None and topo.chunks.synopsis is not None:
            prunable = predicate.prunable_chunks(
                topo.chunks.synopsis.subset(in_ids)
            )
            pruned_ids = in_ids[prunable]
            pruned_bytes = int(topo.chunks.nbytes[pruned_ids].sum())
        return PlanningProblem(
            n_procs=n,
            memory_per_proc=self.machine.memory_per_proc,
            inputs=inputs,
            outputs=outputs,
            graph=graph,
            acc_nbytes=acc_nbytes,
            input_global_ids=in_ids,
            output_global_ids=out_ids,
            pruned_input_ids=pruned_ids,
            pruned_bytes=pruned_bytes,
        )

    # -- execution ------------------------------------------------------

    def execute(self, query: RangeQuery) -> QueryResult:
        """Scatter *query*, gather partials, globally combine."""
        plan = self.plan(query)
        partials, shard_errors = self._scatter(plan)
        if shard_errors:
            bad = [
                e for e in shard_errors.values()
                if isinstance(e, RemoteQueryError) and e.code == "bad_request"
            ]
            if bad:
                # The query itself is at fault; no amount of failover
                # or degradation changes that.
                raise bad[0]
            if query.on_error != "degrade":
                raise ShardUnavailableError(
                    "shards failed under on_error='raise': "
                    + "; ".join(
                        f"shard {sid}: {e}"
                        for sid, e in sorted(shard_errors.items())
                    ),
                    {sid: str(e) for sid, e in shard_errors.items()},
                )
        return self._merge(plan, partials, shard_errors)

    def _scatter(
        self, plan: ScatterPlan
    ) -> Tuple[List[Tuple[int, QueryResult]], Dict[int, BaseException]]:
        """Fetch every relevant shard's partial, one thread each."""
        lock = threading.Lock()
        partials: List[Tuple[int, QueryResult]] = []
        failures: Dict[int, BaseException] = {}

        def fetch(sid: int) -> None:
            try:
                result = self._fetch_shard(self.endpoints[sid], plan.query)
            except Exception as e:
                with lock:
                    failures[sid] = e
                return
            with lock:
                partials.append((sid, result))

        threads = [
            threading.Thread(
                target=fetch, args=(sid,), name=f"shard-fetch-{sid}", daemon=True
            )
            for sid in plan.shard_ids
        ]
        deadline_at = self._clock() + self.policy.shard_deadline_s + _JOIN_GRACE_S
        for t in threads:
            t.start()
        for sid, t in zip(plan.shard_ids, threads):
            t.join(timeout=max(0.0, deadline_at - self._clock()))
            if t.is_alive():
                with lock:
                    failures.setdefault(
                        sid,
                        DeadlineExceededError(
                            f"shard {sid} fetch still running past its "
                            f"{self.policy.shard_deadline_s}s deadline"
                        ),
                    )
        with lock:
            # A straggler thread may still record a late result; snapshot
            # under the lock and keep only shards not already failed.
            live = [(sid, r) for sid, r in partials if sid not in failures]
            return live, dict(failures)

    # -- per-shard fetch ------------------------------------------------

    def _fetch_shard(
        self, endpoint: ShardEndpoint, query: RangeQuery
    ) -> QueryResult:
        deadline_at = self._clock() + self.policy.shard_deadline_s
        hedge = self.policy.hedge_after_s
        if hedge is None or not endpoint.replicas:
            return self._fetch_chain(endpoint.addresses, query, deadline_at)
        return self._fetch_hedged(endpoint, query, deadline_at)

    def _fetch_chain(
        self,
        addresses: Tuple[Any, ...],
        query: RangeQuery,
        deadline_at: float,
    ) -> QueryResult:
        """Retry/failover loop cycling *addresses* under one deadline."""
        retry = self.policy.retry
        last: Optional[BaseException] = None
        for attempt in range(retry.max_attempts):
            remaining = deadline_at - self._clock()
            if remaining <= 0:
                break
            address = addresses[attempt % len(addresses)]
            client: Optional[ShardClient] = None
            try:
                client = self._client_factory(
                    address, min(self.policy.connect_timeout_s, remaining)
                )
                remaining = deadline_at - self._clock()
                if remaining <= 0:
                    break
                return client.query_partial(query, deadline=remaining)
            except RemoteQueryError as e:
                if e.code == "bad_request":
                    raise
                last = e  # overloaded / draining / internal: try elsewhere
            except retry.retry_on as e:
                last = e
            finally:
                if client is not None:
                    client.close()
            if attempt + 1 < retry.max_attempts:
                pause = retry.delay(attempt)
                if self._clock() + pause < deadline_at:
                    self._sleep(pause)
        if last is not None:
            raise last
        raise DeadlineExceededError(
            f"shard fetch deadline of {self.policy.shard_deadline_s}s "
            "expired before any attempt completed"
        )

    def _fetch_hedged(
        self, endpoint: ShardEndpoint, query: RangeQuery, deadline_at: float
    ) -> QueryResult:
        """Primary first; re-dispatch to replicas after ``hedge_after_s``.

        The loser is abandoned, never joined -- hedging exists to stop
        waiting on stragglers.  Both chains share the shard deadline.
        """
        cv = threading.Condition()
        state: Dict[str, Any] = {"result": None, "errors": [], "open": 0}

        def run(addresses: Tuple[Any, ...]) -> None:
            try:
                result = self._fetch_chain(addresses, query, deadline_at)
            except Exception as e:
                with cv:
                    state["errors"].append(e)
                    state["open"] -= 1
                    cv.notify_all()
                return
            with cv:
                if state["result"] is None:
                    state["result"] = result
                state["open"] -= 1
                cv.notify_all()

        def settled() -> bool:
            return state["result"] is not None or state["open"] == 0

        with cv:
            state["open"] = 1
            threading.Thread(
                target=run, args=((endpoint.address,),),
                name=f"shard-hedge-primary-{endpoint.shard_id}", daemon=True,
            ).start()
            cv.wait_for(settled, timeout=self.policy.hedge_after_s)
            if state["result"] is None and state["open"] > 0:
                # Primary is straggling: hedge to the replicas.
                state["open"] += 1
                threading.Thread(
                    target=run, args=(tuple(endpoint.replicas),),
                    name=f"shard-hedge-replica-{endpoint.shard_id}", daemon=True,
                ).start()
            cv.wait_for(
                settled,
                timeout=max(0.0, deadline_at - self._clock()) + _JOIN_GRACE_S,
            )
            if state["result"] is not None:
                return state["result"]
            if state["errors"]:
                raise state["errors"][0]
        raise DeadlineExceededError(
            f"shard {endpoint.shard_id} answered on no address within "
            f"its {self.policy.shard_deadline_s}s deadline"
        )

    # -- merge ----------------------------------------------------------

    def _merge(
        self,
        plan: ScatterPlan,
        partials: List[Tuple[int, QueryResult]],
        shard_failures: Dict[int, BaseException],
    ) -> QueryResult:
        query = plan.query
        spec = query.spec()
        values, router_combines = combine_partials(
            spec, query.grid, plan.output_ids, partials
        )

        # Chunk-level degradation in dataset-global ids: a live shard's
        # local chunk errors translate through its global-id spine; a
        # dead shard contributes every chunk it was planned to serve.
        assignment = self.topology.assignment
        chunk_errors: Dict[int, str] = {}
        for sid, r in sorted(partials, key=lambda item: item[0]):
            gids = assignment.global_ids(sid)
            for local, msg in r.chunk_errors.items():
                chunk_errors[int(gids[int(local)])] = str(msg)
        shard_errors: Dict[int, str] = {}
        for sid in sorted(shard_failures):
            msg = f"{type(shard_failures[sid]).__name__}: {shard_failures[sid]}"
            shard_errors[sid] = msg
            for gid in plan.in_ids_by_shard[sid]:
                chunk_errors[int(gid)] = f"shard {sid} unavailable: {msg}"

        # Completeness over the *effective* plan: every contacted
        # shard's spatially planned chunks, minus what live shards
        # provably pruned (a dead shard's chunks stay in the
        # denominator unpruned -- conservative; see docs/sharding.md).
        n_effective = plan.n_planned - sum(r.chunks_pruned for _, r in partials)
        completeness = (
            1.0 - len(chunk_errors) / n_effective if n_effective > 0 else 1.0
        )

        phase_times: Dict[str, float] = {}
        for name in PHASES:
            stamps = [
                r.phase_times[name] for _, r in partials if name in r.phase_times
            ]
            if stamps:
                phase_times[name] = max(stamps)
        cache_stats: Dict[str, int] = {}
        for _, r in partials:
            for k, v in r.cache_stats.items():
                cache_stats[k] = cache_stats.get(k, 0) + int(v)

        return QueryResult(
            strategy=query.strategy.upper(),
            output_ids=np.asarray(plan.output_ids, dtype=np.int64),
            chunk_values=values,
            n_tiles=max((r.n_tiles for _, r in partials), default=0),
            n_reads=sum(r.n_reads for _, r in partials),
            bytes_read=sum(r.bytes_read for _, r in partials),
            n_combines=sum(r.n_combines for _, r in partials) + router_combines,
            n_aggregations=sum(r.n_aggregations for _, r in partials),
            phase_times=phase_times,
            cache_stats=cache_stats,
            chunk_errors=chunk_errors,
            completeness=completeness,
            chunks_pruned=sum(r.chunks_pruned for _, r in partials),
            bytes_pruned=sum(r.bytes_pruned for _, r in partials),
            shared_reads=sum(r.shared_reads for _, r in partials),
            shared_bytes=sum(r.shared_bytes for _, r in partials),
            shard_errors=shard_errors,
            selected_strategy=(
                plan.choice.selected if plan.choice is not None else ""
            ),
            strategy_ranking=(
                plan.choice.ranking_dict() if plan.choice is not None else {}
            ),
        )

    # -- liveness -------------------------------------------------------

    def health(self, deadline: Optional[float] = None) -> Dict[int, Dict[str, Any]]:
        """Probe every shard's primary; errors become ``{"status": ...}``."""
        budget = deadline if deadline is not None else self.policy.connect_timeout_s
        out: Dict[int, Dict[str, Any]] = {}
        for sid in sorted(self.endpoints):
            ep = self.endpoints[sid]
            try:
                client = self._client_factory(ep.address, budget)
                try:
                    out[sid] = client.health(deadline=budget)
                finally:
                    client.close()
            except (OSError, ProtocolError, RemoteQueryError) as e:
                out[sid] = {
                    "status": "unreachable",
                    "error": f"{type(e).__name__}: {e}",
                }
        return out
