"""Sharded scale-out: many ADR back-end processes behind a router.

The paper's customized ADR back end runs as a set of independent
processes that each own a disk farm and combine partial accumulators
globally.  This package is that deployment shape:

- :mod:`repro.shard.topology` -- Hilbert-declustered chunk-to-shard
  assignment (the same locality argument as disk declustering, one
  level up);
- :mod:`repro.shard.partial` -- raw-accumulator partial results and
  the FRA global combine that merges them;
- :mod:`repro.shard.server` -- one shard process: an
  :class:`~repro.frontend.service.ADRServer` over the shard's local
  dataset, answering partial queries;
- :mod:`repro.shard.router` -- the scatter/gather router: plans once,
  fans sub-plans out over the wire protocol with per-shard deadlines,
  retry/failover and optional hedging, merges partials, and degrades
  (``shard_errors`` + completeness) instead of failing when a shard is
  lost;
- :mod:`repro.shard.cluster` -- thread-hosted deployments for tests,
  the ``--shards`` bit-identity corpus and the chaos corpus.

See ``docs/sharding.md`` for topology, failure semantics and the
completeness contract.
"""

from repro.shard.cluster import ShardCluster
from repro.shard.partial import (
    PartialAggregationSpec,
    as_partial,
    combine_partials,
    empty_partial_result,
)
from repro.shard.router import (
    RouterPolicy,
    ScatterPlan,
    ShardEndpoint,
    ShardRouter,
    ShardUnavailableError,
)
from repro.shard.server import ShardClient, ShardServer
from repro.shard.topology import (
    ShardAssignment,
    ShardTopology,
    assign_shards,
    shard_chunks,
)

__all__ = [
    "ShardAssignment",
    "ShardTopology",
    "assign_shards",
    "shard_chunks",
    "PartialAggregationSpec",
    "as_partial",
    "combine_partials",
    "empty_partial_result",
    "ShardServer",
    "ShardClient",
    "ShardEndpoint",
    "RouterPolicy",
    "ScatterPlan",
    "ShardRouter",
    "ShardUnavailableError",
    "ShardCluster",
]
