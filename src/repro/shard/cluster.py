"""Thread-hosted sharded deployments for tests, corpus and chaos runs.

:class:`ShardCluster` builds the whole deployment in one process: it
splits a chunk population across N :class:`~repro.shard.server.ShardServer`
instances (each with its own ADR over its Hilbert-assigned shard),
binds them to loopback ports on daemon threads, and fronts them with a
:class:`~repro.shard.router.ShardRouter`.  That is the deployment the
``--shards`` corpus gates and the chaos corpus injures.

Two execution paths, same code:

- :meth:`execute` goes over real sockets through the cluster's router;
- :meth:`execute_local` runs the identical router/merge path against
  the servers' dispatch methods directly (no sockets), optionally with
  some shards ``down`` -- it is the *expectation generator* for both
  the bit-identity gate (sharded-over-sockets must equal
  sharded-in-process bit for bit) and every degraded chaos scenario.

Fault hooks: ``faulty_stores`` plants a
:class:`~repro.faults.FaultyChunkStore` injector under a shard's cache
(chunk-level faults compose with shard-level ones);
:meth:`crash_shard` closes a shard's listening socket so new
connections are refused; :meth:`drain_shard` flips one into graceful
drain.  Wire-level faults (torn frames, slow peers) come from
:class:`repro.faults.wire.ChaosProxy` sitting between the router's
endpoints and the servers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.dataset.chunk import Chunk
from repro.faults.injector import FaultInjector
from repro.faults.store import FaultyChunkStore
from repro.frontend.adr import ADR
from repro.frontend.protocol import query_to_dict, result_from_dict
from repro.frontend.query import RangeQuery
from repro.frontend.queryservice import ServicePolicy
from repro.frontend.service import ADRClient
from repro.machine.config import MachineConfig
from repro.runtime.engine import QueryResult
from repro.shard.router import (
    RouterPolicy,
    ShardEndpoint,
    ShardRouter,
)
from repro.shard.server import ShardServer
from repro.shard.topology import ShardTopology, shard_chunks
from repro.space.attribute_space import AttributeSpace
from repro.store.chunk_store import MemoryChunkStore

__all__ = ["ShardCluster"]


class _LocalShardClient:
    """In-process stand-in for :class:`~repro.shard.server.ShardClient`.

    Calls the server's dispatch directly -- the exact same
    encode/dispatch/decode code the socket path runs, minus the
    socket -- so local composite results are bit-identical to wire
    results and serve as the chaos corpus's ground truth.
    """

    def __init__(self, server: ShardServer) -> None:
        self._server = server

    def query_partial(
        self, query: RangeQuery, deadline: Optional[float] = None
    ) -> QueryResult:
        response = self._server.adr_dispatch(
            {"op": "query", "query": query_to_dict(query), "partial": True}
        )
        ADRClient._checked(response, "partial query")
        return result_from_dict(response["result"])

    def health(self, deadline: Optional[float] = None) -> Dict[str, Any]:
        return ADRClient._checked(
            self._server.adr_dispatch({"op": "health"}), "health"
        )["result"]

    def close(self) -> None:
        pass


class ShardCluster:
    """One sharded deployment: N shard servers behind a router."""

    def __init__(
        self,
        topology: ShardTopology,
        shard_adrs: List[ADR],
        service_policy: Optional[ServicePolicy] = None,
        router_policy: Optional[RouterPolicy] = None,
    ) -> None:
        if len(shard_adrs) != topology.n_shards:
            raise ValueError(
                f"{len(shard_adrs)} ADRs for {topology.n_shards} shards"
            )
        self.topology = topology
        self.shard_adrs = shard_adrs
        self.service_policy = service_policy
        self.router_policy = (
            router_policy if router_policy is not None else RouterPolicy()
        )
        self.servers: List[ShardServer] = []
        self.router: Optional[ShardRouter] = None
        self._crashed: set = set()
        self._started = False

    # -- construction ----------------------------------------------------

    @classmethod
    def build(
        cls,
        dataset: str,
        space: AttributeSpace,
        chunks: Sequence[Chunk],
        n_shards: int,
        n_procs: int = 2,
        memory_per_proc: int = 1 << 20,
        bits: int = 16,
        service_policy: Optional[ServicePolicy] = None,
        router_policy: Optional[RouterPolicy] = None,
        faulty_stores: Optional[Dict[int, FaultInjector]] = None,
    ) -> "ShardCluster":
        """Split *chunks* over *n_shards* local ADRs (not yet serving).

        ``faulty_stores`` maps shard ids to
        :class:`~repro.faults.FaultInjector` instances planted under
        that shard's payload cache, so seeded chunk-level faults
        compose with shard-level ones in the chaos corpus.
        """
        topology = ShardTopology.build(dataset, space, chunks, n_shards, bits)
        injectors = faulty_stores or {}
        adrs: List[ADR] = []
        for sid in range(n_shards):
            store = MemoryChunkStore()
            if sid in injectors:
                store = FaultyChunkStore(store, injectors[sid])
            adr = ADR(
                machine=MachineConfig(
                    n_procs=n_procs, memory_per_proc=memory_per_proc
                ),
                store=store,
            )
            adr.load(dataset, space, shard_chunks(chunks, topology.assignment, sid))
            adrs.append(adr)
        return cls(topology, adrs, service_policy, router_policy)

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "ShardCluster":
        """Bind every shard server on a loopback port, build the router."""
        if self._started:
            return self
        for sid, adr in enumerate(self.shard_adrs):
            server = ShardServer(
                adr, sid, host="127.0.0.1", port=0, policy=self.service_policy
            )
            server.__enter__()
            self.servers.append(server)
        self._started = True
        self.router = self.router_for()
        return self

    def close(self) -> None:
        for sid, server in enumerate(self.servers):
            if sid not in self._crashed:
                server.__exit__(None, None, None)
        self.servers = []
        self._started = False

    def __enter__(self) -> "ShardCluster":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- deployment views ------------------------------------------------

    @property
    def endpoints(self) -> List[ShardEndpoint]:
        """The live socket endpoints (primary only, no replicas)."""
        self._require_started()
        return [
            ShardEndpoint(shard_id=sid, address=server.address)
            for sid, server in enumerate(self.servers)
        ]

    def router_for(
        self,
        endpoints: Optional[Sequence[ShardEndpoint]] = None,
        policy: Optional[RouterPolicy] = None,
        client_factory: Optional[Callable] = None,
        clock: Optional[Callable[[], float]] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> ShardRouter:
        """A router over this topology with overridable wiring --
        redirected endpoints (chaos proxies, replicas), a tighter
        policy, or an injected clock."""
        self._require_started()
        kwargs: Dict[str, Any] = {}
        if client_factory is not None:
            kwargs["client_factory"] = client_factory
        if clock is not None:
            kwargs["clock"] = clock
        if sleep is not None:
            kwargs["sleep"] = sleep
        return ShardRouter(
            self.topology,
            list(endpoints) if endpoints is not None else self.endpoints,
            policy=policy if policy is not None else self.router_policy,
            **kwargs,
        )

    # -- execution -------------------------------------------------------

    def execute(self, query: RangeQuery) -> QueryResult:
        """Scatter/gather over real sockets through the cluster router."""
        self._require_started()
        assert self.router is not None
        return self.router.execute(query)

    def execute_local(
        self,
        query: RangeQuery,
        down: FrozenSet[int] = frozenset(),
        policy: Optional[RouterPolicy] = None,
    ) -> QueryResult:
        """The same scatter/gather/merge, in process, without sockets.

        Shards in *down* answer every connection attempt with
        ``ConnectionRefusedError`` -- this is how chaos scenarios
        compute their exact degraded expectation: the wire run with
        shard k injured must equal ``execute_local(q, down={k})`` bit
        for bit.
        """
        self._require_started()

        def factory(address: Any, timeout: float) -> _LocalShardClient:
            sid = int(address)
            if sid in down or sid in self._crashed:
                raise ConnectionRefusedError(f"shard {sid} is down")
            return _LocalShardClient(self.servers[sid])

        local_endpoints = [
            ShardEndpoint(shard_id=sid, address=sid)
            for sid in range(self.topology.n_shards)
        ]
        router = ShardRouter(
            self.topology,
            local_endpoints,
            policy=policy if policy is not None else self.router_policy,
            client_factory=factory,
        )
        return router.execute(query)

    # -- fault hooks -----------------------------------------------------

    def crash_shard(self, shard_id: int) -> None:
        """Close the shard's listening socket: connections are refused
        from now on (an OS-level process death, minus the OS)."""
        self._require_started()
        if shard_id in self._crashed:
            return
        self.servers[shard_id].__exit__(None, None, None)
        self._crashed.add(shard_id)

    def drain_shard(self, shard_id: int) -> None:
        """Flip one shard into graceful drain (it answers
        ``shard_unavailable`` for queries, keeps serving probes)."""
        self._require_started()
        self.servers[shard_id].drain()

    def _require_started(self) -> None:
        if not self._started:
            raise RuntimeError(
                "cluster is not serving; use `with cluster:` or call start()"
            )
