"""Shard server and client: one ADR back-end process of a deployment.

A :class:`ShardServer` is an :class:`~repro.frontend.service.ADRServer`
that owns one Hilbert-assigned chunk shard (loaded as a standalone
local dataset) and additionally answers *partial* queries --
``{"op": "query", "partial": true, "query": {...}}`` -- by wrapping
the query's aggregation in
:class:`~repro.shard.partial.PartialAggregationSpec` before submitting
it into its :class:`~repro.frontend.queryservice.QueryService`, so the
response carries raw accumulators for the router's global combine.
A query that selects none of this shard's chunks answers an *empty
partial* (nothing read, nothing aggregated) rather than an error:
emptiness is a normal outcome of scattering a range query over a
declustered deployment.

``python -m repro.shard.server --load shard.pickle`` hosts one shard
as a standalone OS process (used by ``benchmarks/bench_shards.py`` to
measure machine-count scaling on real processes); everything else in
the test suite and corpus hosts shards in threads via
:class:`repro.shard.cluster.ShardCluster`.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.frontend.adr import ADR
from repro.frontend.protocol import (
    ProtocolError,
    error_to_dict,
    query_from_dict,
    query_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.frontend.query import RangeQuery
from repro.frontend.queryservice import (
    QueryService,
    ServiceClosedError,
    ServiceOverloadedError,
    ServicePolicy,
)
from repro.frontend.service import ADRClient, ADRServer
from repro.runtime.engine import QueryResult
from repro.shard.partial import (
    EMPTY_SELECTION_MARK,
    as_partial,
    empty_partial_result,
)

__all__ = ["ShardServer", "ShardClient"]


class ShardServer(ADRServer):
    """One shard process: a local ADR plus the partial-query op."""

    def __init__(
        self,
        adr: ADR,
        shard_id: int,
        host: str = "127.0.0.1",
        port: int = 0,
        policy: Optional[ServicePolicy] = None,
        service: Optional[QueryService] = None,
    ) -> None:
        self.shard_id = int(shard_id)
        super().__init__(adr, host, port, policy, service)

    def health(self) -> Dict[str, Any]:
        h = super().health()
        h["shard_id"] = self.shard_id
        return h

    def adr_dispatch(self, message: dict) -> dict:
        if (
            message.get("op") == "query"
            and message.get("partial")
            and not self._draining.is_set()
        ):
            return self._dispatch_partial(message)
        # Draining partial queries fall through to the base dispatch,
        # which answers ``shard_unavailable`` for every query op.
        return super().adr_dispatch(message)

    def _dispatch_partial(self, message: dict) -> dict:
        try:
            query = query_from_dict(message.get("query", {}))
        except (ProtocolError, KeyError, ValueError) as e:
            return error_to_dict("bad_request", e)
        try:
            ticket = self.service.submit(as_partial(query))
        except ServiceOverloadedError as e:
            return error_to_dict("overloaded", e)
        except ServiceClosedError as e:
            return error_to_dict("internal", e)
        try:
            result = ticket.result()
        except ValueError as e:
            if EMPTY_SELECTION_MARK in str(e):
                result = empty_partial_result(query)
            else:
                return error_to_dict("bad_request", e)
        except (ProtocolError, KeyError) as e:
            return error_to_dict("bad_request", e)
        except Exception as e:
            return error_to_dict("internal", e)
        return {"ok": True, "result": result_to_dict(result)}


class ShardClient(ADRClient):
    """Protocol client speaking the shard extension of the wire schema."""

    def query_partial(
        self, query: RangeQuery, deadline: Optional[float] = None
    ) -> QueryResult:
        """Fetch this shard's raw-accumulator partial for *query*."""
        response = self._call(
            {"op": "query", "query": query_to_dict(query), "partial": True},
            deadline,
        )
        self._checked(response, "partial query")
        return result_from_dict(response["result"])


def main(argv: Optional[list] = None) -> int:
    """Host one pickled shard as a standalone process (bench harness).

    The pickle holds ``{"dataset", "space", "chunks", "shard_id",
    "n_procs", "memory_per_proc"}`` with the chunks already re-numbered
    by :func:`repro.shard.topology.shard_chunks`; optional
    ``read_delay_s`` stalls every chunk read (the disk farm's round
    trip, for machine-count scaling benches) and ``cache_bytes``
    overrides the payload-cache size (``0`` disables it, so repeated
    bench rounds keep paying the modelled read latency).  Prints
    ``PORT <n>`` then ``READY`` on stdout so the parent can connect.
    """
    import argparse
    import pickle

    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan
    from repro.machine.config import MachineConfig
    from repro.store.chunk_store import MemoryChunkStore
    from repro.util.units import MB

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--load", required=True, help="pickled shard payload")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    args = parser.parse_args(argv)

    with open(args.load, "rb") as f:
        payload = pickle.load(f)
    store = MemoryChunkStore()
    delay = float(payload.get("read_delay_s", 0.0) or 0.0)
    if delay > 0.0:
        from repro.faults.store import FaultyChunkStore

        store = FaultyChunkStore(
            store, FaultInjector(FaultPlan.slow_read(delay))
        )
    adr = ADR(
        machine=MachineConfig(
            n_procs=int(payload["n_procs"]),
            memory_per_proc=int(payload["memory_per_proc"]),
        ),
        store=store,
        cache_bytes=int(payload.get("cache_bytes", 64 * MB)),
    )
    adr.load(payload["dataset"], payload["space"], payload["chunks"])
    with ShardServer(
        adr, payload["shard_id"], host=args.host, port=args.port
    ) as server:
        print(f"PORT {server.address[1]}", flush=True)
        print("READY", flush=True)
        try:
            while True:
                server._thread.join(timeout=3600)
        except KeyboardInterrupt:  # noqa: ADR401 -- operator Ctrl-C is the shutdown signal
            pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
