"""Client wire protocol: JSON-safe query and result encoding.

The paper's front end "interacts with client applications and relays
the range queries to the back-end"; sequential clients connect through
a socket interface.  This module is that interface's message format:
queries and results round-trip through plain JSON-compatible
dictionaries, so a client process needs nothing but ``json`` and this
schema to drive an ADR service.

Only declarative customizations travel over the wire -- the built-in
aggregations by name and :class:`~repro.space.mapping.GridMapping`
projections by parameters.  Arbitrary user functions (the C++ ADR's
linked-in customization) are inherently not serializable; clients
needing them register them server-side and reference them by name.
"""

from __future__ import annotations

import json
import struct
from typing import Any, BinaryIO, Dict, Optional

import numpy as np

from repro.aggregation.functions import AGGREGATIONS, AggregationSpec
from repro.aggregation.output_grid import OutputGrid
from repro.dataset.predicate import ValuePredicate
from repro.frontend.query import RangeQuery
from repro.planner.select import AUTO
from repro.runtime.engine import QueryResult
from repro.space.attribute_space import AttributeSpace
from repro.space.mapping import GridMapping
from repro.store.prefetch import PrefetchPolicy
from repro.util.geometry import Rect

__all__ = [
    "query_to_dict",
    "query_from_dict",
    "result_to_dict",
    "result_from_dict",
    "error_to_dict",
    "ProtocolError",
    "DeadlineExceededError",
    "ERROR_CODES",
    "MAX_FRAME_BYTES",
    "write_frame",
    "read_frame",
]

PROTOCOL_VERSION = 1

#: Machine-distinguishable failure classes on the wire.  ``bad_request``:
#: the message or query is malformed / names unknown entities (do not
#: retry unchanged); ``overloaded``: admission control rejected the
#: query, the service is saturated (retry with back-off, honoring the
#: ``details.retry_after_s`` hint when present); ``shard_unavailable``:
#: the serving process is draining or a shard router found the shard
#: dead (retry elsewhere / degrade); ``deadline_exceeded``: the caller's
#: deadline expired before a response arrived; ``internal``: anything
#: else server-side.
ERROR_CODES = (
    "bad_request", "overloaded", "internal", "shard_unavailable",
    "deadline_exceeded",
)


class ProtocolError(ValueError):
    """Malformed or unsupported protocol message."""


class DeadlineExceededError(TimeoutError):
    """A per-request deadline expired before the response arrived.

    Subclasses ``TimeoutError`` (hence ``OSError``): retry policies
    treat an expired request like any transient I/O failure, and shard
    routers bound every retry loop with the remaining global deadline.
    """


# -- framing ----------------------------------------------------------
#
# Requests and responses travel as length-prefixed frames: a 4-byte
# big-endian payload length followed by that many bytes of UTF-8 JSON.
# Framing makes torn connections *loud* -- a short read is a
# ProtocolError naming the missing bytes, never a hang or a bare
# struct.error.  Servers keep reading newline-delimited JSON from
# legacy clients: a first byte of ``{`` (impossible in a framed header
# under MAX_FRAME_BYTES) selects line mode per message.

_FRAME_HEADER = struct.Struct(">I")

#: Upper bound on one frame's declared payload length.  A header
#: announcing more than this is corrupt (or hostile) and must fail
#: loudly before anything tries to allocate or await the bytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024


def write_frame(wfile: BinaryIO, message: Dict[str, Any]) -> None:
    """Encode *message* and write one length-prefixed frame."""
    data = json.dumps(message).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(data)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    wfile.write(_FRAME_HEADER.pack(len(data)) + data)
    wfile.flush()


def read_frame(rfile: BinaryIO, prefix: bytes = b"") -> Optional[Dict[str, Any]]:
    """Read one length-prefixed frame; ``None`` on clean EOF.

    *prefix* holds header bytes the caller already consumed (the
    server's one-byte legacy-protocol sniff).  Raises
    :class:`ProtocolError` on a truncated header, an oversized declared
    length, a torn payload, or a payload that is not valid JSON.
    """
    header = prefix + rfile.read(_FRAME_HEADER.size - len(prefix))
    if not header:
        return None
    if len(header) < _FRAME_HEADER.size:
        raise ProtocolError(
            f"truncated frame header: got {len(header)} of "
            f"{_FRAME_HEADER.size} bytes"
        )
    (length,) = _FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"declared frame length {length} exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES}); stream is corrupt"
        )
    payload = rfile.read(length)
    if len(payload) < length:
        raise ProtocolError(
            f"torn frame: got {len(payload)} of {length} payload bytes"
        )
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as e:
        raise ProtocolError(f"bad frame payload: {e}") from e


def error_to_dict(
    code: str, error: Any, details: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Encode a failure response: ``{"ok": false, "code": ..., "error": ...}``.

    ``code`` is one of :data:`ERROR_CODES`; the free-text ``error``
    field is kept for back-compat with pre-code clients (exceptions
    render as ``"TypeName: message"``, matching the old format).
    *details* adds a machine-readable ``"details"`` object (e.g. the
    overload responses' ``queue_depth`` / ``retry_after_s`` back-off
    hint); when omitted, an exception's own ``wire_details`` attribute
    (if any) is used.
    """
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}; expected one of {ERROR_CODES}")
    text = (
        f"{type(error).__name__}: {error}"
        if isinstance(error, BaseException)
        else str(error)
    )
    payload: Dict[str, Any] = {"ok": False, "code": code, "error": text}
    if details is None:
        details = getattr(error, "wire_details", None)
    if details:
        payload["details"] = {str(k): v for k, v in details.items()}
    return payload


# -- pieces -----------------------------------------------------------


def _space_to_dict(space: AttributeSpace) -> Dict[str, Any]:
    return {
        "name": space.name,
        "dims": [[d.name, d.lo, d.hi] for d in space.dims],
    }


def _space_from_dict(d: Dict[str, Any]) -> AttributeSpace:
    try:
        names, los, his = zip(*((n, lo, hi) for n, lo, hi in d["dims"]))
        return AttributeSpace.regular(d["name"], names, los, his)
    except (KeyError, TypeError, ValueError) as e:
        raise ProtocolError(f"bad attribute space payload: {e}") from e


def _rect_to_dict(rect: Rect) -> Dict[str, Any]:
    return {"lo": list(rect.lo), "hi": list(rect.hi)}


def _rect_from_dict(d: Dict[str, Any]) -> Rect:
    try:
        return Rect(tuple(d["lo"]), tuple(d["hi"]))
    except (KeyError, TypeError, ValueError) as e:
        raise ProtocolError(f"bad rectangle payload: {e}") from e


def _mapping_to_dict(mapping: GridMapping) -> Dict[str, Any]:
    if not isinstance(mapping, GridMapping):
        raise ProtocolError(
            f"only GridMapping travels over the wire, got {type(mapping).__name__}; "
            "register custom mappings server-side"
        )
    return {
        "type": "grid",
        "input_space": _space_to_dict(mapping.input_space),
        "output_space": _space_to_dict(mapping.output_space),
        "grid_shape": list(mapping.grid_shape),
        "dim_select": list(mapping.dim_select),
        "footprint": list(mapping.footprint),
    }


def _mapping_from_dict(d: Dict[str, Any]) -> GridMapping:
    if d.get("type") != "grid":
        raise ProtocolError(f"unsupported mapping type {d.get('type')!r}")
    return GridMapping(
        _space_from_dict(d["input_space"]),
        _space_from_dict(d["output_space"]),
        tuple(d["grid_shape"]),
        dim_select=tuple(d["dim_select"]),
        footprint=tuple(d["footprint"]),
    )


def _grid_to_dict(grid: OutputGrid) -> Dict[str, Any]:
    return {
        "space": _space_to_dict(grid.space),
        "grid_shape": list(grid.grid_shape),
        "chunk_shape": list(grid.chunk_shape),
        "cell_value_bytes": grid.cell_value_bytes,
    }


def _grid_from_dict(d: Dict[str, Any]) -> OutputGrid:
    try:
        return OutputGrid(
            _space_from_dict(d["space"]),
            tuple(d["grid_shape"]),
            tuple(d["chunk_shape"]),
            cell_value_bytes=int(d["cell_value_bytes"]),
        )
    except (KeyError, TypeError, ValueError) as e:
        raise ProtocolError(f"bad output grid payload: {e}") from e


# -- queries --------------------------------------------------------------


def query_to_dict(query: RangeQuery) -> Dict[str, Any]:
    """Encode a query as a JSON-compatible dictionary."""
    if isinstance(query.aggregation, AggregationSpec):
        agg_name = None
        for name, cls in AGGREGATIONS.items():
            if type(query.aggregation) is cls:
                agg_name = name
                break
        if agg_name is None:
            raise ProtocolError(
                "custom aggregation specs are not wire-serializable; "
                "use a built-in name"
            )
    else:
        agg_name = query.aggregation
    if agg_name not in AGGREGATIONS:
        raise ProtocolError(f"unknown aggregation {agg_name!r}")
    payload: Dict[str, Any] = {
        "version": PROTOCOL_VERSION,
        "dataset": query.dataset,
        "region": _rect_to_dict(query.region),
        "mapping": _mapping_to_dict(query.mapping),
        "grid": _grid_to_dict(query.grid),
        "aggregation": agg_name,
        "strategy": query.strategy,
        # The spec instance is authoritative when present: a query
        # built with ``aggregation=MinAggregation(2)`` leaves the
        # ``value_components`` *field* at its default, and encoding
        # the field would silently rebuild a 1-component spec remotely.
        "value_components": (
            query.aggregation.value_components
            if isinstance(query.aggregation, AggregationSpec)
            else query.value_components
        ),
    }
    # Emitted only when non-default, so default-path payloads are
    # byte-identical to pre-robustness servers.
    if query.on_error != "raise":
        payload["on_error"] = query.on_error
    if query.prefetch is not None:
        if isinstance(query.prefetch, PrefetchPolicy):
            payload["prefetch"] = {
                "depth": query.prefetch.depth,
                "workers": query.prefetch.workers,
            }
        else:
            payload["prefetch"] = bool(query.prefetch)
    predicate = query.predicate()
    if predicate is not None:
        payload["where"] = predicate.to_payload()
    return payload


def _prefetch_from_payload(value: Any) -> Any:
    if value is None or isinstance(value, bool):
        return value
    if isinstance(value, dict):
        try:
            return PrefetchPolicy(
                depth=int(value["depth"]), workers=int(value["workers"])
            )
        except (KeyError, TypeError, ValueError) as e:
            raise ProtocolError(f"bad prefetch payload: {e}") from e
    raise ProtocolError(f"bad prefetch payload: {value!r}")


def _where_from_payload(value: Any) -> Any:
    if value is None:
        return None
    try:
        return ValuePredicate.from_payload(value)
    except (KeyError, TypeError, ValueError) as e:
        raise ProtocolError(f"bad where payload: {e}") from e


def query_from_dict(payload: Dict[str, Any]) -> RangeQuery:
    """Decode a query dictionary (validates the schema)."""
    if payload.get("version") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {payload.get('version')!r} not supported"
        )
    for key in ("dataset", "region", "mapping", "grid", "aggregation"):
        if key not in payload:
            raise ProtocolError(f"query payload missing {key!r}")
    return RangeQuery(
        dataset=payload["dataset"],
        region=_rect_from_dict(payload["region"]),
        mapping=_mapping_from_dict(payload["mapping"]),
        grid=_grid_from_dict(payload["grid"]),
        aggregation=payload["aggregation"],
        strategy=payload.get("strategy", AUTO),
        value_components=int(payload.get("value_components", 1)),
        on_error=payload.get("on_error", "raise"),
        prefetch=_prefetch_from_payload(payload.get("prefetch")),
        where=_where_from_payload(payload.get("where")),
    )


# -- results ------------------------------------------------------------------


def result_to_dict(result: QueryResult) -> Dict[str, Any]:
    """Encode a result (NaN travels as the string ``"nan"``)."""

    def encode(arr: np.ndarray) -> list:
        return [
            ["nan" if np.isnan(v) else float(v) for v in row] for row in arr
        ]

    payload = {
        "version": PROTOCOL_VERSION,
        "strategy": result.strategy,
        "output_ids": [int(o) for o in result.output_ids],
        "chunk_values": [encode(v) for v in result.chunk_values],
        "n_tiles": result.n_tiles,
        "n_reads": result.n_reads,
        "bytes_read": result.bytes_read,
        "n_combines": result.n_combines,
        "n_aggregations": result.n_aggregations,
    }
    # Optional diagnostics (absent on results from older servers).
    if result.phase_times:
        payload["phase_times"] = {k: float(v) for k, v in result.phase_times.items()}
    if result.cache_stats:
        payload["cache_stats"] = {k: int(v) for k, v in result.cache_stats.items()}
    # Pruning counters: present only when the planner actually pruned,
    # so unpruned results encode byte-identically to older payloads.
    if result.chunks_pruned:
        payload["chunks_pruned"] = int(result.chunks_pruned)
        payload["bytes_pruned"] = int(result.bytes_pruned)
    # Shared-read counters: present only when the payload cache served
    # part of this query (cross-query scan sharing), so unshared
    # results encode byte-identically to older payloads.
    if result.shared_reads:
        payload["shared_reads"] = int(result.shared_reads)
        payload["shared_bytes"] = int(result.shared_bytes)
    # Degradation report: present only on degraded results, so clean
    # results encode byte-identically to pre-robustness payloads.
    if result.chunk_errors:
        payload["chunk_errors"] = {
            str(k): str(v) for k, v in result.chunk_errors.items()
        }
        payload["completeness"] = float(result.completeness)
    # Shard-level degradation (scatter/gather deployments only).
    if result.shard_errors:
        payload["shard_errors"] = {
            str(k): str(v) for k, v in result.shard_errors.items()
        }
        payload["completeness"] = float(result.completeness)
    # Auto-selection audit trail: present only when the server resolved
    # ``strategy='auto'``, so fixed-strategy results encode
    # byte-identically to older payloads.
    if result.selected_strategy:
        payload["selected_strategy"] = str(result.selected_strategy)
        if result.strategy_ranking:
            payload["strategy_ranking"] = {
                str(k): float(v) for k, v in result.strategy_ranking.items()
            }
    return payload


def result_from_dict(payload: Dict[str, Any]) -> QueryResult:
    if payload.get("version") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {payload.get('version')!r} not supported"
        )

    def decode(rows: list) -> np.ndarray:
        return np.asarray(
            [[np.nan if v == "nan" else float(v) for v in row] for row in rows]
        )

    try:
        return QueryResult(
            strategy=payload["strategy"],
            output_ids=np.asarray(payload["output_ids"], dtype=np.int64),
            chunk_values=[decode(v) for v in payload["chunk_values"]],
            n_tiles=int(payload["n_tiles"]),
            n_reads=int(payload["n_reads"]),
            bytes_read=int(payload["bytes_read"]),
            n_combines=int(payload["n_combines"]),
            n_aggregations=int(payload["n_aggregations"]),
            phase_times={
                str(k): float(v)
                for k, v in payload.get("phase_times", {}).items()
            },
            cache_stats={
                str(k): int(v)
                for k, v in payload.get("cache_stats", {}).items()
            },
            chunk_errors={
                int(k): str(v)
                for k, v in payload.get("chunk_errors", {}).items()
            },
            shard_errors={
                int(k): str(v)
                for k, v in payload.get("shard_errors", {}).items()
            },
            completeness=float(payload.get("completeness", 1.0)),
            chunks_pruned=int(payload.get("chunks_pruned", 0)),
            bytes_pruned=int(payload.get("bytes_pruned", 0)),
            shared_reads=int(payload.get("shared_reads", 0)),
            shared_bytes=int(payload.get("shared_bytes", 0)),
            selected_strategy=str(payload.get("selected_strategy", "")),
            strategy_ranking={
                str(k): float(v)
                for k, v in payload.get("strategy_ranking", {}).items()
            },
        )
    except (KeyError, TypeError, ValueError) as e:
        raise ProtocolError(f"bad result payload: {e}") from e
