"""The ADR façade: a customized application instance.

One :class:`ADR` object plays both roles of the paper's architecture
diagram (Figure 2): the front-end services (query interface and
submission, attribute-space registry) and the back-end services
(dataset storage, indexing, planning, execution).  Client code:

.. code-block:: python

    adr = ADR(machine=ibm_sp(8))
    adr.register_space(space)
    adr.load("sensors", space, chunks)
    result = adr.execute(RangeQuery("sensors", region, mapping, grid,
                                    aggregation="mean", strategy="AUTO"))

Planning, validation, functional execution and performance simulation
are all reachable separately for inspection (``build_problem``,
``plan``, ``simulate``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Type, Union

import numpy as np

from repro.aggregation.output_grid import OutputGrid
from repro.dataset.chunk import Chunk
from repro.dataset.dataset import Dataset, DatasetCatalog
from repro.dataset.graph import ChunkGraph
from repro.dataset.loader import LoadedDataset, load_dataset
from repro.decluster.base import Declusterer
from repro.decluster.hilbert import HilbertDeclusterer
from repro.frontend.query import RangeQuery
from repro.index.base import SpatialIndex
from repro.index.rtree import RTree
from repro.machine.config import ComputeCosts, MachineConfig
from repro.planner.costmodel import CostModel
from repro.planner.plan import QueryPlan
from repro.planner.problem import PlanningProblem
from repro.planner.select import StrategyChoice, choose_strategy, is_auto
from repro.planner.strategies import plan_query
from repro.planner.validate import validate_plan
from repro.runtime.engine import QueryResult, execute_plan
from repro.runtime.kernels import RoutingCache
from repro.sim.query_sim import SimResult, simulate_query
from repro.space.attribute_space import AttributeSpace, AttributeSpaceRegistry
from repro.store.cache import CachedChunkStore, ScanRecorder
from repro.store.chunk_store import ChunkStore, MemoryChunkStore
from repro.store.prefetch import PrefetchPolicy
from repro.store.retry import RetryPolicy, RetryingChunkStore
from repro.util.units import MB

__all__ = ["ADR"]

#: Compute costs assumed for planning when the application does not
#: provide calibrated ones (mild, VM-like processing).
DEFAULT_COSTS = ComputeCosts.from_ms(1, 5, 1, 1)


class ADR:
    """A complete (front end + back end) ADR instance."""

    def __init__(
        self,
        machine: MachineConfig,
        store: Optional[ChunkStore] = None,
        declusterer: Optional[Declusterer] = None,
        costs: ComputeCosts = DEFAULT_COSTS,
        cache_bytes: int = 64 * MB,
        retry: Optional[RetryPolicy] = None,
        prefetch: Union[bool, PrefetchPolicy, None] = None,
        cost_model=None,
    ) -> None:
        self.machine = machine
        #: instance-wide read-ahead default; a query's ``prefetch``
        #: field overrides it (see :mod:`repro.store.prefetch`)
        self.prefetch = PrefetchPolicy.coerce(prefetch)
        self.store = store if store is not None else MemoryChunkStore()
        # Retry sits *under* the cache: a retried read that eventually
        # succeeds is cached like any other, and cache hits never pay
        # backoff.  (A FileChunkStore built with its own retry keeps
        # it; this wrapper serves stores without one.)
        if retry is not None and not isinstance(self.store, RetryingChunkStore):
            self.store = RetryingChunkStore(self.store, retry)
        # Payload LRU in front of the store: batched queries ordered
        # for shared scans actually reuse the shared chunks.
        if cache_bytes > 0 and not isinstance(self.store, CachedChunkStore):
            self.store = CachedChunkStore(self.store, max_bytes=cache_bytes)
        # Per-dataset memo of chunk->cell routing, reused across
        # tiles and queries; dropped when the dataset is (re)loaded.
        # The creation lock makes first-use from concurrent service
        # workers race-free (the caches themselves are internally
        # locked).
        self._routing_caches: Dict[str, RoutingCache] = {}
        self._routing_lock = threading.Lock()
        self.declusterer = declusterer if declusterer is not None else HilbertDeclusterer()
        self.costs = costs
        #: prices candidate plans behind ``strategy='auto'``; any object
        #: with ``estimate(plan) -> CostEstimate`` -- the closed-form
        #: default, or a measurement-fitted
        #: :class:`~repro.planner.calibrate.CalibratedCostModel`
        self.cost_model = (
            cost_model if cost_model is not None else CostModel(machine, costs)
        )
        self.spaces = AttributeSpaceRegistry()
        self.catalog = DatasetCatalog()
        self._indices: Dict[str, SpatialIndex] = {}
        # dataset name -> grid output chunk ids, for datasets
        # materialized by store_as (enables in-place update queries)
        self._materialized: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Registration and loading
    # ------------------------------------------------------------------

    def register_space(self, space: AttributeSpace) -> AttributeSpace:
        return self.spaces.register(space)

    def load(
        self,
        name: str,
        space: AttributeSpace,
        chunks: Sequence[Chunk],
        declusterer: Optional[Declusterer] = None,
        index_cls: Type[SpatialIndex] = RTree,
    ) -> LoadedDataset:
        """Load a partitioned dataset (steps 2--4 of Section 2.2)."""
        self.register_space(space)
        loaded = load_dataset(
            self.store,
            name,
            space,
            chunks,
            n_nodes=self.machine.n_procs,
            disks_per_node=self.machine.disks_per_node,
            declusterer=declusterer if declusterer is not None else self.declusterer,
            index_cls=index_cls,
        )
        self.catalog.add(loaded.dataset, replace=True)
        self._indices[name] = loaded.index
        # Chunk ids restart at 0 for the reloaded dataset: stale
        # routing entries must not survive (payload cache entries were
        # already invalidated by the writes through the store).
        self._routing_caches.pop(name, None)
        return loaded

    def routing_cache(self, name: str) -> RoutingCache:
        """The per-dataset routing cache (created on first use)."""
        with self._routing_lock:
            if name not in self._routing_caches:
                self._routing_caches[name] = RoutingCache()
            return self._routing_caches[name]

    def dataset(self, name: str) -> Dataset:
        return self.catalog.get(name)

    def index(self, name: str) -> SpatialIndex:
        try:
            return self._indices[name]
        except KeyError:
            raise KeyError(f"dataset {name!r} has no index (not loaded?)") from None

    # ------------------------------------------------------------------
    # Query planning
    # ------------------------------------------------------------------

    def build_problem(self, query: RangeQuery) -> PlanningProblem:
        """Restrict the universe to the query: select intersecting
        input chunks through the index, prune chunks whose value
        synopsis rules out the ``where`` predicate, project the region
        onto the output grid, and derive the chunk graph geometrically."""
        ds = self.dataset(query.dataset)
        region = ds.space.validate_query(query.region)

        in_ids = self.index(query.dataset).query(region)
        if len(in_ids) == 0:
            raise ValueError(f"query region {region} selects no input chunks")

        # Value-synopsis pruning: a chunk that spatially intersects but
        # provably holds no predicate-satisfying item is never planned,
        # scheduled, or read.  The kernels re-apply the predicate exactly
        # to every surviving chunk, so pruning cannot change results.
        pruned_ids = np.empty(0, dtype=np.int64)
        pruned_bytes = 0
        predicate = query.predicate()
        if predicate is not None and ds.chunks.synopsis is not None:
            prunable = predicate.prunable_chunks(ds.chunks.synopsis.subset(in_ids))
            pruned_ids = in_ids[prunable]
            pruned_bytes = int(ds.chunks.nbytes[pruned_ids].sum())
            in_ids = in_ids[~prunable]
            if len(in_ids) == 0:
                raise ValueError(
                    f"query region {region} selects no input chunks after "
                    f"value-synopsis pruning (predicate excluded all "
                    f"{len(pruned_ids)} intersecting chunks)"
                )
        inputs = ds.chunks.subset(in_ids)

        grid = query.grid
        out_all = grid.chunkset()
        node, disk = self.declusterer.assign(
            out_all, self.machine.n_procs, self.machine.disks_per_node
        )
        out_all = out_all.with_placement(node, disk)
        out_region = query.mapping.project_rect(region)
        out_ids = out_all.intersecting(out_region)
        if len(out_ids) == 0:
            raise ValueError("query region projects onto no output chunks")
        outputs = out_all.subset(out_ids)

        graph = ChunkGraph.from_geometry(inputs, outputs, query.mapping)

        spec = query.spec()
        acc_nbytes = np.asarray(
            [spec.acc_bytes(grid.cells_in_chunk(int(o))) for o in out_ids],
            dtype=np.int64,
        )
        return PlanningProblem(
            n_procs=self.machine.n_procs,
            memory_per_proc=self.machine.memory_per_proc,
            inputs=inputs,
            outputs=outputs,
            graph=graph,
            acc_nbytes=acc_nbytes,
            input_global_ids=in_ids,
            output_global_ids=out_ids,
            pruned_input_ids=pruned_ids,
            pruned_bytes=pruned_bytes,
        )

    def plan(self, query: RangeQuery) -> QueryPlan:
        """Plan the query; ``strategy="AUTO"`` lets the cost model pick."""
        return self._plan_for(self.build_problem(query), query.strategy)

    def plan_with_choice(
        self, query: RangeQuery
    ) -> Tuple[QueryPlan, Optional[StrategyChoice]]:
        """Plan the query and, when ``strategy='auto'`` resolved it,
        also return the :class:`~repro.planner.select.StrategyChoice`
        (selected strategy + full cost ranking) so callers can audit
        and surface the decision.  ``None`` for explicit strategies."""
        return self._choose(self.build_problem(query), query.strategy)

    def _choose(
        self, problem: PlanningProblem, strategy: str
    ) -> Tuple[QueryPlan, Optional[StrategyChoice]]:
        if is_auto(strategy):
            choice = choose_strategy(problem, self.cost_model)
            validate_plan(choice.plan)
            return choice.plan, choice
        plan = plan_query(problem, strategy)
        validate_plan(plan)
        return plan, None

    def _plan_for(self, problem: PlanningProblem, strategy: str) -> QueryPlan:
        return self._choose(problem, strategy)[0]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(
        self,
        query: RangeQuery,
        plan: Optional[QueryPlan] = None,
        store_as: Optional[str] = None,
        backend: str = "sequential",
    ) -> QueryResult:
        """Plan (unless given) and functionally execute the query.

        With ``store_as``, the query output becomes a *new ADR dataset*
        under that name -- the paper's "if a new output dataset is
        created [...] the results can be written back to disks": output
        chunks are declustered, stored and indexed like any loaded
        dataset, so later queries can range over them.

        ``backend="parallel"`` runs the virtual processors as real OS
        processes (see :mod:`repro.runtime.parallel`).

        Read-ahead follows ``query.prefetch`` when set, else the
        instance-wide ``prefetch`` passed to :class:`ADR`; results are
        bit-for-bit identical with it on or off.

        Failure handling follows ``query.on_error``: ``"raise"``
        surfaces the first unreadable chunk's error, ``"degrade"``
        completes over the readable chunks and reports the rest in
        ``QueryResult.chunk_errors`` / ``completeness`` (see
        ``docs/robustness.md``).
        """
        choice: Optional[StrategyChoice] = None
        if plan is None:
            plan, choice = self.plan_with_choice(query)
        name = query.dataset
        region = self.dataset(name).space.validate_query(query.region)

        provider, recorder = self._recording_provider(name)
        result = execute_plan(
            plan, provider, query.mapping, query.grid, query.spec(),
            region=region, backend=backend,
            routing_cache=self.routing_cache(name),
            on_error=query.on_error,
            prefetch=self.prefetch if query.prefetch is None else query.prefetch,
            predicate=query.predicate(),
        )
        if recorder is not None:
            self._merge_store_stats(result, recorder)
        if choice is not None:
            result.selected_strategy = choice.selected
            result.strategy_ranking = choice.ranking_dict()
        if store_as is not None:
            self._write_back(store_as, query, result)
        return result

    def _recording_provider(self, name: str):
        """A chunk provider for *name*, plus the per-query
        :class:`~repro.store.cache.ScanRecorder` attributing each read
        to this query (``None`` when the store is uncached).  Exact
        under concurrency, unlike a before/after delta of the cache's
        global counters: the recorder is threaded through every read
        this query issues, prefetch worker threads included."""
        if isinstance(self.store, CachedChunkStore):
            cached = self.store
            recorder = ScanRecorder()

            def provider(chunk_id: int) -> Chunk:
                return cached.read_chunk(name, chunk_id, recorder=recorder)

            return provider, recorder

        def provider(chunk_id: int) -> Chunk:
            return self.store.read_chunk(name, chunk_id)

        return provider, None

    def _merge_store_stats(self, result: QueryResult, recorder: ScanRecorder) -> None:
        """Fold this query's exact payload-cache tallies into the
        result: ``cache_stats`` hit/miss counts and the documented
        shared-read counters (``shared_reads`` / ``shared_bytes``)."""
        snap = recorder.snapshot()
        result.cache_stats["chunk_hits"] = snap["hits"]
        result.cache_stats["chunk_misses"] = snap["misses"]
        result.cache_stats["chunk_bytes"] = int(self.store.nbytes)
        result.shared_reads = snap["hits"]
        result.shared_bytes = snap["hit_bytes"]

    def _write_back(self, name: str, query: RangeQuery, result: QueryResult) -> None:
        """Materialize a query result as a dataset in the output space."""
        grid = query.grid
        space = grid.space
        chunks = []
        for new_id, (out_id, values) in enumerate(
            zip(result.output_ids, result.chunk_values)
        ):
            centers = _cell_centers(grid, int(out_id))
            chunks.append(Chunk.from_items(new_id, centers, values))
        if not chunks:
            raise ValueError("query produced no output chunks to store")
        self.load(name, space, chunks)
        self._materialized[name] = result.output_ids.copy()

    def update(self, query: RangeQuery, target: str) -> QueryResult:
        """Update a materialized output dataset in place.

        The paper's update path: accumulator chunks are initialized
        from the *existing* output dataset (phase 1 retrieves and
        forwards the output chunks), new input is aggregated on top,
        and "the updated output chunks are written back to their
        original locations on the disks".

        ``target`` must have been produced by ``execute(...,
        store_as=target)`` with the same grid, and the aggregation must
        support :meth:`~repro.aggregation.functions.AggregationSpec.initialize_from`.
        """
        if target not in self._materialized:
            raise KeyError(
                f"{target!r} was not materialized by store_as in this instance"
            )
        out_ids = self._materialized[target]
        pos_of = {int(g): i for i, g in enumerate(out_ids)}

        def prior(global_out: int):
            i = pos_of.get(int(global_out))
            if i is None:
                return None
            return self.store.read_chunk(target, i).values

        problem = self.build_problem(query)
        problem.init_from_output = True
        plan = self._plan_for(problem, query.strategy)
        name = query.dataset
        region = self.dataset(name).space.validate_query(query.region)

        provider, recorder = self._recording_provider(name)
        result = execute_plan(
            plan, provider, query.mapping, query.grid, query.spec(),
            region=region, prior=prior,
            routing_cache=self.routing_cache(name),
            on_error=query.on_error,
            prefetch=self.prefetch if query.prefetch is None else query.prefetch,
            predicate=query.predicate(),
        )
        if recorder is not None:
            self._merge_store_stats(result, recorder)
        # write updated chunks back to their original locations
        missing = [int(o) for o in result.output_ids if int(o) not in pos_of]
        if missing:
            raise ValueError(
                f"update touches output chunks {missing} that {target!r} "
                "does not contain; materialize a wider dataset first"
            )
        for o, values in zip(result.output_ids, result.chunk_values):
            i = pos_of[int(o)]
            old = self.store.read_chunk(target, i)
            node, disk = self.store.placement(target, i)
            self.store.write_chunk(
                target, Chunk(old.meta, old.coords, values), node, disk
            )
        return result

    def plan_batch(
        self, queries: Sequence[RangeQuery], strategy: Optional[str] = None
    ):
        """Plan a set of queries together (paper Section 2.1: the
        planning service processes *sets* of queries), ordering them so
        consecutive queries share as many input chunk retrievals as
        possible.  Returns a :class:`repro.planner.batch.BatchPlan`.

        By default every query is planned with its *own* strategy
        (``RangeQuery`` defaults to ``AUTO``, so the cost model picks
        per query); passing *strategy* forces one strategy batch-wide.
        """
        from repro.planner.batch import BatchPlan, order_for_sharing
        from repro.planner.batch import plan_batch as _plan_batch

        if not queries:
            raise ValueError("plan_batch needs at least one query")
        datasets = {q.dataset for q in queries}
        if len(datasets) != 1:
            raise ValueError(
                f"batch queries must target one dataset, got {sorted(datasets)}"
            )
        problems = [self.build_problem(q) for q in queries]
        if strategy is not None and not is_auto(strategy):
            return _plan_batch(problems, strategy)
        plans = [
            self._choose(p, q.strategy if strategy is None else strategy)[0]
            for p, q in zip(problems, queries)
        ]
        return BatchPlan(plans, order_for_sharing(plans))

    def execute_batch(
        self, queries: Sequence[RangeQuery], strategy: Optional[str] = None,
        backend: str = "sequential",
    ) -> list:
        """Functionally execute a batch in its shared-scan order;
        returns results in the original submission order.  The chunk
        payload cache makes consecutive queries actually reuse their
        shared retrievals (see ``cache_stats`` on each result)."""
        batch = self.plan_batch(queries, strategy)
        results: list = [None] * len(queries)
        for idx in batch.order:
            results[idx] = self.execute(
                queries[idx], plan=batch.plans[idx], backend=backend
            )
        return results

    def simulate(
        self,
        query: RangeQuery,
        strategy: Optional[str] = None,
        costs: Optional[ComputeCosts] = None,
        seed: int = 0,
        overlap: bool = True,
    ) -> SimResult:
        """Performance-simulate the query on this instance's machine."""
        q = query if strategy is None else _with_strategy(query, strategy)
        plan = self.plan(q)
        return simulate_query(
            plan, self.machine, costs if costs is not None else self.costs, seed, overlap
        )


def _with_strategy(query: RangeQuery, strategy: str) -> RangeQuery:
    from dataclasses import replace

    return replace(query, strategy=strategy)


def _cell_centers(grid: OutputGrid, chunk_id: int) -> np.ndarray:
    """Attribute-space coordinates of an output chunk's cell centres,
    in the chunk's row-major local-cell order."""
    start, stop = grid.chunk_block(chunk_id)
    lo, hi = grid.space.bounds.as_arrays()
    span = np.where(np.asarray(grid.grid_shape) > 0, hi - lo, 1.0)
    cell = span / np.asarray(grid.grid_shape)
    axes = [np.arange(a, b) for a, b in zip(start, stop)]
    mesh = np.stack(np.meshgrid(*axes, indexing="ij"), axis=-1).reshape(-1, grid.ndim)
    return lo + (mesh + 0.5) * cell
