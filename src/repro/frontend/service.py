"""ADR front-end service: queries over a socket.

Figure 2 of the paper shows a standalone "ADR Front-end Process" that
clients connect to ("the socket interface is used for sequential
clients").  :class:`ADRServer` is that process: it wraps an
:class:`~repro.frontend.adr.ADR` instance and serves newline-delimited
JSON messages of the :mod:`repro.frontend.protocol` schema on a TCP
port.  :class:`ADRClient` is the matching sequential client.

Message envelope (one JSON object per line):

- request: ``{"op": "query", "query": {...}}`` or ``{"op": "ping"}``
- response: ``{"ok": true, "result": {...}}`` or
  ``{"ok": false, "error": "..."}``

The server is intentionally synchronous (one request at a time): the
parallelism ADR cares about lives in the back end, not in the
front-end socket loop.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Optional, Tuple

from repro.frontend.adr import ADR
from repro.frontend.protocol import (
    ProtocolError,
    query_from_dict,
    query_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.frontend.query import RangeQuery
from repro.runtime.engine import QueryResult

__all__ = ["ADRServer", "ADRClient"]


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            try:
                response = self.server.adr_dispatch(json.loads(line))
            except Exception as e:  # malformed JSON and friends
                response = {"ok": False, "error": f"{type(e).__name__}: {e}"}
            self.wfile.write((json.dumps(response) + "\n").encode("utf-8"))
            self.wfile.flush()


class ADRServer(socketserver.ThreadingTCPServer):
    """Serves one ADR instance on ``(host, port)``.

    Use as a context manager (binds immediately, serves on a daemon
    thread)::

        with ADRServer(adr, port=0) as server:
            client = ADRClient(*server.address)
            result = client.query(range_query)
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, adr: ADR, host: str = "127.0.0.1", port: int = 0) -> None:
        self.adr = adr
        self._thread: Optional[threading.Thread] = None
        super().__init__((host, port), _Handler)

    # -- request dispatch ------------------------------------------------

    def adr_dispatch(self, message: dict) -> dict:
        op = message.get("op")
        if op == "ping":
            return {"ok": True, "result": "pong"}
        if op == "query":
            try:
                query = query_from_dict(message.get("query", {}))
                result = self.adr.execute(query)
                return {"ok": True, "result": result_to_dict(result)}
            except (ProtocolError, KeyError, ValueError) as e:
                return {"ok": False, "error": f"{type(e).__name__}: {e}"}
        return {"ok": False, "error": f"unknown op {op!r}"}

    # -- lifecycle ------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    def __enter__(self) -> "ADRServer":
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)


class ADRClient:
    """A sequential client: one socket, blocking request/response."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def _call(self, message: dict) -> dict:
        self._file.write((json.dumps(message) + "\n").encode("utf-8"))
        self._file.flush()
        raw = self._file.readline()
        if not raw:
            raise ConnectionError("server closed the connection")
        return json.loads(raw)

    def ping(self) -> bool:
        return self._call({"op": "ping"}).get("result") == "pong"

    def query(self, query: RangeQuery) -> QueryResult:
        """Submit a range query; raises ``RuntimeError`` on server-side
        failure (the error text travels back)."""
        response = self._call({"op": "query", "query": query_to_dict(query)})
        if not response.get("ok"):
            raise RuntimeError(f"server rejected query: {response.get('error')}")
        return result_from_dict(response["result"])

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ADRClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
