"""ADR front-end service: queries over a socket.

Figure 2 of the paper shows a standalone "ADR Front-end Process" that
clients connect to ("the socket interface is used for sequential
clients").  :class:`ADRServer` is that process: a thin wire adapter
serving length-prefixed JSON frames of the
:mod:`repro.frontend.protocol` schema on a TCP port, with all query
scheduling delegated to a
:class:`~repro.frontend.queryservice.QueryService` -- concurrent
connections are admitted, batched and executed with cross-query scan
sharing (see ``docs/service.md``).  :class:`ADRClient` is the matching
client; one client may be shared between threads (requests on one
connection are serialized under a lock).

Message envelope (one frame per message; see ``protocol.write_frame``):

- request: ``{"op": "query", "query": {...}}``, ``{"op": "stats"}``,
  ``{"op": "health"}``, ``{"op": "drain"}`` or ``{"op": "ping"}``
- response: ``{"ok": true, "result": {...}}`` (query responses carry a
  ``"service"`` object with queue/batch/sharing diagnostics) or
  ``{"ok": false, "code": "bad_request"|"overloaded"|"internal"|
  "shard_unavailable"|"deadline_exceeded", "error": "...",
  "details": {...}}``

Legacy clients speaking newline-delimited JSON keep working: a frame
header under ``MAX_FRAME_BYTES`` (64 MiB) starts with a byte ``<=
0x04``, so any larger first byte -- every printable ASCII character,
in particular ``{`` -- selects line mode for that one message and the
server answers in kind.  Framing errors on a framed stream close the
connection (byte offsets are unrecoverable); malformed line-mode JSON
answers ``bad_request`` and keeps the connection open.
"""

from __future__ import annotations

import json
import socket
import socketserver
import sys
import threading
import time
from typing import Any, Dict, Optional, Tuple

from repro.frontend.adr import ADR
from repro.frontend.protocol import (
    MAX_FRAME_BYTES,
    DeadlineExceededError,
    ProtocolError,
    error_to_dict,
    query_from_dict,
    query_to_dict,
    read_frame,
    result_from_dict,
    result_to_dict,
    write_frame,
)
from repro.frontend.query import RangeQuery
from repro.frontend.queryservice import (
    QueryService,
    ServiceClosedError,
    ServiceOverloadedError,
    ServicePolicy,
)
from repro.runtime.engine import QueryResult

__all__ = ["ADRServer", "ADRClient", "RemoteQueryError"]

#: Exception classes whose wire error code is ``bad_request`` -- the
#: query itself is at fault (malformed payload, unknown dataset/
#: aggregation, region selecting nothing); retrying unchanged cannot
#: succeed.
_BAD_REQUEST_ERRORS = (ProtocolError, KeyError, ValueError)

#: Largest first byte of a valid framed header: frames are capped at
#: ``MAX_FRAME_BYTES``, so a bigger first byte cannot open a frame and
#: must be the start of a legacy newline-delimited JSON message.
_MAX_HEADER_FIRST_BYTE = MAX_FRAME_BYTES >> 24


class RemoteQueryError(RuntimeError):
    """A server-side failure relayed over the wire.

    Subclasses :class:`RuntimeError` for back-compat with pre-code
    clients; new callers dispatch on :attr:`code` (one of
    ``protocol.ERROR_CODES``) and read machine-readable fields --
    e.g. the overload responses' ``retry_after_s`` -- from
    :attr:`details`.
    """

    def __init__(
        self,
        message: str,
        code: str = "internal",
        details: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.details: Dict[str, Any] = dict(details or {})


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        while True:
            first = self.rfile.read(1)
            if not first:
                return
            if first in (b"\r", b"\n"):
                continue
            if first[0] > _MAX_HEADER_FIRST_BYTE:
                # Legacy newline-delimited JSON message.
                raw = first + self.rfile.readline()
                try:
                    message = json.loads(raw)
                except Exception as e:  # malformed JSON and friends
                    self._respond(error_to_dict("bad_request", e), framed=False)
                    continue
                self._respond(self._dispatch_safe(message), framed=False)
                continue
            try:
                message = read_frame(self.rfile, prefix=first)
            except ProtocolError as e:
                # Framing desync: the stream's byte offsets are
                # unrecoverable, so answer once and close loudly.
                self._respond(error_to_dict("bad_request", e), framed=True)
                return
            if message is None:
                return
            self._respond(self._dispatch_safe(message), framed=True)

    def _dispatch_safe(self, message: dict) -> dict:
        try:
            return self.server.adr_dispatch(message)
        except Exception as e:  # dispatch must never kill the connection
            return error_to_dict("internal", e)

    def _respond(self, response: dict, framed: bool) -> None:
        if framed:
            write_frame(self.wfile, response)
        else:
            self.wfile.write((json.dumps(response) + "\n").encode("utf-8"))
            self.wfile.flush()


class ADRServer(socketserver.ThreadingTCPServer):
    """Serves one ADR instance on ``(host, port)``.

    Each connection runs on its own handler thread; all of them submit
    into one shared :class:`QueryService`, which owns admission
    control, batching and scan sharing.  Pass ``policy`` to tune it, or
    ``service`` to share an externally managed one (the server then
    does not close it on exit).

    Liveness and lifecycle ops: ``{"op": "health"}`` reports
    serving/draining status plus queue depth, and ``{"op": "drain"}``
    flips the server into draining mode -- already-admitted queries
    finish, new ``query`` ops answer ``shard_unavailable``, and
    ``ping``/``stats``/``health`` keep working so probes can watch the
    drain complete.

    Use as a context manager (binds immediately, serves on a daemon
    thread)::

        with ADRServer(adr, port=0) as server:
            client = ADRClient(*server.address)
            result = client.query(range_query)
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        adr: ADR,
        host: str = "127.0.0.1",
        port: int = 0,
        policy: Optional[ServicePolicy] = None,
        service: Optional[QueryService] = None,
    ) -> None:
        self.adr = adr
        if service is not None and policy is not None:
            raise ValueError("pass either policy or service, not both")
        self._owns_service = service is None
        self.service = service if service is not None else QueryService(adr, policy)
        self._thread: Optional[threading.Thread] = None
        self._draining = threading.Event()
        super().__init__((host, port), _Handler)

    # -- request dispatch ------------------------------------------------

    def adr_dispatch(self, message: dict) -> dict:
        op = message.get("op")
        if op == "ping":
            return {"ok": True, "result": "pong"}
        if op == "stats":
            return {"ok": True, "result": self.service.stats()}
        if op == "health":
            return {"ok": True, "result": self.health()}
        if op == "drain":
            self.drain()
            return {"ok": True, "result": self.health()}
        if op == "query":
            if self._draining.is_set():
                return error_to_dict(
                    "shard_unavailable",
                    "server is draining and admits no new queries",
                )
            return self._dispatch_query(message)
        return error_to_dict("bad_request", f"unknown op {op!r}")

    def _dispatch_query(self, message: dict) -> dict:
        try:
            query = query_from_dict(message.get("query", {}))
        except _BAD_REQUEST_ERRORS as e:
            return error_to_dict("bad_request", e)
        try:
            ticket = self.service.submit(query)
        except ServiceOverloadedError as e:
            return error_to_dict("overloaded", e)
        except ServiceClosedError as e:
            return error_to_dict("internal", e)
        try:
            result = ticket.result()
        except _BAD_REQUEST_ERRORS as e:
            return error_to_dict("bad_request", e)
        except Exception as e:
            return error_to_dict("internal", e)
        response: Dict[str, Any] = {"ok": True, "result": result_to_dict(result)}
        if ticket.service_info:
            response["service"] = dict(ticket.service_info)
        return response

    # -- liveness / drain -----------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """Liveness snapshot: serving status and load, cheap to poll."""
        stats = self.service.stats()
        return {
            "status": "draining" if self._draining.is_set() else "serving",
            "queue_depth": int(stats["queue_depth"]),
            "in_flight": int(stats["in_flight"]),
        }

    def drain(self) -> None:
        """Stop admitting queries; in-flight work runs to completion."""
        self._draining.set()

    # -- lifecycle ------------------------------------------------------------

    def handle_error(self, request, client_address) -> None:
        exc = sys.exc_info()[1]
        if isinstance(exc, OSError):
            # The peer (or a chaos proxy) vanished mid-exchange; routine
            # in a fault-tolerant deployment and the client already sees
            # its own error -- nothing useful to print here.
            return
        super().handle_error(request, client_address)

    @property
    def address(self) -> Tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    def __enter__(self) -> "ADRServer":
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        if self._owns_service:
            self.service.close()


class ADRClient:
    """A protocol client: one socket, blocking request/response.

    Thread-safe: the request/response exchange is serialized under a
    lock, so one client instance may be shared by several threads
    (each call still blocks for its own response; open one client per
    thread for wire-level parallelism).

    Every request method takes an optional ``deadline`` (seconds for
    the whole exchange); when it expires the call raises
    :class:`~repro.frontend.protocol.DeadlineExceededError` and the
    client is marked broken -- a half-finished exchange leaves the
    stream desynchronized, so later calls raise ``ConnectionError``
    and the caller must open a fresh client.  Without a deadline the
    connect-time ``timeout`` bounds each socket operation, so no call
    ever hangs forever.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._timeout = timeout
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        # One request/response frame at a time: without this, two
        # threads interleave writes and steal each other's reply frames.
        self._lock = threading.Lock()
        self._broken = False

    def _call(self, message: dict, deadline: Optional[float] = None) -> dict:
        budget = deadline if deadline is not None else self._timeout
        deadline_at = (
            time.monotonic() + deadline if deadline is not None else None
        )

        def remaining() -> float:
            if deadline_at is None:
                return self._timeout
            left = deadline_at - time.monotonic()
            if left <= 0:
                raise DeadlineExceededError(
                    f"deadline of {deadline}s expired before the response arrived"
                )
            return left

        with self._lock:
            if self._broken:
                raise ConnectionError(
                    "client connection is broken after an earlier protocol or "
                    "deadline failure; open a new ADRClient"
                )
            try:
                self._sock.settimeout(remaining())
                write_frame(self._file, message)
                self._sock.settimeout(remaining())
                response = read_frame(self._file)
            except DeadlineExceededError:
                self._broken = True
                raise
            except ProtocolError:
                # Short/torn recv or garbage bytes: the response stream
                # is desynchronized beyond repair.
                self._broken = True
                raise
            except socket.timeout as e:
                self._broken = True
                raise DeadlineExceededError(
                    f"request timed out after {budget}s waiting on the socket"
                ) from e
            except OSError:
                self._broken = True
                raise
            if response is None:
                self._broken = True
                raise ConnectionError("server closed the connection")
        return response

    @staticmethod
    def _checked(response: dict, rejected_what: str) -> dict:
        if not response.get("ok"):
            code = response.get("code", "internal")
            raise RemoteQueryError(
                f"server rejected {rejected_what} [{code}]: {response.get('error')}",
                code=code,
                details=response.get("details"),
            )
        return response

    def ping(self, deadline: Optional[float] = None) -> bool:
        return self._call({"op": "ping"}, deadline).get("result") == "pong"

    def stats(self, deadline: Optional[float] = None) -> Dict[str, Any]:
        """Service counters (queue depth, in-flight, batches, sharing,
        cache hit rates) -- the ``{"op": "stats"}`` endpoint."""
        response = self._call({"op": "stats"}, deadline)
        if not response.get("ok"):
            raise RemoteQueryError(
                f"stats failed: {response.get('error')}",
                code=response.get("code", "internal"),
                details=response.get("details"),
            )
        return response["result"]

    def health(self, deadline: Optional[float] = None) -> Dict[str, Any]:
        """Liveness probe -- ``{"status": "serving"|"draining", ...}``."""
        return self._checked(self._call({"op": "health"}, deadline), "health")[
            "result"
        ]

    def drain(self, deadline: Optional[float] = None) -> Dict[str, Any]:
        """Ask the server to stop admitting queries; returns its health."""
        return self._checked(self._call({"op": "drain"}, deadline), "drain")[
            "result"
        ]

    def query(
        self, query: RangeQuery, deadline: Optional[float] = None
    ) -> QueryResult:
        """Submit a range query; raises :class:`RemoteQueryError` on
        server-side failure (the error code and text travel back)."""
        result, _ = self.query_with_info(query, deadline)
        return result

    def query_with_info(
        self, query: RangeQuery, deadline: Optional[float] = None
    ) -> Tuple[QueryResult, Optional[Dict[str, Any]]]:
        """Like :meth:`query`, also returning the response's
        ``"service"`` diagnostics (queue wait, batch size/position,
        shared reads) -- ``None`` from servers that don't send them."""
        response = self._call(
            {"op": "query", "query": query_to_dict(query)}, deadline
        )
        self._checked(response, "query")
        return result_from_dict(response["result"]), response.get("service")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ADRClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
