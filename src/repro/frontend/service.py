"""ADR front-end service: queries over a socket.

Figure 2 of the paper shows a standalone "ADR Front-end Process" that
clients connect to ("the socket interface is used for sequential
clients").  :class:`ADRServer` is that process: a thin wire adapter
serving newline-delimited JSON messages of the
:mod:`repro.frontend.protocol` schema on a TCP port, with all query
scheduling delegated to a
:class:`~repro.frontend.queryservice.QueryService` -- concurrent
connections are admitted, batched and executed with cross-query scan
sharing (see ``docs/service.md``).  :class:`ADRClient` is the matching
client; one client may be shared between threads (requests on one
connection are serialized under a lock).

Message envelope (one JSON object per line):

- request: ``{"op": "query", "query": {...}}``, ``{"op": "stats"}``
  or ``{"op": "ping"}``
- response: ``{"ok": true, "result": {...}}`` (query responses carry a
  ``"service"`` object with queue/batch/sharing diagnostics) or
  ``{"ok": false, "code": "bad_request"|"overloaded"|"internal",
  "error": "..."}``
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Any, Dict, Optional, Tuple

from repro.frontend.adr import ADR
from repro.frontend.protocol import (
    ProtocolError,
    error_to_dict,
    query_from_dict,
    query_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.frontend.query import RangeQuery
from repro.frontend.queryservice import (
    QueryService,
    ServiceClosedError,
    ServiceOverloadedError,
    ServicePolicy,
)
from repro.runtime.engine import QueryResult

__all__ = ["ADRServer", "ADRClient"]

#: Exception classes whose wire error code is ``bad_request`` -- the
#: query itself is at fault (malformed payload, unknown dataset/
#: aggregation, region selecting nothing); retrying unchanged cannot
#: succeed.
_BAD_REQUEST_ERRORS = (ProtocolError, KeyError, ValueError)


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            try:
                message = json.loads(line)
            except Exception as e:  # malformed JSON and friends
                response = error_to_dict("bad_request", e)
            else:
                try:
                    response = self.server.adr_dispatch(message)
                except Exception as e:  # dispatch must never kill the connection
                    response = error_to_dict("internal", e)
            self.wfile.write((json.dumps(response) + "\n").encode("utf-8"))
            self.wfile.flush()


class ADRServer(socketserver.ThreadingTCPServer):
    """Serves one ADR instance on ``(host, port)``.

    Each connection runs on its own handler thread; all of them submit
    into one shared :class:`QueryService`, which owns admission
    control, batching and scan sharing.  Pass ``policy`` to tune it, or
    ``service`` to share an externally managed one (the server then
    does not close it on exit).

    Use as a context manager (binds immediately, serves on a daemon
    thread)::

        with ADRServer(adr, port=0) as server:
            client = ADRClient(*server.address)
            result = client.query(range_query)
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        adr: ADR,
        host: str = "127.0.0.1",
        port: int = 0,
        policy: Optional[ServicePolicy] = None,
        service: Optional[QueryService] = None,
    ) -> None:
        self.adr = adr
        if service is not None and policy is not None:
            raise ValueError("pass either policy or service, not both")
        self._owns_service = service is None
        self.service = service if service is not None else QueryService(adr, policy)
        self._thread: Optional[threading.Thread] = None
        super().__init__((host, port), _Handler)

    # -- request dispatch ------------------------------------------------

    def adr_dispatch(self, message: dict) -> dict:
        op = message.get("op")
        if op == "ping":
            return {"ok": True, "result": "pong"}
        if op == "stats":
            return {"ok": True, "result": self.service.stats()}
        if op == "query":
            return self._dispatch_query(message)
        return error_to_dict("bad_request", f"unknown op {op!r}")

    def _dispatch_query(self, message: dict) -> dict:
        try:
            query = query_from_dict(message.get("query", {}))
        except _BAD_REQUEST_ERRORS as e:
            return error_to_dict("bad_request", e)
        try:
            ticket = self.service.submit(query)
        except ServiceOverloadedError as e:
            return error_to_dict("overloaded", e)
        except ServiceClosedError as e:
            return error_to_dict("internal", e)
        try:
            result = ticket.result()
        except _BAD_REQUEST_ERRORS as e:
            return error_to_dict("bad_request", e)
        except Exception as e:
            return error_to_dict("internal", e)
        response: Dict[str, Any] = {"ok": True, "result": result_to_dict(result)}
        if ticket.service_info:
            response["service"] = dict(ticket.service_info)
        return response

    # -- lifecycle ------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    def __enter__(self) -> "ADRServer":
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        if self._owns_service:
            self.service.close()


class ADRClient:
    """A protocol client: one socket, blocking request/response.

    Thread-safe: the request/response exchange is serialized under a
    lock, so one client instance may be shared by several threads
    (each call still blocks for its own response; open one client per
    thread for wire-level parallelism).
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        # One request/response frame at a time: without this, two
        # threads interleave writes and steal each other's reply lines.
        self._lock = threading.Lock()

    def _call(self, message: dict) -> dict:
        payload = (json.dumps(message) + "\n").encode("utf-8")
        with self._lock:
            self._file.write(payload)
            self._file.flush()
            raw = self._file.readline()
        if not raw:
            raise ConnectionError("server closed the connection")
        return json.loads(raw)

    def ping(self) -> bool:
        return self._call({"op": "ping"}).get("result") == "pong"

    def stats(self) -> Dict[str, Any]:
        """Service counters (queue depth, in-flight, batches, sharing,
        cache hit rates) -- the ``{"op": "stats"}`` endpoint."""
        response = self._call({"op": "stats"})
        if not response.get("ok"):
            raise RuntimeError(f"stats failed: {response.get('error')}")
        return response["result"]

    def query(self, query: RangeQuery) -> QueryResult:
        """Submit a range query; raises ``RuntimeError`` on server-side
        failure (the error code and text travel back)."""
        result, _ = self.query_with_info(query)
        return result

    def query_with_info(
        self, query: RangeQuery
    ) -> Tuple[QueryResult, Optional[Dict[str, Any]]]:
        """Like :meth:`query`, also returning the response's
        ``"service"`` diagnostics (queue wait, batch size/position,
        shared reads) -- ``None`` from servers that don't send them."""
        response = self._call({"op": "query", "query": query_to_dict(query)})
        if not response.get("ok"):
            code = response.get("code", "internal")
            raise RuntimeError(
                f"server rejected query [{code}]: {response.get('error')}"
            )
        return result_from_dict(response["result"]), response.get("service")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ADRClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
