"""Range queries.

"Access to data items is described by a range query, namely a
multi-dimensional bounding box in the underlying multi-dimensional
attribute space of the dataset."  A :class:`RangeQuery` bundles that
box with the references to user-defined processing the front end
forwards to the back end: the input dataset, the output grid, the
``Map`` function and the aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.aggregation.functions import AGGREGATIONS, AggregationSpec
from repro.aggregation.output_grid import OutputGrid
from repro.dataset.predicate import ValuePredicate
from repro.planner.select import AUTO
from repro.space.mapping import GridMapping
from repro.store.prefetch import PrefetchPolicy
from repro.util.geometry import Rect

__all__ = ["RangeQuery"]


@dataclass
class RangeQuery:
    """One client query against an ADR instance.

    Attributes
    ----------
    dataset:
        Name of the input dataset (must be loaded).
    region:
        Bounding box in the input dataset's attribute space.
    mapping:
        The user ``Map``: input space -> output grid coordinates.
    grid:
        Output dataset layout (cells + chunk blocking).
    aggregation:
        An :class:`AggregationSpec` or the name of a built-in one
        (``"sum"``, ``"mean"``, ``"max"``, ``"best"``, ...).
    strategy:
        ``"FRA"``, ``"SRA"``, ``"DA"``, ``"HYBRID"``, or ``"AUTO"`` to
        let the cost model choose (Section 6 future work).
    value_components:
        Components per input item value, used when *aggregation* is a
        name.
    on_error:
        ``"raise"`` (default): the first unreadable input chunk aborts
        the query with its underlying error.  ``"degrade"``: the query
        completes over the readable chunks, reporting the unreadable
        ones in ``QueryResult.chunk_errors`` and the incorporated
        fraction in ``QueryResult.completeness``.
    prefetch:
        I/O read-ahead for this query: ``True`` or a
        :class:`~repro.store.prefetch.PrefetchPolicy` overlaps chunk
        retrieval with reduction, ``False`` forces synchronous reads,
        ``None`` (default) defers to the ADR instance's setting.
        Results are bit-for-bit identical either way.
    where:
        Optional value predicate restricting which *items* contribute:
        a :class:`~repro.dataset.predicate.ValuePredicate` or a
        ``{component: (lo, hi)}`` mapping of closed intervals (``None``
        endpoints unbounded), conjoined across components.  Items with
        NaN in a constrained component never qualify.  The planner uses
        per-chunk value synopses to skip chunks that provably contain
        no qualifying item (reported via ``QueryResult.chunks_pruned``
        / ``bytes_pruned``); the fused kernels apply the same predicate
        exactly to every chunk that is read, so results are
        bit-identical with or without pruning.
    """

    dataset: str
    region: Rect
    mapping: GridMapping
    grid: OutputGrid
    aggregation: Union[str, AggregationSpec] = "mean"
    strategy: str = AUTO
    value_components: int = 1
    on_error: str = "raise"
    prefetch: Union[bool, PrefetchPolicy, None] = None
    where: Union[ValuePredicate, Dict[int, tuple], None] = None

    def __post_init__(self) -> None:
        if self.on_error not in ("raise", "degrade"):
            raise ValueError(
                f"unknown on_error {self.on_error!r}; expected 'raise' or 'degrade'"
            )
        if self.prefetch is not None:
            PrefetchPolicy.coerce(self.prefetch)  # validate the type early
        self.where = ValuePredicate.coerce(self.where)

    def predicate(self) -> Optional[ValuePredicate]:
        """The normalized ``where`` predicate (``None`` when absent)."""
        return ValuePredicate.coerce(self.where)

    def spec(self) -> AggregationSpec:
        """Resolve the aggregation to a spec instance."""
        if isinstance(self.aggregation, AggregationSpec):
            return self.aggregation
        try:
            cls = AGGREGATIONS[self.aggregation]
        except KeyError:
            raise ValueError(
                f"unknown aggregation {self.aggregation!r}; built-ins: "
                f"{sorted(AGGREGATIONS)}"
            ) from None
        return cls(value_components=self.value_components)
