"""Parallel-client output delivery (the paper's Meta-Chaos interface).

"The output can also be returned to the client from the back-end
nodes, either through a socket interface or via Meta-Chaos [11].  The
socket interface is used for sequential clients, while the Meta-Chaos
interface is mainly used for parallel clients."

A parallel client is itself a set of processes with a *data
distribution* it wants the output in (Figure 2's client B).  This
module computes the redistribution between the back end's output-chunk
placement (wherever declustering put the owners) and the client's
requested distribution, ships the data functionally, and estimates the
transfer cost -- the interoperability service Meta-Chaos provided
between data-parallel runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.machine.config import MachineConfig
from repro.planner.plan import QueryPlan
from repro.runtime.engine import QueryResult

__all__ = [
    "RedistributionSchedule",
    "client_distribution",
    "build_schedule",
    "scatter_result",
    "estimate_transfer_time",
]


def client_distribution(
    n_chunks: int, n_client_procs: int, kind: str = "block"
) -> np.ndarray:
    """Per-output-chunk destination client process.

    ``block`` gives each client process a contiguous run of chunk ids
    (the common data-parallel array decomposition); ``cyclic`` deals
    them round-robin.
    """
    if n_client_procs < 1:
        raise ValueError("need at least one client process")
    ids = np.arange(n_chunks)
    if kind == "block":
        per = -(-n_chunks // n_client_procs)  # ceil division
        return np.minimum(ids // max(per, 1), n_client_procs - 1)
    if kind == "cyclic":
        return ids % n_client_procs
    raise ValueError(f"unknown distribution {kind!r}; use 'block' or 'cyclic'")


@dataclass(frozen=True)
class RedistributionSchedule:
    """Point-to-point transfers back end -> parallel client.

    Parallel arrays over the plan's (dense local) output chunks:
    ``src`` is the owning back-end processor, ``dst`` the client
    process, ``nbytes`` the final output chunk size.
    """

    n_backend: int
    n_client: int
    chunk: np.ndarray
    src: np.ndarray
    dst: np.ndarray
    nbytes: np.ndarray

    def __len__(self) -> int:
        return len(self.chunk)

    @property
    def total_bytes(self) -> int:
        return int(self.nbytes.sum())

    def bytes_per_src(self) -> np.ndarray:
        out = np.zeros(self.n_backend, dtype=np.int64)
        np.add.at(out, self.src, self.nbytes)
        return out

    def bytes_per_dst(self) -> np.ndarray:
        out = np.zeros(self.n_client, dtype=np.int64)
        np.add.at(out, self.dst, self.nbytes)
        return out

    @property
    def client_balance(self) -> float:
        """max/mean bytes across client processes (1.0 = perfect)."""
        per = self.bytes_per_dst()
        mean = per.mean()
        return float(per.max() / mean) if mean > 0 else 1.0

    def summary(self) -> str:
        return (
            f"{len(self)} output chunks, {self.total_bytes / 2**20:.1f} MB "
            f"{self.n_backend} backend -> {self.n_client} client procs, "
            f"client balance {self.client_balance:.2f}"
        )


def build_schedule(
    plan: QueryPlan,
    n_client_procs: int,
    distribution: Union[str, np.ndarray] = "block",
) -> RedistributionSchedule:
    """The transfer schedule for a plan's output.

    ``distribution`` is ``"block"``/``"cyclic"`` over the plan's output
    chunks (in dataset-id order) or an explicit per-chunk destination
    array.
    """
    p = plan.problem
    n_out = p.n_out
    if isinstance(distribution, str):
        # distribute over the *sorted dataset ids*, the order a client
        # addressing the output array would use
        order = np.argsort(p.output_global_ids)
        dst = np.empty(n_out, dtype=np.int64)
        dst[order] = client_distribution(n_out, n_client_procs, distribution)
    else:
        dst = np.asarray(distribution, dtype=np.int64)
        if dst.shape != (n_out,):
            raise ValueError("distribution must name one client per output chunk")
        if len(dst) and (dst.min() < 0 or dst.max() >= n_client_procs):
            raise ValueError("client process ids out of range")
    return RedistributionSchedule(
        n_backend=p.n_procs,
        n_client=n_client_procs,
        chunk=np.arange(n_out, dtype=np.int64),
        src=p.output_owner.astype(np.int64).copy(),
        dst=dst,
        nbytes=p.outputs.nbytes.copy(),
    )


def scatter_result(
    result: QueryResult,
    plan: QueryPlan,
    schedule: RedistributionSchedule,
) -> List[Dict[int, np.ndarray]]:
    """Deliver a functional result per the schedule.

    Returns one ``{output chunk id: values}`` mapping per client
    process -- what each client process's memory would hold after the
    Meta-Chaos move.
    """
    p = plan.problem
    local_of = {int(g): i for i, g in enumerate(p.output_global_ids)}
    buckets: List[Dict[int, np.ndarray]] = [dict() for _ in range(schedule.n_client)]
    for out_id, values in zip(result.output_ids, result.chunk_values):
        local = local_of.get(int(out_id))
        if local is None:
            raise KeyError(f"result chunk {int(out_id)} not in the plan's outputs")
        buckets[int(schedule.dst[local])][int(out_id)] = values
    return buckets


def estimate_transfer_time(
    schedule: RedistributionSchedule, machine: MachineConfig
) -> float:
    """Transfer time: every endpoint ships its bytes over its own link
    (full duplex, client assumed symmetric), plus one latency."""
    send = schedule.bytes_per_src().max(initial=0)
    recv = schedule.bytes_per_dst().max(initial=0)
    return float(max(send, recv)) / machine.link_bandwidth + machine.link_latency
