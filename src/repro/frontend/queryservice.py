"""Concurrent multi-query front end with cross-query scan sharing.

The paper's Figure-2 front-end process "interacts with clients" and
relays range queries to the back end; its planning service explicitly
handles *sets* of queries.  :class:`QueryService` grows that front end
into a concurrent query zone (in the spirit of Nieto-Santisteban et
al.'s parallel query zone for a large user base): many clients submit
queries at once, admission control keeps the pending queue bounded and
rejects loudly when it overflows, and a pool of worker threads drains
the queue in *shared-scan batches*.

Scheduling
----------
A free worker dequeues one pending query, then gathers up to
``batch_max - 1`` more pending queries against the same dataset
(waiting at most ``batch_window`` seconds for stragglers -- under
load, batches form from the backlog without waiting).  The batch is
planned per query (each query keeps its own strategy), ordered by the
greedy shared-input-bytes chain of
:func:`repro.planner.batch.order_for_sharing`, and executed in that
order on the worker.  Batches over different datasets -- or over the
same dataset once one worker's batch is full -- run concurrently on
other workers.

Functional scan sharing
-----------------------
Ordering is only half the sharing: the chunks two consecutive queries
have in common must still be *in memory* when the successor asks for
them.  Before executing, the worker pins the batch's
consecutive-overlap chunk set in the ADR's payload cache
(:meth:`repro.store.cache.CachedChunkStore.pin`), so the decoded
payloads a query's reads produce survive until the batch completes no
matter what else the cache evicts; overlapping queries aggregate out
of the same decoded buffers instead of re-reading the disk farm.
Results are bit-identical to isolated execution -- sharing changes
where bytes come from, never what is computed -- and each result's
``shared_reads`` / ``shared_bytes`` counters (the only fields allowed
to differ) report how many retrievals the cache absorbed.

Thread-safety contract: the service owns concurrency for *queries*
(``execute``/``submit``).  Loading datasets or materializing results
(``store_as``/``update``) while queries are in flight is not
supported -- quiesce first.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.frontend.adr import ADR
from repro.frontend.query import RangeQuery
from repro.planner.batch import BatchPlan, order_for_sharing
from repro.planner.plan import QueryPlan
from repro.planner.select import StrategyChoice
from repro.planner.telemetry import MeasuredRun, TelemetryLog
from repro.runtime.engine import QueryResult
from repro.store.cache import CachedChunkStore

__all__ = [
    "ServicePolicy",
    "QueryService",
    "QueryTicket",
    "ServiceOverloadedError",
    "ServiceClosedError",
]


class ServiceOverloadedError(RuntimeError):
    """Admission control rejected the query: the pending queue is full.

    Deliberately loud -- clients must see back-pressure, not silent
    latency.  Over the wire protocol this travels as error code
    ``"overloaded"`` with a ``details`` object carrying
    :attr:`queue_depth` and the :attr:`retry_after_s` back-off hint, so
    shard routers and clients can space their retries instead of
    hammering a saturated service.
    """

    def __init__(
        self, message: str, queue_depth: int = 0, retry_after_s: float = 0.05
    ) -> None:
        super().__init__(message)
        #: pending queries at rejection time (== ``max_queue``).
        self.queue_depth = queue_depth
        #: suggested client back-off before retrying, seconds.
        self.retry_after_s = retry_after_s

    @property
    def wire_details(self) -> Dict[str, object]:
        """Machine-readable fields for ``protocol.error_to_dict``."""
        return {
            "queue_depth": int(self.queue_depth),
            "retry_after_s": float(self.retry_after_s),
        }


class ServiceClosedError(RuntimeError):
    """The service has been closed and accepts no new queries."""


@dataclass(frozen=True)
class ServicePolicy:
    """Admission-control and scheduling knobs of a :class:`QueryService`.

    Attributes
    ----------
    max_queue:
        Pending (admitted, not yet executing) queries the service
        holds before :meth:`QueryService.submit` raises
        :class:`ServiceOverloadedError`.
    max_inflight:
        Worker threads, i.e. batches executing concurrently.
    batch_max:
        Most queries fused into one shared-scan batch.
    batch_window:
        Seconds a worker holding a non-full batch waits for further
        same-dataset queries before executing.  Zero disables waiting;
        under sustained load batches fill from the backlog regardless.
    share_scans:
        ``False`` disables batching, reordering and cache pinning --
        every query executes alone (the ablation baseline for
        ``benchmarks/bench_service.py``).
    """

    max_queue: int = 64
    max_inflight: int = 4
    batch_max: int = 8
    batch_window: float = 0.002
    share_scans: bool = True

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if self.batch_window < 0:
            raise ValueError("batch_window must be >= 0")


class QueryTicket:
    """Handle for one admitted query; resolves to a result or error."""

    def __init__(self, query: RangeQuery) -> None:
        self.query = query
        self._done = threading.Event()
        self._result: Optional[QueryResult] = None
        self._error: Optional[BaseException] = None
        #: scheduling diagnostics, filled when the query completes:
        #: ``queue_wait_s``, ``batch_size``, ``batch_pos``,
        #: ``shared_reads``, ``shared_bytes``, and -- for
        #: ``strategy='auto'`` queries -- ``selected_strategy``
        self.service_info: Dict[str, object] = {}
        self.submitted_at = time.monotonic()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> QueryResult:
        """Block until the query finishes; re-raises its error."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"query not finished within {timeout}s (still queued or executing)"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def _resolve(
        self,
        result: Optional[QueryResult],
        error: Optional[BaseException],
        info: Optional[Dict[str, float]] = None,
    ) -> None:
        self._result = result
        self._error = error
        if info:
            self.service_info.update(info)
        self._done.set()


#: Counter names exposed by :meth:`QueryService.stats` (all
#: monotonically increasing since service start).
SERVICE_COUNTERS = (
    "submitted",
    "rejected",
    "completed",
    "failed",
    "batches",
    "batched_queries",
    "shared_reads",
    "shared_bytes",
)


class QueryService:
    """A concurrent query front end over one :class:`ADR` instance.

    Use as a context manager; submission is non-blocking (a
    :class:`QueryTicket` comes back immediately), ``execute`` is the
    blocking convenience::

        with QueryService(adr) as service:
            tickets = [service.submit(q) for q in queries]
            results = [t.result(timeout=60) for t in tickets]
    """

    def __init__(
        self,
        adr: ADR,
        policy: Optional[ServicePolicy] = None,
        telemetry: Optional[TelemetryLog] = None,
    ) -> None:
        self.adr = adr
        self.policy = policy if policy is not None else ServicePolicy()
        #: when set, every cleanly completed query appends a
        #: :class:`~repro.planner.telemetry.MeasuredRun` here, so the
        #: cost model behind ``strategy='auto'`` can be (re)calibrated
        #: from live traffic (``repro.planner.calibrate``).  Appends are
        #: thread-safe; recording failures never fail the query.
        self.telemetry = telemetry
        self._cv = threading.Condition()
        self._pending: Deque[QueryTicket] = deque()
        self._inflight = 0
        self._closed = False
        self._counters: Dict[str, int] = {name: 0 for name in SERVICE_COUNTERS}
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"adr-query-worker-{i}", daemon=True
            )
            for i in range(self.policy.max_inflight)
        ]
        for t in self._workers:
            t.start()

    # -- client surface ----------------------------------------------------

    def submit(self, query: RangeQuery) -> QueryTicket:
        """Admit *query* or raise.

        Raises :class:`ServiceOverloadedError` when ``max_queue``
        queries are already pending, :class:`ServiceClosedError` after
        :meth:`close`.
        """
        ticket = QueryTicket(query)
        with self._cv:
            if self._closed:
                raise ServiceClosedError("query service is closed")
            if len(self._pending) >= self.policy.max_queue:
                self._counters["rejected"] += 1
                depth = len(self._pending)
                # Deterministic back-off hint: one batch window scaled by
                # how far over capacity the backlog sits relative to the
                # worker pool.  Heuristic, not a guarantee -- but stable
                # for a given policy, so tests and routers can rely on it.
                hint = round(
                    max(0.01, self.policy.batch_window)
                    * (1.0 + depth / self.policy.max_inflight),
                    4,
                )
                raise ServiceOverloadedError(
                    f"pending queue full ({self.policy.max_queue} queries); "
                    "retry with back-off",
                    queue_depth=depth,
                    retry_after_s=hint,
                )
            self._pending.append(ticket)
            self._counters["submitted"] += 1
            self._cv.notify()
        return ticket

    def execute(
        self, query: RangeQuery, timeout: Optional[float] = None
    ) -> QueryResult:
        """Submit and block for the result (errors re-raise here)."""
        return self.submit(query).result(timeout)

    def stats(self) -> Dict[str, object]:
        """JSON-safe service counters: queue depth, in-flight queries,
        batches formed, shared reads/bytes, payload-cache totals."""
        with self._cv:
            out: Dict[str, object] = {name: int(v) for name, v in self._counters.items()}
            out["queue_depth"] = len(self._pending)
            out["in_flight"] = self._inflight
        out["policy"] = {
            "max_queue": self.policy.max_queue,
            "max_inflight": self.policy.max_inflight,
            "batch_max": self.policy.batch_max,
            "batch_window": self.policy.batch_window,
            "share_scans": self.policy.share_scans,
        }
        store = self.adr.store
        if isinstance(store, CachedChunkStore):
            cache = {str(k): int(v) for k, v in store.stats().items()}
            lookups = cache.get("chunk_hits", 0) + cache.get("chunk_misses", 0)
            cache["chunk_hit_rate"] = (
                cache.get("chunk_hits", 0) / lookups if lookups else 0.0
            )
            out["cache"] = cache
        return out

    def close(self, timeout: float = 10.0) -> None:
        """Stop admitting, drain the pending queue, join the workers."""
        with self._cv:
            self._closed = True
            self._cv.notify_all()
        for t in self._workers:
            t.join(timeout=timeout)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- scheduler ---------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            try:
                self._run_batch(batch)
            finally:
                with self._cv:
                    self._inflight -= len(batch)
                    self._cv.notify_all()

    def _next_batch(self) -> Optional[List[QueryTicket]]:
        """Dequeue a same-dataset batch (or ``None`` on shutdown).

        Marks the batch in flight before releasing the lock.
        """
        limit = self.policy.batch_max if self.policy.share_scans else 1
        with self._cv:
            while not self._pending:
                if self._closed:
                    return None
                self._cv.wait(timeout=0.1)
            first = self._pending.popleft()
            batch = [first]
            deadline = time.monotonic() + self.policy.batch_window
            while len(batch) < limit:
                self._gather_locked(first.query.dataset, batch, limit)
                if len(batch) >= limit or self._closed:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cv.wait(timeout=remaining)
            self._inflight += len(batch)
        return batch

    def _gather_locked(
        self, dataset: str, batch: List[QueryTicket], limit: int
    ) -> None:
        """Move pending same-dataset tickets into *batch* (lock held)."""
        keep: Deque[QueryTicket] = deque()
        while self._pending and len(batch) < limit:
            ticket = self._pending.popleft()
            if ticket.query.dataset == dataset:
                batch.append(ticket)
            else:
                keep.append(ticket)
        while keep:
            self._pending.appendleft(keep.pop())

    # -- execution ---------------------------------------------------------

    def _run_batch(self, batch: List[QueryTicket]) -> None:
        dequeued = time.monotonic()
        planned: List[
            Tuple[QueryTicket, QueryPlan, Optional[StrategyChoice]]
        ] = []
        for ticket in batch:
            try:
                plan, choice = self.adr.plan_with_choice(ticket.query)
                planned.append((ticket, plan, choice))
            except Exception as e:  # planning errors resolve one ticket
                self._finish(ticket, None, e)
        if not planned:
            return

        # Everything past planning runs under one umbrella handler: a
        # scheduler-level failure (ordering, shared-key computation, a
        # pin that raises) must resolve *every* still-pending ticket --
        # an unresolved ticket is a client hung in ``result()`` forever.
        dataset = planned[0][0].query.dataset
        cache = self.adr.store if isinstance(self.adr.store, CachedChunkStore) else None
        pinned: frozenset = frozenset()
        try:
            share = self.policy.share_scans and len(planned) > 1
            plans = [plan for _, plan, _ in planned]
            order = order_for_sharing(plans) if share else list(range(len(planned)))
            if share and cache is not None:
                pinned = BatchPlan(plans, list(order)).consecutive_shared_keys()
                cache.pin(dataset, pinned)
            with self._cv:
                self._counters["batches"] += 1
                if len(planned) > 1:
                    self._counters["batched_queries"] += len(planned)
            for pos, idx in enumerate(order):
                ticket, plan, choice = planned[idx]
                try:
                    result = self.adr.execute(ticket.query, plan=plan)
                except Exception as e:
                    self._finish(ticket, None, e)
                    continue
                info = {
                    "queue_wait_s": round(dequeued - ticket.submitted_at, 6),
                    "batch_size": len(planned),
                    "batch_pos": pos,
                    "shared_reads": int(result.shared_reads),
                    "shared_bytes": int(result.shared_bytes),
                }
                if choice is not None:
                    result.selected_strategy = choice.selected
                    result.strategy_ranking = choice.ranking_dict()
                    info["selected_strategy"] = choice.selected
                self._record_telemetry(plan, result)
                self._finish(ticket, result, None, info)
        except Exception as e:
            for ticket, _, _ in planned:
                if not ticket.done():
                    self._finish(ticket, None, e)
        finally:
            # Balanced even when ``pin`` itself raised partway: ``unpin``
            # ignores keys that were never pinned.
            if pinned and cache is not None:
                cache.unpin(dataset, pinned)

    def _record_telemetry(self, plan: QueryPlan, result: QueryResult) -> None:
        """Harvest a clean completed query into the telemetry log.

        Only clean runs are worth fitting: degraded executions (chunk
        errors, partial completeness) have phase times that do not
        reflect the plan's work.  Recording failures are swallowed --
        telemetry is an observer, never a reason to fail the query.
        """
        if self.telemetry is None:
            return
        if result.chunk_errors or result.completeness < 1.0:
            return
        if not result.phase_times:
            return
        try:
            self.telemetry.append(MeasuredRun.from_result(plan, result))
        except Exception:  # noqa: ADR401 -- telemetry is best-effort; the query result is already complete and unaffected
            pass

    def _finish(
        self,
        ticket: QueryTicket,
        result: Optional[QueryResult],
        error: Optional[BaseException],
        info: Optional[Dict[str, float]] = None,
    ) -> None:
        with self._cv:
            if error is not None:
                self._counters["failed"] += 1
            else:
                self._counters["completed"] += 1
                assert result is not None
                self._counters["shared_reads"] += int(result.shared_reads)
                self._counters["shared_bytes"] += int(result.shared_bytes)
        ticket._resolve(result, error, info)
