"""ADR front end.

The front end "interacts with clients, and forwards range queries with
references to user-defined processing functions to the parallel
back-end".  :class:`repro.frontend.adr.ADR` is the whole customized
application instance of the paper's Figure 2: attribute-space and
dataset registration, dataset loading, query validation, planning and
execution behind one façade.
"""

from repro.frontend.query import RangeQuery
from repro.frontend.adr import ADR
from repro.frontend.protocol import query_to_dict, query_from_dict, result_to_dict, result_from_dict
from repro.frontend.queryservice import (
    QueryService,
    QueryTicket,
    ServiceClosedError,
    ServiceOverloadedError,
    ServicePolicy,
)
from repro.frontend.service import ADRServer, ADRClient, RemoteQueryError

__all__ = [
    "RangeQuery",
    "ADR",
    "ADRServer",
    "ADRClient",
    "RemoteQueryError",
    "QueryService",
    "QueryTicket",
    "ServicePolicy",
    "ServiceOverloadedError",
    "ServiceClosedError",
    "query_to_dict",
    "query_from_dict",
    "result_to_dict",
    "result_from_dict",
]
