"""AST dataflow/concurrency lint over the threaded runtime (``ADR7xx``).

The comm checker (:mod:`repro.analysis.comm`) proves the *protocol*
sound; this pass checks the threaded Python that executes it.  It runs
through the same pipeline as the project lint (:func:`lint_source`
invokes it for files under ``repro/runtime/``, ``repro/store/`` and
``repro/frontend/``), shares the ``# noqa: ADR7xx -- rationale``
opt-out, and can also run standalone::

    python -m repro.analysis.effects src

========  ==========================================================
ADR701    shared mutable state (a ``self`` attribute) written by a
          thread-worker function outside a ``with <lock>`` block --
          every function handed to ``threading.Thread(target=...)``
          must mutate shared state only under the object's lock /
          condition variable
ADR702    inconsistent lock-acquisition order: two locks nested in
          opposite orders within one module -- the classic ABBA
          deadlock
ADR703    blocking ``.get()`` / ``.join()`` with no timeout in a
          concurrency-critical module -- an unbounded wait defeats
          crash recovery (the parent must always regain control to
          count restarts)
ADR704    ``SharedMemory(...)`` bound to a name without a
          ``try/finally`` in the same function calling ``.close()``
          (and ``.unlink()`` when ``create=True``) -- leaked segments
          outlive the process
ADR705    cache state mutated outside the guarded section in the
          guarded-cache module (``store/cache.py``): every write to
          the LRU's attributes must happen under ``with self._lock``
          or inside a ``*_locked`` helper (called with the lock held)
========  ==========================================================

See ``docs/static_analysis.md`` for the catalog and rationale.
"""

from __future__ import annotations

import ast
import re
import sys
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, DiagnosticCollector, Severity

__all__ = ["EFFECTS_CODES", "check_effects", "main"]

EFFECTS_CODES = ("ADR701", "ADR702", "ADR703", "ADR704", "ADR705")

#: Names that denote a lock-ish synchronization object when they are
#: the context expression of a ``with`` (``self._lock``, ``cv``, ...).
_LOCKISH_RE = re.compile(r"lock|mutex|cv$|cond|sem", re.IGNORECASE)

#: Method calls that mutate their receiver in place.
_MUTATING_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "update", "setdefault", "add", "discard", "move_to_end", "sort",
        "reverse", "appendleft", "popleft",
    }
)


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_lockish(expr: ast.AST) -> bool:
    """Is this ``with``-context expression a lock acquisition?

    Matches a lock-named object (``self._lock``, ``cv``) or a method
    call on one (``self._cv.acquire_timeout(...)``); the *last* name
    component decides (``self.clock`` has 'lock' inside a longer word
    and still matches -- the lint is deliberately permissive here, a
    stray ``with`` over a non-lock is harmless to the rule).
    """
    if isinstance(expr, ast.Call):
        expr = expr.func
    name = _dotted(expr)
    if name is None:
        return False
    return bool(_LOCKISH_RE.search(name.split(".")[-1]))


def _self_attr_written(node: ast.AST) -> Optional[str]:
    """The ``self.<attr>`` a statement's target mutates, else None."""
    target = node
    while isinstance(target, ast.Subscript):
        target = target.value
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return target.attr
    return None


def _self_attr_mutating_call(call: ast.Call) -> Optional[str]:
    """``self.<attr>`` whose in-place mutator this call invokes."""
    fn = call.func
    if not (isinstance(fn, ast.Attribute) and fn.attr in _MUTATING_METHODS):
        return None
    recv = fn.value
    while isinstance(recv, ast.Subscript):
        recv = recv.value
    if (
        isinstance(recv, ast.Attribute)
        and isinstance(recv.value, ast.Name)
        and recv.value.id == "self"
    ):
        return recv.attr
    return None


def _thread_target_names(tree: ast.Module) -> Set[str]:
    """Function names handed to ``threading.Thread(target=...)``.

    Only *thread* targets: ``multiprocessing.Process`` workers get a
    copied address space and synchronize through queues, so ADR701
    does not apply to them.
    """
    targets: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _dotted(node.func)
        if name is None or name.split(".")[-1] != "Thread":
            continue
        for kw in node.keywords:
            if kw.arg == "target":
                tname = _dotted(kw.value)
                if tname is not None:
                    targets.add(tname.split(".")[-1])
    return targets


class _EffectsVisitor(ast.NodeVisitor):
    def __init__(
        self,
        path: str,
        out: DiagnosticCollector,
        thread_targets: Set[str],
        guarded_cache: bool,
    ) -> None:
        self.path = path
        self.out = out
        self.thread_targets = thread_targets
        self.guarded_cache = guarded_cache
        self.lock_depth = 0
        self.lock_stack: List[str] = []  # dotted names of held locks
        self.lock_orders: Dict[Tuple[str, str], ast.AST] = {}
        self.func_stack: List[ast.AST] = []

    def _loc(self, node: ast.AST) -> str:
        return f"{self.path}:{node.lineno}:{node.col_offset}"

    # -- scope bookkeeping ----------------------------------------------

    def _in_thread_worker(self) -> bool:
        return any(
            isinstance(f, (ast.FunctionDef, ast.AsyncFunctionDef))
            and f.name in self.thread_targets
            for f in self.func_stack
        )

    def _in_guarded_method(self) -> bool:
        """Inside ``__init__`` (pre-publication) or a ``*_locked``
        helper (caller holds the lock by convention)?"""
        return any(
            isinstance(f, (ast.FunctionDef, ast.AsyncFunctionDef))
            and (f.name == "__init__" or f.name.endswith("_locked"))
            for f in self.func_stack
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.func_stack.append(node)
        self.generic_visit(node)
        self.func_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_With(self, node: ast.With) -> None:
        held = [
            _dotted(it.context_expr.func if isinstance(it.context_expr, ast.Call)
                    else it.context_expr) or "<lock>"
            for it in node.items
            if _is_lockish(it.context_expr)
        ]
        # ADR702: record every (outer, inner) lock nesting pair.
        for outer in self.lock_stack:
            for inner in held:
                if inner == outer:
                    continue
                self.lock_orders.setdefault((outer, inner), node)
                if (inner, outer) in self.lock_orders:
                    self.out.emit(
                        "ADR702",
                        Severity.ERROR,
                        self._loc(node),
                        f"locks {outer!r} and {inner!r} are nested in both "
                        "orders in this module; two threads taking them in "
                        "opposite orders deadlock (ABBA) -- pick one global "
                        "order",
                    )
        self.lock_depth += len(held)
        self.lock_stack.extend(held)
        self.generic_visit(node)
        for _ in held:
            self.lock_stack.pop()
        self.lock_depth -= len(held)

    visit_AsyncWith = visit_With

    # -- ADR701: unguarded shared-state mutation in thread workers -------

    def _check_shared_write(self, attr: Optional[str], node: ast.AST) -> None:
        if attr is None or self.lock_depth > 0:
            return
        if self._in_thread_worker():
            self.out.emit(
                "ADR701",
                Severity.ERROR,
                self._loc(node),
                f"thread-worker function mutates shared state 'self.{attr}' "
                "outside a lock; every write the fetch/consumer threads "
                "race on must happen under the object's condition "
                "variable/lock",
            )
        elif self.guarded_cache and not self._in_guarded_method():
            # ADR705: the guarded-cache module's discipline.
            self.out.emit(
                "ADR705",
                Severity.ERROR,
                self._loc(node),
                f"cache state 'self.{attr}' mutated outside the guarded "
                "section; the LRU is shared between the engine and "
                "prefetch threads -- mutate under 'with self._lock' or in "
                "a '*_locked' helper",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for t in node.targets:
            self._check_shared_write(_self_attr_written(t), node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_shared_write(_self_attr_written(node.target), node)
        self.generic_visit(node)

    # -- calls: ADR703 (unbounded waits) + mutating methods (701/705) ----

    def visit_Call(self, node: ast.Call) -> None:
        self._check_shared_write(_self_attr_mutating_call(node), node)
        fn = node.func
        if (
            isinstance(fn, ast.Attribute)
            and fn.attr in ("get", "join")
            and not node.args
            and not node.keywords
            and not isinstance(fn.value, ast.Constant)  # "sep".join(...)
        ):
            self.out.emit(
                "ADR703",
                Severity.ERROR,
                self._loc(node),
                f"blocking '.{fn.attr}()' with no timeout in a "
                "concurrency-critical module; an unbounded wait can hang "
                "recovery forever -- pass a timeout and surface the "
                "failure (RecoveryPolicy budgets every wait)",
            )
        self.generic_visit(node)


def _finally_calls(scope: ast.AST) -> Set[str]:
    """Dotted calls appearing in any ``finally:`` block of *scope*."""
    out: Set[str] = set()
    for node in ast.walk(scope):
        if isinstance(node, ast.Try):
            for stmt in node.finalbody:
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Call):
                        name = _dotted(sub.func)
                        if name is not None:
                            out.add(name)
    return out


class _SharedMemoryFinder(ast.NodeVisitor):
    """Collect SharedMemory bindings keyed by nearest enclosing
    function (or the module itself)."""

    def __init__(self, tree: ast.Module) -> None:
        self.stack: List[ast.AST] = [tree]
        #: scope node -> [(assign node, var name, created?)]
        self.bindings: Dict[ast.AST, List[Tuple[ast.Assign, str, bool]]] = {}

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.stack.append(node)
        self.generic_visit(node)
        self.stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Assign(self, node: ast.Assign) -> None:
        call = node.value
        if isinstance(call, ast.Call):
            name = _dotted(call.func)
            if (
                name is not None
                and name.split(".")[-1] == "SharedMemory"
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                created = any(
                    kw.arg == "create"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in call.keywords
                )
                self.bindings.setdefault(self.stack[-1], []).append(
                    (node, node.targets[0].id, created)
                )
        self.generic_visit(node)


def _check_shared_memory(tree: ast.Module, path: str, out: DiagnosticCollector) -> None:
    """ADR704: every SharedMemory binding needs close (+unlink) on a
    ``finally`` path of its enclosing function."""
    finder = _SharedMemoryFinder(tree)
    finder.visit(tree)
    for scope, bindings in finder.bindings.items():
        finals = _finally_calls(scope)
        for node, var, created in bindings:
            needed = [f"{var}.close"] + ([f"{var}.unlink"] if created else [])
            missing = [n for n in needed if n not in finals]
            if missing:
                out.emit(
                    "ADR704",
                    Severity.ERROR,
                    f"{path}:{node.lineno}:{node.col_offset}",
                    "SharedMemory segment bound to "
                    f"'{var}' without {' and '.join(m + '()' for m in missing)} "
                    "in a finally block of the same function; an exception "
                    "path would leak the mapping"
                    + (" and the named segment" if created else ""),
                )


def check_effects(
    source: str,
    path: str,
    *,
    guarded_cache: bool = False,
    tree: Optional[ast.Module] = None,
) -> List[Diagnostic]:
    """Run the ADR7xx checks over one module's source.

    Raw findings -- ``# noqa`` filtering is applied by the caller
    (:func:`repro.analysis.lint.lint_source`), so suppression works
    identically across the 3xx/4xx/5xx/7xx rules.  *guarded_cache*
    additionally enforces the ADR705 lock discipline (the
    ``store/cache.py`` scope).
    """
    out = DiagnosticCollector()
    if tree is None:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            return []  # the project lint reports ADR300 for this
    visitor = _EffectsVisitor(path, out, _thread_target_names(tree), guarded_cache)
    visitor.visit(tree)
    _check_shared_memory(tree, path, out)
    return out.diagnostics


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone CLI; normally the checks run inside
    ``python -m repro.analysis.lint`` (which owns path scoping, noqa
    and output formats)."""
    from repro.analysis.lint import main as lint_main

    return lint_main(list(sys.argv[1:] if argv is None else argv))


if __name__ == "__main__":
    sys.exit(main())
