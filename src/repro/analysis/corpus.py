"""Canned plan corpus for CI: plan it, verify it, exit nonzero on drift.

The verifier is only useful if something runs it routinely.  This
module generates a deterministic corpus of planning problems -- random
synthetic graphs across processor counts / memory pressures plus the
paper's three application emulators on a small machine -- plans every
one with FRA, SRA, DA and the hybrid, and verifies each plan with
:func:`repro.analysis.verifier.verify_plan`.  CI runs::

    python -m repro.analysis.corpus

which exits 1 if any plan produces a diagnostic, making every planner
change prove the Figure 4-6 contracts before it lands.
"""

from __future__ import annotations

import sys
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.verifier import verify_plan
from repro.util.rng import make_rng
from repro.util.units import KB, MB

__all__ = ["corpus_problems", "verify_corpus", "main"]


def _random_problem(seed: int, n_procs: int, n_in: int, n_out: int, memory: int,
                    fan_out: int, acc_factor: float):
    """A synthetic planning problem (mirrors the test-suite generator)."""
    from repro.dataset.chunkset import ChunkSet
    from repro.dataset.graph import ChunkGraph
    from repro.planner.problem import PlanningProblem

    rng = make_rng(seed)

    def chunkset(n: int, nbytes: int) -> ChunkSet:
        los = rng.uniform(0, 90.0, size=(n, 2))
        his = los + rng.uniform(0, 10.0, size=(n, 2))
        cs = ChunkSet(los, his, np.full(n, nbytes, dtype=np.int64))
        return cs.with_placement(
            rng.integers(0, n_procs, size=n).astype(np.int32),
            np.zeros(n, dtype=np.int32),
        )

    inputs = chunkset(n_in, 64 * KB)
    outputs = chunkset(n_out, 32 * KB)
    outs_per_in = [
        rng.choice(n_out, size=min(n_out, max(1, int(rng.poisson(fan_out)))),
                   replace=False)
        for _ in range(n_in)
    ]
    return PlanningProblem(
        n_procs=n_procs,
        memory_per_proc=np.int64(memory),
        inputs=inputs,
        outputs=outputs,
        graph=ChunkGraph.from_lists(n_in, n_out, outs_per_in),
        acc_nbytes=(outputs.nbytes * acc_factor).astype(np.int64),
    )


def corpus_problems(include_emulators: bool = True) -> Iterator[Tuple[str, object]]:
    """Yield ``(label, PlanningProblem)`` for the canned corpus."""
    shapes = [
        # (n_procs, n_in, n_out, memory, fan_out, acc_factor)
        (1, 20, 5, 1 * MB, 2, 1.0),       # degenerate: single processor
        (2, 40, 8, 256 * KB, 2, 2.0),     # tight memory -> many tiles
        (4, 60, 12, 1 * MB, 2, 2.0),      # the test-suite default shape
        (8, 120, 24, 512 * KB, 3, 4.0),   # wide accumulators
        (16, 200, 40, 2 * MB, 1, 1.5),    # many processors, sparse fan-out
        (4, 30, 30, 96 * KB, 4, 1.0),     # outputs ~ inputs, dense graph
    ]
    for i, (n_procs, n_in, n_out, memory, fan_out, acc) in enumerate(shapes):
        yield (
            f"synthetic[{i}] p={n_procs} in={n_in} out={n_out}",
            _random_problem(1000 + i, n_procs, n_in, n_out, memory, fan_out, acc),
        )
    if include_emulators:
        from repro.emulator import EMULATORS
        from repro.machine.config import MachineConfig

        machine = MachineConfig(n_procs=4, memory_per_proc=4 * MB)
        for name, cls in sorted(EMULATORS.items()):
            scenario = cls().scenario(scale=1, seed=7)
            yield (f"emulator[{name}] p=4", scenario.problem(machine))


def verify_corpus(
    include_emulators: bool = True, strategies: Sequence[str] = ("FRA", "SRA", "DA", "HYBRID")
) -> List[Tuple[str, Diagnostic]]:
    """Plan + verify the whole corpus; return (plan label, diagnostic) pairs."""
    from repro.planner.strategies import plan_query

    findings: List[Tuple[str, Diagnostic]] = []
    for label, problem in corpus_problems(include_emulators):
        for strategy in strategies:
            plan = plan_query(problem, strategy)
            for diag in verify_plan(plan):
                findings.append((f"{label} / {strategy}", diag))
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    unknown = [a for a in argv if a != "--no-emulators"]
    if unknown:
        print(f"repro.analysis.corpus: unknown argument(s): {' '.join(unknown)}")
        print("usage: python -m repro.analysis.corpus [--no-emulators]")
        return 2
    include_emulators = "--no-emulators" not in argv
    findings = verify_corpus(include_emulators=include_emulators)
    n_plans = 0
    for label, diag in findings:
        print(f"{label}: {diag.format()}")
    for label, _problem in corpus_problems(include_emulators):
        n_plans += 4  # FRA, SRA, DA, HYBRID
    if findings:
        print(f"repro.analysis.corpus: {len(findings)} diagnostic(s) over {n_plans} plans")
        return 1
    print(f"repro.analysis.corpus: {n_plans} plans verified, zero diagnostics")
    return 0


if __name__ == "__main__":
    sys.exit(main())
