"""Canned plan corpus for CI: plan it, verify it, exit nonzero on drift.

The verifier is only useful if something runs it routinely.  This
module generates a deterministic corpus of planning problems -- random
synthetic graphs across processor counts / memory pressures plus the
paper's three application emulators on a small machine -- plans every
one with FRA, SRA, DA and the hybrid, and verifies each plan with
:func:`repro.analysis.verifier.verify_plan`.  CI runs::

    python -m repro.analysis.corpus

which exits 1 if any plan produces a diagnostic, making every planner
change prove the Figure 4-6 contracts before it lands.

``--functional`` switches to the execution corpus: nine small
geometry-derived workloads with real payloads, planned with all four
strategies (36 plans) and *executed* five ways --

- the serial single-pass oracle (:func:`repro.runtime.serial.execute_serial`),
- sequential backend with the simulated-race detector armed,
- the multiprocess backend (``backend="parallel"``),
- both backends again with threaded read-ahead (``prefetch=True``).

The sequential result must match the oracle to floating-point
tolerance, and every other variant must match the sequential one bit
for bit (same phase executor, same kernels, same operation order),
counters and ``phase_times`` key set included.  Each workload then
re-runs with a value predicate (``where=``): a synopsis-pruned plan
must reproduce the unpruned predicate run bit for bit on all four
execution variants while reading strictly fewer chunks and reporting
``chunks_pruned`` / ``bytes_pruned`` consistently.

``--faults`` replays the functional corpus under a deterministic fault
matrix (corrupt chunk + degrade, flaky disk + retry, worker crash +
recovery) and checks every degraded or recovered result against ground
truth -- see :func:`verify_fault_corpus`; ``--faults --prefetch``
replays the same matrix with read-ahead enabled, proving injected
faults surface identically from the prefetch thread.

``--service`` replays the functional corpus through the concurrent
query service: per workload, four overlapping range queries (mixed
strategies, one predicate-bearing) run concurrently through one
:class:`~repro.frontend.queryservice.QueryService` with scan sharing
enabled, and every result must be bit-identical to the same query
executed alone on a fresh ADR instance -- values, counters, pruning
and completeness included.  Only the documented ``shared_reads`` /
``shared_bytes`` fields may differ, and at least one query in the
corpus must actually be served from the shared payload cache.

``--shards`` replays the functional corpus through a sharded
scatter/gather deployment (:class:`repro.shard.cluster.ShardCluster`):
per workload, the four strategies plus a predicate-bearing variant (45
plans) execute over real sockets through the
:class:`~repro.shard.router.ShardRouter` and must be bit-identical to
the same router/merge path run in process, and numerically identical
(to float tolerance) to a fresh single-process ADR -- distribution
must be invisible.

``--chaos`` runs the wire-level chaos corpus: seeded failure scenarios
(crashed shards, refused connections, torn and corrupted frames, slow
and draining peers, replica failover, hedged stragglers, composed
chunk+shard faults) against sharded deployments.  Every scenario must
finish inside its deadline budget with the exact ``shard_errors`` /
``completeness`` the failure implies, and every degraded result must
equal the in-process expectation computed with the same shards down --
see :func:`verify_chaos_corpus`.

``--comm`` model-checks the communication schedule of every corpus
plan with :func:`repro.analysis.comm.check_plan_comm` (ADR6xx):
deadlock-freedom, exact send/receive matching, combine completeness
and recovery-safe message keying -- the transport contract every
scale-out backend relies on, proved statically per plan.

``--format json`` (or ``github``) switches the report format for the
verifier and ``--comm`` modes; ``--out FILE`` writes it to a file
(the CI artifact).
"""

from __future__ import annotations

import sys
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.verifier import verify_plan
from repro.planner.select import ALL_STRATEGIES, FRA, HYBRID
from repro.util.rng import make_rng
from repro.util.units import KB, MB

__all__ = [
    "corpus_problems",
    "verify_corpus",
    "verify_comm_corpus",
    "functional_workloads",
    "verify_functional_corpus",
    "verify_fault_corpus",
    "verify_service_corpus",
    "verify_shard_corpus",
    "verify_chaos_corpus",
    "main",
]


def _random_problem(seed: int, n_procs: int, n_in: int, n_out: int, memory: int,
                    fan_out: int, acc_factor: float):
    """A synthetic planning problem (mirrors the test-suite generator)."""
    from repro.dataset.chunkset import ChunkSet
    from repro.dataset.graph import ChunkGraph
    from repro.planner.problem import PlanningProblem

    rng = make_rng(seed)

    def chunkset(n: int, nbytes: int) -> ChunkSet:
        los = rng.uniform(0, 90.0, size=(n, 2))
        his = los + rng.uniform(0, 10.0, size=(n, 2))
        cs = ChunkSet(los, his, np.full(n, nbytes, dtype=np.int64))
        return cs.with_placement(
            rng.integers(0, n_procs, size=n).astype(np.int32),
            np.zeros(n, dtype=np.int32),
        )

    inputs = chunkset(n_in, 64 * KB)
    outputs = chunkset(n_out, 32 * KB)
    outs_per_in = [
        rng.choice(n_out, size=min(n_out, max(1, int(rng.poisson(fan_out)))),
                   replace=False)
        for _ in range(n_in)
    ]
    return PlanningProblem(
        n_procs=n_procs,
        memory_per_proc=np.int64(memory),
        inputs=inputs,
        outputs=outputs,
        graph=ChunkGraph.from_lists(n_in, n_out, outs_per_in),
        acc_nbytes=(outputs.nbytes * acc_factor).astype(np.int64),
    )


def corpus_problems(include_emulators: bool = True) -> Iterator[Tuple[str, object]]:
    """Yield ``(label, PlanningProblem)`` for the canned corpus."""
    shapes = [
        # (n_procs, n_in, n_out, memory, fan_out, acc_factor)
        (1, 20, 5, 1 * MB, 2, 1.0),       # degenerate: single processor
        (2, 40, 8, 256 * KB, 2, 2.0),     # tight memory -> many tiles
        (4, 60, 12, 1 * MB, 2, 2.0),      # the test-suite default shape
        (8, 120, 24, 512 * KB, 3, 4.0),   # wide accumulators
        (16, 200, 40, 2 * MB, 1, 1.5),    # many processors, sparse fan-out
        (4, 30, 30, 96 * KB, 4, 1.0),     # outputs ~ inputs, dense graph
    ]
    for i, (n_procs, n_in, n_out, memory, fan_out, acc) in enumerate(shapes):
        yield (
            f"synthetic[{i}] p={n_procs} in={n_in} out={n_out}",
            _random_problem(1000 + i, n_procs, n_in, n_out, memory, fan_out, acc),
        )
    if include_emulators:
        from repro.emulator import EMULATORS
        from repro.machine.config import MachineConfig

        machine = MachineConfig(n_procs=4, memory_per_proc=4 * MB)
        for name, cls in sorted(EMULATORS.items()):
            scenario = cls().scenario(scale=1, seed=7)
            yield (f"emulator[{name}] p=4", scenario.problem(machine))


def verify_corpus(
    include_emulators: bool = True, strategies: Sequence[str] = ALL_STRATEGIES
) -> List[Tuple[str, Diagnostic]]:
    """Plan + verify the whole corpus; return (plan label, diagnostic) pairs."""
    from repro.planner.strategies import plan_query

    findings: List[Tuple[str, Diagnostic]] = []
    for label, problem in corpus_problems(include_emulators):
        for strategy in strategies:
            plan = plan_query(problem, strategy)
            for diag in verify_plan(plan):
                findings.append((f"{label} / {strategy}", diag))
    return findings


def verify_comm_corpus(
    include_emulators: bool = True,
    strategies: Sequence[str] = ALL_STRATEGIES,
) -> Tuple[int, List[Tuple[str, Diagnostic]]]:
    """Model-check the communication schedule of every corpus plan.

    Plans the whole corpus and runs
    :func:`repro.analysis.comm.check_plan_comm` over each plan's
    :class:`~repro.runtime.phases.MessageFlow`; returns ``(n_plans,
    (plan label, diagnostic) pairs)``.  A clean run proves every plan
    deadlock-free with exactly matched send/receive multisets,
    complete ghost combines and recovery-safe message keys.
    """
    from repro.analysis.comm import check_plan_comm
    from repro.planner.strategies import plan_query

    findings: List[Tuple[str, Diagnostic]] = []
    n_plans = 0
    for label, problem in corpus_problems(include_emulators):
        for strategy in strategies:
            n_plans += 1
            plan = plan_query(problem, strategy)
            for diag in check_plan_comm(plan):
                findings.append((f"{label} / {strategy}", diag))
    return n_plans, findings


def functional_workloads() -> Iterator[Tuple[str, dict]]:
    """Yield ``(label, workload)`` payload-carrying execution problems.

    Each workload dictionary carries ``chunks``, ``mapping``, ``grid``,
    ``spec`` and ``problem`` -- everything needed to plan and execute.
    Nine workloads x four strategies = the 36-plan functional corpus.
    """
    from repro.aggregation.functions import (
        BestValueComposite,
        CountAggregation,
        MaxAggregation,
        MeanAggregation,
        MinAggregation,
        SumAggregation,
    )
    from repro.aggregation.output_grid import OutputGrid
    from repro.dataset.chunkset import ChunkSet
    from repro.dataset.graph import ChunkGraph
    from repro.dataset.partition import hilbert_partition
    from repro.decluster.hilbert import HilbertDeclusterer
    from repro.planner.problem import PlanningProblem
    from repro.space.attribute_space import AttributeSpace
    from repro.space.mapping import GridMapping

    shapes = [
        # (spec, n_items, grid_cells, chunk_cells, footprint, n_procs, memory)
        (SumAggregation(1), 400, (12, 12), (3, 3), None, 3, 256),
        (MeanAggregation(1), 400, (12, 12), (3, 3), None, 3, 256),
        (MaxAggregation(1), 300, (12, 12), (3, 3), None, 2, 512),
        (MinAggregation(2), 300, (12, 12), (4, 4), None, 3, 1024),
        (CountAggregation(1), 500, (10, 10), (2, 2), None, 4, 512),
        (SumAggregation(1), 400, (12, 12), (3, 3), (0.08, 0.05), 4, 1 << 14),
        (BestValueComposite(2), 350, (12, 12), (3, 3), None, 3, 1024),
        (MeanAggregation(3), 450, (16, 16), (4, 4), None, 4, 2048),
        (SumAggregation(1), 200, (8, 8), (2, 2), None, 1, 1 << 14),
    ]
    for i, (spec, n_items, gcells, ccells, footprint, n_procs, memory) in enumerate(
        shapes
    ):
        rng = make_rng(2000 + i)
        in_space = AttributeSpace.regular("in", ("x", "y"), (0, 0), (10, 10))
        out_space = AttributeSpace.regular("out", ("u", "v"), (0, 0), (1, 1))
        coords = rng.uniform(0, 10, size=(n_items, 2))
        values = rng.integers(
            1, 100, size=(n_items, spec.value_components)
        ).astype(float)
        # Component 0 tracks the x coordinate, so the spatially local
        # chunks the Hilbert partitioner produces carry narrow per-chunk
        # value ranges -- the shape value-synopsis pruning exploits.
        values[:, 0] = coords[:, 0] * 10.0 + rng.uniform(0.0, 5.0, size=n_items)
        chunks = hilbert_partition(coords, values, 20)
        grid = OutputGrid(out_space, gcells, ccells)
        mapping = GridMapping(in_space, out_space, gcells, footprint=footprint)

        inputs = ChunkSet.from_metas([c.meta for c in chunks])
        decl = HilbertDeclusterer()
        inputs = decl.place(inputs, n_procs)
        outputs = decl.place(grid.chunkset(), n_procs)
        graph = ChunkGraph.from_geometry(inputs, outputs, mapping)
        acc = np.asarray(
            [spec.acc_bytes(grid.cells_in_chunk(o)) for o in range(grid.n_chunks)],
            dtype=np.int64,
        )
        problem = PlanningProblem(
            n_procs=n_procs,
            memory_per_proc=np.int64(memory),
            inputs=inputs,
            outputs=outputs,
            graph=graph,
            acc_nbytes=acc,
        )
        label = (
            f"functional[{i}] {type(spec).__name__}"
            f" c={spec.value_components} p={n_procs}"
        )
        yield label, {
            "chunks": chunks,
            "mapping": mapping,
            "grid": grid,
            "spec": spec,
            "problem": problem,
            # A selective value predicate on the coord-correlated
            # component; prunes a real fraction of every workload's
            # chunks through their synopses.
            "where": {0: (None, 35.0)},
        }


#: The cross-backend counter contract asserted by the functional
#: corpus (defined in :mod:`repro.runtime.phases`).
_COUNTERS = ("n_reads", "bytes_read", "n_aggregations", "n_combines")


def verify_functional_corpus(
    strategies: Sequence[str] = ALL_STRATEGIES,
) -> Tuple[int, List[Tuple[str, str]]]:
    """Execute the functional corpus; return ``(n_plans, failures)``.

    Each plan runs four ways -- {sequential, parallel} x {prefetch off,
    prefetch on} -- with the race detector armed on the plain
    sequential run.  Sequential must match the serial oracle to
    floating-point tolerance; every other variant must match the
    sequential result bit for bit, counters included, and every
    variant's ``phase_times`` must carry exactly the
    :data:`repro.runtime.phases.PHASES` key set (the cross-backend
    contract).

    Additionally, every workload runs once with ``strategy='auto'``:
    the cost model's pick must execute **bit-identically** to planning
    the chosen strategy explicitly, across the same four
    {sequential, parallel} x {prefetch off, on} variants -- automatic
    selection adds a choice, never semantics.
    """
    from repro.dataset.graph import ChunkGraph
    from repro.dataset.predicate import ValuePredicate
    from repro.dataset.synopsis import ValueSynopsis
    from repro.frontend.adr import DEFAULT_COSTS
    from repro.machine.presets import ibm_sp
    from repro.planner.costmodel import CostModel
    from repro.planner.hybrid import plan_hybrid
    from repro.planner.problem import PlanningProblem
    from repro.planner.select import choose_strategy
    from repro.planner.strategies import plan_query
    from repro.runtime.engine import execute_plan
    from repro.runtime.phases import PHASES
    from repro.runtime.serial import execute_serial

    failures: List[Tuple[str, str]] = []
    n_plans = 0
    for wi, (label, w) in enumerate(functional_workloads()):
        chunks, mapping = w["chunks"], w["mapping"]
        grid, spec = w["grid"], w["spec"]
        serial = execute_serial(chunks, mapping, grid, spec)
        for strategy in strategies:
            n_plans += 1
            tag = f"{label} / {strategy}"
            plan = plan_query(w["problem"], strategy)
            seq = execute_plan(
                plan, lambda i: chunks[i], mapping, grid, spec, detect_races=True
            )
            if set(seq.output_ids.tolist()) != set(serial):
                failures.append((tag, "sequential output-chunk set != serial oracle"))
                continue
            for o, vals in zip(seq.output_ids, seq.chunk_values):
                if not np.allclose(vals, serial[int(o)], equal_nan=True):
                    failures.append(
                        (tag, f"sequential output chunk {int(o)} != serial oracle")
                    )
            variants = {
                "parallel": execute_plan(
                    plan, lambda i: chunks[i], mapping, grid, spec,
                    backend="parallel",
                ),
                "sequential+prefetch": execute_plan(
                    plan, lambda i: chunks[i], mapping, grid, spec, prefetch=True
                ),
                "parallel+prefetch": execute_plan(
                    plan, lambda i: chunks[i], mapping, grid, spec,
                    backend="parallel", prefetch=True,
                ),
            }
            if sorted(seq.phase_times) != sorted(PHASES):
                failures.append(
                    (tag, f"sequential phase_times keys {sorted(seq.phase_times)}")
                )
            for name, res in variants.items():
                if res.output_ids.tolist() != seq.output_ids.tolist():
                    failures.append((tag, f"{name} output ids != sequential"))
                    continue
                for o, pv, sv in zip(res.output_ids, res.chunk_values, seq.chunk_values):
                    if not np.array_equal(pv, sv, equal_nan=True):
                        failures.append(
                            (tag, f"{name} output chunk {int(o)} not bitwise-equal")
                        )
                for counter in _COUNTERS:
                    if getattr(res, counter) != getattr(seq, counter):
                        failures.append(
                            (
                                tag,
                                f"{name} {counter}={getattr(res, counter)}"
                                f" != sequential {getattr(seq, counter)}",
                            )
                        )
                if sorted(res.phase_times) != sorted(PHASES):
                    failures.append(
                        (tag, f"{name} phase_times keys {sorted(res.phase_times)}")
                    )

        # -- strategy='auto': selection never changes the answer --------
        # The cost model's pick must execute bit-identically to planning
        # the chosen strategy explicitly, across all four variants.
        n_plans += 1
        model = CostModel(ibm_sp(w["problem"].n_procs), DEFAULT_COSTS)
        choice = choose_strategy(w["problem"], model)
        tag = f"{label} / AUTO->{choice.selected}"
        explicit = (
            plan_hybrid(w["problem"], machine=model.machine, costs=model.costs)
            if choice.selected == HYBRID
            else plan_query(w["problem"], choice.selected)
        )
        exp_seq = execute_plan(explicit, lambda i: chunks[i], mapping, grid, spec)
        auto_runs = {
            "auto sequential": execute_plan(
                choice.plan, lambda i: chunks[i], mapping, grid, spec,
                detect_races=True,
            ),
            "auto parallel": execute_plan(
                choice.plan, lambda i: chunks[i], mapping, grid, spec,
                backend="parallel",
            ),
            "auto sequential+prefetch": execute_plan(
                choice.plan, lambda i: chunks[i], mapping, grid, spec,
                prefetch=True,
            ),
            "auto parallel+prefetch": execute_plan(
                choice.plan, lambda i: chunks[i], mapping, grid, spec,
                backend="parallel", prefetch=True,
            ),
        }
        for name, res in auto_runs.items():
            if res.output_ids.tolist() != exp_seq.output_ids.tolist():
                failures.append((tag, f"{name} output ids != explicit plan"))
                continue
            for o, av, ev in zip(res.output_ids, res.chunk_values,
                                 exp_seq.chunk_values):
                if not np.array_equal(av, ev, equal_nan=True):
                    failures.append(
                        (tag, f"{name} output chunk {int(o)} not "
                              f"bitwise-equal to the explicit "
                              f"{choice.selected} plan")
                    )
            for counter in _COUNTERS:
                if getattr(res, counter) != getattr(exp_seq, counter):
                    failures.append(
                        (tag, f"{name} {counter}={getattr(res, counter)} != "
                              f"explicit {getattr(exp_seq, counter)}")
                    )

        # -- predicate-bearing plan: pruned == unpruned, bit for bit ----
        # Mirrors ADR.build_problem: drop synopsis-prunable inputs
        # before planning, rebuild the graph geometrically, and let the
        # residual kernel filter make the pruned result identical to
        # the unpruned one (strategy rotates across workloads).
        predicate = ValuePredicate.coerce(w["where"])
        prunable = predicate.prunable_chunks(ValueSynopsis.from_chunks(chunks))
        strategy = strategies[wi % len(strategies)]
        tag = f"{label} / {strategy} / where"
        n_plans += 1
        problem = w["problem"]
        if not prunable.any() or prunable.all():
            failures.append(
                (tag, f"predicate prunes {int(prunable.sum())}/{len(chunks)} "
                      "chunks; workload exercises nothing")
            )
            continue
        keep = np.flatnonzero(~prunable)
        kept_inputs = problem.inputs.subset(keep)
        pruned_problem = PlanningProblem(
            n_procs=problem.n_procs,
            memory_per_proc=problem.memory_per_proc,
            inputs=kept_inputs,
            outputs=problem.outputs,
            graph=ChunkGraph.from_geometry(kept_inputs, problem.outputs, mapping),
            acc_nbytes=problem.acc_nbytes,
            input_global_ids=keep,
            pruned_input_ids=np.flatnonzero(prunable),
            pruned_bytes=int(problem.inputs.nbytes[prunable].sum()),
        )
        unpruned = execute_plan(
            plan_query(problem, strategy), lambda i: chunks[i], mapping, grid,
            spec, detect_races=True, predicate=predicate,
        )
        serial_pred = execute_serial(chunks, mapping, grid, spec, predicate=predicate)
        for o, vals in zip(unpruned.output_ids, unpruned.chunk_values):
            if not np.allclose(vals, serial_pred[int(o)], equal_nan=True):
                failures.append(
                    (tag, f"unpruned predicate chunk {int(o)} != serial oracle")
                )
        if unpruned.chunks_pruned != 0:
            failures.append((tag, "unpruned plan reported pruned chunks"))
        pruned_plan = plan_query(pruned_problem, strategy)
        pruned_runs = {
            "pruned sequential": execute_plan(
                pruned_plan, lambda i: chunks[i], mapping, grid, spec,
                detect_races=True, predicate=predicate,
            ),
            "pruned parallel": execute_plan(
                pruned_plan, lambda i: chunks[i], mapping, grid, spec,
                backend="parallel", predicate=predicate,
            ),
            "pruned sequential+prefetch": execute_plan(
                pruned_plan, lambda i: chunks[i], mapping, grid, spec,
                prefetch=True, predicate=predicate,
            ),
            "pruned parallel+prefetch": execute_plan(
                pruned_plan, lambda i: chunks[i], mapping, grid, spec,
                backend="parallel", prefetch=True, predicate=predicate,
            ),
        }
        for name, res in pruned_runs.items():
            if res.output_ids.tolist() != unpruned.output_ids.tolist():
                failures.append((tag, f"{name} output ids != unpruned"))
                continue
            for o, pv, uv in zip(res.output_ids, res.chunk_values,
                                 unpruned.chunk_values):
                if not np.array_equal(pv, uv, equal_nan=True):
                    failures.append(
                        (tag, f"{name} output chunk {int(o)} not bitwise-equal "
                              "to unpruned")
                    )
            if res.chunks_pruned != int(prunable.sum()):
                failures.append(
                    (tag, f"{name} chunks_pruned={res.chunks_pruned} != "
                          f"{int(prunable.sum())}")
                )
            if res.bytes_pruned != pruned_problem.pruned_bytes:
                failures.append(
                    (tag, f"{name} bytes_pruned={res.bytes_pruned} != "
                          f"{pruned_problem.pruned_bytes}")
                )
        seq = pruned_runs["pruned sequential"]
        for name, res in pruned_runs.items():
            for counter in _COUNTERS:
                if getattr(res, counter) != getattr(seq, counter):
                    failures.append(
                        (tag, f"{name} {counter}={getattr(res, counter)}"
                              f" != pruned sequential {getattr(seq, counter)}")
                    )
        # Pruned chunks never reach the read phase (multi-tile plans
        # re-read inputs per tile, so the saving can exceed
        # bytes_pruned, which counts each pruned chunk once).
        if seq.n_reads >= unpruned.n_reads or seq.bytes_read >= unpruned.bytes_read:
            failures.append(
                (tag, f"pruning did not reduce reads: {seq.n_reads} reads/"
                      f"{seq.bytes_read} B vs unpruned {unpruned.n_reads}/"
                      f"{unpruned.bytes_read}")
            )
    return n_plans, failures


def verify_fault_corpus(
    strategies: Sequence[str] = ALL_STRATEGIES,
    prefetch: bool = False,
) -> Tuple[int, List[Tuple[str, str]]]:
    """Replay the functional corpus under the fault matrix.

    With ``prefetch=True`` every execution runs with threaded
    read-ahead enabled: injected read faults then fire inside the
    prefetch thread and must surface -- and degrade/retry/recover --
    exactly as on the synchronous path.

    Three deterministic scenarios per workload (strategy rotating
    through *strategies* so the matrix covers all four across the nine
    workloads):

    - **corrupt chunk + degrade**: one input chunk decodes to a CRC
      mismatch on every read.  The degraded result must identify
      exactly that chunk in ``chunk_errors``, report ``completeness ==
      1 - 1/n_in``, agree bitwise between the sequential and parallel
      backends, and match a serial oracle computed *without* the
      victim chunk (victim-only output chunks must equal the
      aggregation's empty baseline).
    - **flaky disk + retry**: the first two reads raise ``OSError``; a
      :class:`~repro.store.retry.RetryPolicy` (zero backoff) absorbs
      them.  The result must be bitwise identical to the clean run,
      with ``completeness == 1.0``.
    - **worker crash + recovery**: one virtual processor hard-exits
      mid-tile on the parallel backend; after recovery the result must
      be bitwise identical to the sequential backend, counters
      included.
    """
    from repro.dataset.predicate import ValuePredicate
    from repro.faults import FaultInjector, FaultPlan
    from repro.planner.strategies import plan_query
    from repro.runtime.engine import execute_plan
    from repro.runtime.parallel import RecoveryPolicy
    from repro.runtime.serial import execute_serial
    from repro.store.retry import RetryPolicy

    failures: List[Tuple[str, str]] = []
    n_scenarios = 0
    recovery = RecoveryPolicy(
        max_restarts=2, inbox_timeout=10.0, poll_interval=0.1, grace_polls=5
    )
    for i, (label, w) in enumerate(functional_workloads()):
        chunks, mapping = w["chunks"], w["mapping"]
        grid, spec = w["grid"], w["spec"]
        problem = w["problem"]
        strategy = strategies[i % len(strategies)]
        plan = plan_query(problem, strategy)
        clean = execute_plan(
            plan, lambda i: chunks[i], mapping, grid, spec, prefetch=prefetch
        )

        # -- corrupt chunk, degraded completion -------------------------
        n_scenarios += 1
        tag = f"{label} / {strategy} / corrupt+degrade"
        victim = int(problem.input_global_ids[0])
        degraded = execute_plan(
            plan, lambda i: chunks[i], mapping, grid, spec,
            fault_injector=FaultInjector(FaultPlan.corrupt_chunk(victim)),
            on_error="degrade", prefetch=prefetch,
        )
        par_degraded = execute_plan(
            plan, lambda i: chunks[i], mapping, grid, spec,
            backend="parallel", on_error="degrade", recovery=recovery,
            fault_injector=FaultInjector(FaultPlan.corrupt_chunk(victim)),
            prefetch=prefetch,
        )
        if set(degraded.chunk_errors) != {victim}:
            failures.append(
                (tag, f"chunk_errors {sorted(degraded.chunk_errors)} != [{victim}]")
            )
        expected_completeness = 1.0 - 1.0 / problem.n_in
        if not np.isclose(degraded.completeness, expected_completeness):
            failures.append(
                (tag, f"completeness {degraded.completeness} != "
                      f"{expected_completeness}")
            )
        if degraded.chunk_errors != par_degraded.chunk_errors or not all(
            np.array_equal(a, b, equal_nan=True)
            for a, b in zip(degraded.chunk_values, par_degraded.chunk_values)
        ):
            failures.append((tag, "degraded parallel != degraded sequential"))
        # A value predicate filters items, never reads: it must not
        # change which chunks fail or the completeness accounting.
        pred_degraded = execute_plan(
            plan, lambda i: chunks[i], mapping, grid, spec,
            fault_injector=FaultInjector(FaultPlan.corrupt_chunk(victim)),
            on_error="degrade", prefetch=prefetch,
            predicate=ValuePredicate.coerce(w["where"]),
        )
        if (
            pred_degraded.chunk_errors != degraded.chunk_errors
            or pred_degraded.completeness != degraded.completeness
        ):
            failures.append((tag, "where= changed the degradation report"))
        # Ground truth: the oracle over every chunk but the victim.
        oracle = execute_serial(
            [c for j, c in enumerate(chunks) if j != victim],
            mapping, grid, spec,
        )
        for o, vals in zip(degraded.output_ids, degraded.chunk_values):
            o = int(o)
            if o in oracle:
                if not np.allclose(vals, oracle[o], equal_nan=True):
                    failures.append(
                        (tag, f"degraded output chunk {o} != victimless oracle")
                    )
            else:
                # Fed only by the victim: must be the empty baseline.
                baseline = np.empty(
                    (len(vals), spec.acc_components), dtype=spec.acc_dtype
                )
                spec.initialize_into(baseline)
                if not np.array_equal(
                    vals, spec.output(baseline), equal_nan=True
                ):
                    failures.append(
                        (tag, f"victim-only output chunk {o} != empty baseline")
                    )

        # -- flaky disk, absorbed by retry -------------------------------
        n_scenarios += 1
        tag = f"{label} / {strategy} / flaky+retry"
        policy = RetryPolicy(max_attempts=4, base_delay=0.0)
        flaky = FaultInjector(FaultPlan.flaky_read(times=2)).wrap_provider(
            lambda i: chunks[i]
        )
        retried = execute_plan(
            plan, lambda i: policy.run(lambda: flaky(i)), mapping, grid, spec,
            prefetch=prefetch,
        )
        if retried.completeness != 1.0 or retried.chunk_errors:
            failures.append((tag, "retried run reported degradation"))
        if not all(
            np.array_equal(a, b, equal_nan=True)
            for a, b in zip(retried.chunk_values, clean.chunk_values)
        ):
            failures.append((tag, "retried run != clean run"))

        # -- worker crash, recovered bit-identically ----------------------
        n_scenarios += 1
        tag = f"{label} / {strategy} / crash+recover"
        crash_rank = min(1, problem.n_procs - 1)
        recovered = execute_plan(
            plan, lambda i: chunks[i], mapping, grid, spec,
            backend="parallel", recovery=recovery,
            fault_injector=FaultInjector(
                FaultPlan.crash_worker(rank=crash_rank, after_reads=1)
            ),
            prefetch=prefetch,
        )
        if recovered.output_ids.tolist() != clean.output_ids.tolist() or not all(
            np.array_equal(a, b, equal_nan=True)
            for a, b in zip(recovered.chunk_values, clean.chunk_values)
        ):
            failures.append((tag, "recovered parallel != sequential"))
        for counter in ("n_reads", "bytes_read", "n_aggregations", "n_combines"):
            if getattr(recovered, counter) != getattr(clean, counter):
                failures.append(
                    (tag, f"recovered {counter}={getattr(recovered, counter)}"
                          f" != clean {getattr(clean, counter)}")
                )
    return n_scenarios, failures


def verify_service_corpus() -> Tuple[int, List[Tuple[str, str]]]:
    """Replay the functional corpus through the concurrent service.

    For each workload, four overlapping range queries (full region,
    two overlapping sub-boxes, full region with a value predicate;
    strategies rotating so every batch mixes tilings) are submitted
    concurrently to a :class:`~repro.frontend.queryservice.QueryService`
    with scan sharing enabled.  Each result must be bit-identical to
    the same query executed alone on a *fresh* ADR instance -- output
    ids and values, the :data:`_COUNTERS` contract, ``n_tiles``,
    pruning counters, ``completeness`` and ``chunk_errors``.  The
    documented ``shared_reads`` / ``shared_bytes`` fields are the only
    ones allowed to differ; across the whole corpus at least one query
    must actually have been served from the shared payload cache
    (sharing must engage, not just not corrupt).

    Returns ``(n_queries, failures)``.
    """
    from repro.frontend.adr import ADR
    from repro.frontend.query import RangeQuery
    from repro.frontend.queryservice import QueryService, ServicePolicy
    from repro.machine.config import MachineConfig
    from repro.util.geometry import Rect

    failures: List[Tuple[str, str]] = []
    n_queries = 0
    total_shared_reads = 0
    all_strategies = ALL_STRATEGIES
    for wi, (label, w) in enumerate(functional_workloads()):
        mapping, grid, spec = w["mapping"], w["grid"], w["spec"]
        problem = w["problem"]
        space = mapping.input_space
        lo = tuple(float(d.lo) for d in space.dims)
        hi = tuple(float(d.hi) for d in space.dims)
        span = [b - a for a, b in zip(lo, hi)]

        def make_adr():
            adr = ADR(
                machine=MachineConfig(
                    n_procs=problem.n_procs, memory_per_proc=MB
                )
            )
            adr.load("corpus", space, w["chunks"])
            return adr

        def query(region, strategy, **kw):
            return RangeQuery(
                "corpus", region, mapping, grid,
                aggregation=spec, strategy=strategy, **kw,
            )

        # Four overlapping queries: the sub-boxes overlap each other
        # and the full region, so a batch always has chunks to share.
        strat = [all_strategies[(wi + k) % len(all_strategies)] for k in range(4)]
        queries = [
            query(Rect(lo, hi), strat[0]),
            query(
                Rect(lo, tuple(a + 0.7 * s for a, s in zip(lo, span))), strat[1]
            ),
            query(
                Rect(tuple(a + 0.3 * s for a, s in zip(lo, span)), hi), strat[2]
            ),
            query(Rect(lo, hi), strat[3], where=w["where"]),
        ]
        n_queries += len(queries)

        # Isolated ground truth: each query alone on a fresh instance.
        isolated = [make_adr().execute(q) for q in queries]

        # Concurrent shared execution: one service, one batch window.
        service = QueryService(
            make_adr(),
            ServicePolicy(max_inflight=1, batch_max=len(queries),
                          batch_window=0.25),
        )
        try:
            tickets = [service.submit(q) for q in queries]
            shared = [t.result(timeout=300.0) for t in tickets]
        finally:
            service.close()

        for qi, (solo, conc) in enumerate(zip(isolated, shared)):
            tag = f"{label} / q{qi} {strat[qi]}"
            total_shared_reads += conc.shared_reads
            if conc.output_ids.tolist() != solo.output_ids.tolist():
                failures.append((tag, "shared output ids != isolated"))
                continue
            for o, cv, sv in zip(conc.output_ids, conc.chunk_values,
                                 solo.chunk_values):
                if not np.array_equal(cv, sv, equal_nan=True):
                    failures.append(
                        (tag, f"output chunk {int(o)} not bitwise-equal "
                              "to isolated execution")
                    )
            for counter in _COUNTERS + ("n_tiles", "chunks_pruned",
                                        "bytes_pruned"):
                if getattr(conc, counter) != getattr(solo, counter):
                    failures.append(
                        (tag, f"{counter}={getattr(conc, counter)} != "
                              f"isolated {getattr(solo, counter)}")
                    )
            if conc.strategy != solo.strategy:
                failures.append(
                    (tag, f"strategy {conc.strategy} != {solo.strategy}")
                )
            if (conc.completeness != solo.completeness
                    or conc.chunk_errors != solo.chunk_errors):
                failures.append((tag, "degradation report differs"))
    if total_shared_reads == 0:
        failures.append(
            ("service corpus", "no query was ever served from the shared "
                               "payload cache; sharing never engaged")
        )
    return n_queries, failures


#: Counters that must survive scatter/gather unchanged (in addition to
#: the cross-backend :data:`_COUNTERS` contract).
_SHARD_COUNTERS = _COUNTERS + ("n_tiles", "chunks_pruned", "bytes_pruned")


def _compare_sharded(
    tag: str,
    got,
    want,
    failures: List[Tuple[str, str]],
) -> None:
    """Bitwise comparison of two scatter/gather results.

    ``phase_times`` *values*, ``cache_stats`` and the ``shared_*``
    fields are excluded (cache warmness differs between runs over the
    same live servers); everything else -- values, counters, pruning,
    completeness, degradation keys, phase-name set -- must match
    exactly.  Error *messages* are compared by key only: the same dead
    shard surfaces as ``ConnectionRefusedError`` over a socket and as
    the local stand-in's refusal in process.
    """
    if got.output_ids.tolist() != want.output_ids.tolist():
        failures.append((tag, "output ids differ"))
        return
    for o, a, b in zip(got.output_ids, got.chunk_values, want.chunk_values):
        if not np.array_equal(a, b, equal_nan=True):
            failures.append(
                (tag, f"output chunk {int(o)} not bitwise-equal")
            )
    for counter in _SHARD_COUNTERS:
        if getattr(got, counter) != getattr(want, counter):
            failures.append(
                (tag, f"{counter}={getattr(got, counter)} != "
                      f"expected {getattr(want, counter)}")
            )
    if got.strategy != want.strategy:
        failures.append((tag, f"strategy {got.strategy} != {want.strategy}"))
    if got.completeness != want.completeness:
        failures.append(
            (tag, f"completeness {got.completeness} != {want.completeness}")
        )
    if sorted(got.chunk_errors) != sorted(want.chunk_errors):
        failures.append(
            (tag, f"chunk_errors keys {sorted(got.chunk_errors)} != "
                  f"{sorted(want.chunk_errors)}")
        )
    if sorted(got.shard_errors) != sorted(want.shard_errors):
        failures.append(
            (tag, f"shard_errors keys {sorted(got.shard_errors)} != "
                  f"{sorted(want.shard_errors)}")
        )
    if sorted(got.phase_times) != sorted(want.phase_times):
        failures.append((tag, "phase_times key sets differ"))


def verify_shard_corpus() -> Tuple[int, List[Tuple[str, str]]]:
    """Replay the functional corpus through a sharded deployment.

    Per workload: the four strategies over rotating regions plus one
    predicate-bearing variant (45 plans), each executed three ways --

    - over real sockets through the cluster's
      :class:`~repro.shard.router.ShardRouter` (scatter, per-shard
      deadlines, FRA global combine at the router);
    - through the identical router/merge path in process
      (:meth:`~repro.shard.cluster.ShardCluster.execute_local`), which
      must match the socket run **bit for bit** (values, counters,
      pruning, completeness -- the wire must be invisible);
    - on a fresh single-process ADR, which the sharded result must
      match to float tolerance with identical output ids, pruning
      counters and ``completeness == 1.0`` (distribution must be
      semantically invisible; only combine order may differ).

    Shard counts rotate 2/3/4 across workloads.  Returns
    ``(n_plans, failures)``.
    """
    from repro.frontend.adr import ADR
    from repro.frontend.query import RangeQuery
    from repro.machine.config import MachineConfig
    from repro.shard import ShardCluster
    from repro.util.geometry import Rect

    failures: List[Tuple[str, str]] = []
    n_plans = 0
    all_strategies = ALL_STRATEGIES
    for wi, (label, w) in enumerate(functional_workloads()):
        mapping, grid, spec = w["mapping"], w["grid"], w["spec"]
        space = mapping.input_space
        lo = tuple(float(d.lo) for d in space.dims)
        hi = tuple(float(d.hi) for d in space.dims)
        span = [b - a for a, b in zip(lo, hi)]
        n_shards = 2 + (wi % 3)

        regions = [
            Rect(lo, hi),
            Rect(lo, tuple(a + 0.7 * s for a, s in zip(lo, span))),
            Rect(tuple(a + 0.3 * s for a, s in zip(lo, span)), hi),
            Rect(lo, hi),
        ]

        def query(region, strategy, **kw):
            return RangeQuery(
                "corpus", region, mapping, grid,
                aggregation=spec, strategy=strategy, **kw,
            )

        queries = [
            query(regions[k], all_strategies[(wi + k) % 4]) for k in range(4)
        ]
        queries.append(
            query(Rect(lo, hi), all_strategies[wi % 4], where=w["where"])
        )

        solo_adr = ADR(
            machine=MachineConfig(
                n_procs=w["problem"].n_procs, memory_per_proc=MB
            )
        )
        solo_adr.load("corpus", space, w["chunks"])

        with ShardCluster.build(
            "corpus", space, w["chunks"], n_shards=n_shards
        ) as cluster:
            for qi, q in enumerate(queries):
                n_plans += 1
                tag = f"{label} / q{qi} {q.strategy} shards={n_shards}"
                wire = cluster.execute(q)
                local = cluster.execute_local(q)
                _compare_sharded(f"{tag} [wire vs local]", wire, local,
                                 failures)
                if wire.shard_errors or wire.completeness != 1.0:
                    failures.append(
                        (tag, "healthy deployment reported degradation")
                    )
                solo = solo_adr.execute(q)
                if wire.output_ids.tolist() != solo.output_ids.tolist():
                    failures.append((tag, "sharded output ids != solo ADR"))
                    continue
                for o, cv, sv in zip(wire.output_ids, wire.chunk_values,
                                     solo.chunk_values):
                    if not np.allclose(cv, sv, equal_nan=True):
                        failures.append(
                            (tag, f"output chunk {int(o)} diverges from "
                                  "the single-process result")
                        )
                if wire.chunks_pruned != solo.chunks_pruned:
                    failures.append(
                        (tag, f"chunks_pruned {wire.chunks_pruned} != "
                              f"solo {solo.chunks_pruned}")
                    )
    return n_plans, failures


def verify_chaos_corpus() -> Tuple[int, List[Tuple[str, str]]]:
    """The wire-level chaos corpus: seeded failures, exact degradation.

    Fifteen scenario templates (crashed shards, draining shards,
    refused connections, torn and corrupted frames -- transient and
    persistent -- slow peers within and beyond the deadline, replica
    failover, hedged stragglers, and chunk-level faults composing with
    a dead shard) run against two functional workloads, 30 scenarios
    total.  Every scenario must:

    - finish inside its wall-clock budget (deadlines bound every
      failure mode; a hang is a corpus failure, not a timeout);
    - report exactly the ``shard_errors`` keys the injected failure
      implies, with ``completeness`` to match;
    - produce values **bit-identical** to the in-process expectation
      computed with the same shards down
      (:meth:`~repro.shard.cluster.ShardCluster.execute_local`) --
      degraded results are deterministic, not best-effort;
    - for transient faults (``times=1``), retry through to the clean,
      fully-complete result.

    Returns ``(n_scenarios, failures)``.
    """
    import time as time_mod

    from repro.faults import ChaosProxy, FaultInjector, FaultPlan, WireFaultPlan
    from repro.frontend.protocol import ProtocolError
    from repro.frontend.query import RangeQuery
    from repro.shard import ShardCluster, ShardEndpoint, ShardUnavailableError
    from repro.shard.router import RouterPolicy
    from repro.store.retry import RetryPolicy
    from repro.util.geometry import Rect

    failures: List[Tuple[str, str]] = []
    n_scenarios = 0
    budget_s = 8.0
    n_shards = 3

    fast = RouterPolicy(
        shard_deadline_s=6.0,
        connect_timeout_s=2.0,
        retry=RetryPolicy(max_attempts=2, base_delay=0.02,
                          retry_on=(OSError, ProtocolError)),
    )
    tight = RouterPolicy(
        shard_deadline_s=1.0,
        connect_timeout_s=1.0,
        retry=RetryPolicy(max_attempts=1, base_delay=0.02,
                          retry_on=(OSError, ProtocolError)),
    )

    for wi, (label, w) in enumerate(functional_workloads()):
        if wi not in (0, 3):
            continue
        mapping, grid, spec = w["mapping"], w["grid"], w["spec"]
        space = mapping.input_space
        lo = tuple(float(d.lo) for d in space.dims)
        hi = tuple(float(d.hi) for d in space.dims)
        strategy = (FRA, HYBRID)[wi == 3]
        qd = RangeQuery("corpus", Rect(lo, hi), mapping, grid,
                        aggregation=spec, strategy=strategy,
                        on_error="degrade")
        qr = RangeQuery("corpus", Rect(lo, hi), mapping, grid,
                        aggregation=spec, strategy=strategy,
                        on_error="raise")

        def build(**kw):
            return ShardCluster.build(
                "corpus", space, w["chunks"], n_shards=n_shards,
                router_policy=fast, **kw,
            )

        def proxied_router(cluster, sid, plan, policy=None, replica=False):
            """A router whose endpoint for *sid* goes through a chaos
            proxy (optionally keeping the real server as replica)."""
            proxy = ChaosProxy(cluster.servers[sid].address, plan).start()
            eps = []
            for s in range(n_shards):
                if s == sid:
                    reps = (cluster.servers[s].address,) if replica else ()
                    eps.append(ShardEndpoint(s, proxy.address, replicas=reps))
                else:
                    eps.append(ShardEndpoint(s, cluster.servers[s].address))
            return proxy, cluster.router_for(endpoints=eps, policy=policy)

        def expect_degraded(tag, got, cluster, down, elapsed):
            if elapsed > budget_s:
                failures.append(
                    (tag, f"scenario took {elapsed:.1f}s; deadlines must "
                          f"bound every failure mode under {budget_s}s")
                )
            if sorted(got.shard_errors) != sorted(down):
                failures.append(
                    (tag, f"shard_errors keys {sorted(got.shard_errors)} != "
                          f"injured shards {sorted(down)}")
                )
            exp = cluster.execute_local(qd, down=frozenset(down))
            _compare_sharded(tag, got, exp, failures)
            if down and got.completeness >= 1.0:
                failures.append((tag, "degraded result claims completeness 1"))

        def expect_clean(tag, got, cluster, elapsed):
            if elapsed > budget_s:
                failures.append(
                    (tag, f"scenario took {elapsed:.1f}s; deadlines must "
                          f"bound every failure mode under {budget_s}s")
                )
            if got.shard_errors or got.completeness != 1.0:
                failures.append(
                    (tag, f"expected a clean recovery; got shard_errors="
                          f"{got.shard_errors} completeness="
                          f"{got.completeness}")
                )
            exp = cluster.execute_local(qd)
            _compare_sharded(tag, got, exp, failures)

        # -- 1/2: dead shards degrade with exact completeness ----------
        for down in ({0}, {0, 1}):
            n_scenarios += 1
            tag = f"{label} / crash-{len(down)}-degrade"
            with build() as cluster:
                for sid in down:
                    cluster.crash_shard(sid)
                t0 = time_mod.monotonic()
                got = cluster.execute(qd)
                expect_degraded(tag, got, cluster, down,
                                time_mod.monotonic() - t0)

        # -- 3: on_error='raise' refuses to fabricate a partial answer -
        n_scenarios += 1
        tag = f"{label} / crash-raise"
        with build() as cluster:
            cluster.crash_shard(1)
            t0 = time_mod.monotonic()
            try:
                cluster.execute(qr)
            except ShardUnavailableError as e:
                if sorted(e.shard_errors) != [1]:
                    failures.append(
                        (tag, f"raised for shards "
                              f"{sorted(e.shard_errors)}, expected [1]")
                    )
            else:
                failures.append(
                    (tag, "on_error='raise' returned instead of raising "
                          "ShardUnavailableError")
                )
            if time_mod.monotonic() - t0 > budget_s:
                failures.append((tag, "raise path exceeded deadline budget"))

        # -- 4-11: wire faults through the chaos proxy -----------------
        wire_cases = [
            ("refuse-all-degrade", WireFaultPlan.refuse(times=None),
             fast, {1}),
            ("refuse-once-retries-clean", WireFaultPlan.refuse(times=1),
             fast, set()),
            ("cut-once-retries-clean", WireFaultPlan.cut(times=1),
             fast, set()),
            ("cut-all-degrade", WireFaultPlan.cut(times=None), fast, {1}),
            ("corrupt-header-once-clean",
             WireFaultPlan.corrupt(after_bytes=0, times=1), fast, set()),
            ("corrupt-payload-all-degrade",
             WireFaultPlan.corrupt(after_bytes=10, times=None), fast, {1}),
            ("slow-within-deadline-clean",
             WireFaultPlan.slow(0.3, times=None), fast, set()),
            ("slow-beyond-deadline-degrade",
             WireFaultPlan.slow(30.0, times=None), tight, {1}),
        ]
        for name, plan, policy, down in wire_cases:
            n_scenarios += 1
            tag = f"{label} / {name}"
            with build() as cluster:
                proxy, router = proxied_router(cluster, 1, plan, policy)
                try:
                    t0 = time_mod.monotonic()
                    got = router.execute(qd)
                    elapsed = time_mod.monotonic() - t0
                finally:
                    proxy.close()
                if down:
                    expect_degraded(tag, got, cluster, down, elapsed)
                else:
                    expect_clean(tag, got, cluster, elapsed)
                if name == "slow-beyond-deadline-degrade" and not any(
                    "eadline" in msg for msg in got.shard_errors.values()
                ):
                    # The failure must be *attributed* to the deadline,
                    # not reported as a generic connection error.
                    failures.append(
                        (tag, f"shard error not attributed to the "
                              f"deadline: {got.shard_errors}")
                    )

        # -- 12: graceful drain reads as an unavailable shard ----------
        n_scenarios += 1
        tag = f"{label} / drain-degrade"
        with build() as cluster:
            cluster.drain_shard(2)
            t0 = time_mod.monotonic()
            got = cluster.execute(qd)
            expect_degraded(tag, got, cluster, {2},
                            time_mod.monotonic() - t0)

        # -- 13: replica failover keeps the answer complete ------------
        n_scenarios += 1
        tag = f"{label} / replica-failover-clean"
        with build() as cluster:
            proxy, router = proxied_router(
                cluster, 1, WireFaultPlan.refuse(times=None), fast,
                replica=True,
            )
            try:
                t0 = time_mod.monotonic()
                got = router.execute(qd)
                elapsed = time_mod.monotonic() - t0
            finally:
                proxy.close()
            expect_clean(tag, got, cluster, elapsed)

        # -- 14: hedging beats a straggling primary --------------------
        n_scenarios += 1
        tag = f"{label} / hedged-straggler-clean"
        with build() as cluster:
            hedge = RouterPolicy(
                shard_deadline_s=6.0, connect_timeout_s=2.0,
                retry=fast.retry, hedge_after_s=0.25,
            )
            proxy, router = proxied_router(
                cluster, 1, WireFaultPlan.slow(3.0, times=None), hedge,
                replica=True,
            )
            try:
                t0 = time_mod.monotonic()
                got = router.execute(qd)
                elapsed = time_mod.monotonic() - t0
            finally:
                proxy.close()
            expect_clean(tag, got, cluster, elapsed)
            if elapsed > 2.5:
                failures.append(
                    (tag, f"hedged fetch took {elapsed:.1f}s; the replica "
                          "should answer long before the 3s straggler")
                )

        # -- 15: chunk-level faults compose with a dead shard ----------
        n_scenarios += 1
        tag = f"{label} / chunk-and-shard-compose"
        injector = FaultInjector(
            FaultPlan.corrupt_chunk(chunk_id=0, dataset="corpus",
                                    times=None, seed=7)
        )
        with build(faulty_stores={2: injector}) as cluster:
            corrupted_gid = int(cluster.topology.assignment.global_ids(2)[0])
            cluster.crash_shard(0)
            t0 = time_mod.monotonic()
            got = cluster.execute(qd)
            elapsed = time_mod.monotonic() - t0
            expect_degraded(tag, got, cluster, {0}, elapsed)
            if corrupted_gid not in got.chunk_errors:
                failures.append(
                    (tag, f"corrupted chunk {corrupted_gid} missing from "
                          f"chunk_errors {sorted(got.chunk_errors)}")
                )
    return n_scenarios, failures


def _render_failures(
    failures: Sequence[Tuple[str, str]], fmt: str, mode: str, n_plans: int
) -> str:
    """``(label, message)`` failures in text or machine-readable form."""
    import json as json_mod

    if fmt == "json":
        return json_mod.dumps(
            {
                "tool": "repro.analysis.corpus",
                "mode": mode,
                "summary": {"plans": n_plans, "failures": len(failures)},
                "failures": [
                    {"plan": label, "message": message}
                    for label, message in failures
                ],
            },
            indent=2,
        )
    return "\n".join(f"{label}: {message}" for label, message in failures)


def _render_findings(
    findings: Sequence[Tuple[str, Diagnostic]], fmt: str, mode: str, n_plans: int
) -> str:
    """``(plan label, diagnostic)`` pairs in the requested format.

    The label rides in the location (text/github) or as a ``plan``
    field (json); ordering is stable: by label, then the diagnostic's
    own sort key.
    """
    import json as json_mod

    findings = sorted(findings, key=lambda f: (f[0], f[1].sort_key()))
    if fmt == "json":
        return json_mod.dumps(
            {
                "tool": "repro.analysis.corpus",
                "mode": mode,
                "summary": {"plans": n_plans, "findings": len(findings)},
                "findings": [
                    {"plan": label, **diag.to_dict()} for label, diag in findings
                ],
            },
            indent=2,
        )
    if fmt == "github":
        return "\n".join(
            Diagnostic(
                d.code, d.severity, f"{label} / {d.location}", d.message
            ).format_github()
            for label, d in findings
        )
    return "\n".join(f"{label}: {d.format()}" for label, d in findings)


_USAGE = (
    "usage: python -m repro.analysis.corpus "
    "[--no-emulators] [--comm] [--functional] [--faults [--prefetch]] "
    "[--service] [--shards] [--chaos] "
    "[--format text|json|github] [--out FILE]"
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.analysis.lint import _parse_output_args, _write_report

    argv = list(sys.argv[1:] if argv is None else argv)
    fmt, out_path, err = _parse_output_args(argv, _USAGE)
    if err is not None:
        print(f"repro.analysis.corpus: {err}", file=sys.stderr)
        return 2
    unknown = [
        a for a in argv
        if a not in ("--no-emulators", "--comm", "--functional", "--faults",
                     "--prefetch", "--service", "--shards", "--chaos")
    ]
    if unknown:
        print(
            f"repro.analysis.corpus: unknown argument(s): {' '.join(unknown)}"
            f"\n{_USAGE}",
            file=sys.stderr,
        )
        return 2
    include_emulators = "--no-emulators" not in argv
    if "--comm" in argv:
        n_plans, findings = verify_comm_corpus(include_emulators=include_emulators)
        _write_report(_render_findings(findings, fmt, "comm", n_plans), out_path)
        if findings:
            if fmt == "text":
                print(
                    f"repro.analysis.corpus: {len(findings)} communication "
                    f"diagnostic(s) over {n_plans} plans"
                )
            return 1
        if fmt == "text" and out_path is None:
            print(
                f"repro.analysis.corpus: {n_plans} plans model-checked "
                "(deadlock-free, matched send/recv multisets, complete "
                "combines, recovery-safe keys), zero diagnostics"
            )
        return 0
    if "--faults" in argv:
        n_scenarios, failures = verify_fault_corpus(prefetch="--prefetch" in argv)
        for label, message in failures:
            print(f"{label}: {message}")
        if failures:
            print(
                f"repro.analysis.corpus: {len(failures)} failure(s) over "
                f"{n_scenarios} fault scenarios"
            )
            return 1
        print(
            f"repro.analysis.corpus: {n_scenarios} fault scenarios replayed, "
            "all degraded/recovered results matched ground truth"
        )
        return 0
    if "--shards" in argv:
        n_plans, failures = verify_shard_corpus()
        _write_report(
            _render_failures(failures, fmt, "shards", n_plans), out_path
        )
        if failures:
            print(
                f"repro.analysis.corpus: {len(failures)} failure(s) over "
                f"{n_plans} sharded plans"
            )
            return 1
        print(
            f"repro.analysis.corpus: {n_plans} plans executed through the "
            "sharded scatter/gather deployment, all bit-identical to the "
            "in-process merge and numerically identical to a single ADR"
        )
        return 0
    if "--chaos" in argv:
        n_scenarios, failures = verify_chaos_corpus()
        _write_report(
            _render_failures(failures, fmt, "chaos", n_scenarios), out_path
        )
        if failures:
            print(
                f"repro.analysis.corpus: {len(failures)} failure(s) over "
                f"{n_scenarios} chaos scenarios"
            )
            return 1
        print(
            f"repro.analysis.corpus: {n_scenarios} chaos scenarios replayed "
            "deterministically; every degraded result matched its "
            "in-process expectation inside the deadline budget"
        )
        return 0
    if "--service" in argv:
        n_queries, failures = verify_service_corpus()
        for label, message in failures:
            print(f"{label}: {message}")
        if failures:
            print(
                f"repro.analysis.corpus: {len(failures)} failure(s) over "
                f"{n_queries} service-executed queries"
            )
            return 1
        print(
            f"repro.analysis.corpus: {n_queries} queries executed through the "
            "concurrent query service with scan sharing, all bit-identical "
            "to isolated execution"
        )
        return 0
    if "--functional" in argv:
        n_plans, failures = verify_functional_corpus()
        for label, message in failures:
            print(f"{label}: {message}")
        if failures:
            print(
                f"repro.analysis.corpus: {len(failures)} failure(s) over "
                f"{n_plans} executed plans"
            )
            return 1
        print(
            f"repro.analysis.corpus: {n_plans} plans executed on both backends, "
            "all matched the serial oracle"
        )
        return 0
    findings = verify_corpus(include_emulators=include_emulators)
    n_plans = 0
    for label, _problem in corpus_problems(include_emulators):
        n_plans += 4  # FRA, SRA, DA, HYBRID
    _write_report(_render_findings(findings, fmt, "verify", n_plans), out_path)
    if findings:
        if fmt == "text":
            print(
                f"repro.analysis.corpus: {len(findings)} diagnostic(s) "
                f"over {n_plans} plans"
            )
        return 1
    if fmt == "text" and out_path is None:
        print(f"repro.analysis.corpus: {n_plans} plans verified, zero diagnostics")
    return 0


if __name__ == "__main__":
    sys.exit(main())
