"""AST-based project lint pass.

Enforces the repo-wide rules that keep the reproduction trustworthy
(reproducible randomness, no accidental float-equality on accumulator
math, immutable chunk payloads, explicit public APIs).  Run it as::

    python -m repro.analysis.lint src tests benchmarks

Findings are :class:`~repro.analysis.diagnostics.Diagnostic` objects
with ``path:line:col`` locations; the CLI exits nonzero when any
finding survives suppression.  A line can opt out with a rationale::

    legacy_sample = np.random.rand(3)  # noqa: ADR301 -- seeded upstream

Rules (``ADR3xx``):

========  ==========================================================
ADR301    unseeded / legacy ``np.random`` use outside ``util/rng.py``
          -- legacy global-state functions (``np.random.rand`` etc.)
          always, and ``np.random.default_rng()`` with no seed
ADR302    ``==`` / ``!=`` on float accumulator values (operands that
          reference accumulator data); use ``np.isclose`` or compare
          integer counters instead
ADR303    mutation of a ``Chunk`` payload (``.coords`` / ``.values``
          / ``.meta``) after construction -- chunks are shared across
          virtual processors and must stay read-only
ADR304    ``__all__`` missing from a public library module (packages
          under ``src/``; ``__main__.py`` and private modules exempt)
ADR305    Python loop calling ``aggregate`` inside the runtime hot
          path (``src/repro/runtime/``) -- per-item/per-edge loops are
          the slow pattern the fused kernels replaced; use
          ``aggregate_grouped`` over lexsorted segments instead (the
          preserved reference oracles opt out with ``noqa``)
ADR306    per-rectangle Python loop in the index hot path
          (``src/repro/index/``): a loop body that subscripts one MBR
          row at a time (``los[i]`` / ``his[i]`` with the loop
          variable) or calls ``Rect.intersects`` per entry -- compare
          MBRs with vectorized column operations
          (``rects_intersect_mask``, packed bitsets) instead; bounded
          structural loops (node splits, dynamic insert) opt out with
          ``noqa``
ADR401    bare ``except:`` anywhere, or an exception handler that
          silently swallows (body of only ``pass`` / ``continue`` /
          ``...``) inside the fault-critical paths
          (``src/repro/runtime/``, ``src/repro/store/``,
          ``src/repro/frontend/``, ``src/repro/faults/``) -- degraded
          execution must *record* every absorbed failure
          (``chunk_errors``), never discard it
ADR402    untimed socket use inside the wire-protocol paths
          (``src/repro/frontend/``, ``src/repro/shard/``,
          ``src/repro/faults/``): a ``socket.socket()`` created
          without a ``settimeout`` call in the same function,
          ``create_connection`` without a timeout argument, or an
          explicit ``settimeout(None)`` -- a blocking socket in the
          scatter/gather path turns any dead peer into a hung query;
          every wire operation must carry a deadline
ADR501    phase-sequencing accumulator call (``allocate`` /
          ``aggregate_grouped`` / ``scatter_groups`` /
          ``combine_from`` / ``initialize_into`` /
          ``initialize_from`` / ``prereduce_groups``) in a
          ``src/repro/runtime/`` module other than ``phases.py`` --
          the four-phase tile loop lives in one place
          (:class:`repro.runtime.phases.PhaseExecutor`); backends
          drive it, they do not re-implement it (the serial Figure-1
          oracle opts out with ``noqa``)
ADR502    hard-coded strategy string literal (``"FRA"`` / ``"SRA"`` /
          ``"DA"`` / ``"HYBRID"`` / ``"AUTO"``) in library code
          outside ``src/repro/planner/`` -- strategy names are defined
          once in :mod:`repro.planner.select`; import the constants
          (``FRA``, ``AUTO``, ``FIXED_STRATEGIES``, ...) so automatic
          selection stays a single choke point (docstrings exempt)
========  ==========================================================

Files under the concurrency-critical paths (``src/repro/runtime/``,
``src/repro/store/``, ``src/repro/frontend/``) additionally get the
``ADR7xx`` dataflow/concurrency rules of
:mod:`repro.analysis.effects` (unguarded shared-state mutation in
thread workers, ABBA lock order, unbounded blocking waits, leaked
``SharedMemory``, cache mutation outside the guarded section), through
the same noqa pipeline.

Output formats: the default is one ``location: severity: code
message`` line per finding; ``--format json`` emits a machine-readable
report (uploaded as a CI artifact) and ``--format github`` emits
workflow annotation commands.  All formats order findings by
``(path, line, col, code)``.
"""

from __future__ import annotations

import ast
import json
import re
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set

from repro.analysis.diagnostics import Diagnostic, DiagnosticCollector, Severity
from repro.analysis.effects import check_effects

__all__ = ["lint_paths", "lint_file", "lint_source", "main", "LINT_CODES"]

LINT_CODES = (
    "ADR301", "ADR302", "ADR303", "ADR304", "ADR305", "ADR306", "ADR401",
    "ADR402", "ADR501", "ADR502",
)

#: Directory whose modules are the execution hot path (ADR305).
_RUNTIME_HOT_PATH = ("repro/runtime/",)

#: Directory whose modules answer every query's chunk selection
#: (ADR306): MBR comparisons there must be vectorized.
_INDEX_HOT_PATH = ("repro/index/",)

#: Directories where silently swallowed exceptions hide data loss
#: (ADR401's stricter half applies here): the executing runtime, the
#: storage layer, the user-facing frontend (degradation reporting),
#: and the fault-injection machinery itself.
_FAULT_CRITICAL_PATHS = (
    "repro/runtime/", "repro/store/", "repro/frontend/", "repro/faults/",
    "repro/shard/",
)

#: Directories holding threaded / multiprocess code: the ADR7xx
#: dataflow rules of :mod:`repro.analysis.effects` apply here.
_CONCURRENCY_PATHS = (
    "repro/runtime/", "repro/store/", "repro/frontend/", "repro/shard/",
)

#: Directories speaking the wire protocol (ADR402): every socket
#: there must carry an explicit timeout or deadline -- a blocking
#: socket in the scatter/gather path turns any dead peer into a hung
#: query instead of a recorded ``shard_errors`` entry.
_WIRE_SCOPE_PATHS = ("repro/frontend/", "repro/shard/", "repro/faults/")

#: The module under the ADR705 guarded-cache lock discipline.
_GUARDED_CACHE_MODULES = ("store/cache.py", "store\\cache.py")

#: The one module allowed to sequence the four phases (ADR501).
_PHASE_LOOP_HOME = ("runtime/phases.py", "runtime\\phases.py")

#: Library code under these roots must import strategy names from
#: :mod:`repro.planner.select` instead of hard-coding the strings
#: (ADR502); the planner itself is where the names are defined.
_STRATEGY_SCOPE_PATHS = ("repro/",)
_STRATEGY_NAME_HOME = ("repro/planner/",)

#: The canonical strategy names (ADR502 flags these exact strings).
_STRATEGY_LITERALS = frozenset({"FRA", "SRA", "DA", "HYBRID", "AUTO"})  # noqa: ADR502 -- the rule's own pattern table

#: Accumulator-lifecycle methods whose call sites *are* the phase
#: loop: allocating/initializing accumulators, applying reduction
#: segments, merging ghosts.  Any runtime module calling these is
#: duplicating :class:`~repro.runtime.phases.PhaseExecutor`.
_PHASE_SEQUENCING_CALLS = frozenset(
    {
        "allocate", "aggregate_grouped", "scatter_groups", "combine_from",
        "initialize_into", "initialize_from", "prereduce_groups",
    }
)

#: np.random functions backed by the legacy global RandomState --
#: unseedable per call site, therefore never reproducible.
_LEGACY_RANDOM = frozenset(
    {
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "choice", "bytes", "shuffle", "permutation", "seed",
        "get_state", "set_state", "uniform", "normal", "standard_normal",
        "poisson", "binomial", "exponential", "beta", "gamma", "lognormal",
    }
)

#: Modules exempt from ADR301: the one place that may mint generators.
_RNG_EXEMPT = ("util/rng.py", "util\\rng.py")

#: ``# noqa: <code-list>`` where the list may mix tools (``# noqa:
#: E402, ADR301``); only the listed ADR codes are suppressed, and only
#: those -- trailing rationale text ("-- mentions ADR302") never
#: widens the set, and a bare ``# noqa`` (no codes) suppresses nothing
#: (this lint wants explicit, auditable opt-outs).
_NOQA_RE = re.compile(
    r"#\s*noqa:\s*([A-Z]+\d+(?:\s*,\s*[A-Z]+\d+|\s+[A-Z]+\d+)*)", re.IGNORECASE
)
_NOQA_CODE_RE = re.compile(r"^ADR\d+$")

#: Identifiers that denote accumulator *values* (float partial sums).
_ACC_NAME_RE = re.compile(r"^acc(_|$|s$|umulator)|_acc(_|$)|^ghost_data$")
#: ...unless the name is clearly a count/size/id, which compares exactly.
_NON_VALUE_RE = re.compile(r"bytes|count|size|len|idx|ids|indptr|chunk")
#: Structural attributes of an array/accumulator -- not float data.
_STRUCTURAL_ATTRS = frozenset(
    {"shape", "dtype", "ndim", "size", "nbytes", "itemsize",
     "output_chunk", "ghost", "n_items", "strategy"}
)


def _is_acc_value_name(name: str) -> bool:
    low = name.lower()
    return bool(_ACC_NAME_RE.search(low)) and not _NON_VALUE_RE.search(low)


def _noqa_lines(source: str) -> dict:
    """line number -> set of suppressed ADR codes.

    A line suppresses exactly the ADR codes it lists -- co-located
    findings with other codes always survive, non-ADR codes in a mixed
    list (``# noqa: E402, ADR301``) are other tools' business, and
    codes appearing only in rationale prose are not part of the list.
    """
    out: dict = {}
    for i, line in enumerate(source.splitlines(), start=1):
        codes: Set[str] = set()
        for m in _NOQA_RE.finditer(line):
            for c in re.split(r"[,\s]+", m.group(1)):
                c = c.strip().upper()
                if _NOQA_CODE_RE.match(c):
                    codes.add(c)
        if codes:
            out[i] = codes
    return out


def _dotted(node: ast.AST) -> Optional[str]:
    """'np.random.rand' for nested Attribute/Name chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _mentions_accumulator(node: ast.AST) -> bool:
    """Does the expression denote accumulator float data?

    Follows the access chain outward: ``acc``, ``acc.data[i]`` and
    ``tile_acc[0]`` qualify; ``acc.data.shape``, ``acc_nbytes`` and
    ``spec.acc_bytes(5)`` (counts, structure, call results) do not.
    """
    if isinstance(node, ast.Name):
        return _is_acc_value_name(node.id)
    if isinstance(node, ast.Subscript):
        return _mentions_accumulator(node.value)
    if isinstance(node, ast.Attribute):
        if node.attr in _STRUCTURAL_ATTRS:
            return False
        if _is_acc_value_name(node.attr):
            return True
        return _mentions_accumulator(node.value)
    return False


def _root_name(node: ast.AST) -> Optional[str]:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _calls_aggregate_directly(loop: ast.AST) -> Optional[ast.Call]:
    """The first ``aggregate(...)`` / ``*.aggregate(...)`` call in the
    loop body that is not inside a *nested* loop (the inner loop gets
    its own finding)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(loop))
    while stack:
        node = stack.pop(0)
        if isinstance(node, (ast.For, ast.While, ast.AsyncFor)):
            continue  # the nested loop is flagged on its own
        if isinstance(node, ast.Call):
            fn = node.func
            name = fn.attr if isinstance(fn, ast.Attribute) else (
                fn.id if isinstance(fn, ast.Name) else None
            )
            if name == "aggregate":
                return node
        stack.extend(ast.iter_child_nodes(node))
    return None


def _docstring_node_ids(tree: ast.AST) -> Set[int]:
    """``id()`` of every docstring Constant (ADR502 exempts them)."""
    out: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            body = node.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                out.add(id(body[0].value))
    return out


class _Visitor(ast.NodeVisitor):
    def __init__(
        self, path: str, out: DiagnosticCollector, rng_exempt: bool,
        runtime_hot_path: bool = False, fault_critical: bool = False,
        phase_scope: bool = False, index_hot_path: bool = False,
        wire_scope: bool = False, strategy_scope: bool = False,
        docstring_ids: Optional[Set[int]] = None,
    ) -> None:
        self.path = path
        self.out = out
        self.rng_exempt = rng_exempt
        self.runtime_hot_path = runtime_hot_path
        self.fault_critical = fault_critical
        self.phase_scope = phase_scope
        self.index_hot_path = index_hot_path
        self.wire_scope = wire_scope
        self.strategy_scope = strategy_scope
        self.docstring_ids = docstring_ids if docstring_ids is not None else set()
        #: ADR402 per-function frames: sockets created vs. timed.
        self._socket_frames: List[dict] = []

    def _loc(self, node: ast.AST) -> str:
        return f"{self.path}:{node.lineno}:{node.col_offset}"

    # -- ADR402: untimed sockets in wire-protocol code ---------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_wire_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_wire_function(node)

    def _visit_wire_function(self, node: ast.AST) -> None:
        if not self.wire_scope:
            self.generic_visit(node)
            return
        frame = {"created": [], "timed": set()}
        self._socket_frames.append(frame)
        self.generic_visit(node)
        self._socket_frames.pop()
        for name, creation in frame["created"]:
            if name not in frame["timed"]:
                self.out.emit(
                    "ADR402",
                    Severity.ERROR,
                    self._loc(creation),
                    f"socket '{name}' created without settimeout() in the "
                    "same function; a blocking socket in the wire path "
                    "turns a dead peer into a hung query -- set an "
                    "explicit timeout",
                )

    def _check_wire_call(self, node: ast.Call) -> None:
        fn = node.func
        attr = fn.attr if isinstance(fn, ast.Attribute) else None
        if attr == "create_connection":
            timed = len(node.args) >= 2 or any(
                kw.arg == "timeout" for kw in node.keywords
            )
            if not timed:
                self.out.emit(
                    "ADR402",
                    Severity.ERROR,
                    self._loc(node),
                    "create_connection() without a timeout blocks "
                    "indefinitely on an unreachable peer; pass "
                    "timeout= (derive it from the request deadline)",
                )
        elif attr == "settimeout":
            if (
                len(node.args) == 1
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None
            ):
                self.out.emit(
                    "ADR402",
                    Severity.ERROR,
                    self._loc(node),
                    "settimeout(None) makes the socket blocking forever; "
                    "wire-path sockets must keep an explicit timeout",
                )
            elif self._socket_frames:
                target = _dotted(fn.value)
                if target is not None:
                    self._socket_frames[-1]["timed"].add(target)

    def _note_wire_assignment(self, node: ast.Assign) -> None:
        if not isinstance(node.value, ast.Call):
            return
        dotted = _dotted(node.value.func)
        if dotted is None or dotted.split(".")[-2:] != ["socket", "socket"]:
            return
        if not self._socket_frames:
            return
        for t in node.targets:
            target = _dotted(t)
            if target is not None:
                self._socket_frames[-1]["created"].append((target, node))

    # -- ADR301: unseeded randomness --------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if not self.rng_exempt:
            dotted = _dotted(node.func)
            if dotted is not None:
                tail = dotted.split(".")
                if len(tail) >= 3 and tail[-3] in ("np", "numpy") and tail[-2] == "random":
                    fn = tail[-1]
                    if fn in _LEGACY_RANDOM:
                        self.out.emit(
                            "ADR301",
                            Severity.ERROR,
                            self._loc(node),
                            f"legacy global-state RNG call np.random.{fn}(); "
                            "route randomness through repro.util.rng.make_rng",
                        )
                    elif fn == "default_rng" and (
                        not node.args
                        or (
                            isinstance(node.args[0], ast.Constant)
                            and node.args[0].value is None
                        )
                    ) and not node.keywords:
                        self.out.emit(
                            "ADR301",
                            Severity.ERROR,
                            self._loc(node),
                            "np.random.default_rng() without a seed is "
                            "nondeterministic; thread a seed or Generator "
                            "through repro.util.rng.make_rng",
                        )
        # -- ADR501: phase sequencing outside runtime/phases.py -----------
        if (
            self.phase_scope
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _PHASE_SEQUENCING_CALLS
        ):
            self.out.emit(
                "ADR501",
                Severity.ERROR,
                self._loc(node),
                f"phase-sequencing call '{node.func.attr}()' outside "
                "runtime/phases.py; the four-phase tile loop is owned by "
                "PhaseExecutor -- drive it instead of re-implementing it "
                "(the serial oracle may opt out with noqa)",
            )
        if self.wire_scope:
            self._check_wire_call(node)
        self.generic_visit(node)

    # -- ADR302: float equality on accumulator values ----------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            operands = [node.left, *node.comparators]
            if any(_mentions_accumulator(o) for o in operands):
                self.out.emit(
                    "ADR302",
                    Severity.ERROR,
                    self._loc(node),
                    "== / != on float accumulator values; partial sums are "
                    "order-dependent -- use np.isclose/np.allclose or "
                    "compare integer counters",
                )
        self.generic_visit(node)

    # -- ADR303: chunk payload mutation ------------------------------------

    def _check_mutation_target(self, target: ast.AST, node: ast.AST) -> None:
        attr = target
        if isinstance(attr, ast.Subscript):  # chunk.values[i] = ...
            attr = attr.value
        if isinstance(attr, ast.Attribute) and attr.attr in ("coords", "values", "meta"):
            root = _root_name(attr.value)
            if root and "chunk" in root.lower():
                self.out.emit(
                    "ADR303",
                    Severity.ERROR,
                    self._loc(node),
                    f"mutation of Chunk payload '.{attr.attr}' after "
                    "construction; chunk payloads are shared between "
                    "virtual processors and must stay read-only",
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        for t in node.targets:
            self._check_mutation_target(t, node)
        if self.wire_scope:
            self._note_wire_assignment(node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_mutation_target(node.target, node)
        self.generic_visit(node)

    # -- ADR305: scalar aggregate loop in the runtime hot path -------------

    def _check_aggregate_loop(self, node: ast.AST) -> None:
        if not self.runtime_hot_path:
            return
        call = _calls_aggregate_directly(node)
        if call is not None:
            self.out.emit(
                "ADR305",
                Severity.ERROR,
                self._loc(node),
                "Python loop calling aggregate() in the runtime hot path; "
                "per-item/per-edge loops are the pattern the fused kernels "
                "replaced -- group with repro.runtime.kernels.group_read and "
                "call aggregate_grouped (reference oracles may opt out with "
                "noqa)",
            )

    # -- ADR306: per-rectangle loops in the index hot path -----------------

    def _check_index_loop(self, node: ast.AST) -> None:
        if not self.index_hot_path:
            return
        # Loop targets (``for i in ...``): a bare-name subscript
        # ``los[i]`` / ``his[i]`` with one of them walks MBRs one row
        # at a time.  ``los[:, dim]`` (a per-dimension column, tuple
        # slice) stays vectorized over the rectangles and is fine.
        targets = (
            {n.id for n in ast.walk(node.target) if isinstance(n, ast.Name)}
            if isinstance(node, (ast.For, ast.AsyncFor))
            else set()
        )
        if targets:
            for child in ast.walk(node):
                if not isinstance(child, ast.Subscript):
                    continue
                base = child.value
                name = base.attr if isinstance(base, ast.Attribute) else (
                    base.id if isinstance(base, ast.Name) else None
                )
                if (
                    name in ("los", "his")
                    and isinstance(child.slice, ast.Name)
                    and child.slice.id in targets
                ):
                    self.out.emit(
                        "ADR306",
                        Severity.ERROR,
                        self._loc(child),
                        f"per-rectangle subscript '{name}[{child.slice.id}]' "
                        "inside a Python loop in the index hot path; compare "
                        "MBRs with vectorized column operations "
                        "(rects_intersect_mask, packed bitsets) -- bounded "
                        "structural loops may opt out with noqa",
                    )
        # Per-entry Rect.intersects() calls anywhere in the loop body
        # (nested loops report from their own visit, like ADR305).
        stack: List[ast.AST] = list(ast.iter_child_nodes(node))
        while stack:
            child = stack.pop(0)
            if isinstance(child, (ast.For, ast.While, ast.AsyncFor)):
                continue
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr == "intersects"
            ):
                self.out.emit(
                    "ADR306",
                    Severity.ERROR,
                    self._loc(child),
                    "per-entry intersects() call inside a Python loop in the "
                    "index hot path; test all candidates at once with "
                    "rects_intersect_mask",
                )
            stack.extend(ast.iter_child_nodes(child))

    def visit_For(self, node: ast.For) -> None:
        self._check_aggregate_loop(node)
        self._check_index_loop(node)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_aggregate_loop(node)
        self._check_index_loop(node)
        self.generic_visit(node)

    def visit_While(self, node: ast.While) -> None:
        self._check_aggregate_loop(node)
        self._check_index_loop(node)
        self.generic_visit(node)

    # -- ADR502: strategy literals outside the planner ---------------------

    def visit_Constant(self, node: ast.Constant) -> None:
        if (
            self.strategy_scope
            and isinstance(node.value, str)
            and node.value in _STRATEGY_LITERALS
            and id(node) not in self.docstring_ids
        ):
            self.out.emit(
                "ADR502",
                Severity.ERROR,
                self._loc(node),
                f"hard-coded strategy literal {node.value!r} outside "
                "repro/planner/; import the name from repro.planner.select "
                "(FRA/SRA/DA/HYBRID/AUTO, FIXED_STRATEGIES, ALL_STRATEGIES) "
                "so strategy selection keeps a single choke point",
            )
        self.generic_visit(node)

    # -- ADR401: swallowed exceptions in fault-critical code ---------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.out.emit(
                "ADR401",
                Severity.ERROR,
                self._loc(node),
                "bare 'except:' catches SystemExit/KeyboardInterrupt and "
                "hides the failure class; name the exceptions (at minimum "
                "'except Exception')",
            )
        elif self.fault_critical and all(
            isinstance(stmt, (ast.Pass, ast.Continue))
            or (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis
            )
            for stmt in node.body
        ):
            self.out.emit(
                "ADR401",
                Severity.ERROR,
                self._loc(node),
                "exception swallowed without a trace in fault-critical code "
                "(runtime/store); record it (e.g. in chunk_errors) or "
                "re-raise -- silent data loss is indistinguishable from a "
                "clean run",
            )
        self.generic_visit(node)


def _is_public_library_module(path: Path) -> bool:
    """ADR304 applies to importable modules inside a package tree."""
    if path.name in ("__main__.py", "conftest.py", "setup.py"):
        return False
    if path.name != "__init__.py" and path.name.startswith("_"):
        return False
    return (path.parent / "__init__.py").exists()


def lint_source(
    source: str, path: str, *, rng_exempt: bool = False, check_all: bool = False,
    runtime_hot_path: bool = False, fault_critical: bool = False,
    phase_scope: bool = False, concurrency_scope: bool = False,
    guarded_cache: bool = False, index_hot_path: bool = False,
    wire_scope: bool = False, strategy_scope: bool = False,
) -> List[Diagnostic]:
    """Lint one module's source text (the testable core).

    *concurrency_scope* adds the ADR7xx dataflow/concurrency rules
    (:mod:`repro.analysis.effects`); *guarded_cache* additionally
    enforces the ADR705 cache-lock discipline.  Both share this
    function's per-line ``# noqa`` suppression.
    """
    out = DiagnosticCollector()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        out.error("ADR300", f"{path}:{exc.lineno or 0}:0", f"syntax error: {exc.msg}")
        return out.diagnostics
    _Visitor(
        path, out, rng_exempt, runtime_hot_path, fault_critical, phase_scope,
        index_hot_path, wire_scope, strategy_scope,
        docstring_ids=_docstring_node_ids(tree) if strategy_scope else None,
    ).visit(tree)
    if check_all and not any(
        isinstance(n, ast.Assign)
        and any(isinstance(t, ast.Name) and t.id == "__all__" for t in n.targets)
        for n in tree.body
    ):
        out.emit(
            "ADR304",
            Severity.WARNING,
            f"{path}:1:0",
            "public module defines no __all__; declare the public API "
            "explicitly",
        )
    if concurrency_scope or guarded_cache:
        out.diagnostics.extend(
            check_effects(source, path, guarded_cache=guarded_cache, tree=tree)
        )
    suppressed = _noqa_lines(source)
    kept: List[Diagnostic] = []
    for d in out.diagnostics:
        try:
            line = int(d.location.rsplit(":", 2)[-2])
        except (ValueError, IndexError):
            line = 0
        if d.code in suppressed.get(line, ()):  # explicit, per-line opt-out
            continue
        kept.append(d)
    return kept


def lint_file(path: Path) -> List[Diagnostic]:
    text = path.read_text(encoding="utf-8")
    posix = path.as_posix()
    return lint_source(
        text,
        str(path),
        rng_exempt=any(posix.endswith(e) for e in _RNG_EXEMPT),
        check_all=_is_public_library_module(path),
        runtime_hot_path=any(m in posix for m in _RUNTIME_HOT_PATH),
        fault_critical=any(m in posix for m in _FAULT_CRITICAL_PATHS),
        phase_scope=(
            any(m in posix for m in _RUNTIME_HOT_PATH)
            and not any(posix.endswith(e) for e in _PHASE_LOOP_HOME)
        ),
        concurrency_scope=any(m in posix for m in _CONCURRENCY_PATHS),
        guarded_cache=any(posix.endswith(e) for e in _GUARDED_CACHE_MODULES),
        index_hot_path=any(m in posix for m in _INDEX_HOT_PATH),
        wire_scope=any(m in posix for m in _WIRE_SCOPE_PATHS),
        strategy_scope=(
            any(m in posix for m in _STRATEGY_SCOPE_PATHS)
            and not any(m in posix for m in _STRATEGY_NAME_HOME)
        ),
    )


def lint_paths(paths: Sequence[str]) -> List[Diagnostic]:
    """Lint every ``*.py`` file under *paths* (files or directories).

    A path that does not exist is itself an ``ADR300`` error: a typo'd
    path in CI must not pass as vacuously clean.
    """
    files: List[Path] = []
    missing: List[Diagnostic] = []
    for p in paths:
        root = Path(p)
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        elif root.is_file() and root.suffix == ".py":
            files.append(root)
        else:
            missing.append(
                Diagnostic(
                    "ADR300",
                    Severity.ERROR,
                    f"{p}:0:0",
                    "path does not exist or is not a directory/.py file",
                )
            )
    findings: List[Diagnostic] = list(missing)
    for f in files:
        if "egg-info" in f.as_posix():
            continue
        findings.extend(lint_file(f))
    findings.sort(key=lambda d: d.sort_key())  # stable across filesystems
    return findings


def render_report(
    findings: Sequence[Diagnostic], fmt: str, tool: str, scope: Sequence[str]
) -> str:
    """Findings as text in *fmt* (``text`` / ``json`` / ``github``).

    Shared by the lint and corpus CLIs so both emit the same JSON
    shape (the CI artifact) and the same annotation commands.
    """
    findings = sorted(findings, key=lambda d: d.sort_key())
    if fmt == "json":
        n_err = sum(1 for d in findings if d.severity >= Severity.ERROR)
        return json.dumps(
            {
                "tool": tool,
                "scope": list(scope),
                "summary": {
                    "findings": len(findings),
                    "errors": n_err,
                    "warnings": sum(
                        1 for d in findings if d.severity == Severity.WARNING
                    ),
                },
                "findings": [d.to_dict() for d in findings],
            },
            indent=2,
        )
    if fmt == "github":
        return "\n".join(d.format_github() for d in findings)
    return "\n".join(d.format() for d in findings)


def _parse_output_args(argv: List[str], usage: str):
    """Extract ``--format <fmt>`` / ``--out <path>`` from *argv* (in
    place).  Returns ``(fmt, out_path, error_message)``."""
    fmt, out_path = "text", None
    err = None
    for flag in ("--format", "--out"):
        while flag in argv:
            k = argv.index(flag)
            if k + 1 >= len(argv):
                return fmt, out_path, f"{flag} requires a value\n{usage}"
            value = argv.pop(k + 1)
            argv.pop(k)
            if flag == "--format":
                if value not in ("text", "json", "github"):
                    return fmt, out_path, (
                        f"unknown format {value!r} (text, json, github)\n{usage}"
                    )
                fmt = value
            else:
                out_path = value
    return fmt, out_path, err


def _write_report(text: str, out_path: Optional[str]) -> None:
    if out_path is None:
        if text:
            print(text)
        return
    p = Path(out_path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(text + "\n", encoding="utf-8")


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    usage = (
        "usage: python -m repro.analysis.lint [PATH ...] "
        "[--format text|json|github] [--out FILE]"
    )
    fmt, out_path, err = _parse_output_args(argv, usage)
    if err is not None:
        print(f"repro.analysis.lint: {err}", file=sys.stderr)
        return 2
    paths = argv or ["src"]
    findings = lint_paths(paths)
    _write_report(render_report(findings, fmt, "repro.analysis.lint", paths), out_path)
    n_err = sum(1 for d in findings if d.severity >= Severity.ERROR)
    n_warn = len(findings) - n_err
    if findings:
        if fmt == "text":
            print(f"repro.analysis.lint: {n_err} error(s), {n_warn} warning(s)")
        return 1
    if fmt == "text" and out_path is None:
        print(f"repro.analysis.lint: clean ({', '.join(paths)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
