"""Static analysis and dynamic checking for the ADR reproduction.

Five cooperating passes, all reporting structured
:class:`~repro.analysis.diagnostics.Diagnostic` objects with stable
codes:

- :mod:`repro.analysis.verifier` (``ADR1xx``) -- statically proves a
  :class:`~repro.planner.plan.QueryPlan` upholds the strategy
  contracts of paper Figures 4-6 (replication, ``So ∪ {owner}``
  holders, no DA ghosts, edge-to-holder assignment, ghost-transfer
  completeness, per-tile memory budgets);
- :mod:`repro.analysis.races` (``ADR2xx``) -- an opt-in
  ownership/happens-before log the functional engine feeds, flagging
  any accumulator access the plan did not authorize (what would be a
  data race on the real parallel machine);
- :mod:`repro.analysis.lint` (``ADR3xx``-``ADR5xx``) -- an AST lint
  pass over the source tree enforcing repo rules (seeded randomness,
  no float equality on accumulators, immutable chunk payloads,
  explicit ``__all__``, exception hygiene, phase-loop ownership),
  runnable as ``python -m repro.analysis.lint``;
- :mod:`repro.analysis.comm` (``ADR6xx``) -- a static
  communication-protocol checker that model-checks each plan's
  :class:`~repro.runtime.phases.MessageFlow`: deadlock-freedom,
  exact send/receive matching, combine completeness and
  recovery-safe message keying;
- :mod:`repro.analysis.effects` (``ADR7xx``) -- a dataflow /
  concurrency lint over the threaded runtime (unguarded shared-state
  mutation in thread workers, ABBA lock order, unbounded blocking
  waits, leaked ``SharedMemory``, cache mutation outside the guarded
  section), run as part of the lint pass for concurrency-critical
  paths.

:mod:`repro.analysis.corpus` glues the verifier and the comm checker
into CI: it plans a canned corpus of problems with every strategy and
fails on any diagnostic (``python -m repro.analysis.corpus [--comm]``).
See ``docs/static_analysis.md`` for the code catalog.
"""

from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticCollector,
    Severity,
    max_severity,
)
from repro.analysis.races import (
    RACE_CODES,
    AccessEvent,
    RaceDetector,
    races_enabled_by_env,
)
from repro.analysis.verifier import VERIFIER_CODES, verify_plan

_LINT_EXPORTS = ("lint_paths", "lint_file", "lint_source", "LINT_CODES")
_COMM_EXPORTS = ("check_plan_comm", "check_message_flow", "COMM_CODES")
_EFFECTS_EXPORTS = ("check_effects", "EFFECTS_CODES")


def __getattr__(name):
    # Lazy so ``python -m repro.analysis.<pass>`` does not double-import
    # the module (runpy warns when the package pre-imports it).
    if name in _LINT_EXPORTS:
        from repro.analysis import lint

        return getattr(lint, name)
    if name in _COMM_EXPORTS:
        from repro.analysis import comm

        return getattr(comm, name)
    if name in _EFFECTS_EXPORTS:
        from repro.analysis import effects

        return getattr(effects, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Diagnostic",
    "DiagnosticCollector",
    "Severity",
    "max_severity",
    "verify_plan",
    "VERIFIER_CODES",
    "RaceDetector",
    "AccessEvent",
    "races_enabled_by_env",
    "RACE_CODES",
    "lint_paths",
    "lint_file",
    "lint_source",
    "LINT_CODES",
    "check_plan_comm",
    "check_message_flow",
    "COMM_CODES",
    "check_effects",
    "EFFECTS_CODES",
]
