"""Static analysis and dynamic checking for the ADR reproduction.

Three cooperating passes, all reporting structured
:class:`~repro.analysis.diagnostics.Diagnostic` objects with stable
codes:

- :mod:`repro.analysis.verifier` (``ADR1xx``) -- statically proves a
  :class:`~repro.planner.plan.QueryPlan` upholds the strategy
  contracts of paper Figures 4-6 (replication, ``So ∪ {owner}``
  holders, no DA ghosts, edge-to-holder assignment, ghost-transfer
  completeness, per-tile memory budgets);
- :mod:`repro.analysis.races` (``ADR2xx``) -- an opt-in
  ownership/happens-before log the functional engine feeds, flagging
  any accumulator access the plan did not authorize (what would be a
  data race on the real parallel machine);
- :mod:`repro.analysis.lint` (``ADR3xx``) -- an AST lint pass over
  the source tree enforcing repo rules (seeded randomness, no float
  equality on accumulators, immutable chunk payloads, explicit
  ``__all__``), runnable as ``python -m repro.analysis.lint``.

:mod:`repro.analysis.corpus` glues the verifier into CI: it plans a
canned corpus of problems with every strategy and fails on any
diagnostic.  See ``docs/static_analysis.md`` for the code catalog.
"""

from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticCollector,
    Severity,
    max_severity,
)
from repro.analysis.races import (
    RACE_CODES,
    AccessEvent,
    RaceDetector,
    races_enabled_by_env,
)
from repro.analysis.verifier import VERIFIER_CODES, verify_plan

_LINT_EXPORTS = ("lint_paths", "lint_file", "lint_source", "LINT_CODES")


def __getattr__(name):
    # Lazy so ``python -m repro.analysis.lint`` does not double-import
    # the lint module (runpy warns when the package pre-imports it).
    if name in _LINT_EXPORTS:
        from repro.analysis import lint

        return getattr(lint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Diagnostic",
    "DiagnosticCollector",
    "Severity",
    "max_severity",
    "verify_plan",
    "VERIFIER_CODES",
    "RaceDetector",
    "AccessEvent",
    "races_enabled_by_env",
    "RACE_CODES",
    "lint_paths",
    "lint_file",
    "lint_source",
    "LINT_CODES",
]
