"""Static communication-protocol checker (``ADR6xx``).

The multiprocess backend is only correct because the message schedule
every rank derives from the shared plan is *the same program*: each
send has exactly one receiver expecting exactly that key, receives are
consumed in an order some global schedule can serve, ghost merges
cover every non-owner holder exactly once, and a
:class:`~repro.runtime.transport.RecoveryPolicy` re-execution can
replay the whole program into fresh queues without double-applying
anything.  Those properties were previously enforced only dynamically
(an execution either hangs, crashes an assert, or produces the wrong
sum).  This pass proves them statically, per plan, from the
:class:`~repro.runtime.phases.MessageFlow` view of
``plan.schedule()``:

========  ==========================================================
ADR600    malformed message flow: unknown op, rank/tile/peer out of
          range, missing rank program -- the flow cannot be analyzed
          (further checks are skipped)
ADR601    send/receive mismatch: a sent message no rank expects, an
          expected message no rank sends, repeated delivery under one
          key, sender/receiver disagreement, a self-send, or a
          forwarded-segment fan-out that disagrees with the plan's
          edge assignment (the reader and the recipients must derive
          the same recipient set from the plan, or one side blocks)
ADR602    deadlock: no global execution order serves every blocking
          receive -- there is a cycle of ranks each waiting on a
          message a later point of another waiting rank would send
          (checked by topologically sorting program-order and
          send-to-receive edges; the witness cycle is reported)
ADR603    combine incompleteness: the ghost merges an owner receives
          for an output chunk are not exactly its non-owner holders
          once each, a ghost ships to a non-owner, or a ghost message
          departs from the plan's transfer table -- the FRA/SRA
          global combine would drop or double-count partial sums
ADR604    recovery-unsafe traffic: two messages share one
          ``(kind, tile, index)`` inbox key to the same destination
          (the transport stash would overwrite one; a re-execution
          could double-apply), or an output chunk is emitted more
          than once, by a non-owner, in the wrong tile, or never --
          the parent dedups results by output chunk id, which is only
          sound if each attempt emits each chunk exactly once
========  ==========================================================

Run it over the CI corpus with ``python -m repro.analysis.corpus
--comm``.  See ``docs/static_analysis.md`` for the full catalog.
"""

from __future__ import annotations

from collections import Counter, defaultdict, deque
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.diagnostics import Diagnostic, DiagnosticCollector
from repro.runtime.phases import MESSAGE_OPS, MessageFlow

__all__ = ["COMM_CODES", "check_message_flow", "check_plan_comm"]

COMM_CODES = ("ADR600", "ADR601", "ADR602", "ADR603", "ADR604")

#: Findings per code before the collector truncates to a summary NOTE.
_LIMIT_PER_CODE = 20

_SENDS = ("send_seg", "send_ghost")
_RECVS = ("recv_seg", "recv_ghost")


def _check_structure(flow: MessageFlow, out: DiagnosticCollector) -> bool:
    """ADR600: is the flow well-formed enough to analyze at all?"""
    ok = True
    if set(flow.events) != set(range(flow.n_procs)):
        out.error(
            "ADR600",
            "message flow",
            f"flow has programs for ranks {sorted(flow.events)} but the "
            f"plan has {flow.n_procs} processors",
        )
        ok = False
    for p, evs in sorted(flow.events.items()):
        for k, (op, tile, index, peer) in enumerate(evs):
            loc = f"rank {p} / event {k}"
            if op not in MESSAGE_OPS:
                out.error("ADR600", loc, f"unknown transport op {op!r}")
                ok = False
            elif not 0 <= int(tile) < max(flow.n_tiles, 1):
                out.error(
                    "ADR600", loc,
                    f"{op} in tile {tile} but the plan has {flow.n_tiles} tiles",
                )
                ok = False
            elif op == "emit" and peer != -1:
                out.error(
                    "ADR600", loc,
                    f"emit carries peer {peer}; results go to the parent "
                    "queue, not a rank",
                )
                ok = False
            elif op != "emit" and not 0 <= int(peer) < flow.n_procs:
                out.error(
                    "ADR600", loc,
                    f"{op} names peer rank {peer} outside 0..{flow.n_procs - 1}",
                )
                ok = False
            elif int(index) < 0:
                out.error("ADR600", loc, f"{op} has negative schedule index {index}")
                ok = False
    return ok


def _match_sends_recvs(
    flow: MessageFlow, out: DiagnosticCollector
) -> Tuple[bool, bool]:
    """ADR601 multiset matching + the ADR604 duplicate-key check.

    Returns ``(matched, unique)``: whether every send pairs with
    exactly one receive (and vice versa), and whether message keys are
    unique per destination -- the preconditions for the deadlock scan.
    """
    # (kind, tile, index, dst) -> list of sender ranks / expected ranks
    sends: Dict[tuple, List[int]] = defaultdict(list)
    recvs: Dict[tuple, List[int]] = defaultdict(list)
    for src, kind, tile, index, dst in flow.sends():
        if src == dst:
            out.error(
                "ADR601",
                f"tile {tile} / {kind} {index}",
                f"rank {src} sends a {kind} message to itself; local "
                "traffic must not enter the transport",
            )
        sends[(kind, tile, index, dst)].append(src)
    for dst, kind, tile, index, src in flow.recvs():
        recvs[(kind, tile, index, dst)].append(src)

    matched = True
    unique = True
    for key in sorted(set(sends) | set(recvs)):
        kind, tile, index, dst = key
        loc = f"tile {tile} / {kind} {index}"
        s, r = sends.get(key, []), recvs.get(key, [])
        if len(s) > 1:
            out.error(
                "ADR604", loc,
                f"{len(s)} sends share inbox key {(kind, tile, index)!r} to "
                f"rank {dst}; the transport stash holds one payload per key, "
                "so a duplicate is silently overwritten and a recovery "
                "re-execution could double-apply it",
            )
            unique = False
        if len(r) > 1:
            out.error(
                "ADR604", loc,
                f"rank {dst} expects inbox key {(kind, tile, index)!r} "
                f"{len(r)} times; the second receive blocks forever on a "
                "consumed message",
            )
            unique = False
        if not r:
            out.error(
                "ADR601", loc,
                f"orphan send: rank {s[0]} sends to rank {dst}, which never "
                "expects this message",
            )
            matched = False
        elif not s:
            out.error(
                "ADR601", loc,
                f"orphan receive: rank {dst} expects a message from rank "
                f"{r[0]} that no rank sends -- the receiver blocks until "
                "the inbox timeout declares a dead peer",
            )
            matched = False
        elif s and r and set(s) != set(r):
            out.error(
                "ADR601", loc,
                f"sender disagreement: sent by rank(s) {sorted(set(s))} but "
                f"rank {dst} expects it from rank(s) {sorted(set(r))}",
            )
            matched = False
    return matched, unique


def _check_deadlock(flow: MessageFlow, out: DiagnosticCollector) -> None:
    """ADR602: does a global order serving every receive exist?

    Nodes are the per-rank events; edges are program order within each
    rank plus send -> receive for each matched message key.  The flow
    is deadlock-free iff this graph is acyclic (unbounded sends never
    block, so receives are the only waits); a cycle is a set of ranks
    each blocked on a message a later point of another blocked rank
    would send.  Only called once ADR600/ADR601/ADR604 passed, so the
    send/receive pairing is a bijection.
    """
    node_of_send: Dict[tuple, Tuple[int, int]] = {}
    for p, evs in flow.events.items():
        for k, (op, tile, index, peer) in enumerate(evs):
            if op in _SENDS:
                node_of_send[(op[5:], tile, index, peer)] = (p, k)

    # preds[node] = the nodes that must execute first.
    preds: Dict[Tuple[int, int], List[Tuple[int, int]]] = defaultdict(list)
    succs: Dict[Tuple[int, int], List[Tuple[int, int]]] = defaultdict(list)
    nodes: List[Tuple[int, int]] = []
    for p, evs in flow.events.items():
        for k, (op, tile, index, peer) in enumerate(evs):
            node = (p, k)
            nodes.append(node)
            if k > 0:
                preds[node].append((p, k - 1))
                succs[(p, k - 1)].append(node)
            if op in _RECVS:
                send = node_of_send[(op[5:], tile, index, p)]
                preds[node].append(send)
                succs[send].append(node)

    indeg = {n: len(preds[n]) for n in nodes}
    ready = deque(sorted(n for n in nodes if indeg[n] == 0))
    done = 0
    while ready:
        n = ready.popleft()
        done += 1
        for m in succs[n]:
            indeg[m] -= 1
            if indeg[m] == 0:
                ready.append(m)
    if done == len(nodes):
        return

    # Extract one witness cycle: from any stuck node, repeatedly step
    # to an unexecuted predecessor until a node repeats.
    stuck = {n for n in nodes if indeg[n] > 0}
    node = min(stuck)
    seen: Dict[Tuple[int, int], int] = {}
    path: List[Tuple[int, int]] = []
    while node not in seen:
        seen[node] = len(path)
        path.append(node)
        node = next(m for m in preds[node] if m in stuck)
    cycle = path[seen[node]:]
    steps = []
    for p, k in cycle:
        op, tile, index, peer = flow.events[p][k]
        steps.append(f"rank {p} {op}({op[5:] if op != 'emit' else 'out'} "
                     f"{index}, tile {tile}, peer {peer})")
    out.error(
        "ADR602",
        f"rank {cycle[0][0]} / event {cycle[0][1]}",
        "no global schedule serves every receive; wait cycle: "
        + " <- ".join(steps),
    )


def check_message_flow(flow: MessageFlow) -> List[Diagnostic]:
    """Check a :class:`~repro.runtime.phases.MessageFlow` for internal
    consistency: well-formedness (ADR600), send/receive matching
    (ADR601), key uniqueness and single emits (ADR604), and
    deadlock-freedom (ADR602).

    Plan-independent -- it sees only the flow -- so it also accepts
    hand-built flows (the negative tests corrupt flows directly).
    Plan-aware cross-checks (fan-out vs edge assignment, combine
    completeness vs holders, emits vs owners) live in
    :func:`check_plan_comm`.
    """
    out = DiagnosticCollector(limit_per_code=_LIMIT_PER_CODE)
    if not _check_structure(flow, out):
        return out.diagnostics
    matched, unique = _match_sends_recvs(flow, out)

    emits: Dict[int, List[Tuple[int, int]]] = defaultdict(list)  # o -> (rank, tile)
    for p, evs in flow.events.items():
        for op, tile, index, peer in evs:
            if op == "emit":
                emits[index].append((p, tile))
    for o, where in sorted(emits.items()):
        if len(where) > 1:
            out.error(
                "ADR604",
                f"output chunk {o}",
                f"emitted {len(where)} times (by ranks "
                f"{sorted(p for p, _ in where)}); the parent keys results "
                "by output chunk id, so duplicate emits hide lost or "
                "double-computed work",
            )

    if matched and unique:
        _check_deadlock(flow, out)
    return out.diagnostics


def check_plan_comm(plan, flow: Optional[MessageFlow] = None) -> List[Diagnostic]:
    """Model-check *plan*'s communication schedule (``ADR6xx``).

    Derives the per-rank transport program (or takes *flow*, normally
    ``plan.schedule().message_flow()``), checks its internal
    consistency via :func:`check_message_flow`, then cross-checks it
    against ground truth recomputed from the plan tables themselves:
    forwarded-segment fan-out against the edge assignment (ADR601),
    ghost traffic against the transfer table and each owner's
    non-owner holder set (ADR603), and output emission against
    ownership and the output's tile (ADR604).
    """
    problem = plan.problem
    if flow is None:
        flow = plan.schedule().message_flow()
    out = DiagnosticCollector(limit_per_code=_LIMIT_PER_CODE)
    internal = check_message_flow(flow)
    if any(d.code == "ADR600" for d in internal):
        return internal  # not analyzable further
    diagnostics = list(internal)

    # -- forwarded segments vs the plan's edge assignment (ADR601) -----
    seg_sends: Dict[int, List[Tuple[int, int, int]]] = defaultdict(list)
    for src, kind, tile, index, dst in flow.sends():
        if kind == "seg":
            seg_sends[index].append((tile, src, dst))
    reads = plan.reads
    fwd_indptr, fwd_ids = problem.graph.forward_csr
    for r in range(len(reads)):
        i, t = int(reads.chunk[r]), int(reads.tile[r])
        reader = int(reads.proc[r])
        lo, hi = int(fwd_indptr[i]), int(fwd_indptr[i + 1])
        active = plan.tile_of_output[fwd_ids[lo:hi]] == t
        procs = np.unique(plan.edge_proc[lo:hi][active])
        expected = Counter(int(q) for q in procs if int(q) != reader)
        actual = Counter()
        for tile, src, dst in seg_sends.pop(r, []):
            if tile != t or src != reader:
                out.error(
                    "ADR601",
                    f"tile {tile} / seg {r}",
                    f"segment message for read {r} sent by rank {src} in "
                    f"tile {tile}, but the plan schedules that read on "
                    f"rank {reader} in tile {t}",
                )
                continue
            actual[dst] += 1
        if actual != expected:
            out.error(
                "ADR601",
                f"tile {t} / seg {r}",
                f"forwarded-segment fan-out of read {r} (rank {reader}) is "
                f"{sorted(actual.elements())} but the plan's edge "
                f"assignment requires {sorted(expected.elements())} -- "
                "sender and receivers no longer derive the same recipient "
                "set from the plan",
            )
    for r, where in sorted(seg_sends.items()):
        out.error(
            "ADR601",
            f"tile {where[0][0]} / seg {r}",
            f"segment message keyed to read {r}, which the plan does not "
            "schedule",
        )

    # -- ghost traffic vs transfer table and holders (ADR603) ----------
    gt = plan.ghost_transfers
    ghost_sends: Dict[int, List[Tuple[int, int, int]]] = defaultdict(list)
    for src, kind, tile, index, dst in flow.sends():
        if kind == "ghost":
            ghost_sends[index].append((tile, src, dst))
    merges: Dict[int, Counter] = defaultdict(Counter)  # output -> src counts
    for g in range(len(gt)):
        o = int(gt.chunk[g])
        t, src, dst = int(gt.tile[g]), int(gt.src[g]), int(gt.dst[g])
        shipped = ghost_sends.pop(g, [])
        if len(shipped) != 1 or shipped[0] != (t, src, dst):
            out.error(
                "ADR603",
                f"tile {t} / ghost {g}",
                f"transfer {g} (output chunk {o}, rank {src} -> {dst}) "
                f"must ship exactly once in tile {t}; the flow ships it "
                f"{[f'tile {a} rank {b}->{c}' for a, b, c in shipped]}",
            )
        for tile, s, d in shipped:
            merges[o][s] += 1
            if d != int(problem.output_owner[o]):
                out.error(
                    "ADR603",
                    f"tile {tile} / ghost {g}",
                    f"ghost of output chunk {o} shipped to rank {d}, which "
                    f"is not its owner (rank {int(problem.output_owner[o])})",
                )
    for g, where in sorted(ghost_sends.items()):
        out.error(
            "ADR603",
            f"tile {where[0][0]} / ghost {g}",
            f"ghost message keyed to transfer {g}, which the plan's "
            "transfer table does not contain",
        )
    for o in range(problem.n_out):
        owner = int(problem.output_owner[o])
        expected = Counter(
            int(p) for p in plan.holders_of(o) if int(p) != owner
        )
        if merges.get(o, Counter()) != expected:
            got = sorted(merges.get(o, Counter()).elements())
            out.error(
                "ADR603",
                f"output chunk {o}",
                f"owner rank {owner} merges ghosts from rank(s) {got} but "
                f"the non-owner holders are {sorted(expected.elements())} "
                "-- the global combine would drop or double-count partial "
                "sums",
            )

    # -- output emission vs ownership (ADR604) -------------------------
    emits: Dict[int, List[Tuple[int, int]]] = defaultdict(list)
    for p, evs in flow.events.items():
        for op, tile, index, peer in evs:
            if op == "emit":
                emits[index].append((p, tile))
    for o in range(problem.n_out):
        owner = int(problem.output_owner[o])
        t = int(plan.tile_of_output[o])
        where = emits.pop(o, [])
        if where != [(owner, t)]:
            out.error(
                "ADR604",
                f"output chunk {o}",
                f"must be emitted exactly once by its owner rank {owner} "
                f"in tile {t}; the flow emits it "
                f"{[f'rank {p} tile {a}' for p, a in where] or 'never'} -- "
                "result collection dedups by output chunk id and relies on "
                "one emit per chunk per attempt",
            )
    for o, where in sorted(emits.items()):
        out.error(
            "ADR604",
            f"output chunk {o}",
            f"emit for output chunk {o}, which the plan does not define",
        )

    diagnostics.extend(out.diagnostics)
    return diagnostics
