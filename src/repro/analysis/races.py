"""Simulated-race detector for the functional engine.

The engine runs the plan's virtual processors sequentially, so a data
race cannot corrupt memory -- but a plan/engine mismatch *would* be a
race on the real parallel machine: a processor writing an accumulator
chunk the plan never assigned it, or the combine phase shipping a
ghost the plan never declared, is exactly the unsynchronized access
the strategies exist to prevent.  :class:`RaceDetector` makes those
mismatches observable: the engine (under the opt-in ``detect_races``
flag, or the ``REPRO_DETECT_RACES=1`` environment variable) reports
every accumulator access to the detector, which checks it against the
plan's ownership tables and a happens-before order within each tile
(initialize < aggregate < combine < output, with a shipped ghost
frozen after its combine).

Codes (``ADR2xx``):

========  ==========================================================
ADR201    accumulator write (aggregation) by a processor the plan did
          not assign any edge for that output chunk
ADR202    combine shipping ghost data the plan never declared (or
          shipping the same declared ghost twice)
ADR203    write to a ghost accumulator after it was already shipped
          to the owner (happens-before violation)
ADR204    accumulator allocated on a processor that is not a holder
ADR205    output produced before every declared ghost of the chunk
          was combined into the owner
ADR206    access (write/combine/output) to an accumulator chunk never
          initialized in this tile
========  ==========================================================
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Set, Tuple

import numpy as np

from repro.analysis.diagnostics import Diagnostic, DiagnosticCollector

if TYPE_CHECKING:  # avoid a hard import cycle with repro.planner
    from repro.planner.plan import QueryPlan

__all__ = ["RaceDetector", "AccessEvent", "races_enabled_by_env", "RACE_CODES"]

RACE_CODES = ("ADR201", "ADR202", "ADR203", "ADR204", "ADR205", "ADR206")

_ENV_FLAG = "REPRO_DETECT_RACES"


def races_enabled_by_env() -> bool:
    """True when ``REPRO_DETECT_RACES`` opts the process in."""
    return os.environ.get(_ENV_FLAG, "").strip().lower() in ("1", "true", "yes", "on")


@dataclass(frozen=True)
class AccessEvent:
    """One logged accumulator access (for post-mortem inspection)."""

    seq: int
    kind: str  # "allocate" | "aggregate" | "combine" | "output"
    tile: int
    output_chunk: int
    proc: int  # writing processor (combine: destination)
    src: int = -1  # combine only: shipping processor


class RaceDetector:
    """Ownership / happens-before log for one plan execution.

    Build one from the plan being executed and hand it to
    :func:`repro.runtime.engine.execute_plan`; after the run,
    :meth:`report` lists every access the plan did not authorize.  A
    correct engine executing the very plan the detector was built from
    reports nothing -- the detector earns its keep when the engine
    drifts from the plan (or, in tests, when a corrupted plan is
    executed against a detector built from the sound one).
    """

    def __init__(self, plan: "QueryPlan") -> None:
        p = plan.problem
        self.n_out = p.n_out
        self.owner = p.output_owner.astype(np.int64)

        # (output chunk, proc) pairs allowed to hold an accumulator.
        counts = np.diff(plan.holders_indptr)
        flat_out = np.repeat(np.arange(p.n_out, dtype=np.int64), counts)
        self._holders: Set[Tuple[int, int]] = set(
            zip(flat_out.tolist(), plan.holders_ids.tolist())
        )
        # (output chunk, proc) pairs assigned at least one aggregation edge.
        _, edge_out = plan.edge_arrays
        self._writers: Set[Tuple[int, int]] = set(
            zip(edge_out.tolist(), plan.edge_proc.tolist())
        )
        # Declared ghost shipments: (tile, output chunk, src, dst).
        gt = plan.ghost_transfers
        self._declared: Set[Tuple[int, int, int, int]] = set(
            zip(gt.tile.tolist(), gt.chunk.tolist(), gt.src.tolist(), gt.dst.tolist())
        )
        # Ghosts that must arrive before the owner may produce output:
        # output chunk -> number of declared inbound combines.
        self._inbound: Dict[int, int] = {}
        for _, o, _, _ in self._declared:
            self._inbound[o] = self._inbound.get(o, 0) + 1

        self.events: List[AccessEvent] = []
        self._out = DiagnosticCollector(limit_per_code=50)
        # Per-tile state, reset by end_tile().
        self._live: Set[Tuple[int, int]] = set()  # allocated (o, proc)
        self._shipped: Set[Tuple[int, int]] = set()  # combined-away (o, src)
        self._combined: Dict[int, int] = {}  # o -> inbound combines seen
        self._used: Set[Tuple[int, int, int, int]] = set()  # declared keys used

    # -- engine hooks ---------------------------------------------------

    def _log(self, kind: str, tile: int, o: int, proc: int, src: int = -1) -> None:
        self.events.append(
            AccessEvent(len(self.events), kind, tile, o, proc, src)
        )

    def on_allocate(self, proc: int, output_chunk: int, tile: int) -> None:
        self._log("allocate", tile, output_chunk, proc)
        if (output_chunk, proc) not in self._holders:
            self._out.error(
                "ADR204",
                f"tile {tile} / processor {proc}",
                f"processor {proc} allocated an accumulator for output "
                f"chunk {output_chunk} but the plan lists it as no holder",
            )
        self._live.add((output_chunk, proc))

    def on_aggregate(self, proc: int, output_chunk: int, tile: int) -> None:
        self._log("aggregate", tile, output_chunk, proc)
        if (output_chunk, proc) not in self._writers:
            self._out.error(
                "ADR201",
                f"tile {tile} / processor {proc}",
                f"unauthorized accumulator write: processor {proc} "
                f"aggregated into output chunk {output_chunk}, but the "
                "plan assigns it no edge for that chunk",
            )
        if (output_chunk, proc) not in self._live:
            self._out.error(
                "ADR206",
                f"tile {tile} / processor {proc}",
                f"aggregation into output chunk {output_chunk} on "
                f"processor {proc} before any initialization this tile",
            )
        if (output_chunk, proc) in self._shipped:
            self._out.error(
                "ADR203",
                f"tile {tile} / processor {proc}",
                f"processor {proc} wrote ghost accumulator of output "
                f"chunk {output_chunk} after shipping it to the owner "
                "(combine does not happen-before local writes)",
            )

    def on_combine(self, src: int, dst: int, output_chunk: int, tile: int) -> None:
        self._log("combine", tile, output_chunk, dst, src)
        key = (tile, output_chunk, src, dst)
        if key not in self._declared:
            self._out.error(
                "ADR202",
                f"tile {tile} / processor {dst}",
                f"combine ships ghost of output chunk {output_chunk} from "
                f"processor {src} to {dst}, which the plan never declared",
            )
        elif key in self._used:
            self._out.error(
                "ADR202",
                f"tile {tile} / processor {dst}",
                f"declared ghost transfer {key} executed twice",
            )
        else:
            self._used.add(key)
        if (output_chunk, src) not in self._live:
            self._out.error(
                "ADR206",
                f"tile {tile} / processor {src}",
                f"combine reads ghost of output chunk {output_chunk} on "
                f"processor {src} which was never initialized this tile",
            )
        self._shipped.add((output_chunk, src))
        self._combined[output_chunk] = self._combined.get(output_chunk, 0) + 1

    def on_output(self, proc: int, output_chunk: int, tile: int) -> None:
        self._log("output", tile, output_chunk, proc)
        if (output_chunk, proc) not in self._live:
            self._out.error(
                "ADR206",
                f"tile {tile} / processor {proc}",
                f"output of chunk {output_chunk} read on processor {proc} "
                "before any initialization this tile",
            )
        want = self._inbound.get(output_chunk, 0)
        got = self._combined.get(output_chunk, 0)
        if got < want:
            self._out.error(
                "ADR205",
                f"tile {tile} / processor {proc}",
                f"output chunk {output_chunk} finalized after {got} of "
                f"{want} declared ghost combines -- partial results would "
                "be emitted on the real machine",
            )

    def end_tile(self, tile: int) -> None:
        """Reset per-tile happens-before state (accumulators released)."""
        self._live.clear()
        self._shipped.clear()
        self._combined.clear()

    # -- results ------------------------------------------------------------

    def report(self) -> List[Diagnostic]:
        """All race diagnostics observed so far."""
        return list(self._out.diagnostics)

    @property
    def ok(self) -> bool:
        return not self._out.diagnostics
