"""Static plan invariant verifier.

Proves, without executing anything, that a :class:`QueryPlan` upholds
every contract the executors and the paper's strategy descriptions
(Figures 4-6) rely on.  Each violated invariant becomes a
:class:`~repro.analysis.diagnostics.Diagnostic` with a stable
``ADR1xx`` code; an empty report means the plan is structurally sound.

Two groups of checks:

**Structural** (every plan, including hybrids):

========  ==========================================================
ADR101    tile ids outside ``[0, n_tiles)``
ADR102    empty problem with a nonzero tile count
ADR103    holder processor ids outside ``[0, n_procs)``
ADR104    duplicate holders for an output chunk
ADR105    owner of an output chunk missing from its holder list
ADR106    edge processors outside ``[0, n_procs)``
ADR107    aggregation edge assigned to a processor that holds no
          accumulator for its output chunk
ADR108    a (tile, processor) accumulator working set exceeds the
          memory budget (multi-chunk tiles only; a single chunk that
          alone exceeds memory is the pseudo-code's degenerate case)
ADR109    ghost-transfer list incomplete or inflated: every non-owner
          holder must ship its accumulator chunk to the owner exactly
          once, and nothing else may be shipped
ADR110    (warning) a tile in ``[0, n_tiles)`` contains no output
          chunk -- legal but wasteful round
========  ==========================================================

**Strategy contracts** (only when ``plan.strategy`` names a paper
strategy; hybrid plans are exempt by design):

========  ==========================================================
ADR120    FRA must replicate every accumulator chunk on every
          processor (Figure 4, step 10)
ADR121    SRA holders must equal ``So ∪ {owner}`` (Figure 5, step 5,
          plus the owner deviation documented in ``strategies.py``)
ADR122    DA must allocate no ghosts: holders == {owner} (Figure 6)
ADR123    local-reduction placement: FRA/SRA aggregate each edge on
          the input chunk owner's processor; DA on the output owner
========  ==========================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

import numpy as np

from repro.analysis.diagnostics import Diagnostic, DiagnosticCollector, Severity
from repro.planner.select import FIXED_STRATEGIES, FRA, SRA

if TYPE_CHECKING:  # avoid a hard import cycle with repro.planner
    from repro.planner.plan import QueryPlan

__all__ = ["verify_plan", "VERIFIER_CODES"]

#: Codes this pass can emit (documented above; tests iterate this).
VERIFIER_CODES = (
    "ADR101", "ADR102", "ADR103", "ADR104", "ADR105",
    "ADR106", "ADR107", "ADR108", "ADR109", "ADR110",
    "ADR120", "ADR121", "ADR122", "ADR123",
)

#: Cap identical findings per code; corrupt plans violate invariants
#: wholesale and an unbounded report helps nobody.
_LIMIT_PER_CODE = 20


def _holder_flat(plan: "QueryPlan"):
    """(flat_out, flat_proc) parallel arrays over all holder entries."""
    counts = np.diff(plan.holders_indptr)
    flat_out = np.repeat(
        np.arange(plan.problem.n_out, dtype=np.int64), counts
    )
    return flat_out, plan.holders_ids


def _check_tiles(plan: "QueryPlan", out: DiagnosticCollector) -> None:
    n_out = plan.problem.n_out
    if n_out == 0:
        if plan.n_tiles != 0:
            out.error(
                "ADR102",
                "plan",
                f"empty problem must have zero tiles, got {plan.n_tiles}",
            )
        return
    bad = np.flatnonzero(
        (plan.tile_of_output < 0) | (plan.tile_of_output >= plan.n_tiles)
    )
    for o in bad:
        out.error(
            "ADR101",
            f"output chunk {int(o)}",
            f"tile ids must lie in [0, {plan.n_tiles}), "
            f"got {int(plan.tile_of_output[o])}",
        )
    if len(bad):
        return  # occupancy below is meaningless with out-of-range tiles
    occupancy = np.bincount(plan.tile_of_output, minlength=plan.n_tiles)
    for t in np.flatnonzero(occupancy == 0):
        out.warning(
            "ADR110",
            f"tile {int(t)}",
            "tile contains no output chunk (wasted processing round)",
        )


def _check_holders(plan: "QueryPlan", out: DiagnosticCollector) -> None:
    p = plan.problem
    ids = plan.holders_ids
    if len(ids) and (ids.min() < 0 or ids.max() >= p.n_procs):
        out.error(
            "ADR103",
            "plan",
            "holder ids outside the processor range "
            f"[0, {p.n_procs}): min {int(ids.min())}, max {int(ids.max())}",
        )
    for o in range(p.n_out):
        holders = plan.holders_of(o)
        if len(np.unique(holders)) != len(holders):
            out.error(
                "ADR104",
                f"output chunk {o}",
                f"duplicate holders for output chunk {o}: {holders.tolist()}",
            )
        owner = int(p.output_owner[o])
        if owner not in holders:
            out.error(
                "ADR105",
                f"output chunk {o}",
                f"owner {owner} of output chunk {o} is not a holder "
                f"(holders: {holders.tolist()})",
            )


def _check_edges(plan: "QueryPlan", out: DiagnosticCollector) -> None:
    p = plan.problem
    edge_in, edge_out = plan.edge_arrays
    if not len(edge_in):
        return
    if plan.edge_proc.min() < 0 or plan.edge_proc.max() >= p.n_procs:
        out.error(
            "ADR106",
            "plan",
            "edge processors outside the processor range "
            f"[0, {p.n_procs})",
        )
        return
    flat_out, flat_proc = _holder_flat(plan)
    holder_keys = set(zip(flat_out.tolist(), flat_proc.tolist()))
    for e, (o, q) in enumerate(zip(edge_out.tolist(), plan.edge_proc.tolist())):
        if (o, q) not in holder_keys:
            out.error(
                "ADR107",
                f"edge {e}",
                f"edge for output chunk {o} assigned to processor {q}, "
                "which holds no accumulator for it",
            )


def _check_memory(plan: "QueryPlan", out: DiagnosticCollector) -> None:
    p = plan.problem
    flat_out, flat_proc = _holder_flat(plan)
    if not len(flat_out):
        return
    flat_tile = plan.tile_of_output[flat_out]
    if flat_tile.min() < 0 or flat_tile.max() >= plan.n_tiles:
        return  # ADR101 already reported; keys below would be bogus
    if flat_proc.min() < 0 or flat_proc.max() >= p.n_procs:
        return  # ADR103 already reported
    key = flat_tile * p.n_procs + flat_proc
    usage = np.bincount(key, weights=p.acc_nbytes[flat_out].astype(float))
    nchunks = np.bincount(key)
    budget = np.tile(p.memory_per_proc.astype(float), plan.n_tiles)[: len(usage)]
    over = (usage > budget) & (nchunks > 1)
    for k in np.flatnonzero(over):
        t, q = int(k) // p.n_procs, int(k) % p.n_procs
        out.error(
            "ADR108",
            f"tile {t} / processor {q}",
            f"tile {t} overflows processor {q}: {usage[k]:.0f} bytes of "
            f"accumulator vs budget {budget[k]:.0f}",
        )


def _check_ghost_transfers(plan: "QueryPlan", out: DiagnosticCollector) -> None:
    """Every non-owner holder ships to the owner exactly once (ADR109).

    ``ghost_transfers`` is derived from the holder lists, so a freshly
    built plan is consistent by construction -- this check guards the
    *materialized* table, which survives pickling/plan caches and is
    what the engine's global-combine phase actually walks.
    """
    p = plan.problem
    flat_out, flat_proc = _holder_flat(plan)
    owner = p.output_owner[flat_out].astype(np.int64)
    ghost = flat_proc != owner
    expected = {}
    for o, src, dst, t in zip(
        flat_out[ghost].tolist(),
        flat_proc[ghost].tolist(),
        owner[ghost].tolist(),
        plan.tile_of_output[flat_out[ghost]].tolist(),
    ):
        expected[(t, o, src, dst)] = expected.get((t, o, src, dst), 0) + 1
    gt = plan.ghost_transfers
    actual = {}
    for t, o, src, dst in zip(
        gt.tile.tolist(), gt.chunk.tolist(), gt.src.tolist(), gt.dst.tolist()
    ):
        actual[(t, o, src, dst)] = actual.get((t, o, src, dst), 0) + 1
    for key in sorted(set(expected) | set(actual)):
        t, o, src, dst = key
        want, got = expected.get(key, 0), actual.get(key, 0)
        if want == got:
            continue
        if got < want:
            msg = (
                f"ghost accumulator of output chunk {o} held by processor "
                f"{src} is never shipped to owner {dst} in tile {t}"
                if got == 0
                else f"ghost transfer {key} listed {got} times, expected {want}"
            )
        else:
            msg = (
                f"ghost transfer of output chunk {o} from {src} to {dst} in "
                f"tile {t} appears {got} times "
                + ("but no such ghost is held" if want == 0 else f"(expected {want})")
            )
        out.error("ADR109", f"output chunk {o}", msg)


def _check_strategy_contracts(plan: "QueryPlan", out: DiagnosticCollector) -> None:
    p = plan.problem
    strategy = plan.strategy.upper()
    if strategy not in FIXED_STRATEGIES:
        return

    all_procs = np.arange(p.n_procs, dtype=np.int64)
    if strategy == SRA:
        from repro.planner.strategies import _so_lists  # lazy: import cycle

        so_indptr, so_ids = _so_lists(p)
    for o in range(p.n_out):
        holders = np.sort(plan.holders_of(o))
        owner = int(p.output_owner[o])
        if strategy == FRA:
            if len(holders) != p.n_procs or not np.array_equal(holders, all_procs):
                out.error(
                    "ADR120",
                    f"output chunk {o}",
                    "FRA must replicate the accumulator chunk on every "
                    f"processor; output chunk {o} is held only by "
                    f"{holders.tolist()}",
                )
        elif strategy == SRA:
            so = so_ids[so_indptr[o] : so_indptr[o + 1]]
            want = np.unique(np.append(so, owner))
            if not np.array_equal(holders, want):
                out.error(
                    "ADR121",
                    f"output chunk {o}",
                    f"SRA holders must equal So ∪ {{owner}} = {want.tolist()}; "
                    f"output chunk {o} is held by {holders.tolist()}",
                )
        else:  # DA
            if len(holders) != 1 or int(holders[0]) != owner:
                out.error(
                    "ADR122",
                    f"output chunk {o}",
                    "DA allocates no ghosts: the only holder must be the "
                    f"owner {owner}; output chunk {o} is held by "
                    f"{holders.tolist()}",
                )

    edge_in, edge_out = plan.edge_arrays
    if len(edge_in):
        if strategy in (FRA, SRA):
            want = p.input_owner[edge_in].astype(np.int64)
            side = "input chunk owner"
        else:
            want = p.output_owner[edge_out].astype(np.int64)
            side = "output chunk owner"
        for e in np.flatnonzero(plan.edge_proc != want):
            out.error(
                "ADR123",
                f"edge {int(e)}",
                f"{strategy} aggregates every edge on the {side}; edge "
                f"{int(e)} (input {int(edge_in[e])} -> output "
                f"{int(edge_out[e])}) is assigned to processor "
                f"{int(plan.edge_proc[e])} instead of {int(want[e])}",
            )


def verify_plan(
    plan: "QueryPlan", *, strategy_contracts: bool = True
) -> List[Diagnostic]:
    """Statically verify *plan*; return all violated invariants.

    Parameters
    ----------
    plan:
        Any :class:`~repro.planner.plan.QueryPlan`.
    strategy_contracts:
        When True (default) and ``plan.strategy`` names a paper
        strategy, additionally prove the Figure 4-6 placement
        contracts (ADR12x).  Structural checks (ADR10x/ADR110) always
        run.

    Returns an empty list for a sound plan; diagnostics are ordered by
    check, capped per code, and never raise -- callers decide policy
    (``validate_plan`` raises on any ERROR).
    """
    out = DiagnosticCollector(limit_per_code=_LIMIT_PER_CODE)
    _check_tiles(plan, out)
    _check_holders(plan, out)
    _check_edges(plan, out)
    _check_memory(plan, out)
    _check_ghost_transfers(plan, out)
    if strategy_contracts:
        _check_strategy_contracts(plan, out)
    return out.diagnostics
