"""Structured diagnostics shared by every analysis pass.

All three passes (plan verifier, simulated-race detector, project
lint) report problems the same way: a :class:`Diagnostic` with a
stable code, a severity, a location and a human-readable message.
Stable codes let tests pin individual invariants, let CI gate on
severity, and let source lines suppress a finding explicitly
(``# noqa: ADR3xx -- rationale``).

Code ranges
-----------
- ``ADR1xx`` -- static plan invariants (:mod:`repro.analysis.verifier`)
- ``ADR2xx`` -- simulated races observed at execution time
  (:mod:`repro.analysis.races`)
- ``ADR3xx`` -- project lint over the source tree
  (:mod:`repro.analysis.lint`)
- ``ADR4xx`` / ``ADR5xx`` -- exception hygiene and phase-loop
  ownership rules (also :mod:`repro.analysis.lint`)
- ``ADR6xx`` -- static communication-protocol checks over the
  transport schedule (:mod:`repro.analysis.comm`)
- ``ADR7xx`` -- dataflow/concurrency lint over the threaded runtime
  (:mod:`repro.analysis.effects`)
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

__all__ = ["Severity", "Diagnostic", "DiagnosticCollector", "max_severity"]

#: ``path:line:col`` locations emitted by the source-level passes.
_SOURCE_LOC_RE = re.compile(r"^(?P<path>.*):(?P<line>\d+):(?P<col>\d+)$")


class Severity(enum.IntEnum):
    """Ordered severity levels; comparisons follow integer order."""

    NOTE = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding from an analysis pass.

    Attributes
    ----------
    code:
        Stable identifier (``ADR101`` ...); never reuse a retired code.
    severity:
        :class:`Severity`; ``validate_plan`` raises only on ERROR.
    location:
        Where the problem is: ``"output chunk 3"``, ``"tile 2 /
        processor 1"``, or ``"path.py:12:4"`` for lint findings.
    message:
        Human-readable explanation, specific enough to act on.
    """

    code: str
    severity: Severity
    location: str
    message: str

    def format(self) -> str:
        # str() explicitly: IntEnum.__format__ renders the *numeric*
        # value on some Python versions, and "error" vs "30" matters
        # to every consumer that greps this line.
        return f"{self.location}: {str(self.severity)}: {self.code} {self.message}"

    def source_location(self) -> Optional[Tuple[str, int, int]]:
        """``(path, line, col)`` when the location is source-shaped
        (``path:line:col``), else None (plan locations like
        ``"output chunk 3"``)."""
        m = _SOURCE_LOC_RE.match(self.location)
        if m is None:
            return None
        return m.group("path"), int(m.group("line")), int(m.group("col"))

    def sort_key(self) -> Tuple:
        """Stable ordering: by path, line, column, code, then message.

        Non-source locations sort by their literal text with line 0,
        so a mixed report is still deterministic.
        """
        src = self.source_location()
        if src is None:
            return (self.location, 0, 0, self.code, self.message)
        path, line, col = src
        return (path, line, col, self.code, self.message)

    def to_dict(self) -> dict:
        """JSON-ready mapping (``--format json`` in the CLIs)."""
        out = {
            "code": self.code,
            "severity": str(self.severity),
            "location": self.location,
            "message": self.message,
        }
        src = self.source_location()
        if src is not None:
            out["path"], out["line"], out["col"] = src
        return out

    def format_github(self) -> str:
        """A GitHub Actions workflow annotation command."""
        level = {
            Severity.ERROR: "error",
            Severity.WARNING: "warning",
            Severity.NOTE: "notice",
        }[self.severity]
        src = self.source_location()
        if src is None:
            return f"::{level} title={self.code}::{self.location}: {self.message}"
        path, line, col = src
        return (
            f"::{level} file={path},line={line},col={col},"
            f"title={self.code}::{self.message}"
        )

    def __str__(self) -> str:
        return self.format()


def max_severity(diagnostics: Iterable[Diagnostic]) -> Optional[Severity]:
    """Highest severity present, or None for an empty report."""
    worst: Optional[Severity] = None
    for d in diagnostics:
        if worst is None or d.severity > worst:
            worst = d.severity
    return worst


@dataclass
class DiagnosticCollector:
    """Accumulates diagnostics; every pass appends into one of these.

    ``limit_per_code`` caps repeats of the same code so a corrupted
    plan with thousands of identical violations stays readable; the
    final occurrence of a capped code is replaced by a summary NOTE.
    """

    limit_per_code: Optional[int] = None
    diagnostics: List[Diagnostic] = field(default_factory=list)
    _counts: dict = field(default_factory=dict)

    def emit(
        self, code: str, severity: Severity, location: str, message: str
    ) -> None:
        n = self._counts.get(code, 0)
        self._counts[code] = n + 1
        if self.limit_per_code is not None:
            if n == self.limit_per_code:
                self.diagnostics.append(
                    Diagnostic(
                        code,
                        Severity.NOTE,
                        location,
                        f"further {code} findings suppressed "
                        f"(limit {self.limit_per_code} per code)",
                    )
                )
                return
            if n > self.limit_per_code:
                return
        self.diagnostics.append(Diagnostic(code, severity, location, message))

    def error(self, code: str, location: str, message: str) -> None:
        self.emit(code, Severity.ERROR, location, message)

    def warning(self, code: str, location: str, message: str) -> None:
        self.emit(code, Severity.WARNING, location, message)

    def note(self, code: str, location: str, message: str) -> None:
        self.emit(code, Severity.NOTE, location, message)

    def count(self, code: str) -> int:
        """Total findings emitted for *code* (including suppressed)."""
        return self._counts.get(code, 0)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= Severity.ERROR]

    def codes(self) -> Tuple[str, ...]:
        return tuple(sorted({d.code for d in self.diagnostics}))
