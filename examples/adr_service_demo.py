#!/usr/bin/env python
"""Client/server demo: querying ADR over a socket.

Recreates the paper's Figure 2 deployment: an ADR front-end process
serving a loaded repository, first to a sequential client (client A
in the figure) submitting range queries over the socket interface as
newline-delimited JSON, then to several concurrent clients whose
overlapping queries are batched and share chunk scans through the
pinned payload cache (see docs/service.md).

Run:  python examples/adr_service_demo.py
"""

import threading

import numpy as np

from repro import ADR, RangeQuery, Rect, ibm_sp
from repro.aggregation.output_grid import OutputGrid
from repro.dataset.partition import hilbert_partition
from repro.frontend.service import ADRClient, ADRServer
from repro.space.attribute_space import AttributeSpace
from repro.space.mapping import GridMapping


def main() -> None:
    rng = np.random.default_rng(21)

    # ---- server side: a customized ADR instance with a dataset loaded
    adr = ADR(machine=ibm_sp(4))
    field = AttributeSpace.regular("field", ("x", "y"), (0, 0), (100, 100))
    coords = rng.uniform(0, 100, size=(3000, 2))
    readings = coords[:, 0] * 0.3 + rng.normal(0, 2, 3000)
    adr.load("sensors", field, hilbert_partition(coords, readings, 30))

    with ADRServer(adr, port=0) as server:
        host, port = server.address
        print(f"ADR front-end serving on {host}:{port}")

        # ---- client side: knows only the protocol and the port
        image = AttributeSpace.regular("image", ("u", "v"), (0, 0), (1, 1))
        grid = OutputGrid(image, (10, 10), (5, 5))
        mapping = GridMapping(field, image, (10, 10))

        with ADRClient(host, port) as client:
            print("ping:", "ok" if client.ping() else "FAILED")

            for region, label in [
                (Rect((0, 0), (100, 100)), "whole field"),
                (Rect((0, 0), (50, 50)), "south-west quadrant"),
            ]:
                q = RangeQuery("sensors", region, mapping, grid,
                               aggregation="mean", strategy="AUTO")
                result = client.query(q)
                vals = np.concatenate([v.ravel() for v in result.chunk_values])
                vals = vals[~np.isnan(vals)]
                print(
                    f"query [{label}]: {len(result.output_ids)} output chunks, "
                    f"{result.n_reads} chunk reads, "
                    f"mean of means {vals.mean():.2f}"
                )

            # errors travel back as structured messages with a code
            bad = RangeQuery("nonexistent", Rect((0, 0), (1, 1)), mapping, grid)
            try:
                client.query(bad)
            except RuntimeError as e:
                print(f"expected rejection: {e}")

        # ---- concurrent clients: overlapping queries share scans
        regions = [
            Rect((0, 0), (100, 100)),
            Rect((0, 0), (70, 70)),
            Rect((30, 30), (100, 100)),
            Rect((0, 0), (100, 100)),
        ]

        def one_client(region: Rect) -> None:
            with ADRClient(host, port) as c:
                q = RangeQuery("sensors", region, mapping, grid,
                               aggregation="mean", strategy="FRA")
                result, info = c.query_with_info(q)
                print(
                    f"concurrent query {region.lo}-{region.hi}: "
                    f"{result.n_reads} reads, "
                    f"{result.shared_reads} served from the shared cache "
                    f"(batch of {info['batch_size']})"
                )

        threads = [threading.Thread(target=one_client, args=(r,))
                   for r in regions]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)

        with ADRClient(host, port) as client:
            stats = client.stats()
            print(
                f"service stats: {stats['completed']} completed, "
                f"{stats['batches']} batches, "
                f"{stats['shared_reads']} shared reads, "
                f"cache hit rate {stats['cache']['chunk_hit_rate']:.2f}"
            )

    print("server stopped")


if __name__ == "__main__":
    main()
