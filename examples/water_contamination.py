#!/usr/bin/env python
"""Water contamination studies: coupling simulations through ADR.

Recreates the paper's WCS scenario (ref [19]): a hydrodynamics code
produces velocity fields over (x, y, time) which are stored in ADR; a
chemical-transport code repeatedly queries ADR for the *time-averaged*
flow on its (coarser) grid, one simulation window at a time, and
advects a contaminant plume with it.  Each coupling step is one ADR
range query -- the paper's point is precisely that the repository does
the projection + aggregation between the codes' grids.

Run:  python examples/water_contamination.py
"""

import numpy as np

from repro import ADR, RangeQuery, Rect, ibm_sp
from repro.aggregation.output_grid import OutputGrid
from repro.dataset.partition import grid_partition
from repro.machine.presets import IBM_SP_COSTS
from repro.space.attribute_space import AttributeSpace
from repro.space.mapping import GridMapping

BAY = 16          # hydrodynamics grid resolution (per axis)
WINDOWS = 6       # coupling windows (time steps stored in ADR)
TRANSPORT = 8     # chemical-transport grid resolution


def hydro_fields(rng):
    """A swirling, slowly rotating flow over the bay, per time step."""
    xs, ys = np.meshgrid(
        (np.arange(BAY) + 0.5) / BAY, (np.arange(BAY) + 0.5) / BAY, indexing="ij"
    )
    coords, values = [], []
    for t in range(WINDOWS):
        angle = 2 * np.pi * t / WINDOWS
        cx, cy = 0.5 + 0.25 * np.cos(angle), 0.5 + 0.25 * np.sin(angle)
        u = -(ys - cy) + rng.normal(0, 0.02, xs.shape)
        v = (xs - cx) + rng.normal(0, 0.02, xs.shape)
        pc = np.stack(
            (xs.ravel(), ys.ravel(), np.full(xs.size, t + 0.5)), axis=1
        )
        coords.append(pc)
        values.append(np.stack((u.ravel(), v.ravel()), axis=1))
    return np.concatenate(coords), np.concatenate(values)


def main() -> None:
    rng = np.random.default_rng(11)
    adr = ADR(machine=ibm_sp(8), costs=IBM_SP_COSTS["WCS"])

    bay = AttributeSpace.regular(
        "bay-hydro", ("x", "y", "t"), (0, 0, 0), (1, 1, WINDOWS)
    )
    coords, values = hydro_fields(rng)
    chunks = grid_partition(coords, values, bay.bounds, (4, 4, WINDOWS))
    adr.load("hydro", bay, chunks)
    print(f"hydrodynamics stored: {len(chunks)} chunks, "
          f"{len(coords)} grid-point samples over {WINDOWS} windows\n")

    # Transport grid: coarser than the hydro grid; ADR's Map+Aggregate
    # does the restriction (mean flow per coarse cell).
    tspace = AttributeSpace.regular("transport", ("u", "v"), (0, 0), (1, 1))
    grid = OutputGrid(tspace, (TRANSPORT, TRANSPORT), (4, 4))
    mapping = GridMapping(bay, tspace, (TRANSPORT, TRANSPORT), dim_select=(0, 1))

    # Contaminant plume: starts concentrated near the west inlet.
    conc = np.zeros((TRANSPORT, TRANSPORT))
    conc[1:3, 3:5] = 1.0

    print("coupled run: one ADR query per window, then advect")
    for t in range(WINDOWS):
        q = RangeQuery(
            dataset="hydro",
            region=Rect((0, 0, t), (1, 1, t + 1)),  # this window only
            mapping=mapping,
            grid=grid,
            aggregation="mean",
            strategy="AUTO",
            value_components=2,
        )
        flow = adr.execute(q).assemble(grid)  # (T, T, 2) mean (u, v)
        flow = np.nan_to_num(flow)
        # one explicit upwind advection step on the transport grid;
        # outflow fractions are normalized so a cell never sheds more
        # than it holds (mass conserved up to boundary outflow)
        dt = 0.35
        shift_u = flow[:, :, 0] * dt * TRANSPORT
        shift_v = flow[:, :, 1] * dt * TRANSPORT
        fe = np.clip(shift_u, 0, 1)
        fw = np.clip(-shift_u, 0, 1)
        fn = np.clip(shift_v, 0, 1)
        fs = np.clip(-shift_v, 0, 1)
        total = fe + fw + fn + fs
        scale = np.where(total > 1, 1.0 / np.maximum(total, 1e-12), 1.0)
        moved_east = fe * scale * conc
        moved_west = fw * scale * conc
        moved_north = fn * scale * conc
        moved_south = fs * scale * conc
        new = conc - (moved_east + moved_west + moved_north + moved_south)
        new[1:, :] += moved_east[:-1, :]
        new[:-1, :] += moved_west[1:, :]
        new[:, 1:] += moved_north[:, :-1]
        new[:, :-1] += moved_south[:, 1:]
        conc = new
        peak = np.unravel_index(conc.argmax(), conc.shape)
        print(f"  window {t}: total mass {conc.sum():.3f}, "
              f"plume peak at cell {tuple(int(i) for i in peak)}")

    print("\nfinal contaminant distribution:")
    shades = " .:-=+*#%@"
    hi = conc.max() + 1e-9
    for row in conc:
        print("  " + "".join(shades[int(v / hi * (len(shades) - 1))] for v in row))

    print("\nsimulated coupling-query cost on the paper's machine:")
    q = RangeQuery("hydro", Rect((0, 0, 0), (1, 1, 1)), mapping, grid,
                   aggregation="mean", strategy="FRA", value_components=2)
    for strategy in ("FRA", "SRA", "DA"):
        print("  " + adr.simulate(q, strategy=strategy).row())


if __name__ == "__main__":
    main()
