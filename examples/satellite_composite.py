#!/usr/bin/env python
"""Satellite data processing: AVHRR-style best-value compositing.

Recreates the paper's motivating SAT application end to end on real
data: synthetic satellite readings in (longitude, latitude, time) --
denser and wider near the poles, like a polar orbiter's ground track
-- are composited into a 2-D image by keeping, per output pixel, the
reading with the highest NDVI-like quality score ("each pixel in the
composite image is computed by selecting the 'best' sensor value that
maps to the associated grid point").

The same query is executed under FRA, SRA and DA to demonstrate that
the strategies answer identically, and simulated on the 1999 IBM SP
model to show where each spends its time.

Run:  python examples/satellite_composite.py
"""

import numpy as np

from repro import ADR, RangeQuery, Rect, ibm_sp
from repro.aggregation.output_grid import OutputGrid
from repro.dataset.partition import hilbert_partition
from repro.machine.presets import IBM_SP_COSTS
from repro.space.attribute_space import AttributeSpace
from repro.space.mapping import GridMapping


def polar_orbit_readings(rng, n):
    """Readings along a polar ground track: latitude density ~ sec."""
    x_max = np.arcsinh(np.tan(np.radians(80.0)))
    lat = np.degrees(np.arctan(np.sinh(rng.uniform(-x_max, x_max, n))))
    lon = rng.uniform(-180, 180, n)
    t = rng.uniform(0, 10, n)
    coords = np.stack((lon, lat, t), axis=1)
    # value components: (quality score, band) -- the composite keeps
    # the band value of the best-scoring reading per pixel
    vegetation = np.cos(np.radians(lat)) ** 2  # greener near the equator
    score = vegetation + rng.normal(0, 0.1, n)  # NDVI-ish + sensor noise
    band = 200 * vegetation + rng.normal(0, 5, n)
    return coords, np.stack((score, band), axis=1)


def main() -> None:
    rng = np.random.default_rng(7)
    adr = ADR(machine=ibm_sp(8), costs=IBM_SP_COSTS["SAT"])

    earth = AttributeSpace.regular(
        "avhrr", ("lon", "lat", "time"), (-180, -90, 0), (180, 90, 10)
    )
    coords, values = polar_orbit_readings(rng, 20_000)
    chunks = hilbert_partition(coords, values, items_per_chunk=100)
    adr.load("avhrr-gac", earth, chunks)
    print(f"loaded {len(chunks)} sensor chunks, "
          f"{sum(c.n_items for c in chunks)} readings")

    # Composite image: 32x32 pixels over the whole surface, 8x8-pixel
    # chunks; the sensor footprint smears each reading over ~1 pixel.
    image_space = AttributeSpace.regular("composite", ("x", "y"), (0, 0), (1, 1))
    grid = OutputGrid(image_space, (32, 32), (8, 8))
    mapping = GridMapping(
        earth, image_space, (32, 32), dim_select=(0, 1),
        footprint=(1 / 64, 1 / 64),
    )

    region = Rect((-180, -90, 0), (180, 90, 10))  # whole earth, all 10 days
    results = {}
    for strategy in ("FRA", "SRA", "DA"):
        q = RangeQuery("avhrr-gac", region, mapping, grid,
                       aggregation="best", strategy=strategy,
                       value_components=2)
        results[strategy] = adr.execute(q)
    # All three strategies composite the identical image.
    ref = results["FRA"].assemble(grid)
    for s in ("SRA", "DA"):
        np.testing.assert_allclose(results[s].assemble(grid), ref, equal_nan=True)
    print("FRA, SRA and DA produced identical composites\n")

    img = ref[:, :, 0]  # the band value of the best reading per pixel
    print("composite (band value; rows = longitude, cols = latitude):")
    lo, hi = np.nanmin(img), np.nanmax(img)
    shades = " .:-=+*#%@"
    for row in img[::2]:
        line = ""
        for v in row:
            if np.isnan(v):
                line += "?"
            else:
                line += shades[int((v - lo) / (hi - lo + 1e-9) * (len(shades) - 1))]
        print("  " + line)
    print("  (dense @ = high vegetation near the equator band)\n")

    print("simulated on the 128-node SP (paper Table 1 costs):")
    for strategy in ("FRA", "SRA", "DA"):
        q = RangeQuery("avhrr-gac", region, mapping, grid,
                       aggregation="best", strategy=strategy, value_components=2)
        res = adr.simulate(q)
        print("  " + res.row())


if __name__ == "__main__":
    main()
