#!/usr/bin/env python
"""The Virtual Microscope: interactive slide browsing on ADR.

Recreates the paper's VM application: a digitized slide is a 3-D
dataset (x, y, focal plane) of dense image blocks; a client view is a
range query that selects a region on one focal plane and projects the
high-resolution pixels onto a display grid at the requested
magnification, "appropriately compositing pixels mapping onto a single
grid point" (here: averaging, the standard de-noising composition).

The example serves three client interactions -- a low-power overview,
a high-power zoom, and a focal-plane change -- from the same loaded
slide, each as an ADR range query.

Run:  python examples/virtual_microscope.py
"""

import numpy as np

from repro import ADR, RangeQuery, Rect, ibm_sp
from repro.aggregation.output_grid import OutputGrid
from repro.dataset.partition import grid_partition
from repro.machine.presets import IBM_SP_COSTS
from repro.space.attribute_space import AttributeSpace
from repro.space.mapping import GridMapping


def synth_slide(rng, pixels=96, planes=2):
    """A synthetic specimen: bright cell-like blobs on dark ground,
    slightly different per focal plane."""
    xs, ys = np.meshgrid(np.arange(pixels), np.arange(pixels), indexing="ij")
    coords, values = [], []
    blobs = rng.uniform(10, pixels - 10, size=(12, 2))
    for plane in range(planes):
        img = np.full((pixels, pixels), 40.0)
        for bx, by in blobs + rng.normal(0, 1.5, size=(12, 2)):
            r2 = (xs - bx) ** 2 + (ys - by) ** 2
            img += 180 * np.exp(-r2 / (2 * (4 + plane) ** 2))
        img += rng.normal(0, 4, img.shape)
        pc = np.stack(
            ((xs.ravel() + 0.5) / pixels, (ys.ravel() + 0.5) / pixels,
             np.full(xs.size, plane + 0.5)),
            axis=1,
        )
        coords.append(pc)
        values.append(img.ravel())
    return np.concatenate(coords), np.concatenate(values)


def render(full, title):
    print(title)
    shades = " .:-=+*#%@"
    img = full[:, :, 0]
    lo, hi = np.nanmin(img), np.nanmax(img)
    for row in img:
        print(
            "  "
            + "".join(
                "?" if np.isnan(v)
                else shades[int((v - lo) / (hi - lo + 1e-9) * (len(shades) - 1))]
                for v in row
            )
        )
    print()


def main() -> None:
    rng = np.random.default_rng(3)
    adr = ADR(machine=ibm_sp(8), costs=IBM_SP_COSTS["VM"])

    slide_space = AttributeSpace.regular(
        "slide", ("x", "y", "plane"), (0, 0, 0), (1, 1, 2)
    )
    coords, values = synth_slide(rng)
    # dense regular blocks, as the paper describes VM storage
    chunks = grid_partition(coords, values, slide_space.bounds, (12, 12, 2))
    adr.load("specimen-042", slide_space, chunks)
    print(f"slide loaded: {len(chunks)} image blocks, "
          f"{len(coords)} pixels, 2 focal planes\n")

    view_space = AttributeSpace.regular("view", ("u", "v"), (0, 0), (1, 1))

    def browse(title, region, display=24):
        grid = OutputGrid(view_space, (display, display), (8, 8))
        # magnification = display resolution over the selected region
        mapping = GridMapping(slide_space, view_space, (display, display),
                              dim_select=(0, 1))
        # re-anchor the affine map so the region fills the display
        lo = np.asarray(region.lo[:2])
        hi = np.asarray(region.hi[:2])
        mapping.scale = 1.0 / (hi - lo)
        mapping.offset = -lo * mapping.scale
        q = RangeQuery("specimen-042", region, mapping, grid,
                       aggregation="mean", strategy="AUTO")
        result = adr.execute(q)
        render(result.assemble(grid), title)
        return result

    browse("LOW POWER -- whole slide, plane 0:",
           Rect((0, 0, 0), (1, 1, 1)))
    browse("HIGH POWER -- zoom on the upper-left quadrant, plane 0:",
           Rect((0, 0, 0), (0.5, 0.5, 1)))
    browse("FOCUS CHANGE -- same quadrant, plane 1 (blurrier blobs):",
           Rect((0, 0, 1), (0.5, 0.5, 2)))

    # the interactive-latency question: which strategy serves a viewer
    # fastest on the big machine?
    grid = OutputGrid(view_space, (24, 24), (8, 8))
    mapping = GridMapping(slide_space, view_space, (24, 24), dim_select=(0, 1))
    print("simulated service time for a full-slide view:")
    for strategy in ("FRA", "SRA", "DA"):
        q = RangeQuery("specimen-042", Rect((0, 0, 0), (1, 1, 1)),
                       mapping, grid, aggregation="mean", strategy=strategy)
        print("  " + adr.simulate(q).row())


if __name__ == "__main__":
    main()
