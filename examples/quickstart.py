#!/usr/bin/env python
"""Quickstart: load a multi-dimensional dataset into ADR and query it.

Builds a small ADR instance over synthetic 2-D sensor readings, runs a
range query that averages the readings onto a 16x16 output grid, and
prints the result -- the whole paper pipeline (partition, decluster,
index, plan, execute) in ~60 lines of user code.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ADR, RangeQuery, Rect, ibm_sp
from repro.aggregation.output_grid import OutputGrid
from repro.dataset.partition import hilbert_partition
from repro.space.attribute_space import AttributeSpace
from repro.space.mapping import GridMapping


def main() -> None:
    rng = np.random.default_rng(42)

    # 1. An ADR back end: 8 processors, one disk each (the paper's SP
    #    nodes, scaled down).
    adr = ADR(machine=ibm_sp(8))

    # 2. The input dataset: 5,000 temperature readings at random
    #    coordinates, partitioned into Hilbert-contiguous chunks of 50
    #    items, declustered and R-tree-indexed by `load`.
    field = AttributeSpace.regular("field", ("x", "y"), (0, 0), (100, 100))
    coords = rng.uniform(0, 100, size=(5000, 2))
    temps = 15 + 10 * np.sin(coords[:, 0] / 15) + rng.normal(0, 1, 5000)
    chunks = hilbert_partition(coords, temps, items_per_chunk=50)
    adr.load("temperatures", field, chunks)
    print(f"loaded {len(chunks)} chunks "
          f"({sum(c.meta.nbytes for c in chunks) / 1024:.0f} KB) "
          f"across {adr.machine.n_procs} processors")

    # 3. The output dataset: a 16x16 image over a unit square, blocked
    #    into 4x4-cell chunks; the Map function projects the queried
    #    region onto it.
    image = AttributeSpace.regular("image", ("u", "v"), (0, 0), (1, 1))
    grid = OutputGrid(image, grid_shape=(16, 16), chunk_shape=(4, 4))
    mapping = GridMapping(field, image, grid_shape=(16, 16))

    # 4. A range query: average all readings in [20,80]^2, letting the
    #    cost model pick the processing strategy.
    query = RangeQuery(
        dataset="temperatures",
        region=Rect((20, 20), (80, 80)),
        mapping=mapping,
        grid=grid,
        aggregation="mean",
        strategy="AUTO",
    )
    plan = adr.plan(query)
    print(f"planner chose {plan.strategy}: {plan.summary()}")

    result = adr.execute(query, plan)
    full = result.assemble(grid)[:, :, 0]
    print(f"computed {len(result.output_ids)} output chunks "
          f"({result.n_reads} chunk reads over {result.n_tiles} tile(s))")

    print("\nmean temperature per output cell (NaN = outside the query):")
    for row in full:
        print(" ".join("  .  " if np.isnan(v) else f"{v:5.1f}" for v in row))

    # 5. The same query on the simulated 1999 IBM SP, per strategy.
    print("\nsimulated execution on the paper's machine model:")
    for strategy in ("FRA", "SRA", "DA"):
        res = adr.simulate(query, strategy=strategy)
        print("  " + res.row())


if __name__ == "__main__":
    main()
