#!/usr/bin/env python
"""Figure 7 walkthrough: how FRA and DA move data, side by side.

Recreates the paper's illustrative 4-processor example: input chunks
(the paper draws triangles) scattered across processors, a 4x4 block
of output chunks, and the two extreme strategies executed on the same
query.  For each phase the script prints exactly which chunks travel
where -- the content of the paper's Figure 7 arrows -- and then the
simulated per-phase times.

Run:  python examples/strategy_walkthrough.py
"""

import numpy as np

from repro.dataset.chunkset import ChunkSet
from repro.dataset.graph import ChunkGraph
from repro.machine.config import ComputeCosts, MachineConfig
from repro.planner.plan import QueryPlan
from repro.planner.problem import PlanningProblem
from repro.planner.stats import plan_stats
from repro.planner.strategies import plan_da, plan_fra
from repro.sim.query_sim import simulate_query
from repro.util.units import KB, MB


def build_problem() -> PlanningProblem:
    rng = np.random.default_rng(4)
    n_in, n_procs = 16, 4

    # Input chunks ("triangles") scattered over the square, assigned
    # round-robin to the 4 processors as in the figure.
    in_los = rng.uniform(0, 3.2, size=(n_in, 2))
    inputs = ChunkSet(
        in_los,
        in_los + rng.uniform(0.4, 1.2, size=(n_in, 2)),
        np.full(n_in, 64 * KB, dtype=np.int64),
        node=(np.arange(n_in) % n_procs).astype(np.int32),
        disk=np.zeros(n_in, dtype=np.int32),
    )

    # Output chunks: the figure's 4x4 grid, owners as drawn
    # (P1 P1 P2 P2 / P1 P1 P2 P2 / P4 P4 P3 P3 / P4 P4 P3 P3).
    owners = np.array(
        [0, 0, 1, 1,
         0, 0, 1, 1,
         3, 3, 2, 2,
         3, 3, 2, 2],
        dtype=np.int32,
    )
    cells = np.stack(np.unravel_index(np.arange(16), (4, 4)), axis=1).astype(float)
    outputs = ChunkSet(
        cells,
        cells + 1.0,
        np.full(16, 32 * KB, dtype=np.int64),
        node=owners,
        disk=np.zeros(16, dtype=np.int32),
    )

    # which output blocks each triangle overlaps
    edges_in, edges_out = [], []
    for i in range(n_in):
        hits = outputs.intersecting(inputs.mbr(i))
        edges_in.extend([i] * len(hits))
        edges_out.extend(hits.tolist())
    graph = ChunkGraph(n_in, 16, np.asarray(edges_in), np.asarray(edges_out))

    return PlanningProblem(
        n_procs=n_procs,
        memory_per_proc=np.int64(1 * MB),
        inputs=inputs,
        outputs=outputs,
        graph=graph,
        acc_nbytes=(outputs.nbytes * 2).astype(np.int64),
    )


def describe(plan: QueryPlan) -> None:
    p = plan.problem
    print(f"--- {plan.strategy} ---")
    print(f"tiles: {plan.n_tiles}, ghost chunks: {plan.ghost_count}")

    print("initialization: accumulator chunks per processor:")
    counts = np.bincount(plan.holders_ids, minlength=p.n_procs)
    for q in range(p.n_procs):
        ghosts = counts[q] - int((p.output_owner == q).sum())
        print(f"  P{q + 1}: {counts[q]:2d} chunks ({ghosts} ghosts)")

    it = plan.input_transfers
    if len(it):
        print("local reduction: input chunks forwarded "
              "(black regions of the figure's triangles):")
        for k in range(len(it)):
            print(f"  input {int(it.chunk[k]):2d}: "
                  f"P{int(it.src[k]) + 1} -> P{int(it.dst[k]) + 1}")
    else:
        print("local reduction: no input communication "
              "(every processor reduces its own chunks)")

    gt = plan.ghost_transfers
    if len(gt):
        sends = {}
        for k in range(len(gt)):
            key = (int(gt.src[k]) + 1, int(gt.dst[k]) + 1)
            sends[key] = sends.get(key, 0) + 1
        print("global combine: ghost accumulator chunks to owners:")
        for (src, dst), n in sorted(sends.items()):
            print(f"  P{src} -> P{dst}: {n} chunks")
    else:
        print("global combine: nothing to do (no replication)")

    st = plan_stats(plan)
    print(f"aggregation pairs per processor: {st.reduction_pairs.tolist()} "
          f"(imbalance {st.load_imbalance:.2f})")


def main() -> None:
    problem = build_problem()
    print(f"the figure's setup: {problem.describe()}\n")

    machine = MachineConfig(n_procs=4, memory_per_proc=1 * MB,
                            cpu_per_byte=1.0 / (150 * MB))
    costs = ComputeCosts.from_ms(1, 40, 20, 1)

    from repro.sim.timeline import render_timeline

    for planner in (plan_fra, plan_da):
        plan = planner(problem)
        describe(plan)
        res = simulate_query(plan, machine, costs, record_timeline=True)
        phases = ", ".join(f"{k} {v * 1e3:.1f} ms" for k, v in res.phase_times.items())
        print(f"simulated: total {res.total_time * 1e3:.1f} ms ({phases})")
        print(render_timeline(res, width=60, procs=[0]))
        print()


if __name__ == "__main__":
    main()
