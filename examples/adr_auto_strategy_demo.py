#!/usr/bin/env python
"""Auto strategy selection, end to end: telemetry -> calibration -> auto.

Section 6 of the paper asks for "simple but reasonably accurate cost
models to guide and automate the selection of an appropriate
strategy".  This demo closes that loop against a live ADR instance:

1. run a small query workload through :class:`QueryService` with a
   :class:`TelemetryLog` attached, harvesting per-phase times and plan
   features from every cleanly completed query;
2. fit the machine constants from that log with
   :func:`repro.planner.calibrate.calibrate` (the command-line
   equivalent is ``python -m repro.planner.calibrate --log
   telemetry.jsonl --out model.json``);
3. hand the fitted :class:`CalibratedCostModel` to a fresh ADR
   instance and submit a query with ``strategy='auto'`` -- the planner
   prices FRA/SRA/DA with the *measured* constants and runs the
   cheapest.

Run:  python examples/adr_auto_strategy_demo.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import ADR, RangeQuery, Rect, ibm_sp
from repro.aggregation.output_grid import OutputGrid
from repro.dataset.partition import hilbert_partition
from repro.frontend.queryservice import QueryService
from repro.planner.calibrate import CalibrationError, calibrate
from repro.planner.telemetry import TelemetryLog
from repro.space.attribute_space import AttributeSpace
from repro.space.mapping import GridMapping


def build_adr(cost_model=None):
    adr = ADR(machine=ibm_sp(4), cost_model=cost_model)
    rng = np.random.default_rng(7)
    field = AttributeSpace.regular("field", ("x", "y"), (0, 0), (100, 100))
    coords = rng.uniform(0, 100, size=(8000, 2))
    values = np.hypot(coords[:, 0] - 50, coords[:, 1] - 50)
    chunks = hilbert_partition(coords, values, items_per_chunk=40)
    adr.load("radar", field, chunks)

    image = AttributeSpace.regular("image", ("u", "v"), (0, 0), (1, 1))
    grid = OutputGrid(image, grid_shape=(24, 24), chunk_shape=(6, 6))
    mapping = GridMapping(field, image, grid_shape=(24, 24))
    return adr, mapping, grid


def query(mapping, grid, region, strategy):
    return RangeQuery(
        dataset="radar", region=region, mapping=mapping, grid=grid,
        aggregation="mean", strategy=strategy,
    )


def main() -> None:
    log_path = Path(tempfile.mkdtemp(prefix="adr-telemetry-")) / "telemetry.jsonl"
    log = TelemetryLog(log_path)

    # 1. Harvest telemetry from a mixed workload: several regions,
    #    every fixed strategy, so the fit sees heterogeneous equations.
    adr, mapping, grid = build_adr()
    regions = [
        Rect((0, 0), (100, 100)),
        Rect((10, 10), (60, 60)),
        Rect((40, 25), (95, 90)),
        Rect((5, 55), (50, 98)),
    ]
    with QueryService(adr, telemetry=log) as service:
        tickets = [
            service.submit(query(mapping, grid, region, strategy))
            for region in regions
            for strategy in ("FRA", "SRA", "DA")
        ]
        for t in tickets:
            t.result(timeout=120)
    print(f"recorded {len(log)} measured runs -> {log_path}")

    # 2. Fit the machine constants from the log.  `calibrate` raises a
    #    loud CalibrationError instead of guessing when the log is too
    #    small or degenerate.
    try:
        model = calibrate(log.load())
    except CalibrationError as exc:
        raise SystemExit(f"calibration failed: {exc}")
    print(model.summary())

    # 3. A fresh instance planning with the *measured* constants: the
    #    query says 'auto', the calibrated model picks the strategy.
    adr2, mapping, grid = build_adr(cost_model=model)
    q = query(mapping, grid, Rect((15, 15), (85, 85)), "auto")
    plan, choice = adr2.plan_with_choice(q)
    print(f"\nauto resolved to {choice.selected}")
    print(choice.table())

    result = adr2.execute(q)
    print(f"\nexecuted {result.selected_strategy}: "
          f"{len(result.output_ids)} output chunks, "
          f"{result.n_reads} chunk reads")


if __name__ == "__main__":
    main()
