"""RetryPolicy backoff/deadline arithmetic and the retrying store.

All timing runs on a fake clock -- these tests never actually sleep.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset.chunk import Chunk
from repro.store.chunk_store import FileChunkStore, MemoryChunkStore
from repro.store.format import CorruptChunkError
from repro.store.retry import DEFAULT_RETRY_ON, RetryPolicy, RetryingChunkStore


class FakeClock:
    """Monotonic clock advanced only by (recorded) sleeps."""

    def __init__(self) -> None:
        self.now = 0.0
        self.sleeps = []

    def clock(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds


class Flaky:
    """Callable failing the first *n* calls with *exc*."""

    def __init__(self, n: int, exc: Exception, value="ok") -> None:
        self.n = n
        self.exc = exc
        self.value = value
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.n:
            raise self.exc
        return self.value


class TestBackoffArithmetic:
    def test_delay_schedule(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, multiplier=2.0,
                             max_delay=0.5)
        assert [policy.delay(k) for k in range(4)] == [0.1, 0.2, 0.4, 0.5]
        assert list(policy.delays()) == [0.1, 0.2, 0.4, 0.5]

    def test_delays_capped_at_max_delay(self):
        policy = RetryPolicy(max_attempts=10, base_delay=1.0, multiplier=3.0,
                             max_delay=2.5)
        assert all(d <= 2.5 for d in policy.delays())

    @given(
        st.integers(1, 8),
        st.floats(0.0, 1.0),
        st.floats(1.0, 4.0),
        st.floats(0.0, 10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_schedule_properties(self, attempts, base, mult, cap):
        """Backoffs are non-negative, non-decreasing up to the cap, and
        there are exactly max_attempts - 1 of them."""
        policy = RetryPolicy(max_attempts=attempts, base_delay=base,
                             multiplier=mult, max_delay=cap)
        delays = list(policy.delays())
        assert len(delays) == attempts - 1
        assert all(d >= 0 for d in delays)
        assert all(d <= max(cap, 0) or np.isclose(d, cap) for d in delays)
        assert all(a <= b or np.isclose(a, b) for a, b in zip(delays, delays[1:]))

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="delays"):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="deadline"):
            RetryPolicy(deadline=0)


class TestRunSemantics:
    def test_success_after_transient_failures(self):
        fake = FakeClock()
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, multiplier=2.0)
        fn = Flaky(2, OSError("flaky disk"))
        assert policy.run(fn, clock=fake.clock, sleep=fake.sleep) == "ok"
        assert fn.calls == 3
        assert fake.sleeps == [0.1, 0.2]

    def test_exhaustion_reraises_last_error_unchanged(self):
        fake = FakeClock()
        policy = RetryPolicy(max_attempts=3, base_delay=0.1)
        err = CorruptChunkError("CRC mismatch")
        fn = Flaky(99, err)
        with pytest.raises(CorruptChunkError) as excinfo:
            policy.run(fn, clock=fake.clock, sleep=fake.sleep)
        assert excinfo.value is err
        assert fn.calls == 3
        assert fake.sleeps == [0.1, 0.2]  # no sleep after the last attempt

    def test_non_retryable_propagates_immediately(self):
        fake = FakeClock()
        policy = RetryPolicy(max_attempts=5, base_delay=0.1)
        fn = Flaky(99, KeyError("absent"))
        with pytest.raises(KeyError):
            policy.run(fn, clock=fake.clock, sleep=fake.sleep)
        assert fn.calls == 1 and fake.sleeps == []

    def test_deadline_checked_before_sleeping(self):
        """A backoff that would overrun the deadline is not slept; the
        read fails with the underlying error right away."""
        fake = FakeClock()
        policy = RetryPolicy(max_attempts=10, base_delay=0.6, multiplier=1.0,
                             max_delay=0.6, deadline=1.0)
        fn = Flaky(99, OSError("down"))
        with pytest.raises(OSError):
            policy.run(fn, clock=fake.clock, sleep=fake.sleep)
        # attempt 0 fails -> sleep 0.6 (0.0 + 0.6 <= 1.0);
        # attempt 1 fails -> next 0.6 would reach 1.2 > 1.0 -> raise now.
        assert fake.sleeps == [0.6]
        assert fn.calls == 2
        assert fake.now == pytest.approx(0.6)

    @given(st.integers(1, 6), st.integers(0, 10))
    @settings(max_examples=60, deadline=None)
    def test_total_sleep_never_exceeds_deadline(self, attempts, tenths):
        """Property: accumulated fake-clock time stays within deadline."""
        deadline = 0.1 + tenths / 10.0
        fake = FakeClock()
        policy = RetryPolicy(max_attempts=attempts, base_delay=0.07,
                             multiplier=2.0, max_delay=5.0, deadline=deadline)
        fn = Flaky(99, OSError("down"))
        with pytest.raises(OSError):
            policy.run(fn, clock=fake.clock, sleep=fake.sleep)
        assert fake.now <= deadline + 1e-9

    def test_default_retry_on(self):
        assert OSError in DEFAULT_RETRY_ON
        assert CorruptChunkError in DEFAULT_RETRY_ON


def _store_with_chunk(rng):
    store = MemoryChunkStore()
    coords = rng.uniform(0, 10, size=(5, 2))
    values = rng.uniform(0, 1, size=(5, 1))
    store.write_chunk("d", Chunk.from_items(0, coords, values), 0, 0)
    return store


class TestRetryingChunkStore:
    def test_read_retries_then_succeeds(self, rng):
        inner = _store_with_chunk(rng)
        real_read = inner.read_chunk
        failures = {"left": 2}

        def flaky_read(dataset, chunk_id):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise OSError("transient")
            return real_read(dataset, chunk_id)

        inner.read_chunk = flaky_read
        store = RetryingChunkStore(inner, RetryPolicy(max_attempts=4, base_delay=0))
        assert store.read_chunk("d", 0).chunk_id == 0

    def test_absence_not_retried(self, rng):
        inner = _store_with_chunk(rng)
        calls = {"n": 0}
        real_read = inner.read_chunk

        def counting_read(dataset, chunk_id):
            calls["n"] += 1
            return real_read(dataset, chunk_id)

        inner.read_chunk = counting_read
        store = RetryingChunkStore(inner, RetryPolicy(max_attempts=4, base_delay=0))
        with pytest.raises(KeyError):
            store.read_chunk("d", 99)
        assert calls["n"] == 1

    def test_writes_pass_through(self, rng):
        inner = MemoryChunkStore()
        store = RetryingChunkStore(inner, RetryPolicy(base_delay=0))
        coords = rng.uniform(0, 10, size=(3, 2))
        store.write_chunk("d", Chunk.from_items(1, coords, np.ones((3, 1))), 0, 0)
        assert inner.chunk_ids("d") == [1]
        assert store.placement("d", 1) == (0, 0)


class TestFileStoreRetry:
    def test_corrupt_file_retried_then_surfaced(self, rng, tmp_path):
        """A persistently corrupt file exhausts the budget and raises
        the real CorruptChunkError, not a wrapper."""
        store = FileChunkStore(
            tmp_path, retry=RetryPolicy(max_attempts=3, base_delay=0)
        )
        coords = rng.uniform(0, 10, size=(4, 2))
        store.write_chunk("d", Chunk.from_items(0, coords, np.ones((4, 1))), 0, 0)
        path = store._chunk_path("d", 0, 0, 0)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CorruptChunkError):
            store.read_chunk("d", 0)

    def test_transient_corruption_healed_by_retry(self, rng, tmp_path):
        """If the file is repaired between attempts (transient bus/cache
        corruption), the retried read succeeds -- the heal happens in a
        zero-delay sleep hook, inside the store's own retry loop."""
        coords = rng.uniform(0, 10, size=(4, 2))
        plain = FileChunkStore(tmp_path)
        plain.write_chunk("d", Chunk.from_items(0, coords, np.ones((4, 1))), 0, 0)
        path = plain._chunk_path("d", 0, 0, 0)
        good = path.read_bytes()
        raw = bytearray(good)
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))

        heal = lambda: path.write_bytes(good)  # noqa: E731
        policy = RetryPolicy(max_attempts=3, base_delay=0)
        chunk = policy.run(
            lambda: FileChunkStore(tmp_path).read_chunk("d", 0),
            sleep=lambda _pause: heal(),
        )
        assert chunk.chunk_id == 0
        np.testing.assert_array_equal(chunk.coords, coords)
